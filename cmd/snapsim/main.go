// Command snapsim regenerates the paper's evaluation figures from the
// SNAP reproduction. Each figure is printed as one or more aligned tables
// (or CSV with -csv) whose series match the curves the paper plots.
//
// Usage:
//
//	snapsim -fig 6            # reproduce Fig. 6 at full scale
//	snapsim -fig all -quick   # all figures with reduced workloads
//	snapsim -fig 8 -csv       # machine-readable output
//	snapsim -list             # what each figure contains
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/snapml/snap"
	"github.com/snapml/snap/internal/experiments"
)

var figures = map[string]func(experiments.Options) (*experiments.FigResult, error){
	"2":      experiments.Fig2,
	"4":      experiments.Fig4,
	"5":      experiments.Fig5,
	"6":      experiments.Fig6,
	"7":      experiments.Fig7,
	"8":      experiments.Fig8,
	"9":      experiments.Fig9,
	"frames": experiments.Frames,
}

var descriptions = []string{
	"2: parameter evolution (unchanged fraction, |dx| CDFs) — 3-server MLP",
	"4: testbed accuracy + per-iteration and total cost — 3-server MLP",
	"5: weight-matrix optimization vs scale and degree — SVM simulations",
	"6: iterations to converge vs scale and degree — SVM simulations",
	"7: model accuracy vs scale and degree — SVM simulations",
	"8: total communication cost vs scale and degree — SVM simulations",
	"9: impact of stragglers (unavailable links) — SVM simulations",
	"frames: §IV-C wire-format payload crossover (analytical)",
}

func main() {
	fig := flag.String("fig", "", "figure to reproduce: 2, 4, 5, 6, 7, 8, 9, frames or 'all'")
	quick := flag.Bool("quick", false, "reduced workloads and sweep grids")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("out", "", "also write each table as a CSV file into this directory")
	seed := flag.Int64("seed", 1, "experiment seed (runs are deterministic per seed)")
	list := flag.Bool("list", false, "list available figures")

	custom := flag.Bool("custom", false, "run one custom configuration instead of a figure")
	n := flag.Int("n", 20, "custom: number of edge servers")
	degree := flag.Float64("degree", 3, "custom: average node degree")
	scheme := flag.String("scheme", "snap", "custom: snap, snap-0, sno, ps, terngrad, dgd or centralized")
	samples := flag.Int("samples", 12000, "custom: total credit-dataset samples")
	alpha := flag.Float64("alpha", 0.1, "custom: step size")
	failures := flag.Float64("failures", 0, "custom: per-round link failure probability")
	flag.Parse()

	if *list {
		for _, d := range descriptions {
			fmt.Println("fig", d)
		}
		return
	}
	if *custom {
		if err := runCustom(*n, *degree, *scheme, *samples, *alpha, *failures, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "snapsim:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "snapsim: -fig is required (try -list, or -custom)")
		os.Exit(2)
	}

	// Figure tables can be large; write them through one buffered,
	// error-checked writer so a broken pipe or full disk is reported
	// in the exit status instead of silently truncating the output.
	out := bufio.NewWriter(os.Stdout)

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var ids []string
	if strings.EqualFold(*fig, "all") {
		ids = []string{"2", "4", "5", "6", "7", "8", "9"}
	} else {
		ids = strings.Split(*fig, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		run, ok := figures[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "snapsim: unknown figure %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res, err := run(opt)
		if err != nil {
			out.Flush() // keep already-rendered figures on a partial failure
			fmt.Fprintf(os.Stderr, "snapsim: figure %s: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			for _, tab := range res.Tables {
				fmt.Fprintf(out, "# %s\n%s\n", tab.Title, tab.CSV())
			}
		} else {
			fmt.Fprint(out, res.Render())
		}
		if *outDir != "" {
			if err := writeCSVs(*outDir, res); err != nil {
				out.Flush()
				fmt.Fprintln(os.Stderr, "snapsim:", err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(out, "# figure %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "snapsim: writing output:", err)
		os.Exit(1)
	}
}

// writeCSVs saves every table of a figure as <dir>/<figID>_<k>.csv.
func writeCSVs(dir string, res *experiments.FigResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating %s: %w", dir, err)
	}
	for k, tab := range res.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", res.ID, k))
		if err := os.WriteFile(path, []byte("# "+tab.Title+"\n"+tab.CSV()), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
	}
	return nil
}

// runCustom trains one configuration and prints its summary row.
func runCustom(n int, degree float64, scheme string, samples int, alpha, failures float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	data := snap.SyntheticCredit(snap.CreditConfig{Samples: samples}, rng)
	train, test := data.Split(0.85, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		return err
	}
	topo := snap.RandomTopology(n, degree, seed)
	model := snap.NewLinearSVM(data.NumFeature)
	det := snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.01}
	baseCfg := snap.BaselineConfig{
		Topology: topo, Model: model, Partitions: parts, Test: test,
		Alpha: alpha, MaxIterations: 500, EvalEvery: 100, Seed: seed,
		Convergence: snap.ConvergenceDetector{RelTol: 1e-3, Patience: 3},
	}

	var res *snap.Result
	switch scheme {
	case "snap", "snap-0", "sno":
		policy := snap.SNAP
		switch scheme {
		case "snap-0":
			policy = snap.SNAP0
		case "sno":
			policy = snap.SNO
		}
		res, err = snap.Train(snap.Config{
			Topology: topo, Model: model, Partitions: parts, Test: test,
			Alpha: alpha, Policy: policy, OptimizeWeights: true,
			MaxIterations: 500, Convergence: det, EvalEvery: 100,
			Seed: seed, FailureRate: failures,
		})
	case "ps":
		res, err = snap.TrainPS(baseCfg)
	case "terngrad":
		ternCfg := baseCfg
		ternCfg.BatchSize = 2
		res, err = snap.TrainTernGrad(ternCfg)
	case "dgd":
		res, err = snap.TrainDGD(baseCfg)
	case "centralized":
		res, err = snap.TrainCentralized(baseCfg)
	default:
		return fmt.Errorf("unknown scheme %q", scheme)
	}
	if err != nil {
		return err
	}
	fmt.Printf("scheme=%s n=%d degree=%g alpha=%g failures=%g\n", scheme, n, degree, alpha, failures)
	fmt.Printf("iterations=%d converged=%v accuracy=%.4f cost=%.0f\n",
		res.Iterations, res.Converged, res.FinalAccuracy, res.TotalCost)
	if stat, ok := res.Trace.Last(); ok {
		fmt.Printf("finalLoss=%.4f consensus=%.3e\n", stat.Loss, stat.Consensus)
	}
	return nil
}
