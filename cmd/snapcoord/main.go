// Command snapcoord runs the elastic-cluster coordinator: the control-
// plane service that admits and removes snapnode members at runtime, owns
// the authoritative topology, re-optimizes the mixing weight matrix W
// centrally on every membership change (the paper's Section IV-B
// optimization), and pushes versioned epochs that nodes apply at round
// boundaries.
//
// A minimal elastic cluster:
//
//	snapcoord -listen 127.0.0.1:7100 -min-members 3 &
//	snapnode -coordinator 127.0.0.1:7100 &
//	snapnode -coordinator 127.0.0.1:7100 &
//	snapnode -coordinator 127.0.0.1:7100
//
// The coordinator runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/snapml/snap"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:7100", "control-plane listen address")
		minMembers   = flag.Int("min-members", 2, "defer the first epoch until this many members joined")
		attachDegree = flag.Int("attach-degree", 2, "how many existing members a joining node links to")
		applyMargin  = flag.Int("apply-margin", 3, "rounds between the cluster's newest round and a new epoch's apply boundary")
		hbTimeout    = flag.Duration("heartbeat-timeout", 10*time.Second, "evict members silent for this long (0 = never evict)")
		alpha        = flag.Float64("alpha", 0.1, "EXTRA step size assumed by the convergence bound (match the nodes' -alpha)")
		verbose      = flag.Bool("verbose", false, "log joins, leaves, evictions, and epochs")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /snapshot and /trace on this address (empty = off)")
		eventsPath  = flag.String("events", "", "append membership/epoch events as JSON lines to this file (\"-\" = stderr; empty = off)")
		pprofOn     = flag.Bool("pprof", true, "also mount /debug/pprof on -metrics-addr; disable on any address reachable beyond the operator (profiles expose memory contents)")
		traceRounds = flag.Int("trace-rounds", 0, "aggregate the round-trace digests nodes push on heartbeats, keeping this many merged rounds at /trace, and run NTP-style clock sync against members (0 = off)")
	)
	flag.Parse()

	if err := run(*listen, *minMembers, *attachDegree, *applyMargin, *hbTimeout,
		*alpha, *verbose, *metricsAddr, *eventsPath, *pprofOn, *traceRounds); err != nil {
		fmt.Fprintln(os.Stderr, "snapcoord:", err)
		os.Exit(1)
	}
}

// closeAnd runs close when the surrounding function returns and records
// its error into *err unless an earlier error is already being returned.
// Deferred `x.Close()` calls silently drop failures; shutdown errors
// (unflushed event logs, listener teardown) must reach the exit status.
func closeAnd(err *error, what string, close func() error) {
	if cerr := close(); cerr != nil && *err == nil {
		*err = fmt.Errorf("%s: %w", what, cerr)
	}
}

func run(listen string, minMembers, attachDegree, applyMargin int,
	hbTimeout time.Duration, alpha float64, verbose bool,
	metricsAddr, eventsPath string, pprofOn bool, traceRounds int) (err error) {
	var logf func(format string, args ...any)
	if verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var (
		reg      *snap.MetricsRegistry
		eventLog *snap.EventLog
		observer *snap.Observer
	)
	if metricsAddr != "" || eventsPath != "" {
		reg = snap.NewMetricsRegistry()
		if eventsPath != "" {
			if eventsPath == "-" {
				eventLog = snap.NewEventLog(os.Stderr)
			} else {
				f, err := os.OpenFile(eventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return fmt.Errorf("open -events file: %w", err)
				}
				defer closeAnd(&err, "close -events file", f.Close)
				eventLog = snap.NewEventLog(f)
			}
		}
		observer = snap.NewObserver(reg, eventLog)
	}

	coord, err := snap.NewCoordinator(snap.CoordinatorConfig{
		ListenAddr:       listen,
		MinMembers:       minMembers,
		AttachDegree:     attachDegree,
		ApplyMargin:      applyMargin,
		HeartbeatTimeout: hbTimeout,
		Bound:            snap.BoundParams{Alpha: alpha},
		Logf:             logf,
		Obs:              observer,
		TraceRounds:      traceRounds,
	})
	if err != nil {
		return err
	}
	defer closeAnd(&err, "close coordinator", coord.Close)
	fmt.Printf("coordinator listening on %s (min members %d)\n", coord.Addr(), minMembers)

	if metricsAddr != "" {
		srv, addr, err := snap.ServeObservabilityWith(metricsAddr, snap.ObserveConfig{
			Node:         -1,
			Reg:          reg,
			Log:          eventLog,
			PprofEnabled: pprofOn,
			Trace:        snap.ClusterTraceHandler(coord.Trace()),
		})
		if err != nil {
			return fmt.Errorf("start metrics server: %w", err)
		}
		defer closeAnd(&err, "close metrics server", srv.Close)
		fmt.Printf("coordinator metrics on http://%s/metrics\n", addr)
		if traceRounds > 0 {
			fmt.Printf("coordinator cluster trace on http://%s/trace\n", addr)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("coordinator shutting down (%v); members: %v\n", s, coord.Members())
	return nil
}
