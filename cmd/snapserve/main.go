// Command snapserve is SNAP's inference gateway: it serves predictions
// from a trained model over HTTP, coalescing concurrent requests into
// micro-batches with admission control (bounded queue, per-request
// deadlines, 429 on overload).
//
// The model comes from one of three sources, hot-swappable at any time:
//
//   - a checkpoint file written with snap.SaveParams (-checkpoint),
//   - a live training node: -follow polls the node's /params endpoint
//     (snapnode -metrics-addr ... -serve-params) and swaps every new
//     round in atomically, so predictions track training progress,
//   - a PUT /v1/model request with a checkpoint body.
//
// Serve a checkpoint:
//
//	snapserve -listen 127.0.0.1:8080 -model svm -features 24 -checkpoint model.ckpt
//
// Follow a training node live:
//
//	snapnode -id 0 -peers ... -metrics-addr 127.0.0.1:9090 &
//	snapserve -listen 127.0.0.1:8080 -model svm -features 24 -follow 127.0.0.1:9090
//
// Then:
//
//	curl -s 127.0.0.1:8080/v1/predict -d '{"features":[0.1, ...]}'
//	curl -s 127.0.0.1:8080/v1/model
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/snapml/snap"
)

func main() {
	var o options
	flag.StringVar(&o.Listen, "listen", "127.0.0.1:8080", "prediction API listen address")
	flag.StringVar(&o.ModelName, "model", "svm", "model architecture: svm, logreg, softmax, or mlp (must match the training cluster)")
	flag.IntVar(&o.Features, "features", 24, "feature dimensionality")
	flag.IntVar(&o.Classes, "classes", 10, "class count (softmax and mlp)")
	flag.IntVar(&o.Hidden, "hidden", 30, "hidden units (mlp)")
	flag.StringVar(&o.Checkpoint, "checkpoint", "", "load initial parameters from this snap.SaveParams checkpoint file")
	flag.IntVar(&o.Round, "checkpoint-round", 0, "round stamp for -checkpoint")
	flag.IntVar(&o.Epoch, "checkpoint-epoch", 0, "epoch stamp for -checkpoint")
	flag.StringVar(&o.Follow, "follow", "", "follow a training node live: its observability address (e.g. 127.0.0.1:9090), polled at /params")
	flag.DurationVar(&o.Poll, "poll", 500*time.Millisecond, "poll interval for -follow")
	flag.IntVar(&o.MaxBatch, "max-batch", 32, "rows per micro-batch")
	flag.DurationVar(&o.MaxWait, "max-wait", 2*time.Millisecond, "how long an underfull batch waits for more rows (negative = serve immediately)")
	flag.IntVar(&o.QueueDepth, "queue-depth", 1024, "admission queue bound; a full queue answers 429")
	flag.IntVar(&o.Workers, "workers", 2, "batch-executing worker goroutines")
	flag.DurationVar(&o.Deadline, "deadline", time.Second, "per-request time budget (504 when exceeded)")
	flag.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve /metrics and /snapshot on this address (empty = off)")
	flag.StringVar(&o.EventsPath, "events", "", "append model-swap events as JSON lines to this file (\"-\" = stderr; empty = off)")
	flag.BoolVar(&o.Pprof, "pprof", false, "also mount /debug/pprof on -metrics-addr")
	flag.Parse()

	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(o, os.Stdout, nil, stop); err != nil {
		fmt.Fprintln(os.Stderr, "snapserve:", err)
		os.Exit(1)
	}
}

// options bundles every flag so tests drive run directly.
type options struct {
	Listen      string
	ModelName   string
	Features    int
	Classes     int
	Hidden      int
	Checkpoint  string
	Round       int
	Epoch       int
	Follow      string
	Poll        time.Duration
	MaxBatch    int
	MaxWait     time.Duration
	QueueDepth  int
	Workers     int
	Deadline    time.Duration
	MetricsAddr string
	EventsPath  string
	Pprof       bool
}

// buildModel maps -model and the shape flags to an architecture.
func buildModel(o options) (snap.Model, error) {
	if o.Features <= 0 {
		return nil, fmt.Errorf("-features must be positive, got %d", o.Features)
	}
	switch o.ModelName {
	case "svm":
		return snap.NewLinearSVM(o.Features), nil
	case "logreg":
		return snap.NewLogisticRegression(o.Features), nil
	case "softmax":
		return snap.NewSoftmaxRegression(o.Features, o.Classes), nil
	case "mlp":
		return snap.NewMLP(o.Features, o.Hidden, o.Classes), nil
	default:
		return nil, fmt.Errorf("unknown -model %q (want svm, logreg, softmax, or mlp)", o.ModelName)
	}
}

// closeAnd folds a deferred close error into the return value.
func closeAnd(err *error, what string, close func() error) {
	if cerr := close(); cerr != nil && *err == nil {
		*err = fmt.Errorf("%s: %w", what, cerr)
	}
}

// run starts the gateway and blocks until stop closes or the listener
// fails. ready (may be nil) receives the bound API address — tests use
// it with -listen 127.0.0.1:0.
func run(o options, stdout io.Writer, ready func(addr string), stop <-chan struct{}) (err error) {
	m, err := buildModel(o)
	if err != nil {
		return err
	}

	// Observability: swap/gateway metrics plus JSONL model-swap events.
	var (
		observer *snap.Observer
		reg      *snap.MetricsRegistry
		eventLog *snap.EventLog
	)
	if o.MetricsAddr != "" || o.EventsPath != "" {
		reg = snap.NewMetricsRegistry()
		if o.EventsPath == "-" {
			eventLog = snap.NewEventLog(os.Stderr)
		} else if o.EventsPath != "" {
			f, ferr := os.OpenFile(o.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if ferr != nil {
				return fmt.Errorf("open -events file: %w", ferr)
			}
			defer closeAnd(&err, "close -events file", f.Close)
			eventLog = snap.NewEventLog(f)
		}
		observer = snap.NewObserver(reg, eventLog)
	}

	gw, err := snap.NewGateway(snap.GatewayConfig{
		Model:      m,
		Features:   o.Features,
		MaxBatch:   o.MaxBatch,
		MaxWait:    o.MaxWait,
		QueueDepth: o.QueueDepth,
		Workers:    o.Workers,
		Deadline:   o.Deadline,
		Obs:        observer,
	})
	if err != nil {
		return err
	}
	defer gw.Close()

	if o.Checkpoint != "" {
		if err := gw.LoadCheckpointFile(o.Checkpoint, o.Round, o.Epoch); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded checkpoint %s (round %d, epoch %d)\n", o.Checkpoint, o.Round, o.Epoch)
	}

	followCtx, cancelFollow := context.WithCancel(context.Background())
	defer cancelFollow()
	if o.Follow != "" {
		url := o.Follow
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		fw := &snap.Follower{URL: url, Gateway: gw, Interval: o.Poll, Obs: observer}
		go fw.Run(followCtx)
		fmt.Fprintf(stdout, "following %s/params every %v\n", url, o.Poll)
	}

	if o.MetricsAddr != "" {
		srv, addr, merr := snap.ServeObservabilityWith(o.MetricsAddr, snap.ObserveConfig{
			Node:         -1,
			Reg:          reg,
			Log:          eventLog,
			PprofEnabled: o.Pprof,
		})
		if merr != nil {
			return fmt.Errorf("start metrics server: %w", merr)
		}
		defer closeAnd(&err, "close metrics server", srv.Close)
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", addr)
	}

	ln, err := net.Listen("tcp", o.Listen)
	if err != nil {
		return fmt.Errorf("listen %s: %w", o.Listen, err)
	}
	srv := &http.Server{Handler: snap.GatewayHandler(gw)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "serving predictions on http://%s/v1/predict (model %s, %d features)\n",
		ln.Addr(), m.Name(), o.Features)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case <-stop:
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	case err := <-serveErr:
		return err
	}
}
