package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// trainCluster trains a real 3-node TCP cluster with a ParamFeed wired
// into node 0 — exactly what snapnode does with -serve-params — and
// returns the feed plus the dataset the cluster trained on.
func trainCluster(t *testing.T, rounds int) (*snap.ParamFeed, *snap.Dataset) {
	t.Helper()
	const n = 3
	addrs := freePorts(t, n)
	topo := snap.CompleteTopology(n)
	rng := rand.New(rand.NewSource(3))
	ds := snap.SyntheticCredit(snap.CreditConfig{Samples: 600}, rng)
	parts, err := ds.Partition(n, rng)
	if err != nil {
		t.Fatal(err)
	}

	feed := snap.NewParamFeed()
	nodes := make([]*snap.PeerNode, n)
	for i := range nodes {
		cfg := snap.PeerConfig{
			ID:           i,
			Topology:     topo,
			Model:        snap.NewLinearSVM(ds.NumFeature),
			Data:         parts[i],
			Alpha:        0.1,
			Seed:         1,
			ListenAddr:   addrs[i],
			RoundTimeout: 5 * time.Second,
		}
		if i == 0 {
			cfg.Feed = feed
		}
		node, err := snap.NewPeerNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, pn := range nodes {
		neighbors := make(map[int]string)
		for _, j := range topo.Neighbors(i) {
			neighbors[j] = addrs[j]
		}
		wg.Add(1)
		go func(i int, pn *snap.PeerNode, neighbors map[int]string) {
			defer wg.Done()
			if errs[i] = pn.Connect(neighbors); errs[i] != nil {
				return
			}
			_, errs[i] = pn.Run(rounds)
		}(i, pn, neighbors)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return feed, ds
}

// startServe runs the snapserve entrypoint in a goroutine and returns
// its bound API address. Shutdown (and error check) happens in cleanup.
func startServe(t *testing.T, o options) (addr string, out *bytes.Buffer) {
	t.Helper()
	o.Listen = "127.0.0.1:0"
	out = &bytes.Buffer{}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(o, out, func(a string) { ready <- a }, stop) }()
	t.Cleanup(func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("snapserve run: %v\noutput:\n%s", err, out.String())
		}
	})
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("snapserve exited before ready: %v\noutput:\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("snapserve never became ready")
	}
	return addr, out
}

// waitReady polls /readyz until the gateway has a model loaded.
func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("gateway never became ready")
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSnapserveSmoke is the end-to-end serving check: a real TCP
// cluster trains an SVM publishing into a ParamFeed, the feed is served
// at /params the way snapnode's observability endpoint does, snapserve
// follows it live, and predictions round-trip over HTTP matching the
// trained model's local output.
func TestSnapserveSmoke(t *testing.T) {
	const rounds = 4
	feed, ds := trainCluster(t, rounds)

	snapshot := feed.Acquire()
	if snapshot == nil {
		t.Fatal("training published nothing into the feed")
	}
	defer snapshot.Release()
	if snapshot.Round() != rounds-1 {
		t.Fatalf("feed holds round %d, want final round %d", snapshot.Round(), rounds-1)
	}

	// Serve /params exactly as snapnode's observability server mounts it.
	mux := http.NewServeMux()
	mux.Handle("/params", snap.ParamsHandler(feed))
	nodeSrv := httptest.NewServer(mux)
	defer nodeSrv.Close()

	addr, out := startServe(t, options{
		ModelName:  "svm",
		Features:   ds.NumFeature,
		Follow:     nodeSrv.URL,
		Poll:       20 * time.Millisecond,
		MaxBatch:   8,
		MaxWait:    time.Millisecond,
		QueueDepth: 64,
		Workers:    2,
		Deadline:   5 * time.Second,
	})
	waitReady(t, addr)

	// Predictions over HTTP must match the trained model applied locally.
	m := snap.NewLinearSVM(ds.NumFeature)
	params := snapshot.Params()
	for i := 0; i < 10; i++ {
		s := ds.Samples[i]
		body, err := json.Marshal(map[string][]float64{"features": s.X})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, "http://"+addr+"/v1/predict", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict sample %d: status %d body %s", i, resp.StatusCode, data)
		}
		var pr struct {
			Predictions []int `json:"predictions"`
			ModelRound  int   `json:"model_round"`
		}
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("predict sample %d: bad body %s: %v", i, data, err)
		}
		if len(pr.Predictions) != 1 || pr.Predictions[0] != m.Predict(params, s.X) {
			t.Fatalf("sample %d: served %v, local model says %d", i, pr.Predictions, m.Predict(params, s.X))
		}
		if pr.ModelRound != rounds-1 {
			t.Fatalf("sample %d served by model round %d, want %d", i, pr.ModelRound, rounds-1)
		}
	}

	// Model metadata reflects the followed training state.
	resp, err := http.Get("http://" + addr + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Loaded bool `json:"loaded"`
		Round  int  `json:"round"`
		Params int  `json:"params"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Round != rounds-1 || info.Params != len(params) {
		t.Fatalf("model info %+v, want loaded round %d with %d params", info, rounds-1, len(params))
	}

	if !strings.Contains(out.String(), "following") {
		t.Errorf("startup output missing follow banner:\n%s", out.String())
	}
}

// TestSnapserveCheckpoint starts the server from a checkpoint file (no
// training cluster) and checks the stamped version is served.
func TestSnapserveCheckpoint(t *testing.T) {
	m := snap.NewLinearSVM(8)
	params := m.InitParams(11)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.SaveParams(f, params); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	addr, out := startServe(t, options{
		ModelName:  "svm",
		Features:   8,
		Checkpoint: path,
		Round:      7,
		Epoch:      2,
		MaxBatch:   4,
		MaxWait:    -1,
		QueueDepth: 16,
		Workers:    1,
		Deadline:   5 * time.Second,
	})
	waitReady(t, addr)

	x := make([]float64, 8)
	x[0] = 1
	resp, data := postJSON(t, "http://"+addr+"/v1/predict",
		fmt.Sprintf(`{"features":[%g,0,0,0,0,0,0,0]}`, x[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d body %s", resp.StatusCode, data)
	}
	var pr struct {
		Predictions []int `json:"predictions"`
		ModelRound  int   `json:"model_round"`
		ModelEpoch  int   `json:"model_epoch"`
	}
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 1 || pr.Predictions[0] != m.Predict(params, x) {
		t.Fatalf("served %v, local model says %d", pr.Predictions, m.Predict(params, x))
	}
	if pr.ModelRound != 7 || pr.ModelEpoch != 2 {
		t.Fatalf("served version %d/%d, want checkpoint stamp 7/2", pr.ModelRound, pr.ModelEpoch)
	}
	if !strings.Contains(out.String(), "loaded checkpoint") {
		t.Errorf("startup output missing checkpoint banner:\n%s", out.String())
	}
}

// TestSnapserveBuildModel pins the flag-to-architecture mapping and its
// error cases.
func TestSnapserveBuildModel(t *testing.T) {
	for _, name := range []string{"svm", "logreg", "softmax", "mlp"} {
		m, err := buildModel(options{ModelName: name, Features: 6, Classes: 3, Hidden: 4})
		if err != nil || m == nil {
			t.Errorf("buildModel(%q): %v", name, err)
		}
	}
	if _, err := buildModel(options{ModelName: "resnet", Features: 6}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := buildModel(options{ModelName: "svm", Features: 0}); err == nil {
		t.Error("zero features accepted")
	}
}
