// Command snaptrace renders cluster-wide SNAP round traces: per-round
// ASCII timelines with straggler verdicts and communication savings, and
// an optional Chrome trace_event export for chrome://tracing / Perfetto.
//
// Input is JSONL in either of the two shapes the cluster serves:
//
//   - merged ClusterRound lines from a coordinator's /trace endpoint
//     (snapcoord -trace-rounds N -metrics-addr ...), or
//   - raw RoundDigest lines from one or more node /trace endpoints
//     (snapnode -trace-rounds N -metrics-addr ...); snaptrace merges
//     them locally with the same aggregator the coordinator uses.
//
// Read live or from a file:
//
//	snaptrace -url http://127.0.0.1:9100/trace
//	curl -s http://127.0.0.1:9090/trace http://127.0.0.1:9091/trace > nodes.jsonl
//	snaptrace -in nodes.jsonl -chrome trace.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/snapml/snap"
)

func main() {
	var (
		in     = flag.String("in", "", "read rounds from this JSONL file (\"-\" = stdin): coordinator ClusterRound lines or node RoundDigest lines")
		url    = flag.String("url", "", "scrape this live /trace endpoint instead of -in (e.g. http://127.0.0.1:9100/trace)")
		rounds = flag.Int("rounds", 8, "render at most the last N rounds")
		width  = flag.Int("width", 72, "timeline width in columns")
		chrome = flag.String("chrome", "", "also write the rounds as Chrome trace_event JSON to this file (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()
	if err := run(*in, *url, *rounds, *width, *chrome, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "snaptrace:", err)
		os.Exit(1)
	}
}

func run(in, url string, maxRounds, width int, chromePath string, w io.Writer) error {
	var src io.ReadCloser
	switch {
	case in != "" && url != "":
		return fmt.Errorf("-in and -url are mutually exclusive")
	case in == "-":
		src = io.NopCloser(os.Stdin)
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		src = f
	case url != "":
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("GET %s: %s", url, resp.Status)
		}
		src = resp.Body
	default:
		return fmt.Errorf("need -in FILE or -url http://host/trace")
	}
	defer src.Close()

	rounds, err := readRounds(src)
	if err != nil {
		return err
	}
	if len(rounds) == 0 {
		return fmt.Errorf("no rounds in input")
	}
	if maxRounds > 0 && len(rounds) > maxRounds {
		rounds = rounds[len(rounds)-maxRounds:]
	}

	fmt.Fprintln(w, "phases: B build  E encode  S broadcast  G gather  D decode  I integrate   (* = straggler)")
	var sent, full int64
	for _, cr := range rounds {
		renderRound(w, cr, width)
		sent += cr.BytesSent
		full += cr.BytesFullSend
	}
	if full > 0 {
		fmt.Fprintf(w, "total over %d rounds: sent %d B of %d B full-send baseline (saved %.1f%%)\n",
			len(rounds), sent, full, 100*float64(full-sent)/float64(full))
	}

	if chromePath != "" {
		data, err := json.MarshalIndent(chromeTrace(rounds), "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d rounds as Chrome trace events to %s\n", len(rounds), chromePath)
	}
	return nil
}

// readRounds parses JSONL input: ClusterRound lines are taken as-is;
// RoundDigest lines (no "nodes" array) are merged locally through a
// TraceAggregator, so the tool accepts concatenated scrapes of several
// node endpoints. Rounds come back in ascending order.
func readRounds(r io.Reader) ([]snap.ClusterRound, error) {
	var (
		merged  []snap.ClusterRound
		agg     = snap.NewTraceAggregator(0)
		digests = 0
		line    = 0
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		// A ClusterRound carries a "nodes" array; a RoundDigest does not.
		var probe struct {
			Nodes json.RawMessage `json:"nodes"`
		}
		if err := json.Unmarshal([]byte(text), &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		if probe.Nodes != nil {
			var cr snap.ClusterRound
			if err := json.Unmarshal([]byte(text), &cr); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			merged = append(merged, cr)
			continue
		}
		var d snap.RoundDigest
		if err := json.Unmarshal([]byte(text), &d); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		agg.Add(d)
		digests++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if digests > 0 {
		for _, round := range agg.Rounds() {
			if cr, ok := agg.Round(round); ok {
				merged = append(merged, cr)
			}
		}
	}
	return merged, nil
}

// phaseGlyphs maps pipeline phases to the single letters the timeline is
// drawn with, in pipeline order so later phases overwrite earlier ones on
// shared columns.
var phaseGlyphs = []struct {
	name  string
	glyph byte
}{
	{snap.SpanBuild, 'B'},
	{snap.SpanEncode, 'E'},
	{snap.SpanBroadcast, 'S'},
	{snap.SpanGather, 'G'},
	{snap.SpanDecode, 'D'},
	{snap.SpanIntegrate, 'I'},
}

// renderRound draws one merged round: a summary line, one timeline row
// per reporting node (all rows share the round's reference-clock time
// axis), missing members, and the cross-node critical path.
func renderRound(w io.Writer, cr snap.ClusterRound, width int) {
	if width < 16 {
		width = 16
	}
	span := cr.EndUnixNanos - cr.StartUnixNanos
	if span <= 0 {
		span = 1
	}
	fmt.Fprintf(w, "round %d  %v  nodes %d/%d",
		cr.Round, time.Duration(span).Round(time.Microsecond),
		len(cr.Nodes), len(cr.Nodes)+len(cr.Missing))
	if cr.Straggler >= 0 {
		fmt.Fprintf(w, "  straggler node %d (+%v)",
			cr.Straggler, time.Duration(cr.StragglerLagNanos).Round(time.Microsecond))
	}
	if cr.BytesFullSend > 0 {
		fmt.Fprintf(w, "  sent %d B of %d B full (saved %.1f%%)",
			cr.BytesSent, cr.BytesFullSend,
			100*float64(cr.BytesSaved())/float64(cr.BytesFullSend))
	}
	fmt.Fprintln(w)

	col := func(ns int64) int {
		c := int(int64(width) * (ns - cr.StartUnixNanos) / span)
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, nr := range cr.Nodes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, pg := range phaseGlyphs {
			p, ok := nr.Digest.Phase(pg.name)
			if !ok {
				continue
			}
			c0 := col(p.StartUnixNanos - nr.OffsetNanos)
			c1 := col(p.EndUnixNanos - nr.OffsetNanos)
			for c := c0; c <= c1; c++ {
				row[c] = pg.glyph
			}
		}
		marker := ' '
		if nr.Digest.Node == cr.Straggler {
			marker = '*'
		}
		fmt.Fprintf(w, " %cnode %-3d |%s|\n", marker, nr.Digest.Node, row)
	}
	for _, m := range cr.Missing {
		fmt.Fprintf(w, "  node %-3d (no digest this round)\n", m)
	}
	if len(cr.CriticalPath) > 0 {
		steps := make([]string, len(cr.CriticalPath))
		for i, s := range cr.CriticalPath {
			steps[i] = fmt.Sprintf("node%d:%s", s.Node, s.Span)
		}
		fmt.Fprintf(w, "  critical path: %s\n", strings.Join(steps, " -> "))
	}
}

// chromeEvent is one entry of the Chrome trace_event format (the JSON
// array flavor; see the trace-event spec). ts and dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the trace_event container object.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// chromeTrace converts merged rounds to Chrome trace events: one process
// per node (phases on thread 0, compute sub-spans on thread 1, received
// frames as instant events), plus a synthetic "cluster" process carrying
// the per-round envelope with the straggler verdict in its args.
func chromeTrace(rounds []snap.ClusterRound) chromeFile {
	const clusterPid = 9999 // synthetic pid for round envelopes
	var base int64
	for _, cr := range rounds {
		if cr.StartUnixNanos != 0 && (base == 0 || cr.StartUnixNanos < base) {
			base = cr.StartUnixNanos
		}
	}
	us := func(ns int64) float64 { return float64(ns-base) / 1e3 }

	var events []chromeEvent
	named := map[int]bool{}
	name := func(pid int, label string) {
		if !named[pid] {
			named[pid] = true
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": label},
			})
		}
	}
	name(clusterPid, "cluster")
	for _, cr := range rounds {
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("round %d", cr.Round), Cat: "round", Ph: "X",
			Ts: us(cr.StartUnixNanos), Dur: float64(cr.EndUnixNanos-cr.StartUnixNanos) / 1e3,
			Pid: clusterPid,
			Args: map[string]any{
				"straggler":       cr.Straggler,
				"straggler_lag_s": float64(cr.StragglerLagNanos) / 1e9,
				"completeness":    cr.Completeness,
				"bytes_sent":      cr.BytesSent,
				"bytes_full_send": cr.BytesFullSend,
			},
		})
		for _, nr := range cr.Nodes {
			d, off := nr.Digest, nr.OffsetNanos
			name(d.Node, fmt.Sprintf("node %d", d.Node))
			for _, p := range d.Phases {
				events = append(events, chromeEvent{
					Name: p.Name, Cat: "phase", Ph: "X",
					Ts: us(p.StartUnixNanos - off), Dur: float64(p.EndUnixNanos-p.StartUnixNanos) / 1e3,
					Pid: d.Node, Tid: 0,
					Args: map[string]any{"round": d.Round},
				})
			}
			for _, s := range d.Spans {
				events = append(events, chromeEvent{
					Name: s.Name, Cat: "span", Ph: "X",
					Ts: us(s.StartUnixNanos - off), Dur: float64(s.EndUnixNanos-s.StartUnixNanos) / 1e3,
					Pid: d.Node, Tid: 1,
					Args: map[string]any{"round": d.Round},
				})
			}
			for _, r := range d.Recvs {
				events = append(events, chromeEvent{
					Name: fmt.Sprintf("recv<-%d", r.From), Cat: "recv", Ph: "i", S: "t",
					Ts: us(r.RecvUnixNanos - off), Pid: d.Node, Tid: 0,
					Args: map[string]any{
						"round": d.Round, "from": r.From, "bytes": r.Bytes,
					},
				})
			}
		}
	}
	return chromeFile{TraceEvents: events}
}
