package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// runTracedCluster trains a real 5-node TCP cluster with tracing on and
// returns the nodes (still open; caller reads tracers before Close).
func runTracedCluster(t *testing.T, n, rounds int) []*snap.PeerNode {
	t.Helper()
	addrs := freePorts(t, n)
	topo := snap.CompleteTopology(n)
	rng := rand.New(rand.NewSource(2))
	ds := snap.SyntheticCredit(snap.CreditConfig{Samples: 1000}, rng)
	parts, err := ds.Partition(n, rng)
	if err != nil {
		t.Fatal(err)
	}

	nodes := make([]*snap.PeerNode, n)
	for i := range nodes {
		node, err := snap.NewPeerNode(snap.PeerConfig{
			ID:           i,
			Topology:     topo,
			Model:        snap.NewLinearSVM(ds.NumFeature),
			Data:         parts[i],
			Alpha:        0.1,
			Seed:         1,
			ListenAddr:   addrs[i],
			RoundTimeout: 5 * time.Second,
			TraceRounds:  rounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, pn := range nodes {
		neighbors := make(map[int]string)
		for _, j := range topo.Neighbors(i) {
			neighbors[j] = addrs[j]
		}
		wg.Add(1)
		go func(i int, pn *snap.PeerNode, neighbors map[int]string) {
			defer wg.Done()
			if errs[i] = pn.Connect(neighbors); errs[i] != nil {
				return
			}
			_, errs[i] = pn.Run(rounds)
		}(i, pn, neighbors)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return nodes
}

// TestSnaptraceSmoke is the end-to-end CLI check: a real 5-node traced
// cluster, merged like the coordinator would, served over HTTP, rendered
// live via -url, and exported as Chrome trace events.
func TestSnaptraceSmoke(t *testing.T) {
	const n, rounds = 5, 6
	nodes := runTracedCluster(t, n, rounds)

	agg := snap.NewTraceAggregator(0)
	agg.SetMembers([]int{0, 1, 2, 3, 4})
	for _, pn := range nodes {
		for _, d := range pn.Tracer().DigestsSince(0, rounds) {
			agg.Add(d)
		}
	}
	srv := httptest.NewServer(snap.ClusterTraceHandler(agg))
	defer srv.Close()

	chrome := filepath.Join(t.TempDir(), "chrome.json")
	var buf bytes.Buffer
	if err := run("", srv.URL, rounds, 64, chrome, &buf); err != nil {
		t.Fatalf("snaptrace run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"round 0", "node 0", "node 4", "saved", "critical path:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var ct chromeFile
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	phases, recvs := 0, 0
	for _, ev := range ct.TraceEvents {
		switch ev.Cat {
		case "phase":
			phases++
		case "recv":
			recvs++
		}
	}
	// 5 nodes x 6 rounds x 6 phases; every node hears from 4 neighbors.
	if want := n * rounds * 6; phases != want {
		t.Errorf("chrome export has %d phase events, want %d", phases, want)
	}
	if want := n * rounds * (n - 1); recvs != want {
		t.Errorf("chrome export has %d recv events, want %d", recvs, want)
	}
}

// TestSnaptraceMergesNodeDigests feeds the tool raw per-node digest JSONL
// (a concatenated scrape of several node /trace endpoints) and checks it
// merges them locally into complete cluster rounds.
func TestSnaptraceMergesNodeDigests(t *testing.T) {
	const n, rounds = 5, 4
	nodes := runTracedCluster(t, n, rounds)

	var lines bytes.Buffer
	enc := json.NewEncoder(&lines)
	for _, pn := range nodes {
		for _, d := range pn.Tracer().DigestsSince(0, rounds) {
			if err := enc.Encode(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	in := filepath.Join(t.TempDir(), "digests.jsonl")
	if err := os.WriteFile(in, lines.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := run(in, "", rounds, 48, "", &buf); err != nil {
		t.Fatalf("snaptrace run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "nodes 5/5") {
		t.Errorf("merged rounds are not complete (want \"nodes 5/5\"):\n%s", out)
	}
	if !strings.Contains(out, "total over 4 rounds") {
		t.Errorf("missing cumulative summary:\n%s", out)
	}
}

// TestRenderRoundMarksStraggler pins the timeline format on a synthetic
// round: the straggler row is starred, missing members are listed, and
// the phase glyphs appear.
func TestRenderRoundMarksStraggler(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC).UnixNano()
	ms := func(d int) int64 { return base + int64(d)*int64(time.Millisecond) }
	cr := snap.ClusterRound{
		Round:          3,
		StartUnixNanos: ms(0),
		EndUnixNanos:   ms(10),
		Straggler:      1,
		Completeness:   2.0 / 3.0,
		Missing:        []int{2},
		BytesSent:      100,
		BytesFullSend:  400,
		Nodes: []snap.NodeRound{
			{Digest: snap.RoundDigest{
				Node: 0, Round: 3, StartUnixNanos: ms(0), EndUnixNanos: ms(9),
				Phases: []snap.SpanDigest{
					{Name: snap.SpanBuild, StartUnixNanos: ms(0), EndUnixNanos: ms(1)},
					{Name: snap.SpanGather, StartUnixNanos: ms(1), EndUnixNanos: ms(8)},
				},
			}},
			{Digest: snap.RoundDigest{
				Node: 1, Round: 3, StartUnixNanos: ms(0), EndUnixNanos: ms(10),
				Phases: []snap.SpanDigest{
					{Name: snap.SpanBroadcast, StartUnixNanos: ms(4), EndUnixNanos: ms(9)},
				},
			}},
		},
	}
	var buf bytes.Buffer
	renderRound(&buf, cr, 40)
	out := buf.String()
	for _, want := range []string{"*node 1", " node 0", "(no digest this round)", "saved 75.0%", "B", "G", "S"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
