// Command snaplint runs the repo's project-specific analyzers:
//
//	lockguard — `// guarded by <mu>` fields accessed under their mutex,
//	            no mixed sync/atomic + plain field access
//	wiretag   — wire structs fully covered by explicit json/wire tags
//	obsname   — metric/event names are internal/obs constants, unique
//	floatdet  — deterministic float reductions in the numeric packages
//	allocfree — //snap:alloc-free functions contain no allocating
//	            constructs and call only alloc-free callees (via Facts)
//	bufown    — //snap:returns-borrowed results are not retained;
//	            consumed buffers are not used after hand-off
//	golife    — goroutines in the serving/transport planes are
//	            cancellable and not spawned in unbounded loops
//
// Two modes share the analyzers:
//
//	snaplint ./...                      standalone, loads via `go list`
//	go vet -vettool=$(which snaplint) ./...   driven by the build system
//
// The vettool mode speaks cmd/go's unitchecker protocol (-V=full,
// -flags, one JSON .cfg per compilation unit), so results are cached
// per package like any other vet run, and _test.go files are covered.
// Cross-package facts ride the protocol's .vetx files; the standalone
// mode propagates them in-process over `go list -deps` dependency
// order.
//
// Findings may be waived at a single site with
// `//snaplint:ignore <analyzer>[,<analyzer>] <reason>` on the same or
// the preceding line; the reason is mandatory.
//
// Exit codes: 0 no findings, 1 findings reported, 2 the tool itself
// failed (bad flags, a package failed to load or typecheck, an
// analyzer crashed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/snapml/snap/internal/analysis/allocfree"
	"github.com/snapml/snap/internal/analysis/bufown"
	"github.com/snapml/snap/internal/analysis/facts"
	"github.com/snapml/snap/internal/analysis/floatdet"
	"github.com/snapml/snap/internal/analysis/golife"
	"github.com/snapml/snap/internal/analysis/lint"
	"github.com/snapml/snap/internal/analysis/load"
	"github.com/snapml/snap/internal/analysis/lockguard"
	"github.com/snapml/snap/internal/analysis/obsname"
	"github.com/snapml/snap/internal/analysis/unit"
	"github.com/snapml/snap/internal/analysis/wiretag"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		lockguard.Analyzer,
		wiretag.Analyzer,
		obsname.Analyzer,
		floatdet.Analyzer,
		allocfree.Analyzer,
		bufown.Analyzer,
		golife.Analyzer,
	}
}

func main() {
	as := analyzers()
	if err := lint.Validate(as); err != nil {
		fmt.Fprintln(os.Stderr, "snaplint:", err)
		os.Exit(2)
	}

	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			if err := unit.PrintVersion(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "snaplint:", err)
				os.Exit(2)
			}
			return
		case a == "-flags" || a == "--flags":
			if err := unit.PrintFlags(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "snaplint:", err)
				os.Exit(2)
			}
			return
		}
	}

	// Unitchecker mode: exactly one *.cfg argument from `go vet`.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := unit.Run(args[0], as)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snaplint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	os.Exit(standalone(args, as, os.Stdout, os.Stderr))
}

// Usage prints the help text: the invocation forms and one line per
// registered analyzer. A golden test pins this output so the analyzer
// roster cannot drift from the documentation silently.
func Usage(w io.Writer, as []*lint.Analyzer) {
	fmt.Fprintf(w, "usage: snaplint [-tests=false] [-json] [packages]\n   or: go vet -vettool=<path to snaplint> [packages]\n\nAnalyzers:\n")
	for _, a := range as {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(w, "  %-10s %s\n", a.Name, doc)
	}
}

// A finding is one diagnostic in the -json output schema (and the
// sort key for deterministic text output).
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func standalone(args []string, as []*lint.Analyzer, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tests := fs.Bool("tests", true, "also analyze _test.go files (test variants)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Usage = func() { Usage(stderr, as) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, failures, err := load.Load(load.Config{Tests: *tests, Deps: true}, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "snaplint:", err)
		return 2
	}
	for _, f := range failures {
		fmt.Fprintf(stderr, "snaplint: cannot analyze %s\n", f)
	}

	store := facts.NewStore(as)
	var findings []finding
	broken := false
	for _, u := range units {
		// Facts-only units (dependencies, test-shadowed plain packages)
		// exist to feed facts to later units; their diagnostics are
		// discarded.
		factsOnly := u.FactsOnly
		ignores := lint.NewIgnoreIndex(u.Fset, u.Files)
		if !factsOnly {
			for _, d := range ignores.Bad {
				findings = append(findings, toFinding(u.Fset, "snaplint", d))
			}
		}
		for _, a := range as {
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
			}
			store.Install(pass)
			name := a.Name
			pass.Report = func(d lint.Diagnostic) {
				if factsOnly || ignores.Ignored(d.Pos, name) {
					return
				}
				findings = append(findings, toFinding(u.Fset, name, d))
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(stderr, "snaplint: %s: %s: %v\n", u.Pkg.Path(), a.Name, err)
				broken = true
			}
		}
	}

	// Deterministic order regardless of package iteration: by file,
	// line, column, analyzer, message.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{} // "[]", not "null"
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "snaplint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stderr, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}

	switch {
	case broken || len(failures) > 0:
		fmt.Fprintf(stderr, "snaplint: %d finding(s), %d package(s) failed to load\n", len(findings), len(failures))
		return 2
	case len(findings) > 0:
		fmt.Fprintf(stderr, "snaplint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func toFinding(fset *token.FileSet, analyzer string, d lint.Diagnostic) finding {
	p := fset.Position(d.Pos)
	return finding{File: p.Filename, Line: p.Line, Col: p.Column, Analyzer: analyzer, Message: d.Message}
}
