// Command snaplint runs the repo's project-specific analyzers:
//
//	lockguard — `// guarded by <mu>` fields accessed under their mutex,
//	            no mixed sync/atomic + plain field access
//	wiretag   — wire structs fully covered by explicit json/wire tags
//	obsname   — metric/event names are internal/obs constants, unique
//	floatdet  — deterministic float reductions in the numeric packages
//
// Two modes share the analyzers:
//
//	snaplint ./...                      standalone, loads via `go list`
//	go vet -vettool=$(which snaplint) ./...   driven by the build system
//
// The vettool mode speaks cmd/go's unitchecker protocol (-V=full,
// -flags, one JSON .cfg per compilation unit), so results are cached
// per package like any other vet run, and _test.go files are covered.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/snapml/snap/internal/analysis/floatdet"
	"github.com/snapml/snap/internal/analysis/lint"
	"github.com/snapml/snap/internal/analysis/load"
	"github.com/snapml/snap/internal/analysis/lockguard"
	"github.com/snapml/snap/internal/analysis/obsname"
	"github.com/snapml/snap/internal/analysis/unit"
	"github.com/snapml/snap/internal/analysis/wiretag"
)

func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		lockguard.Analyzer,
		wiretag.Analyzer,
		obsname.Analyzer,
		floatdet.Analyzer,
	}
}

func main() {
	as := analyzers()
	if err := lint.Validate(as); err != nil {
		fmt.Fprintln(os.Stderr, "snaplint:", err)
		os.Exit(2)
	}

	args := os.Args[1:]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			if err := unit.PrintVersion(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "snaplint:", err)
				os.Exit(2)
			}
			return
		case a == "-flags" || a == "--flags":
			if err := unit.PrintFlags(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "snaplint:", err)
				os.Exit(2)
			}
			return
		}
	}

	// Unitchecker mode: exactly one *.cfg argument from `go vet`.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		diags, err := unit.Run(args[0], as)
		if err != nil {
			fmt.Fprintln(os.Stderr, "snaplint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	os.Exit(standalone(args, as))
}

func standalone(args []string, as []*lint.Analyzer) int {
	fs := flag.NewFlagSet("snaplint", flag.ExitOnError)
	tests := fs.Bool("tests", true, "also analyze _test.go files (test variants)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: snaplint [-tests=false] [packages]\n   or: go vet -vettool=<path to snaplint> [packages]\n\nAnalyzers:\n")
		for _, a := range as {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	units, err := load.Load(load.Config{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snaplint:", err)
		return 2
	}

	found := 0
	for _, u := range units {
		for _, a := range as {
			pass := &lint.Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.Info,
			}
			name := a.Name
			pass.Report = func(d lint.Diagnostic) {
				found++
				fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", u.Fset.Position(d.Pos), d.Message, name)
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "snaplint: %s: %s: %v\n", u.Pkg.Path(), a.Name, err)
				return 2
			}
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "snaplint: %d finding(s)\n", found)
		return 1
	}
	return 0
}
