package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUsageGolden pins the help text byte-for-byte. Adding, renaming,
// or reordering an analyzer must show up here — the roster in the help
// output is documentation, and this keeps it from drifting silently.
func TestUsageGolden(t *testing.T) {
	const want = `usage: snaplint [-tests=false] [-json] [packages]
   or: go vet -vettool=<path to snaplint> [packages]

Analyzers:
  lockguard  check that fields annotated ` + "`// guarded by <mu>`" + ` are accessed under that mutex, and that no field mixes sync/atomic and plain access
  wiretag    check that every exported field of a wire struct (snap:wire marker, tagged sibling, or json-encoded) has an explicit json/wire tag
  obsname    check that metric/event names passed to internal/obs are named constants, and that declared names are unique
  floatdet   flag nondeterministic float reductions (map-order accumulation) and exact float equality in the numeric packages
  allocfree  //snap:alloc-free functions must not allocate and may only call alloc-free callees
  bufown     borrowed results are not retained, consumed buffers are not reused, borrowed params do not escape
  golife     goroutines in the serving planes must be cancellable and not spawned in unbounded loops
`
	var buf bytes.Buffer
	Usage(&buf, analyzers())
	if buf.String() != want {
		t.Errorf("usage output drifted:\n got:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// writeModule lays out a throwaway module exercising the standalone
// driver end to end: `dep` exports an annotated-clean function, an
// unannotated allocator, and a deliberate violation; `c` imports it;
// `clean` has no findings at all.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/tmp\n\ngo 1.22\n",
		"clean/clean.go": `package clean

// Add is trivially finding-free.
func Add(a, b int) int { return a + b }
`,
		"dep/dep.go": `package dep

// Fast is alloc-free and exports that as a fact.
//
//snap:alloc-free
func Fast(x []int) int {
	s := 0
	for _, v := range x {
		s += v
	}
	return s
}

// Plain allocates and says nothing about it (body unchecked).
func Plain() []int { return make([]int, 4) }

// Liar claims the contract and breaks it. When dep is loaded
// facts-only as a dependency, this violation must be discarded.
//
//snap:alloc-free
func Liar() []int { return make([]int, 1) }
`,
		"c/c.go": `package c

import "example.com/tmp/dep"

// Hot calls a dependency function whose alloc-free fact arrived over
// the facts-only unit: no finding.
//
//snap:alloc-free
func Hot(x []int) int { return dep.Fast(x) }

// Bad calls an unannotated dependency function: one finding here.
//
//snap:alloc-free
func Bad() []int { return dep.Plain() }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestStandaloneExitCodes(t *testing.T) {
	chdir(t, writeModule(t))
	as := analyzers()

	var stdout, stderr bytes.Buffer
	if code := standalone([]string{"./clean"}, as, &stdout, &stderr); code != 0 {
		t.Errorf("clean package: exit %d, want 0\nstderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := standalone([]string{"./c"}, as, &stdout, &stderr); code != 1 {
		t.Errorf("package with findings: exit %d, want 1\nstderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := standalone([]string{"./nonexistent"}, as, &stdout, &stderr); code != 2 {
		t.Errorf("unloadable pattern: exit %d, want 2\nstderr: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := standalone([]string{"-no-such-flag"}, as, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: snaplint") {
		t.Errorf("bad flag did not print usage:\n%s", stderr.String())
	}
}

// TestStandaloneDepFactsAndJSON drives the cross-package story: linting
// only ./c must pull dep's facts through a facts-only unit (so Hot is
// clean and Bad is flagged) while discarding dep's own diagnostics
// (Liar stays silent). The -json output must be a valid, deterministic
// array.
func TestStandaloneDepFactsAndJSON(t *testing.T) {
	chdir(t, writeModule(t))

	var stdout, stderr bytes.Buffer
	code := standalone([]string{"-json", "./c"}, analyzers(), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, stderr.String())
	}

	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want exactly 1 (Bad → dep.Plain):\n%s", len(findings), stdout.String())
	}
	f := findings[0]
	if f.Analyzer != "allocfree" || !strings.Contains(f.Message, "Plain") {
		t.Errorf("finding = %+v, want an allocfree report about dep.Plain", f)
	}
	if !strings.HasSuffix(f.File, "c.go") || f.Line == 0 || f.Col == 0 {
		t.Errorf("finding position = %s:%d:%d, want a real position in c.go", f.File, f.Line, f.Col)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "Fast") {
			t.Errorf("dep.Fast flagged — dependency facts were not propagated: %+v", f)
		}
		if strings.Contains(f.File, "dep.go") {
			t.Errorf("facts-only unit leaked a diagnostic: %+v", f)
		}
	}
}

// TestStandaloneJSONCleanIsEmptyArray pins the contract CI depends on:
// no findings still emits "[]", never "null".
func TestStandaloneJSONCleanIsEmptyArray(t *testing.T) {
	chdir(t, writeModule(t))
	var stdout, stderr bytes.Buffer
	if code := standalone([]string{"-json", "./clean"}, analyzers(), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}
