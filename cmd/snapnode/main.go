// Command snapnode runs one real SNAP edge server over TCP — the paper's
// testbed deployment mode. Start one process per edge server; each trains
// the shared model on its own data shard and exchanges selected parameters
// with its topology neighbors every round.
//
// The cluster layout is given by flags that must agree across all nodes:
// the node count, topology kind, shared seed, and the peer address list.
//
// Example 3-node cluster on one machine (paper's testbed setup):
//
//	snapnode -id 0 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	snapnode -id 1 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002 &
//	snapnode -id 2 -peers 127.0.0.1:7000,127.0.0.1:7001,127.0.0.1:7002
//
// Every node deterministically generates the same synthetic credit
// dataset from -data-seed and takes shard -id of it, so no data
// distribution step is needed for experimentation.
//
// # Elastic mode
//
// With -coordinator the static flags (-id, -peers, -topology) are ignored:
// the node joins the cluster through a snapcoord coordinator, which
// assigns its id, neighbors, and centrally optimized mixing weights, and
// reconfigures the whole cluster (with a re-optimized weight matrix) every
// time a node joins or leaves:
//
//	snapcoord -listen 127.0.0.1:7100 -min-members 3 &
//	snapnode -coordinator 127.0.0.1:7100 &
//	snapnode -coordinator 127.0.0.1:7100 &
//	snapnode -coordinator 127.0.0.1:7100 &
//	# ... later, join a fourth node mid-training:
//	snapnode -coordinator 127.0.0.1:7100
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"github.com/snapml/snap"
)

func main() {
	var (
		id       = flag.Int("id", -1, "this node's index (0-based)")
		peersArg = flag.String("peers", "", "comma-separated listen addresses for ALL nodes, index-aligned")
		topology = flag.String("topology", "complete", "neighbor graph: complete, ring, or random")
		degree   = flag.Float64("degree", 3, "average degree for -topology random")
		rounds   = flag.Int("rounds", 60, "training rounds")
		alpha    = flag.Float64("alpha", 0.1, "EXTRA step size")
		policy   = flag.String("policy", "snap", "transmission policy: snap, snap0, sno")
		seed     = flag.Int64("seed", 1, "shared seed for initial parameters and topology")
		dataSeed = flag.Int64("data-seed", 2, "shared seed for the synthetic dataset")
		samples  = flag.Int("samples", 12000, "total synthetic samples across the cluster")
		timeout  = flag.Duration("round-timeout", 5*time.Second, "per-round straggler timeout")

		connectTimeout = flag.Duration("connect-timeout", 10*time.Second, "cluster-formation timeout")
		refreshEvery   = flag.Int("refresh-every", 0, "broadcast full parameters every N rounds (0 = never); heals staleness on lossy links")
		restartEvery   = flag.Int("restart-every", 0, "restart the EXTRA recursion every N rounds (0 = never); bounds staleness bias")
		fullSendRound0 = flag.Bool("full-send-round0", false, "broadcast full parameters in round 0 (required for non-identical inits)")
		verbose        = flag.Bool("verbose", false, "log tolerated faults (failed sends, reconnects, refreshes)")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus text), /snapshot (JSON) and /trace on this address while training (e.g. 127.0.0.1:9090; empty = off)")
		eventsPath  = flag.String("events", "", "append round-lifecycle events as JSON lines to this file (\"-\" = stderr; empty = off)")
		pprofOn     = flag.Bool("pprof", true, "also mount /debug/pprof on -metrics-addr; disable on any address reachable beyond the operator (profiles expose memory contents)")
		traceRounds = flag.Int("trace-rounds", 0, "record per-round distributed traces in a ring of this many rounds, served at /trace and pushed to the coordinator in elastic mode (0 = off)")
		serveParams = flag.Bool("serve-params", true, "with -metrics-addr, also publish the model every round and serve the current snapshot at /params so snapserve gateways can follow this node live")

		coordinator = flag.String("coordinator", "", "coordinator control-plane address; enables elastic mode (-id/-peers/-topology are then ignored)")
		joinWait    = flag.Duration("join", 2*time.Minute, "elastic mode: how long to wait for admission and the founding quorum")
		listenAddr  = flag.String("listen", "127.0.0.1:0", "elastic mode: data-plane listen address")
		advertise   = flag.String("advertise", "", "elastic mode: data-plane address other members dial (default: the bound listen address)")
		shards      = flag.Int("shards", 8, "elastic mode: number of data shards; a node with id i trains shard i mod shards")
	)
	flag.Parse()

	if err := run(*id, *peersArg, *topology, *degree, *rounds, *alpha, *policy,
		*seed, *dataSeed, *samples, *timeout,
		faultOpts{
			ConnectTimeout: *connectTimeout,
			RefreshEvery:   *refreshEvery,
			RestartEvery:   *restartEvery,
			FullSendRound0: *fullSendRound0,
			Verbose:        *verbose,
			MetricsAddr:    *metricsAddr,
			EventsPath:     *eventsPath,
			Pprof:          *pprofOn,
			TraceRounds:    *traceRounds,
			ServeParams:    *serveParams,
			Coordinator:    *coordinator,
			JoinWait:       *joinWait,
			ListenAddr:     *listenAddr,
			Advertise:      *advertise,
			Shards:         *shards,
		}); err != nil {
		fmt.Fprintln(os.Stderr, "snapnode:", err)
		os.Exit(1)
	}
}

// faultOpts bundles the fault-tolerance and observability knobs so run's
// signature stays manageable.
type faultOpts struct {
	ConnectTimeout time.Duration
	RefreshEvery   int
	RestartEvery   int
	FullSendRound0 bool
	Verbose        bool
	MetricsAddr    string
	EventsPath     string
	Pprof          bool
	TraceRounds    int
	ServeParams    bool

	// Elastic mode (all unused unless Coordinator is set).
	Coordinator string
	JoinWait    time.Duration
	ListenAddr  string
	Advertise   string
	Shards      int
}

// parsePolicy maps the -policy flag to a SendPolicy.
func parsePolicy(name string) (snap.SendPolicy, error) {
	switch name {
	case "snap":
		return snap.SNAP, nil
	case "snap0":
		return snap.SNAP0, nil
	case "sno":
		return snap.SNO, nil
	default:
		return 0, fmt.Errorf("unknown -policy %q", name)
	}
}

// observability builds the metrics registry, event log, and observer from
// the flags (all nil when observability is off). The returned cleanup
// closes the event file and reports its error — a close failure on an
// O_APPEND log can mean dropped events, so callers must check it;
// serving over HTTP is the caller's job, since the node id may not be
// known yet.
func observability(fo faultOpts) (*snap.Observer, *snap.MetricsRegistry, *snap.EventLog, func() error, error) {
	cleanup := func() error { return nil }
	if fo.MetricsAddr == "" && fo.EventsPath == "" {
		return nil, nil, nil, cleanup, nil
	}
	reg := snap.NewMetricsRegistry()
	var eventLog *snap.EventLog
	if fo.EventsPath != "" {
		if fo.EventsPath == "-" {
			eventLog = snap.NewEventLog(os.Stderr)
		} else {
			f, err := os.OpenFile(fo.EventsPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, nil, cleanup, fmt.Errorf("open -events file: %w", err)
			}
			cleanup = f.Close
			eventLog = snap.NewEventLog(f)
		}
	}
	return snap.NewObserver(reg, eventLog), reg, eventLog, cleanup, nil
}

// paramFeed builds the per-round model publication feed when the node
// serves one (-metrics-addr set and -serve-params on). Nil otherwise.
func paramFeed(fo faultOpts) *snap.ParamFeed {
	if fo.MetricsAddr == "" || !fo.ServeParams {
		return nil
	}
	return snap.NewParamFeed()
}

// serveNodeObservability starts the HTTP observability endpoint for a
// built node: /metrics and /snapshot always, the node's own round-trace
// digests at /trace (404 until -trace-rounds enables tracing), the
// current model snapshot at /params (404 unless -serve-params), and
// /debug/pprof only while the operator keeps -pprof on. Returns the
// server's close function.
func serveNodeObservability(fo faultOpts, id int, reg *snap.MetricsRegistry,
	eventLog *snap.EventLog, node *snap.PeerNode, feed *snap.ParamFeed) (func() error, error) {
	var params = snap.ObserveConfig{
		Node:         id,
		Reg:          reg,
		Log:          eventLog,
		PprofEnabled: fo.Pprof,
		Trace:        snap.TraceHandler(node.Tracer()),
	}
	if feed != nil {
		params.Params = snap.ParamsHandler(feed)
	}
	srv, addr, err := snap.ServeObservabilityWith(fo.MetricsAddr, params)
	if err != nil {
		return nil, fmt.Errorf("start metrics server: %w", err)
	}
	fmt.Printf("node %d metrics on http://%s/metrics\n", id, addr)
	if fo.TraceRounds > 0 {
		fmt.Printf("node %d trace on http://%s/trace\n", id, addr)
	}
	if feed != nil {
		fmt.Printf("node %d model snapshots on http://%s/params\n", id, addr)
	}
	return srv.Close, nil
}

// closeAnd runs close when the surrounding function returns and records
// its error into *err unless an earlier error is already being returned.
// Deferred `x.Close()` calls silently drop failures; shutdown errors
// (unflushed event logs, listener teardown) must reach the exit status.
func closeAnd(err *error, what string, close func() error) {
	if cerr := close(); cerr != nil && *err == nil {
		*err = fmt.Errorf("%s: %w", what, cerr)
	}
}

func run(id int, peersArg, topology string, degree float64, rounds int,
	alpha float64, policyName string, seed, dataSeed int64, samples int,
	timeout time.Duration, fo faultOpts) (err error) {
	if fo.Coordinator != "" {
		return runElastic(rounds, alpha, policyName, seed, dataSeed, samples, timeout, fo)
	}
	peers := strings.Split(peersArg, ",")
	n := len(peers)
	if peersArg == "" || n < 2 {
		return fmt.Errorf("-peers must list at least two addresses")
	}
	if id < 0 || id >= n {
		return fmt.Errorf("-id %d out of range for %d peers", id, n)
	}

	var topo *snap.Topology
	switch topology {
	case "complete":
		topo = snap.CompleteTopology(n)
	case "ring":
		topo = snap.RingTopology(n)
	case "random":
		topo = snap.RandomTopology(n, degree, seed)
	default:
		return fmt.Errorf("unknown -topology %q", topology)
	}

	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}

	// Every node generates the same dataset and takes its own shard.
	rng := rand.New(rand.NewSource(dataSeed))
	ds := snap.SyntheticCredit(snap.CreditConfig{Samples: samples}, rng)
	train, test := ds.Split(0.85, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		return err
	}

	var logf func(format string, args ...any)
	if fo.Verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Observability: metrics registry + JSONL event log, served over HTTP
	// once the node (and therefore its tracer) exists.
	observer, reg, eventLog, cleanup, err := observability(fo)
	if err != nil {
		return err
	}
	defer closeAnd(&err, "close -events file", cleanup)

	model := snap.NewLinearSVM(ds.NumFeature)
	feed := paramFeed(fo)
	if feed != nil {
		feed.SetObserver(observer, id)
	}
	node, err := snap.NewPeerNode(snap.PeerConfig{
		ID:             id,
		Topology:       topo,
		Model:          model,
		Data:           parts[id],
		Alpha:          alpha,
		Policy:         policy,
		Seed:           seed,
		RefreshEvery:   fo.RefreshEvery,
		RestartEvery:   fo.RestartEvery,
		FullSendRound0: fo.FullSendRound0,
		ListenAddr:     peers[id],
		RoundTimeout:   timeout,
		ConnectTimeout: fo.ConnectTimeout,
		Logf:           logf,
		Obs:            observer,
		TraceRounds:    fo.TraceRounds,
		Feed:           feed,
	})
	if err != nil {
		return err
	}
	defer closeAnd(&err, "close node", node.Close)
	if fo.MetricsAddr != "" {
		closeSrv, err := serveNodeObservability(fo, id, reg, eventLog, node, feed)
		if err != nil {
			return err
		}
		defer closeAnd(&err, "close metrics server", closeSrv)
	}

	neighbors := make(map[int]string)
	for _, j := range topo.Neighbors(id) {
		neighbors[j] = peers[j]
	}
	fmt.Printf("node %d listening on %s, neighbors %v\n", id, node.Addr(), topo.Neighbors(id))
	if err := node.Connect(neighbors); err != nil {
		return err
	}
	fmt.Printf("node %d connected; training %d rounds\n", id, rounds)

	start := time.Now()
	trace, err := node.Run(rounds)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	localAcc := snap.Accuracy(model, node.Engine().Params(), test)
	lastLoss := 0.0
	if stat, ok := trace.Last(); ok {
		lastLoss = stat.Loss
	}
	fmt.Printf("node %d done in %v: local loss %.4f, accuracy %.4f, bytes sent %d\n",
		id, elapsed.Round(time.Millisecond), lastLoss, localAcc, node.BytesSent())
	if node.SendFailures() > 0 || node.Refreshes() > 0 {
		reconnects := 0
		for _, st := range node.LinkStats() {
			reconnects += st.Reconnects
		}
		fmt.Printf("node %d tolerated faults: %d failed broadcast(s), %d reconnect(s), %d full refresh(es)\n",
			id, node.SendFailures(), reconnects, node.Refreshes())
	}
	return nil
}

// runElastic joins the cluster through the coordinator: the node id,
// topology position, and (centrally re-optimized) mixing weights all come
// from the coordinator's epochs rather than from flags.
func runElastic(rounds int, alpha float64, policyName string,
	seed, dataSeed int64, samples int, timeout time.Duration, fo faultOpts) (err error) {
	policy, err := parsePolicy(policyName)
	if err != nil {
		return err
	}
	if fo.Shards <= 0 {
		return fmt.Errorf("-shards must be positive, got %d", fo.Shards)
	}

	// Every node generates the same dataset; the shard is picked by the
	// coordinator-assigned id once it is known.
	rng := rand.New(rand.NewSource(dataSeed))
	ds := snap.SyntheticCredit(snap.CreditConfig{Samples: samples}, rng)
	train, test := ds.Split(0.85, rng)
	parts, err := train.Partition(fo.Shards, rng)
	if err != nil {
		return err
	}

	var logf func(format string, args ...any)
	if fo.Verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	observer, reg, eventLog, cleanup, err := observability(fo)
	if err != nil {
		return err
	}
	defer closeAnd(&err, "close -events file", cleanup)

	model := snap.NewLinearSVM(ds.NumFeature)
	feed := paramFeed(fo)
	fmt.Printf("joining cluster via coordinator %s\n", fo.Coordinator)
	node, err := snap.NewPeerNode(snap.PeerConfig{
		Model:           model,
		DataForID:       func(id int) *snap.Dataset { return parts[id%fo.Shards] },
		Alpha:           alpha,
		Policy:          policy,
		Seed:            seed,
		RefreshEvery:    fo.RefreshEvery,
		RestartEvery:    fo.RestartEvery,
		ListenAddr:      fo.ListenAddr,
		CoordinatorAddr: fo.Coordinator,
		Advertise:       fo.Advertise,
		JoinWait:        fo.JoinWait,
		RoundTimeout:    timeout,
		ConnectTimeout:  fo.ConnectTimeout,
		Logf:            logf,
		Obs:             observer,
		TraceRounds:     fo.TraceRounds,
		Feed:            feed,
	})
	if err != nil {
		return err
	}
	defer closeAnd(&err, "close node", node.Close)
	id := node.Engine().ID()
	if feed != nil {
		// The id only exists after admission; publications start with the
		// first training round, so wiring the observer here is race-free.
		feed.SetObserver(observer, id)
	}
	fmt.Printf("node %d admitted (epoch %d), listening on %s; training to round %d\n",
		id, node.Epoch(), node.Addr(), rounds)

	if fo.MetricsAddr != "" {
		closeSrv, err := serveNodeObservability(fo, id, reg, eventLog, node, feed)
		if err != nil {
			return err
		}
		defer closeAnd(&err, "close metrics server", closeSrv)
	}

	start := time.Now()
	trace, err := node.Run(rounds)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	localAcc := snap.Accuracy(model, node.Engine().Params(), test)
	lastLoss := 0.0
	if stat, ok := trace.Last(); ok {
		lastLoss = stat.Loss
	}
	fmt.Printf("node %d done in %v: epoch %d, local loss %.4f, accuracy %.4f, bytes sent %d\n",
		id, elapsed.Round(time.Millisecond), node.Epoch(), lastLoss, localAcc, node.BytesSent())
	return nil
}
