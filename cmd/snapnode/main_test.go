package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestThreeNodeCluster drives the exact code path the CLI uses, with three
// in-process "processes" — the paper's testbed layout.
func TestThreeNodeCluster(t *testing.T) {
	addrs := freePorts(t, 3)
	peers := strings.Join(addrs, ",")

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = run(id, peers, "complete", 3, 15, 0.1, "snap",
				7, 8, 600, 5*time.Second, faultOpts{})
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"noPeers", func() error {
			return run(0, "", "complete", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"idOutOfRange", func() error {
			return run(5, "a:1,b:2", "complete", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"badTopology", func() error {
			return run(0, "a:1,b:2", "mesh", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"badPolicy", func() error {
			return run(0, "a:1,b:2", "complete", 3, 1, 0.1, "blast", 1, 2, 100, time.Second, faultOpts{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f(); err == nil {
				t.Error("invalid flags accepted")
			}
		})
	}
}

// TestElasticCluster drives the -coordinator code path: three in-process
// "snapnode" invocations found a cluster through an in-process
// coordinator, with ids, topology, and weights all coordinator-assigned.
func TestElasticCluster(t *testing.T) {
	coord, err := snap.NewCoordinator(snap.CoordinatorConfig{
		MinMembers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	fo := faultOpts{
		ConnectTimeout: 5 * time.Second,
		Coordinator:    coord.Addr(),
		JoinWait:       10 * time.Second,
		ListenAddr:     "127.0.0.1:0",
		Shards:         4,
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// id/-peers/-topology are ignored in elastic mode.
			errs[i] = run(-1, "", "", 0, 12, 0.1, "snap", 7, 8, 600, 2*time.Second, fo)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("elastic node %d: %v", i, err)
		}
	}
	if got := coord.Epoch(); got < 1 {
		t.Errorf("coordinator epoch = %d, want >= 1", got)
	}
}

func TestRunValidationElastic(t *testing.T) {
	cases := []struct {
		name string
		fo   faultOpts
	}{
		{"badPolicyElastic", faultOpts{Coordinator: "127.0.0.1:1", Shards: 4}},
		{"badShards", faultOpts{Coordinator: "127.0.0.1:1", Shards: 0}},
	}
	policy := map[string]string{"badPolicyElastic": "blast", "badShards": "snap"}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(-1, "", "", 0, 1, 0.1, policy[tc.name], 1, 2, 100, time.Second, tc.fo)
			if err == nil {
				t.Error("invalid elastic flags accepted")
			}
		})
	}
}
