package main

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return addrs
}

// TestThreeNodeCluster drives the exact code path the CLI uses, with three
// in-process "processes" — the paper's testbed layout.
func TestThreeNodeCluster(t *testing.T) {
	addrs := freePorts(t, 3)
	peers := strings.Join(addrs, ",")

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for id := 0; id < 3; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = run(id, peers, "complete", 3, 15, 0.1, "snap",
				7, 8, 600, 5*time.Second, faultOpts{})
		}(id)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", id, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func() error
	}{
		{"noPeers", func() error {
			return run(0, "", "complete", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"idOutOfRange", func() error {
			return run(5, "a:1,b:2", "complete", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"badTopology", func() error {
			return run(0, "a:1,b:2", "mesh", 3, 1, 0.1, "snap", 1, 2, 100, time.Second, faultOpts{})
		}},
		{"badPolicy", func() error {
			return run(0, "a:1,b:2", "complete", 3, 1, 0.1, "blast", 1, 2, 100, time.Second, faultOpts{})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.f(); err == nil {
				t.Error("invalid flags accepted")
			}
		})
	}
}
