package trace

import (
	"testing"
	"time"
)

func ts(n int64) time.Time { return time.Unix(0, n) }

func TestBlockRoundTrip(t *testing.T) {
	c := Context{TraceID: ID(7, 42), Node: 7, Round: 42, SendUnixNanos: 123456789}
	var buf [BlockBytes]byte
	PutBlock(buf[:], c)
	got, err := ParseBlock(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v, want %+v", got, c)
	}
	if _, err := ParseBlock(buf[:BlockBytes-1]); err == nil {
		t.Fatal("ParseBlock accepted a short block")
	}
}

func TestTraceIDUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for node := 0; node < 8; node++ {
		for round := 0; round < 8; round++ {
			id := ID(node, round)
			if seen[id] {
				t.Fatalf("duplicate trace id for node %d round %d", node, round)
			}
			seen[id] = true
		}
	}
}

func TestTracerDigest(t *testing.T) {
	tr := New(Config{Node: 3, Rounds: 4})
	tr.StartRound(5, ts(100))
	tr.Phase(5, PhaseBuild, ts(100), ts(110))
	tr.Phase(5, PhaseGather, ts(120), ts(150))
	tr.Span(5, SpanGrad, ts(101), ts(105))
	tr.Recv(5, 1, 64, Context{TraceID: ID(1, 5), Node: 1, Round: 5, SendUnixNanos: 118}, ts(130))
	tr.Sent(5, 2, 200, 1000, 10, 100)
	tr.EndRound(5, ts(160))

	d, ok := tr.Digest(5)
	if !ok {
		t.Fatal("Digest(5) missing")
	}
	if d.Node != 3 || d.Round != 5 || d.TraceID != ID(3, 5) {
		t.Fatalf("digest identity wrong: %+v", d)
	}
	if d.StartUnixNanos != 100 || d.EndUnixNanos != 160 {
		t.Fatalf("root span = [%d,%d], want [100,160]", d.StartUnixNanos, d.EndUnixNanos)
	}
	if len(d.Phases) != 2 {
		t.Fatalf("got %d phases, want 2", len(d.Phases))
	}
	if g, ok := d.Phase(SpanGather); !ok || g.StartUnixNanos != 120 || g.EndUnixNanos != 150 {
		t.Fatalf("gather phase = %+v ok=%v", g, ok)
	}
	if len(d.Spans) != 1 || d.Spans[0].Name != SpanGrad {
		t.Fatalf("spans = %+v", d.Spans)
	}
	if len(d.Recvs) != 1 || d.Recvs[0].From != 1 || d.Recvs[0].RecvUnixNanos != 130 {
		t.Fatalf("recvs = %+v", d.Recvs)
	}
	if d.BytesSent != 200 || d.BytesFullSend != 1000 || d.FramesSent != 2 {
		t.Fatalf("byte accounting wrong: %+v", d)
	}
	if d.ParamsSent != 10 || d.ParamsTotal != 100 {
		t.Fatalf("param accounting wrong: %+v", d)
	}
}

// TestTracerRingReuse: a round that laps the ring must fully reset the
// slot it lands in — nothing from the evicted round may leak through.
func TestTracerRingReuse(t *testing.T) {
	tr := New(Config{Node: 0, Rounds: 2})
	tr.StartRound(0, ts(10))
	tr.Recv(0, 1, 9, Context{}, ts(11))
	tr.Span(0, SpanGrad, ts(10), ts(12))
	tr.Sent(0, 1, 50, 500, 1, 10)
	tr.EndRound(0, ts(20))

	// Round 2 lands in round 0's slot.
	tr.StartRound(2, ts(100))
	tr.EndRound(2, ts(110))
	d, ok := tr.Digest(2)
	if !ok {
		t.Fatal("Digest(2) missing")
	}
	if len(d.Recvs) != 0 || len(d.Spans) != 0 || d.BytesSent != 0 || d.FramesSent != 0 {
		t.Fatalf("evicted round leaked into new slot: %+v", d)
	}
	if _, ok := tr.Digest(0); ok {
		t.Fatal("Digest(0) survived eviction")
	}
}

// TestTracerOutOfOrderRecv: a frame for round r+1 can arrive (on the
// transport read loop) before the round loop calls StartRound(r+1). The
// later StartRound must not wipe the recorded receive, and a stale write
// for an already-evicted round must be dropped, not resurrect the round.
func TestTracerOutOfOrderRecv(t *testing.T) {
	tr := New(Config{Node: 0, Rounds: 4})
	tr.Recv(3, 2, 77, Context{Node: 2, Round: 3, SendUnixNanos: 40}, ts(50))
	tr.StartRound(3, ts(60))
	tr.EndRound(3, ts(70))
	d, ok := tr.Digest(3)
	if !ok || len(d.Recvs) != 1 || d.Recvs[0].From != 2 {
		t.Fatalf("early recv lost: ok=%v digest=%+v", ok, d)
	}

	// Round 7 claims round 3's slot; a late round-3 write must be dropped.
	tr.StartRound(7, ts(100))
	tr.Recv(3, 1, 5, Context{}, ts(101))
	tr.EndRound(7, ts(110))
	d7, ok := tr.Digest(7)
	if !ok || len(d7.Recvs) != 0 {
		t.Fatalf("stale recv clobbered newer round: ok=%v digest=%+v", ok, d7)
	}
	if _, ok := tr.Digest(3); ok {
		t.Fatal("stale write resurrected an evicted round")
	}
}

func TestTracerCapacityDrops(t *testing.T) {
	tr := New(Config{Node: 0, Rounds: 2, Recvs: 1, Spans: 1})
	tr.StartRound(0, ts(1))
	tr.Recv(0, 1, 1, Context{}, ts(2))
	tr.Recv(0, 2, 1, Context{}, ts(3))
	tr.Span(0, SpanGrad, ts(1), ts(2))
	tr.Span(0, SpanMix, ts(2), ts(3))
	tr.EndRound(0, ts(4))
	d, _ := tr.Digest(0)
	if len(d.Recvs) != 1 || d.DroppedRecvs != 1 {
		t.Fatalf("recvs=%d dropped=%d, want 1/1", len(d.Recvs), d.DroppedRecvs)
	}
	if len(d.Spans) != 1 || d.DroppedSpans != 1 {
		t.Fatalf("spans=%d dropped=%d, want 1/1", len(d.Spans), d.DroppedSpans)
	}
}

func TestDigestsSince(t *testing.T) {
	tr := New(Config{Node: 0, Rounds: 8})
	for r := 0; r < 5; r++ {
		tr.StartRound(r, ts(int64(r*10)))
		if r != 3 { // round 3 never completes
			tr.EndRound(r, ts(int64(r*10+5)))
		}
	}
	ds := tr.DigestsSince(1, 100)
	want := []int{1, 2, 4}
	if len(ds) != len(want) {
		t.Fatalf("got %d digests, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.Round != want[i] {
			t.Fatalf("digest %d is round %d, want %d", i, d.Round, want[i])
		}
	}
	if got := tr.DigestsSince(0, 2); len(got) != 2 || got[0].Round != 0 || got[1].Round != 1 {
		t.Fatalf("max cap wrong: %+v", got)
	}
}

// TestNilTracerSafe: every method must be a no-op on a nil tracer, so
// call sites never need nil checks.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Node() != -1 {
		t.Fatal("nil tracer node != -1")
	}
	tr.StartRound(0, ts(1))
	tr.EndRound(0, ts(2))
	tr.Phase(0, PhaseBuild, ts(1), ts(2))
	tr.Span(0, SpanGrad, ts(1), ts(2))
	tr.Recv(0, 1, 1, Context{}, ts(1))
	tr.Sent(0, 1, 1, 1, 1, 1)
	if _, ok := tr.Digest(0); ok {
		t.Fatal("nil tracer returned a digest")
	}
	if ds := tr.DigestsSince(0, 10); ds != nil {
		t.Fatal("nil tracer returned digests")
	}
}

// TestTracerRoundAllocFree is the tracing half of the repo's
// zero-allocation round budget: once constructed, recording a full
// steady-state round (start, all phases, engine sub-spans, neighbor
// recvs, send accounting, end) must not allocate.
func TestTracerRoundAllocFree(t *testing.T) {
	tr := New(Config{Node: 1, Rounds: 16})
	now := time.Now()
	ctx := Context{TraceID: ID(2, 0), Node: 2, Round: 0, SendUnixNanos: now.UnixNano()}
	round := 0
	iterate := func() {
		tr.StartRound(round, now)
		tr.Phase(round, PhaseBuild, now, now)
		tr.Phase(round, PhaseEncode, now, now)
		tr.Phase(round, PhaseBroadcast, now, now)
		tr.Span(round, SpanGrad, now, now)
		tr.Span(round, SpanMix, now, now)
		for from := 0; from < 4; from++ {
			tr.Recv(round, from, 128, ctx, now)
		}
		tr.Phase(round, PhaseGather, now, now)
		tr.Phase(round, PhaseDecode, now, now)
		tr.Phase(round, PhaseIntegrate, now, now)
		tr.Sent(round, 4, 512, 4096, 16, 256)
		tr.EndRound(round, now)
		round++
	}
	for i := 0; i < 20; i++ {
		iterate()
	}
	if avg := testing.AllocsPerRun(100, iterate); avg != 0 {
		t.Errorf("steady-state traced round allocated %v times per run, want 0", avg)
	}
}
