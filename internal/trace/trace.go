// Package trace gives a SNAP cluster causal, cross-node visibility into
// its synchronous rounds. Each node runs a Tracer: every training round
// opens a root span with per-phase child spans
// (build/encode/broadcast/gather/decode/integrate plus the engine's
// grad/mix sub-spans), and a compact trace context — trace id, sender
// node, round, send timestamp — rides on every transport frame, so a
// receiver can link its gather wait to the specific remote send that
// satisfied it. Completed rounds are exported as RoundDigests (pushed to
// the coordinator over the control plane, or scraped over HTTP), where an
// Aggregator merges them into a cluster-wide per-round timeline with
// NTP-style clock-offset correction, straggler attribution, and
// bytes-saved-vs-full-send accounting.
//
// The Tracer is hot-path safe: all per-round storage (one ring of round
// slots, each with a fixed phase array and preallocated span/recv
// capacity) is allocated at construction, so recording a steady-state
// round allocates nothing. All methods are safe on a nil *Tracer, which
// disables tracing, and safe for concurrent use (the transport's read
// loops record receive observations while the round loop records phases).
package trace

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// BlockBytes is the size of the wire trace block carried (optionally) by
// every transport frame: [trace id u64][send unix-nanos i64][node
// u32][round u32], big-endian like the rest of the frame header.
const BlockBytes = 24

// Context is the trace context that propagates on the wire with each
// frame: enough for the receiver to attribute the frame to the sender's
// round span and to measure one-way latency against its own clock.
type Context struct {
	// TraceID identifies the sender's round span (see ID).
	TraceID uint64
	// Node is the sending node's id.
	Node int
	// Round is the round the frame belongs to.
	Round int
	// SendUnixNanos is the sender's clock at the moment of the send, in
	// Unix nanoseconds.
	SendUnixNanos int64
}

// ID derives the deterministic trace id of one node's round span. Ids
// are globally unique within a training run without coordination: node
// in the high 32 bits, round in the low.
func ID(node, round int) uint64 {
	return uint64(uint32(node))<<32 | uint64(uint32(round))
}

// PutBlock serializes c into dst, which must hold at least BlockBytes.
func PutBlock(dst []byte, c Context) {
	_ = dst[BlockBytes-1]
	binary.BigEndian.PutUint64(dst[0:8], c.TraceID)
	binary.BigEndian.PutUint64(dst[8:16], uint64(c.SendUnixNanos))
	binary.BigEndian.PutUint32(dst[16:20], uint32(c.Node))
	binary.BigEndian.PutUint32(dst[20:24], uint32(c.Round))
}

// ParseBlock decodes a wire trace block. Input shorter than BlockBytes
// is an error, never a panic — the bytes come from remote peers.
func ParseBlock(b []byte) (Context, error) {
	if len(b) < BlockBytes {
		return Context{}, fmt.Errorf("trace: block of %d bytes, need %d", len(b), BlockBytes)
	}
	return Context{
		TraceID:       binary.BigEndian.Uint64(b[0:8]),
		SendUnixNanos: int64(binary.BigEndian.Uint64(b[8:16])),
		Node:          int(int32(binary.BigEndian.Uint32(b[16:20]))),
		Round:         int(int32(binary.BigEndian.Uint32(b[20:24]))),
	}, nil
}

// Config sizes a Tracer. Zero values select the documented defaults.
type Config struct {
	// Node is this tracer's node id (stamped into every span and digest).
	Node int
	// Rounds is the ring capacity: how many recent rounds are retained
	// (default 128). A digest must be exported (heartbeat push or HTTP
	// scrape) before the ring laps its round, or it is lost.
	Rounds int
	// Recvs caps the receive observations recorded per round (default 32
	// — more than any reasonable topology degree). Excess is counted, not
	// stored.
	Recvs int
	// Spans caps the extra (non-phase) spans per round (default 16: a
	// pipelined round records grad, mix, overlap, and one frame_decode
	// per neighbor, so the default covers degree ≤ 13). Excess is
	// counted, not stored.
	Spans int
}

func (cfg Config) withDefaults() Config {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 128
	}
	if cfg.Recvs <= 0 {
		cfg.Recvs = 32
	}
	if cfg.Spans <= 0 {
		cfg.Spans = 16
	}
	return cfg
}

// phaseTimes is one fixed phase slot (zero start means "not recorded").
type phaseTimes struct {
	start, end int64 // unix nanos
}

// spanRec is one extra (non-phase) span.
type spanRec struct {
	name       string
	start, end int64 // unix nanos
}

// roundSlot is the preallocated per-round storage. Slots are recycled
// ring-style: round r lives in slot r % len(ring) until round
// r + len(ring) claims it.
type roundSlot struct {
	used       bool
	round      int
	start, end int64 // root span, unix nanos; zero = unset
	phases     [NumPhases]phaseTimes
	spans      []spanRec    // len grows to cap, never beyond
	recvs      []RecvDigest // len grows to cap, never beyond

	framesSent              int
	bytesSent, bytesFull    int64
	paramsSent, paramsTotal int

	droppedSpans, droppedRecvs int
}

// Tracer records one node's round spans into a fixed ring. All methods
// are nil-safe and mutex-serialized; the steady-state recording path
// (StartRound, Phase, Span, Recv, Sent, EndRound) performs no
// allocations.
type Tracer struct {
	cfg  Config
	mu   sync.Mutex
	ring []roundSlot // guarded by mu
}

// New builds a tracer with all per-round storage preallocated.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	t := &Tracer{cfg: cfg, ring: make([]roundSlot, cfg.Rounds)}
	for i := range t.ring {
		t.ring[i].spans = make([]spanRec, 0, cfg.Spans)
		t.ring[i].recvs = make([]RecvDigest, 0, cfg.Recvs)
	}
	return t
}

// Enabled reports whether tracing is on (false for a nil tracer), so
// callers can skip work that only feeds the tracer.
func (t *Tracer) Enabled() bool { return t != nil }

// Node returns the tracer's node id.
func (t *Tracer) Node() int {
	if t == nil {
		return -1
	}
	return t.cfg.Node
}

// slotFor returns the slot for round, resetting it if it currently holds
// an older round. A slot holding a *newer* round is left alone and nil
// is returned: a stale late frame must not clobber live data. Caller
// holds t.mu.
//
//snap:alloc-free
func (t *Tracer) slotFor(round int) *roundSlot {
	if round < 0 {
		return nil
	}
	s := &t.ring[round%len(t.ring)]
	if s.used {
		if s.round == round {
			return s
		}
		if s.round > round {
			return nil
		}
	}
	// Claim (or reclaim) the slot for this round. Receive observations
	// can arrive before the local loop starts the round — whichever
	// writer touches the slot first resets it; the others find round
	// already matching and append.
	s.used = true
	s.round = round
	s.start, s.end = 0, 0
	s.phases = [NumPhases]phaseTimes{}
	s.spans = s.spans[:0]
	s.recvs = s.recvs[:0]
	s.framesSent = 0
	s.bytesSent, s.bytesFull = 0, 0
	s.paramsSent, s.paramsTotal = 0, 0
	s.droppedSpans, s.droppedRecvs = 0, 0
	return s
}

// StartRound opens the round's root span at time `at`.
func (t *Tracer) StartRound(round int, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		s.start = at.UnixNano()
	}
	t.mu.Unlock()
}

// EndRound closes the round's root span at time `at`. A round digest
// becomes exportable (DigestsSince) once its root span is closed.
func (t *Tracer) EndRound(round int, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		s.end = at.UnixNano()
	}
	t.mu.Unlock()
}

// Phase records one fixed pipeline phase of the round.
func (t *Tracer) Phase(round int, p PhaseID, start, end time.Time) {
	if t == nil || p < 0 || p >= NumPhases {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		s.phases[p] = phaseTimes{start: start.UnixNano(), end: end.UnixNano()}
	}
	t.mu.Unlock()
}

// Span records an extra child span (e.g. the engine's grad/mix
// sub-spans). name must be a constant from names.go (enforced by the
// obsname analyzer). Spans beyond the preallocated capacity are counted
// as dropped, never stored.
//
//snap:alloc-free
func (t *Tracer) Span(round int, name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		if len(s.spans) < cap(s.spans) {
			s.spans = append(s.spans, spanRec{name: name, start: start.UnixNano(), end: end.UnixNano()})
		} else {
			s.droppedSpans++
		}
	}
	t.mu.Unlock()
}

// Recv records the arrival of a traced frame: the sender's wire context
// plus the local receive time `at`. Called from transport read loops.
func (t *Tracer) Recv(round, from, bytes int, ctx Context, at time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		if len(s.recvs) < cap(s.recvs) {
			s.recvs = append(s.recvs, RecvDigest{
				From:          from,
				Bytes:         bytes,
				TraceID:       ctx.TraceID,
				SendUnixNanos: ctx.SendUnixNanos,
				RecvUnixNanos: at.UnixNano(),
			})
		} else {
			s.droppedRecvs++
		}
	}
	t.mu.Unlock()
}

// Sent records the round's send-side accounting: frames actually
// written, payload bytes on the wire, the bytes a full-parameter send
// would have cost (the paper's baseline), and the selected/total
// parameter counts.
func (t *Tracer) Sent(round, frames int, bytes, fullBytes int64, paramsSent, paramsTotal int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if s := t.slotFor(round); s != nil {
		s.framesSent = frames
		s.bytesSent = bytes
		s.bytesFull = fullBytes
		s.paramsSent = paramsSent
		s.paramsTotal = paramsTotal
	}
	t.mu.Unlock()
}

// Digest snapshots one round (completed or not); ok is false when the
// ring no longer (or never) holds it. Allocates; not for the hot path.
func (t *Tracer) Digest(round int) (RoundDigest, bool) {
	if t == nil || round < 0 {
		return RoundDigest{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.ring[round%len(t.ring)]
	if !s.used || s.round != round {
		return RoundDigest{}, false
	}
	return t.digestLocked(s), true
}

// DigestsSince returns digests of completed rounds (root span closed)
// with round >= min, in ascending round order, at most max entries.
// Allocates; used by the heartbeat push and the HTTP scrape path.
func (t *Tracer) DigestsSince(min, max int) []RoundDigest {
	if t == nil || max <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []RoundDigest
	for i := range t.ring {
		s := &t.ring[i]
		if s.used && s.end != 0 && s.round >= min {
			out = append(out, t.digestLocked(s))
		}
	}
	sortDigests(out)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// digestLocked snapshots one slot. Caller holds t.mu.
func (t *Tracer) digestLocked(s *roundSlot) RoundDigest {
	d := RoundDigest{
		Node:           t.cfg.Node,
		Round:          s.round,
		TraceID:        ID(t.cfg.Node, s.round),
		StartUnixNanos: s.start,
		EndUnixNanos:   s.end,
		FramesSent:     s.framesSent,
		BytesSent:      s.bytesSent,
		BytesFullSend:  s.bytesFull,
		ParamsSent:     s.paramsSent,
		ParamsTotal:    s.paramsTotal,
		DroppedSpans:   s.droppedSpans,
		DroppedRecvs:   s.droppedRecvs,
	}
	for p := PhaseID(0); p < NumPhases; p++ {
		ph := s.phases[p]
		if ph.start == 0 {
			continue
		}
		d.Phases = append(d.Phases, SpanDigest{Name: p.Name(), StartUnixNanos: ph.start, EndUnixNanos: ph.end})
	}
	for _, sp := range s.spans {
		d.Spans = append(d.Spans, SpanDigest{Name: sp.name, StartUnixNanos: sp.start, EndUnixNanos: sp.end})
	}
	if len(s.recvs) > 0 {
		d.Recvs = append([]RecvDigest(nil), s.recvs...)
	}
	return d
}

// sortDigests orders digests by ascending round (insertion sort — the
// slices here are a handful of entries).
func sortDigests(ds []RoundDigest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j-1].Round > ds[j].Round; j-- {
			ds[j-1], ds[j] = ds[j], ds[j-1]
		}
	}
}
