package trace

import (
	"testing"
	"time"
)

// skewedNode simulates a node whose clock differs from the reference
// (coordinator) clock by a fixed offset and whose link to the
// coordinator has asymmetric one-way delays.
type skewedNode struct {
	id     int
	offset time.Duration // node clock = reference clock + offset
	up     time.Duration // coordinator -> node one-way delay
	down   time.Duration // node -> coordinator one-way delay
}

func (n skewedNode) local(ref time.Duration) int64 { return int64(ref + n.offset) }

// probe simulates one NTP exchange started at reference time ref and
// returns the four timestamps as the coordinator and node would observe
// them on their own clocks.
func (n skewedNode) probe(ref time.Duration) (t0, t1, t2, t3 int64) {
	t0 = int64(ref)
	t1 = n.local(ref + n.up)
	t2 = n.local(ref + n.up) // instant echo
	t3 = int64(ref + n.up + n.down)
	return
}

// TestClockOffsetEstimation: ±500ms skew with asymmetric link delay
// (2ms up, 10ms down) must be recovered to within the delay asymmetry
// bound (|error| <= (down-up)/2 = 4ms), three orders of magnitude below
// the skew.
func TestClockOffsetEstimation(t *testing.T) {
	nodes := []skewedNode{
		{id: 0, offset: 500 * time.Millisecond, up: 2 * time.Millisecond, down: 10 * time.Millisecond},
		{id: 1, offset: -500 * time.Millisecond, up: 10 * time.Millisecond, down: 2 * time.Millisecond},
		{id: 2, offset: 0, up: 5 * time.Millisecond, down: 5 * time.Millisecond},
	}
	a := NewAggregator(0)
	for _, n := range nodes {
		for i := 0; i < 3; i++ {
			ref := time.Duration(i) * time.Second
			t0, t1, t2, t3 := n.probe(ref)
			a.ObserveClock(n.id, t0, t1, t2, t3)
		}
	}
	for _, n := range nodes {
		est := a.Offset(n.id)
		if est.Samples == 0 {
			t.Fatalf("node %d: no offset samples", n.id)
		}
		errNanos := est.OffsetNanos - int64(n.offset)
		if errNanos < 0 {
			errNanos = -errNanos
		}
		bound := int64((n.down - n.up) / 2)
		if bound < 0 {
			bound = -bound
		}
		if errNanos > bound+int64(time.Millisecond) {
			t.Fatalf("node %d: offset error %v exceeds asymmetry bound %v",
				n.id, time.Duration(errNanos), time.Duration(bound))
		}
	}
}

// TestClockOffsetRejectsSlowProbe: a probe with a huge round trip must
// not replace an estimate from a fast probe.
func TestClockOffsetRejectsSlowProbe(t *testing.T) {
	a := NewAggregator(0)
	a.ObserveClock(0, 0, 1e6, 1e6, 2e6) // 2ms RTT, offset ~0
	a.ObserveClock(0, 0, 5e9, 5e9, 1e9) // 1s RTT (say, a GC pause) carrying garbage offset
	if est := a.Offset(0); est.OffsetNanos > int64(5*time.Millisecond) {
		t.Fatalf("slow probe replaced good offset: %+v", est)
	}
	if est := a.Offset(0); est.Samples != 2 {
		t.Fatalf("samples = %d, want 2", est.Samples)
	}
}

// digestFor builds a minimal round digest on a skewed node's clock:
// the node starts its round at reference time start, runs a gather that
// sees one frame from each listed arrival, and ends at reference end.
type arrival struct {
	from int
	at   time.Duration // reference-clock arrival time
}

func digestFor(n skewedNode, round int, start, end time.Duration, gatherStart time.Duration, arrivals []arrival) RoundDigest {
	d := RoundDigest{
		Node:           n.id,
		Round:          round,
		TraceID:        ID(n.id, round),
		StartUnixNanos: n.local(start),
		EndUnixNanos:   n.local(end),
	}
	d.Phases = append(d.Phases, SpanDigest{Name: SpanGather, StartUnixNanos: n.local(gatherStart), EndUnixNanos: n.local(end)})
	for _, ar := range arrivals {
		d.Recvs = append(d.Recvs, RecvDigest{From: ar.from, Bytes: 100, RecvUnixNanos: n.local(ar.at)})
	}
	return d
}

// TestMergeReconstructsOrderingUnderSkew: with ±500ms clock skew the raw
// timestamps order the rounds nonsensically; after offset correction the
// merged view must recover the true reference-time ordering
// (node2 started first, node1 ended last) and finger node 1 — whose
// frames arrived last everywhere — as the straggler.
func TestMergeReconstructsOrderingUnderSkew(t *testing.T) {
	nodes := []skewedNode{
		{id: 0, offset: 500 * time.Millisecond, up: 2 * time.Millisecond, down: 2 * time.Millisecond},
		{id: 1, offset: -500 * time.Millisecond, up: 2 * time.Millisecond, down: 2 * time.Millisecond},
		{id: 2, offset: 0, up: 2 * time.Millisecond, down: 2 * time.Millisecond},
	}
	a := NewAggregator(0)
	a.SetMembers([]int{0, 1, 2})
	for _, n := range nodes {
		t0, t1, t2, t3 := n.probe(0)
		a.ObserveClock(n.id, t0, t1, t2, t3)
	}

	// True reference-time story for round 4: node 2 starts at 10ms,
	// node 0 at 12ms, node 1 at 14ms. Node 1 is slow: its frames land at
	// 80ms while everyone else's land by 30ms, so rounds end at ~85ms on
	// nodes 0/2 and node 1 itself ends last at 90ms.
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	a.Add(digestFor(nodes[2], 4, ms(10), ms(85), ms(20), []arrival{{0, ms(28)}, {1, ms(80)}}))
	a.Add(digestFor(nodes[0], 4, ms(12), ms(85), ms(20), []arrival{{2, ms(30)}, {1, ms(80)}}))
	a.Add(digestFor(nodes[1], 4, ms(14), ms(90), ms(22), []arrival{{0, ms(28)}, {2, ms(30)}}))

	cr, ok := a.Round(4)
	if !ok {
		t.Fatal("merged round missing")
	}
	if cr.Completeness != 1 || len(cr.Missing) != 0 {
		t.Fatalf("completeness=%v missing=%v, want 1/none", cr.Completeness, cr.Missing)
	}

	// Reference-time ordering: starts must come back as node2 < node0 < node1.
	adjStart := map[int]int64{}
	for _, nr := range cr.Nodes {
		adjStart[nr.Digest.Node] = nr.Digest.StartUnixNanos - nr.OffsetNanos
	}
	if !(adjStart[2] < adjStart[0] && adjStart[0] < adjStart[1]) {
		t.Fatalf("adjusted start ordering wrong: %v", adjStart)
	}
	// Raw timestamps get it wrong (node1's -500ms skew makes it look earliest)
	// — this is what the correction exists to fix.
	raw1 := nodes[1].local(ms(14))
	raw2 := nodes[2].local(ms(10))
	if raw1 > raw2 {
		t.Fatal("test premise broken: raw clocks should misorder the rounds")
	}

	if cr.Straggler != 1 {
		t.Fatalf("straggler = %d, want 1 (blames: %+v)", cr.Straggler, cr.Blames)
	}
	// Node 1 delayed both receivers by ~50ms each.
	if cr.StragglerLagNanos < int64(80*time.Millisecond) {
		t.Fatalf("straggler lag = %v, want ~100ms total", time.Duration(cr.StragglerLagNanos))
	}
	if cr.StartUnixNanos > cr.EndUnixNanos {
		t.Fatalf("merged round interval inverted: [%d,%d]", cr.StartUnixNanos, cr.EndUnixNanos)
	}
	// Span must be ~80ms in reference time, not polluted by the ±500ms skew.
	if dur := cr.EndUnixNanos - cr.StartUnixNanos; dur > int64(200*time.Millisecond) {
		t.Fatalf("merged round duration %v is skew-polluted", time.Duration(dur))
	}
}

// TestMergeToleratesSilentNode: a member that never reports must show up
// as missing with reduced completeness — and the merge must still
// produce a straggler verdict from the nodes that did report. No hang,
// no block.
func TestMergeToleratesSilentNode(t *testing.T) {
	a := NewAggregator(0)
	a.SetMembers([]int{0, 1, 2, 3})
	n0 := skewedNode{id: 0}
	n1 := skewedNode{id: 1}
	n2 := skewedNode{id: 2}
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	a.Add(digestFor(n0, 1, ms(0), ms(50), ms(10), []arrival{{1, ms(20)}, {2, ms(45)}}))
	a.Add(digestFor(n1, 1, ms(0), ms(50), ms(10), []arrival{{0, ms(20)}, {2, ms(45)}}))
	a.Add(digestFor(n2, 1, ms(0), ms(30), ms(10), []arrival{{0, ms(20)}, {1, ms(22)}}))

	cr, ok := a.Round(1)
	if !ok {
		t.Fatal("merge blocked on silent node")
	}
	if cr.Completeness != 0.75 {
		t.Fatalf("completeness = %v, want 0.75", cr.Completeness)
	}
	if len(cr.Missing) != 1 || cr.Missing[0] != 3 {
		t.Fatalf("missing = %v, want [3]", cr.Missing)
	}
	if cr.Straggler != 2 {
		t.Fatalf("straggler = %d, want 2", cr.Straggler)
	}
}

func TestAggregatorBytesAccounting(t *testing.T) {
	a := NewAggregator(4)
	a.Add(RoundDigest{Node: 0, Round: 0, EndUnixNanos: 1, BytesSent: 100, BytesFullSend: 1000})
	a.Add(RoundDigest{Node: 1, Round: 0, EndUnixNanos: 1, BytesSent: 50, BytesFullSend: 1000})
	// Retransmit of node 0's digest must replace, not double count.
	a.Add(RoundDigest{Node: 0, Round: 0, EndUnixNanos: 1, BytesSent: 100, BytesFullSend: 1000})
	sent, full := a.CumulativeBytes()
	if sent != 150 || full != 2000 {
		t.Fatalf("cumulative = %d/%d, want 150/2000", sent, full)
	}
	cr, _ := a.Round(0)
	if cr.BytesSent != 150 || cr.BytesFullSend != 2000 || cr.BytesSaved() != 1850 {
		t.Fatalf("round bytes = %+v", cr)
	}

	// Retention: round 10 with keep=4 evicts round 0; a late round-0 add
	// is refused but cumulative counters keep the evicted contribution.
	a.Add(RoundDigest{Node: 0, Round: 10, EndUnixNanos: 1, BytesSent: 1, BytesFullSend: 2})
	if _, ok := a.Round(0); ok {
		t.Fatal("round 0 survived retention")
	}
	if a.Add(RoundDigest{Node: 2, Round: 0, EndUnixNanos: 1}) {
		t.Fatal("stale add accepted")
	}
	sent, full = a.CumulativeBytes()
	if sent != 151 || full != 2002 {
		t.Fatalf("cumulative after eviction = %d/%d, want 151/2002", sent, full)
	}
}

func TestNilAggregatorSafe(t *testing.T) {
	var a *Aggregator
	a.ObserveClock(0, 0, 0, 0, 0)
	a.SetMembers([]int{1})
	if a.Add(RoundDigest{}) {
		t.Fatal("nil aggregator accepted a digest")
	}
	if a.Rounds() != nil || a.Latest() != -1 {
		t.Fatal("nil aggregator has rounds")
	}
	if _, ok := a.Round(0); ok {
		t.Fatal("nil aggregator returned a round")
	}
	if a.Completeness(0) != 0 {
		t.Fatal("nil aggregator completeness != 0")
	}
}

func TestCriticalPathCrossNode(t *testing.T) {
	a := NewAggregator(0)
	a.SetMembers([]int{0, 1})
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	slow := RoundDigest{Node: 1, Round: 2, StartUnixNanos: int64(ms(0)), EndUnixNanos: int64(ms(60))}
	slow.Phases = append(slow.Phases,
		SpanDigest{Name: SpanBuild, StartUnixNanos: int64(ms(0)), EndUnixNanos: int64(ms(20))},
		SpanDigest{Name: SpanEncode, StartUnixNanos: int64(ms(20)), EndUnixNanos: int64(ms(25))},
		SpanDigest{Name: SpanBroadcast, StartUnixNanos: int64(ms(25)), EndUnixNanos: int64(ms(40))},
	)
	fast := digestFor(skewedNode{id: 0}, 2, ms(0), ms(70), ms(5), []arrival{{1, ms(42)}})
	fast.Phases = append(fast.Phases,
		SpanDigest{Name: SpanDecode, StartUnixNanos: int64(ms(45)), EndUnixNanos: int64(ms(50))},
		SpanDigest{Name: SpanIntegrate, StartUnixNanos: int64(ms(50)), EndUnixNanos: int64(ms(60))},
	)
	a.Add(slow)
	a.Add(fast)
	cr, ok := a.Round(2)
	if !ok {
		t.Fatal("round missing")
	}
	if len(cr.CriticalPath) == 0 {
		t.Fatal("no critical path")
	}
	// Path must start on the blocking sender (node 1) and end on the
	// receiver's integrate.
	if cr.CriticalPath[0].Node != 1 || cr.CriticalPath[0].Span != SpanBuild {
		t.Fatalf("path head = %+v, want node 1 build", cr.CriticalPath[0])
	}
	tail := cr.CriticalPath[len(cr.CriticalPath)-1]
	if tail.Node != 0 || tail.Span != SpanIntegrate {
		t.Fatalf("path tail = %+v, want node 0 integrate", tail)
	}
	// The receiver's gather-wait must sit on the path between the sender's
	// send side and the receiver's decode/integrate tail.
	var sawGather bool
	for _, s := range cr.CriticalPath {
		if s.Node == 0 && s.Span == SpanGather {
			sawGather = true
		}
	}
	if !sawGather {
		t.Fatalf("critical path missing receiver gather: %+v", cr.CriticalPath)
	}
}
