package trace

import (
	"sort"
	"sync"
)

// OffsetSample is the aggregator's clock model for one node: the
// estimated offset of that node's clock relative to the coordinator's
// (positive = node clock ahead), the round-trip delay of the probe the
// estimate came from, and how many probes have been observed.
//
//snap:wire
type OffsetSample struct {
	OffsetNanos int64 `json:"offset"`
	DelayNanos  int64 `json:"delay"`
	Samples     int   `json:"samples"`
}

// NodeRound is one node's digest plus the clock correction applied to it
// inside a merged ClusterRound.
//
//snap:wire
type NodeRound struct {
	Digest      RoundDigest `json:"digest"`
	OffsetNanos int64       `json:"offset"`
}

// Blame attributes round lengthening to one node: LagNanos is how much
// later this node's frames arrived at some receiver than the rest of the
// round's traffic (reference-clock adjusted).
//
//snap:wire
type Blame struct {
	Node     int   `json:"node"`
	LagNanos int64 `json:"lag"`
}

// PathStep is one span on the reconstructed cross-node critical path,
// in reference-clock (coordinator) time.
//
//snap:wire
type PathStep struct {
	Node           int    `json:"node"`
	Span           string `json:"span"`
	StartUnixNanos int64  `json:"start"`
	EndUnixNanos   int64  `json:"end"`
}

// ClusterRound is the merged cluster-wide view of one round: every
// reporting node's digest with its clock correction, which members are
// missing, the straggler verdict, and the round's communication
// accounting. All timestamps are in the coordinator's reference clock.
//
//snap:wire
type ClusterRound struct {
	Round        int         `json:"round"`
	Nodes        []NodeRound `json:"nodes"`
	Missing      []int       `json:"missing,omitempty"`
	Completeness float64     `json:"completeness"`

	StartUnixNanos int64 `json:"start"`
	EndUnixNanos   int64 `json:"end"`

	// Straggler is the node that lengthened the round (-1 when unknown,
	// e.g. a single-node round); StragglerLagNanos is its blame lag.
	Straggler         int     `json:"straggler"`
	StragglerLagNanos int64   `json:"straggler_lag"`
	Blames            []Blame `json:"blames,omitempty"`

	CriticalPath []PathStep `json:"critical_path,omitempty"`

	BytesSent     int64 `json:"bytes_sent"`
	BytesFullSend int64 `json:"bytes_full_send"`
}

// BytesSaved is the round's communication saving vs. a full-parameter
// send of every frame — the cluster-level form of the paper's
// communication-cost reduction.
func (cr *ClusterRound) BytesSaved() int64 { return cr.BytesFullSend - cr.BytesSent }

// mergedRound collects per-node digests for one round.
type mergedRound struct {
	byNode map[int]*RoundDigest
}

// Aggregator merges per-node RoundDigests into cluster-wide rounds. It
// lives on the coordinator: heartbeats push digests in via Add, the
// clock-sync loop feeds ObserveClock, membership changes call
// SetMembers, and the HTTP/snaptrace side reads merged rounds out via
// Round/Rounds. Safe for concurrent use.
type Aggregator struct {
	keep int

	mu       sync.Mutex
	offsets  map[int]OffsetSample // guarded by mu
	rounds   map[int]*mergedRound // guarded by mu
	members  map[int]bool         // guarded by mu
	maxRound int                  // guarded by mu
	// Cumulative byte accounting across every digest ever added (pruned
	// rounds keep contributing).
	bytesSent, bytesFull int64 // guarded by mu
}

// NewAggregator builds an aggregator retaining the most recent
// keepRounds rounds (default 256 when <= 0).
func NewAggregator(keepRounds int) *Aggregator {
	if keepRounds <= 0 {
		keepRounds = 256
	}
	return &Aggregator{
		keep:     keepRounds,
		offsets:  make(map[int]OffsetSample),
		rounds:   make(map[int]*mergedRound),
		members:  make(map[int]bool),
		maxRound: -1,
	}
}

// ObserveClock feeds one NTP-style probe exchange for node: t0 is the
// coordinator's send time, t1 the node's receive time, t2 the node's
// reply time (t1, t2 in the node's clock), t3 the coordinator's receive
// time. Offset and delay follow the classic midpoint estimate; the
// stored offset is only replaced by samples with a round-trip delay no
// worse than 2x the best seen, so one slow probe cannot wreck the model.
func (a *Aggregator) ObserveClock(node int, t0, t1, t2, t3 int64) {
	if a == nil {
		return
	}
	offset := ((t1 - t0) + (t2 - t3)) / 2
	delay := (t3 - t0) - (t2 - t1)
	if delay < 0 {
		return // non-causal sample: drop
	}
	a.mu.Lock()
	cur, ok := a.offsets[node]
	if !ok || cur.Samples == 0 || delay <= 2*cur.DelayNanos {
		if ok && cur.DelayNanos < delay {
			delay = cur.DelayNanos // remember the best delay seen
		}
		a.offsets[node] = OffsetSample{OffsetNanos: offset, DelayNanos: delay, Samples: cur.Samples + 1}
	} else {
		cur.Samples++
		a.offsets[node] = cur
	}
	a.mu.Unlock()
}

// Offset returns the current clock model for node (zero sample count
// means "no estimate yet": offset 0 is assumed).
func (a *Aggregator) Offset(node int) OffsetSample {
	if a == nil {
		return OffsetSample{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.offsets[node]
}

// SetMembers declares the current cluster membership, the denominator
// for round completeness. A node that never reports shows up in
// ClusterRound.Missing instead of blocking the merge.
func (a *Aggregator) SetMembers(ids []int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.members = make(map[int]bool, len(ids))
	for _, id := range ids {
		a.members[id] = true
	}
	a.mu.Unlock()
}

// Add ingests one node's round digest. It returns false when the digest
// was dropped (older than the retention window). Re-adding the same
// (node, round) replaces the earlier copy, so heartbeat retransmits are
// harmless.
func (a *Aggregator) Add(d RoundDigest) bool {
	if a == nil {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxRound >= a.keep && d.Round <= a.maxRound-a.keep {
		return false
	}
	mr := a.rounds[d.Round]
	if mr == nil {
		mr = &mergedRound{byNode: make(map[int]*RoundDigest)}
		a.rounds[d.Round] = mr
	}
	if prev := mr.byNode[d.Node]; prev != nil {
		// Replace: back out the earlier copy's byte contribution.
		a.bytesSent -= prev.BytesSent
		a.bytesFull -= prev.BytesFullSend
	}
	dc := d
	mr.byNode[d.Node] = &dc
	a.bytesSent += d.BytesSent
	a.bytesFull += d.BytesFullSend
	if d.Round > a.maxRound {
		a.maxRound = d.Round
		for r := range a.rounds {
			if r <= a.maxRound-a.keep {
				delete(a.rounds, r)
			}
		}
	}
	return true
}

// Rounds lists the retained round numbers in ascending order.
func (a *Aggregator) Rounds() []int {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]int, 0, len(a.rounds))
	for r := range a.rounds {
		out = append(out, r)
	}
	a.mu.Unlock()
	sort.Ints(out)
	return out
}

// Latest returns the highest round seen (-1 before any digest).
func (a *Aggregator) Latest() int {
	if a == nil {
		return -1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxRound
}

// CumulativeBytes returns the all-time selective-send bytes and the
// full-send baseline bytes across every ingested digest.
func (a *Aggregator) CumulativeBytes() (sent, full int64) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytesSent, a.bytesFull
}

// Completeness returns the fraction of current members that reported the
// round (1 when membership is unknown/empty but digests exist).
func (a *Aggregator) Completeness(round int) float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	mr := a.rounds[round]
	if mr == nil {
		return 0
	}
	return completenessLocked(mr, a.members)
}

func completenessLocked(mr *mergedRound, members map[int]bool) float64 {
	if len(members) == 0 {
		if len(mr.byNode) > 0 {
			return 1
		}
		return 0
	}
	got := 0
	for id := range members {
		if mr.byNode[id] != nil {
			got++
		}
	}
	return float64(got) / float64(len(members))
}

// Round merges one round into the cluster-wide view. ok is false when
// no node has reported the round. The merge never blocks on missing
// members — they are listed in Missing and reflected in Completeness.
func (a *Aggregator) Round(round int) (ClusterRound, bool) {
	if a == nil {
		return ClusterRound{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	mr := a.rounds[round]
	if mr == nil || len(mr.byNode) == 0 {
		return ClusterRound{}, false
	}

	cr := ClusterRound{Round: round, Straggler: -1}
	ids := make([]int, 0, len(mr.byNode))
	for id := range mr.byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		d := mr.byNode[id]
		off := a.offsets[id].OffsetNanos
		cr.Nodes = append(cr.Nodes, NodeRound{Digest: *d, OffsetNanos: off})
		cr.BytesSent += d.BytesSent
		cr.BytesFullSend += d.BytesFullSend
		if d.StartUnixNanos != 0 {
			if s := d.StartUnixNanos - off; cr.StartUnixNanos == 0 || s < cr.StartUnixNanos {
				cr.StartUnixNanos = s
			}
		}
		if d.EndUnixNanos != 0 {
			if e := d.EndUnixNanos - off; e > cr.EndUnixNanos {
				cr.EndUnixNanos = e
			}
		}
	}
	for id := range a.members {
		if mr.byNode[id] == nil {
			cr.Missing = append(cr.Missing, id)
		}
	}
	sort.Ints(cr.Missing)
	cr.Completeness = completenessLocked(mr, a.members)

	cr.Blames = a.blamesLocked(mr, ids)
	if len(cr.Blames) > 0 {
		cr.Straggler = cr.Blames[0].Node
		cr.StragglerLagNanos = cr.Blames[0].LagNanos
	} else if len(ids) > 0 {
		// No receive data (e.g. tracing without wire contexts): fall back
		// to the node whose round ended last in reference time.
		var lastEnd int64
		for _, nr := range cr.Nodes {
			if nr.Digest.EndUnixNanos == 0 {
				continue
			}
			if e := nr.Digest.EndUnixNanos - nr.OffsetNanos; cr.Straggler == -1 || e > lastEnd {
				lastEnd, cr.Straggler = e, nr.Digest.Node
			}
		}
	}
	cr.CriticalPath = a.criticalPathLocked(mr, &cr)
	return cr, true
}

// blamesLocked ranks nodes by how much their frames delayed receivers.
// For each receiver, the sender of the last-arriving frame is blamed for
// the gap between that arrival and the later of (second-last arrival,
// gather start) — the stretch of gather wait only that sender is
// responsible for. Arrival times are reference-clock adjusted. Caller
// holds a.mu.
func (a *Aggregator) blamesLocked(mr *mergedRound, ids []int) []Blame {
	lag := make(map[int]int64)
	for _, id := range ids {
		d := mr.byNode[id]
		off := a.offsets[id].OffsetNanos
		if len(d.Recvs) == 0 {
			continue
		}
		lastFrom, last, second := -1, int64(0), int64(0)
		for _, r := range d.Recvs {
			at := r.RecvUnixNanos - off
			if at > last {
				second, last, lastFrom = last, at, r.From
			} else if at > second {
				second = at
			}
		}
		floor := second
		if g, ok := d.Phase(SpanGather); ok {
			if gs := g.StartUnixNanos - off; gs > floor || second == 0 {
				floor = gs
			}
		}
		if lastFrom >= 0 && last > floor && floor > 0 {
			lag[lastFrom] += last - floor
		}
	}
	blames := make([]Blame, 0, len(lag))
	for node, l := range lag {
		blames = append(blames, Blame{Node: node, LagNanos: l})
	}
	sort.Slice(blames, func(i, j int) bool {
		if blames[i].LagNanos != blames[j].LagNanos {
			return blames[i].LagNanos > blames[j].LagNanos
		}
		return blames[i].Node < blames[j].Node
	})
	return blames
}

// criticalPathLocked walks the round's longest causal chain backwards:
// start from the node whose round ended last (reference clock), step
// from its gather to the sender of its last-arriving frame, and emit
// that sender's send-side phases followed by the receiver's tail. Caller
// holds a.mu.
func (a *Aggregator) criticalPathLocked(mr *mergedRound, cr *ClusterRound) []PathStep {
	// Receiver = node with the latest round end.
	var recv *RoundDigest
	var recvOff, recvEnd int64
	for _, nr := range cr.Nodes {
		d := nr.Digest
		if d.EndUnixNanos == 0 {
			continue
		}
		if e := d.EndUnixNanos - nr.OffsetNanos; recv == nil || e > recvEnd {
			dd := d
			recv, recvOff, recvEnd = &dd, nr.OffsetNanos, e
		}
	}
	if recv == nil {
		return nil
	}
	// Last-arriving frame at the receiver identifies the blocking sender.
	var sender *RoundDigest
	var senderOff int64
	var lastAt int64
	for _, r := range recv.Recvs {
		if at := r.RecvUnixNanos - recvOff; at > lastAt {
			if sd := mr.byNode[r.From]; sd != nil {
				sender, senderOff, lastAt = sd, a.offsets[r.From].OffsetNanos, at
			}
		}
	}
	var path []PathStep
	step := func(d *RoundDigest, off int64, name string) {
		if p, ok := d.Phase(name); ok {
			path = append(path, PathStep{
				Node:           d.Node,
				Span:           name,
				StartUnixNanos: p.StartUnixNanos - off,
				EndUnixNanos:   p.EndUnixNanos - off,
			})
		}
	}
	if sender != nil && sender.Node != recv.Node {
		step(sender, senderOff, SpanBuild)
		step(sender, senderOff, SpanEncode)
		step(sender, senderOff, SpanBroadcast)
	}
	step(recv, recvOff, SpanGather)
	step(recv, recvOff, SpanDecode)
	step(recv, recvOff, SpanIntegrate)
	return path
}
