package trace

import (
	"bytes"
	"testing"
)

// FuzzParseBlock hardens the wire-block parser against arbitrary remote
// bytes: it must never panic, must reject short input, and for
// well-formed input the parse must round-trip bit-exactly through
// PutBlock.
func FuzzParseBlock(f *testing.F) {
	var seed [BlockBytes]byte
	PutBlock(seed[:], Context{TraceID: ID(3, 9), Node: 3, Round: 9, SendUnixNanos: 1_700_000_000_000_000_000})
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add(seed[:BlockBytes-1])
	f.Add(bytes.Repeat([]byte{0xff}, BlockBytes))

	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := ParseBlock(b)
		if len(b) < BlockBytes {
			if err == nil {
				t.Fatalf("ParseBlock accepted %d bytes", len(b))
			}
			return
		}
		if err != nil {
			t.Fatalf("ParseBlock rejected %d bytes: %v", len(b), err)
		}
		var out [BlockBytes]byte
		PutBlock(out[:], c)
		if !bytes.Equal(out[:], b[:BlockBytes]) {
			t.Fatalf("round trip mismatch: in=%x out=%x", b[:BlockBytes], out)
		}
	})
}
