package trace

// Wire/JSON digest types. These cross process boundaries twice — pushed
// from nodes to the coordinator inside control-plane heartbeats, and
// served over HTTP to snaptrace — so every exported field carries an
// explicit json tag (enforced by the wiretag analyzer).

// SpanDigest is one completed span (a pipeline phase or an extra child
// span) in the node's local clock, Unix nanoseconds.
//
//snap:wire
type SpanDigest struct {
	Name           string `json:"name"`
	StartUnixNanos int64  `json:"start"`
	EndUnixNanos   int64  `json:"end"`
}

// RecvDigest is one received frame: the sender's wire trace context plus
// the local arrival time. SendUnixNanos is the *sender's* clock,
// RecvUnixNanos the receiver's — the aggregator reconciles the two with
// its per-node offset estimates.
//
//snap:wire
type RecvDigest struct {
	From          int    `json:"from"`
	Bytes         int    `json:"bytes"`
	TraceID       uint64 `json:"trace_id"`
	SendUnixNanos int64  `json:"send"`
	RecvUnixNanos int64  `json:"recv"`
}

// RoundDigest is one node's complete record of one round: the root span,
// the fixed pipeline phases, extra spans, receive observations, and the
// send-side byte accounting (actual selective-send bytes vs. the
// full-parameter-send baseline the paper compares against).
//
//snap:wire
type RoundDigest struct {
	Node           int          `json:"node"`
	Round          int          `json:"round"`
	TraceID        uint64       `json:"trace_id"`
	StartUnixNanos int64        `json:"start"`
	EndUnixNanos   int64        `json:"end"`
	Phases         []SpanDigest `json:"phases,omitempty"`
	Spans          []SpanDigest `json:"spans,omitempty"`
	Recvs          []RecvDigest `json:"recvs,omitempty"`

	FramesSent    int   `json:"frames_sent"`
	BytesSent     int64 `json:"bytes_sent"`
	BytesFullSend int64 `json:"bytes_full_send"`
	ParamsSent    int   `json:"params_sent"`
	ParamsTotal   int   `json:"params_total"`

	DroppedSpans int `json:"dropped_spans,omitempty"`
	DroppedRecvs int `json:"dropped_recvs,omitempty"`
}

// Phase returns the named phase span and whether it was recorded.
func (d *RoundDigest) Phase(name string) (SpanDigest, bool) {
	for _, p := range d.Phases {
		if p.Name == name {
			return p, true
		}
	}
	return SpanDigest{}, false
}
