package trace

// Span names used by the round tracer. Every span recorded through
// Tracer.Span (and every phase name exported in digests) must be one of
// these constants — the obsname analyzer rejects inline literals, exactly
// as it does for metric names: snaptrace, the Chrome trace export, and
// the aggregator's critical-path walk all join on these strings.
const (
	// SpanRound is the per-round root span on each node.
	SpanRound = "round"

	// Phase spans, children of SpanRound in pipeline order.
	SpanBuild     = "build"     // BuildUpdate: select parameters to send
	SpanEncode    = "encode"    // codec encoding of the update frame
	SpanBroadcast = "broadcast" // socket writes to every neighbor
	SpanGather    = "gather"    // wait for the round's neighbor frames
	SpanDecode    = "decode"    // codec decoding of received frames
	SpanIntegrate = "integrate" // apply neighbor updates to local views

	// Compute sub-spans recorded by the engine inside Step.
	SpanGrad = "grad" // local gradient (all shards)
	SpanMix  = "mix"  // W-row mixing + EXTRA recursion update

	// Pipelined-round spans (DESIGN.md §14). SpanOverlap is the window
	// where gradient compute and the broadcast+gather ran concurrently —
	// comms time the pipeline hid; SpanFrameDecode is one received
	// frame's decode inside the gather window, recorded per frame so
	// snaptrace shows frames being consumed while later ones are still
	// in flight.
	SpanOverlap     = "overlap"
	SpanFrameDecode = "frame_decode"
)

// PhaseID indexes the fixed per-round phase slots. The order is the round
// pipeline order; NumPhases sizes the preallocated slot array.
type PhaseID int

const (
	PhaseBuild PhaseID = iota
	PhaseEncode
	PhaseBroadcast
	PhaseGather
	PhaseDecode
	PhaseIntegrate
	NumPhases
)

// phaseNames maps PhaseID to its span name.
var phaseNames = [NumPhases]string{
	PhaseBuild:     SpanBuild,
	PhaseEncode:    SpanEncode,
	PhaseBroadcast: SpanBroadcast,
	PhaseGather:    SpanGather,
	PhaseDecode:    SpanDecode,
	PhaseIntegrate: SpanIntegrate,
}

// Name returns the span name of a phase ("" for out-of-range ids).
func (p PhaseID) Name() string {
	if p < 0 || p >= NumPhases {
		return ""
	}
	return phaseNames[p]
}
