package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// DigestHandler serves a node's completed round digests as JSONL (one
// RoundDigest per line, ascending rounds). Query parameters: ?since=R
// returns rounds >= R only, ?max=N caps the count (default 256). This is
// what snaptrace scrapes when pointed at a node instead of the
// coordinator.
func DigestHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		since, max := queryBounds(r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, d := range t.DigestsSince(since, max) {
			if err := enc.Encode(d); err != nil {
				return
			}
		}
	})
}

// ClusterHandler serves the aggregator's merged cluster rounds as JSONL
// (one ClusterRound per line, ascending rounds). Query parameters as in
// DigestHandler. This is the coordinator's /trace endpoint and the
// primary snaptrace input.
func ClusterHandler(a *Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		since, max := queryBounds(r)
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		n := 0
		for _, round := range a.Rounds() {
			if round < since || n >= max {
				continue
			}
			if cr, ok := a.Round(round); ok {
				if err := enc.Encode(cr); err != nil {
					return
				}
				n++
			}
		}
	})
}

func queryBounds(r *http.Request) (since, max int) {
	max = 256
	if v := r.URL.Query().Get("since"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			since = n
		}
	}
	if v := r.URL.Query().Get("max"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			max = n
		}
	}
	return since, max
}
