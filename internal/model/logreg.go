package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// LogisticRegression is a binary L2-regularized logistic classifier with a
// bias term (parameters: d weights followed by 1 bias). Its loss is smooth
// and, with Lambda > 0, strongly convex — the setting in which the paper's
// linear-rate bound (eq. 17) applies — which makes it the reference model
// for convergence tests.
type LogisticRegression struct {
	Features int
	Lambda   float64 // L2 strength on the weights (not the bias); default 1e-3
}

var (
	_ Model            = (*LogisticRegression)(nil)
	_ BatchAccumulator = (*LogisticRegression)(nil)
	_ BatchPredictor   = (*LogisticRegression)(nil)
)

// NewLogisticRegression returns a model for d features with default
// regularization.
func NewLogisticRegression(d int) *LogisticRegression {
	return &LogisticRegression{Features: d, Lambda: 1e-3}
}

// Name implements Model.
func (m *LogisticRegression) Name() string { return "logistic-regression" }

// NumParams implements Model.
//
//snap:alloc-free
func (m *LogisticRegression) NumParams() int { return m.Features + 1 }

//snap:alloc-free
func (m *LogisticRegression) lambda() float64 {
	if m.Lambda <= 0 {
		return 1e-3
	}
	return m.Lambda
}

// Loss implements Model: mean cross-entropy + (λ/2)||w||².
func (m *LogisticRegression) Loss(p linalg.Vector, batch []dataset.Sample) float64 {
	m.checkDim(p)
	w, b := p[:m.Features], p[m.Features]
	loss := 0.0
	for j := 0; j < m.Features; j++ {
		loss += m.lambda() / 2 * w[j] * w[j]
	}
	if len(batch) == 0 {
		return loss
	}
	var ce float64
	for _, s := range batch {
		z := dot(w, s.X) + b
		// Stable log(1+exp(-yz)) via softplus.
		ce += softplus(-signedLabel(s.Label) * z)
	}
	return loss + ce/float64(len(batch))
}

// Gradient implements Model.
func (m *LogisticRegression) Gradient(p linalg.Vector, batch []dataset.Sample) linalg.Vector {
	return GradientTo(m, linalg.NewVector(m.NumParams()), p, batch, nil, 1)
}

// RegGradTo implements BatchAccumulator: λw on the weights, 0 on the
// bias.
//
//snap:alloc-free
func (m *LogisticRegression) RegGradTo(dst, p linalg.Vector) {
	m.checkDim(p)
	for j := 0; j < m.Features; j++ {
		dst[j] = m.lambda() * p[j]
	}
	dst[m.Features] = 0
}

// AccumGrad implements BatchAccumulator (unscaled per-sample terms).
//
//snap:alloc-free
func (m *LogisticRegression) AccumGrad(dst, p linalg.Vector, batch []dataset.Sample) {
	w, b := p[:m.Features], p[m.Features]
	for _, s := range batch {
		z := dot(w, s.X) + b
		// d/dz log(1+exp(-yz)) = -y·σ(-yz)
		y := signedLabel(s.Label)
		coeff := -y * sigmoid(-y*z)
		for j, xj := range s.X {
			dst[j] += coeff * xj
		}
		dst[m.Features] += coeff
	}
}

// Predict implements Model.
//
//snap:alloc-free
func (m *LogisticRegression) Predict(p linalg.Vector, x []float64) int {
	w, b := p[:m.Features], p[m.Features]
	if dot(w, x)+b > 0 {
		return 1
	}
	return 0
}

// PredictScratchSize implements BatchPredictor: the logit is a single
// dot product plus the bias, no scratch needed.
//
//snap:alloc-free
func (m *LogisticRegression) PredictScratchSize() int { return 0 }

// PredictInto implements BatchPredictor.
//
//snap:alloc-free
func (m *LogisticRegression) PredictInto(p linalg.Vector, x []float64, _ []float64) int {
	return m.Predict(p, x)
}

// InitParams implements Model.
func (m *LogisticRegression) InitParams(seed int64) linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	p := linalg.NewVector(m.NumParams())
	for i := 0; i < m.Features; i++ {
		p[i] = 0.01 * rng.NormFloat64()
	}
	return p
}

//snap:alloc-free
func (m *LogisticRegression) checkDim(p linalg.Vector) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("model: logreg params have %d entries, want %d", len(p), m.NumParams()))
	}
}

// softplus computes log(1+exp(z)) without overflow.
//
//snap:alloc-free
func softplus(z float64) float64 {
	if z > 30 {
		return z
	}
	if z < -30 {
		return math.Exp(z)
	}
	return math.Log1p(math.Exp(z))
}
