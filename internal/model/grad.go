package model

import (
	"sync"
	"sync/atomic"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// BatchAccumulator is the optional fast-gradient capability: a model that
// can split its gradient into a batch-independent term plus a sum of
// per-sample terms accumulated into a caller-owned buffer. GradientTo
// uses it to compute gradients without allocating and — for large
// batches — in parallel. All four built-in models implement it.
type BatchAccumulator interface {
	Model
	// RegGradTo overwrites dst with the batch-independent gradient term
	// (the regularizer ∇r(params); all zeros for unregularized models).
	//snap:alloc-free
	RegGradTo(dst, params linalg.Vector)
	// AccumGrad adds the unscaled per-sample loss-gradient terms of
	// batch to dst: dst += Σ_s ∇ℓ(params; s). The 1/m mean scaling is
	// applied once by GradientTo, not per sample. Implementations must
	// be safe for concurrent calls with disjoint dst buffers.
	//snap:alloc-free
	AccumGrad(dst, params linalg.Vector, batch []dataset.Sample)
}

// GradShardSize is the fixed shard width of the sharded gradient path.
// The shard decomposition depends only on the batch length — never on
// the worker count — which is what makes the parallel gradient
// bitwise-identical to the serial one. It is also the parallelism
// threshold: batches of at most one shard always run serially.
const GradShardSize = 256

// GradScratch holds the per-shard partial-sum buffers GradientTo needs.
// One scratch belongs to one gradient consumer (e.g. one engine) and is
// reused across calls; the zero value is ready to use.
type GradScratch struct {
	partials []linalg.Vector
}

//snap:allocs-amortized
func (sc *GradScratch) ensure(shards, p int) {
	if len(sc.partials) > 0 && len(sc.partials[0]) != p {
		sc.partials = sc.partials[:0]
	}
	for len(sc.partials) < shards {
		sc.partials = append(sc.partials, linalg.NewVector(p))
	}
}

// accumParallel computes every shard partial using a pool of worker
// goroutines pulling shard indices from a shared counter. Which worker
// computes which shard is scheduling-dependent, but each shard lands in
// its own buffer, so the subsequent reduction is order-independent.
func (sc *GradScratch) accumParallel(acc BatchAccumulator, params linalg.Vector, batch []dataset.Sample, shards, workers int) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= shards {
					return
				}
				sc.accumShard(acc, params, batch, k)
			}
		}()
	}
	wg.Wait()
}

//snap:alloc-free
func (sc *GradScratch) accumShard(acc BatchAccumulator, params linalg.Vector, batch []dataset.Sample, k int) {
	lo := k * GradShardSize
	hi := lo + GradShardSize
	if hi > len(batch) {
		hi = len(batch)
	}
	buf := sc.partials[k]
	buf.Fill(0)
	acc.AccumGrad(buf, params, batch[lo:hi])
}

// GradientTo computes ∇Loss(params) on batch into dst and returns dst.
//
// For models implementing BatchAccumulator the batch is cut into
// fixed-width shards (GradShardSize samples), each shard's unscaled term
// sum is accumulated into a dedicated scratch buffer, and the shard
// partials are combined by a fixed-shape pairwise tree reduction before
// the 1/m scaling is applied. Because both the shard boundaries and the
// reduction tree depend only on len(batch), the result is
// bitwise-identical whether the shards are computed serially or by any
// number of workers — workers (≤1 = serial) only sets the parallelism
// cap. Single-shard batches always run serially and allocation-free.
//
// Models without the capability fall back to Model.Gradient (one
// allocation, serial).
//
//snap:alloc-free
func GradientTo(m Model, dst, params linalg.Vector, batch []dataset.Sample, sc *GradScratch, workers int) linalg.Vector {
	acc, ok := m.(BatchAccumulator)
	if !ok {
		copy(dst, m.Gradient(params, batch))
		return dst
	}
	acc.RegGradTo(dst, params)
	if len(batch) == 0 {
		return dst
	}
	shards := (len(batch) + GradShardSize - 1) / GradShardSize
	if sc == nil {
		//snaplint:ignore allocfree nil-scratch fallback allocates once per caller, not per round
		sc = &GradScratch{}
	}
	sc.ensure(shards, len(dst))
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for k := 0; k < shards; k++ {
			sc.accumShard(acc, params, batch, k)
		}
	} else {
		// Kept out of line so the escaping WaitGroup/counter locals are
		// only heap-allocated when the parallel path actually runs.
		//snaplint:ignore allocfree the parallel path heap-allocates its worker pool by design; single-shard batches never take it
		sc.accumParallel(acc, params, batch, shards, workers)
	}
	// Fixed-shape pairwise reduction over the shard partials. The combine
	// order is a function of the shard count alone, so worker scheduling
	// cannot perturb float summation order.
	for stride := 1; stride < shards; stride *= 2 {
		for i := 0; i+stride < shards; i += 2 * stride {
			sc.partials[i].AddInPlace(sc.partials[i+stride])
		}
	}
	return dst.AXPYInPlace(1/float64(len(batch)), sc.partials[0])
}
