package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// SoftmaxRegression is a multiclass linear classifier with cross-entropy
// loss and L2 regularization — a convex multiclass model that sits between
// the binary SVM and the MLP: it handles the 10-class digit task while
// keeping the convexity the paper's Theorem 1 assumes. Parameters are
// packed as [W (Classes×Features row-major) | b (Classes)].
type SoftmaxRegression struct {
	Features int
	Classes  int
	Lambda   float64 // L2 strength on weights; default 1e-4
}

var (
	_ Model            = (*SoftmaxRegression)(nil)
	_ BatchAccumulator = (*SoftmaxRegression)(nil)
	_ BatchPredictor   = (*SoftmaxRegression)(nil)
)

// NewSoftmaxRegression returns a model for the given shape with default
// regularization.
func NewSoftmaxRegression(features, classes int) *SoftmaxRegression {
	if features <= 0 || classes < 2 {
		panic(fmt.Sprintf("model: invalid softmax shape %d features, %d classes", features, classes))
	}
	return &SoftmaxRegression{Features: features, Classes: classes, Lambda: 1e-4}
}

// Name implements Model.
func (m *SoftmaxRegression) Name() string {
	return fmt.Sprintf("softmax-%dx%d", m.Features, m.Classes)
}

// NumParams implements Model.
//
//snap:alloc-free
func (m *SoftmaxRegression) NumParams() int { return m.Classes*m.Features + m.Classes }

//snap:alloc-free
func (m *SoftmaxRegression) lambda() float64 {
	if m.Lambda <= 0 {
		return 1e-4
	}
	return m.Lambda
}

// logits computes the per-class scores for x.
func (m *SoftmaxRegression) logits(p linalg.Vector, x []float64) []float64 {
	return m.logitsInto(make([]float64, m.Classes), p, x)
}

// logitsInto computes the per-class scores for x into out (len Classes).
//
//snap:alloc-free
func (m *SoftmaxRegression) logitsInto(out []float64, p linalg.Vector, x []float64) []float64 {
	biasOff := m.Classes * m.Features
	for c := 0; c < m.Classes; c++ {
		z := p[biasOff+c]
		row := p[c*m.Features : (c+1)*m.Features]
		for j, xj := range x {
			z += row[j] * xj
		}
		out[c] = z
	}
	return out
}

// Loss implements Model: mean cross-entropy + (λ/2)||W||².
func (m *SoftmaxRegression) Loss(p linalg.Vector, batch []dataset.Sample) float64 {
	m.checkDim(p)
	var reg float64
	for i := 0; i < m.Classes*m.Features; i++ {
		reg += p[i] * p[i]
	}
	loss := m.lambda() / 2 * reg
	if len(batch) == 0 {
		return loss
	}
	var ce float64
	for _, s := range batch {
		probs := softmax(m.logits(p, s.X))
		ce += -math.Log(math.Max(probs[s.Label], 1e-15))
	}
	return loss + ce/float64(len(batch))
}

// Gradient implements Model.
func (m *SoftmaxRegression) Gradient(p linalg.Vector, batch []dataset.Sample) linalg.Vector {
	return GradientTo(m, linalg.NewVector(m.NumParams()), p, batch, nil, 1)
}

// RegGradTo implements BatchAccumulator: λW on the weights, 0 on the
// biases.
//
//snap:alloc-free
func (m *SoftmaxRegression) RegGradTo(dst, p linalg.Vector) {
	m.checkDim(p)
	l := m.lambda()
	biasOff := m.Classes * m.Features
	for i := 0; i < biasOff; i++ {
		dst[i] = l * p[i]
	}
	for i := biasOff; i < len(dst); i++ {
		dst[i] = 0
	}
}

// AccumGrad implements BatchAccumulator (unscaled per-sample terms).
func (m *SoftmaxRegression) AccumGrad(dst, p linalg.Vector, batch []dataset.Sample) {
	biasOff := m.Classes * m.Features
	for _, s := range batch {
		probs := softmax(m.logits(p, s.X))
		for c := 0; c < m.Classes; c++ {
			delta := probs[c]
			if c == s.Label {
				delta--
			}
			dst[biasOff+c] += delta
			grow := dst[c*m.Features : (c+1)*m.Features]
			for j, xj := range s.X {
				grow[j] += delta * xj
			}
		}
	}
}

// Predict implements Model: argmax class score.
func (m *SoftmaxRegression) Predict(p linalg.Vector, x []float64) int {
	logits := m.logits(p, x)
	best, bestV := 0, logits[0]
	for c := 1; c < m.Classes; c++ {
		if logits[c] > bestV {
			best, bestV = c, logits[c]
		}
	}
	return best
}

// PredictScratchSize implements BatchPredictor: one slot per class logit.
//
//snap:alloc-free
func (m *SoftmaxRegression) PredictScratchSize() int { return m.Classes }

// PredictInto implements BatchPredictor. Softmax is monotone, so the
// argmax over raw logits matches Predict's argmax over class scores
// without ever exponentiating.
//
//snap:alloc-free
func (m *SoftmaxRegression) PredictInto(p linalg.Vector, x []float64, scratch []float64) int {
	logits := m.logitsInto(scratch[:m.Classes], p, x)
	best, bestV := 0, logits[0]
	for c := 1; c < m.Classes; c++ {
		if logits[c] > bestV {
			best, bestV = c, logits[c]
		}
	}
	return best
}

// InitParams implements Model: small random weights, zero biases.
func (m *SoftmaxRegression) InitParams(seed int64) linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	p := linalg.NewVector(m.NumParams())
	for i := 0; i < m.Classes*m.Features; i++ {
		p[i] = 0.01 * rng.NormFloat64()
	}
	return p
}

//snap:alloc-free
func (m *SoftmaxRegression) checkDim(p linalg.Vector) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("model: softmax params have %d entries, want %d", len(p), m.NumParams()))
	}
}
