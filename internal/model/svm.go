package model

import (
	"fmt"
	"math/rand"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// LinearSVM is a binary L2-regularized squared-hinge (L2-SVM) classifier
// with no bias term, so a d-feature task has exactly d parameters —
// matching the paper's "24 parameters in each SVM model" for the
// 24-feature credit data. The squared hinge is used instead of the plain
// hinge because its gradient is Lipschitz, which the EXTRA convergence
// theory (paper Theorem 1 and the rate bound eq. 17) assumes; with the
// non-smooth hinge the iterates jitter at a subgradient-sized floor and
// parameter changes never decay, defeating the paper's premise that
// almost all parameters stop changing near convergence (Fig. 2).
// Labels must be 0 (negative) or 1 (positive).
type LinearSVM struct {
	// Features is the input dimensionality d.
	Features int
	// Lambda is the L2 regularization strength (default 1e-3 if zero).
	Lambda float64
}

var (
	_ Model            = (*LinearSVM)(nil)
	_ BatchAccumulator = (*LinearSVM)(nil)
	_ BatchPredictor   = (*LinearSVM)(nil)
)

// NewLinearSVM returns a LinearSVM for d features with the default
// regularization.
func NewLinearSVM(d int) *LinearSVM { return &LinearSVM{Features: d, Lambda: 1e-3} }

// Name implements Model.
func (m *LinearSVM) Name() string { return "linear-svm" }

// NumParams implements Model.
//
//snap:alloc-free
func (m *LinearSVM) NumParams() int { return m.Features }

//snap:alloc-free
func (m *LinearSVM) lambda() float64 {
	if m.Lambda <= 0 {
		return 1e-3
	}
	return m.Lambda
}

// Loss implements Model: (λ/2)||w||² + mean squared-hinge loss
// max(0, 1−y·w·x)².
func (m *LinearSVM) Loss(w linalg.Vector, batch []dataset.Sample) float64 {
	m.checkDim(w)
	loss := m.lambda() / 2 * w.Dot(w)
	if len(batch) == 0 {
		return loss
	}
	var hinge float64
	for _, s := range batch {
		margin := signedLabel(s.Label) * dot(w, s.X)
		if margin < 1 {
			hinge += (1 - margin) * (1 - margin)
		}
	}
	return loss + hinge/float64(len(batch))
}

// Gradient implements Model: λw − (2/m)Σ max(0, 1−y·w·x)·y·x.
func (m *LinearSVM) Gradient(w linalg.Vector, batch []dataset.Sample) linalg.Vector {
	return GradientTo(m, linalg.NewVector(m.Features), w, batch, nil, 1)
}

// RegGradTo implements BatchAccumulator: ∇(λ/2)||w||² = λw.
//
//snap:alloc-free
func (m *LinearSVM) RegGradTo(dst, w linalg.Vector) {
	m.checkDim(w)
	linalg.ScaleTo(dst, m.lambda(), w)
}

// AccumGrad implements BatchAccumulator: dst −= Σ 2·max(0, 1−y·w·x)·y·x
// (unscaled; GradientTo applies the 1/m).
//
//snap:alloc-free
func (m *LinearSVM) AccumGrad(dst, w linalg.Vector, batch []dataset.Sample) {
	for _, s := range batch {
		y := signedLabel(s.Label)
		if margin := y * dot(w, s.X); margin < 1 {
			coeff := 2 * (1 - margin) * y
			for j, xj := range s.X {
				dst[j] -= coeff * xj
			}
		}
	}
}

// Predict implements Model: positive margin means class 1.
//
//snap:alloc-free
func (m *LinearSVM) Predict(w linalg.Vector, x []float64) int {
	if dot(w, x) > 0 {
		return 1
	}
	return 0
}

// PredictScratchSize implements BatchPredictor: the margin is a single
// dot product, no scratch needed.
//
//snap:alloc-free
func (m *LinearSVM) PredictScratchSize() int { return 0 }

// PredictInto implements BatchPredictor.
//
//snap:alloc-free
func (m *LinearSVM) PredictInto(w linalg.Vector, x []float64, _ []float64) int {
	return m.Predict(w, x)
}

// InitParams implements Model: small random weights so that the initial
// point is generic (all-zero would sit exactly on the decision boundary).
// The 0.05 scale is roughly a tenth of the converged weight magnitude,
// which makes the paper's APE threshold rule (T₀ = 10% of the mean
// initial |parameter|) land at a meaningful value.
func (m *LinearSVM) InitParams(seed int64) linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	w := linalg.NewVector(m.Features)
	for i := range w {
		w[i] = 0.05 * rng.NormFloat64()
	}
	return w
}

//snap:alloc-free
func (m *LinearSVM) checkDim(w linalg.Vector) {
	if len(w) != m.Features {
		panic(fmt.Sprintf("model: svm params have %d entries, want %d", len(w), m.Features))
	}
}

//snap:alloc-free
func dot(w linalg.Vector, x []float64) float64 {
	var s float64
	for j, xj := range x {
		s += w[j] * xj
	}
	return s
}
