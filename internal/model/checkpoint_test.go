package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/snapml/snap/internal/linalg"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := linalg.NewVector(257)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(params, 0) {
		t.Error("checkpoint round trip lost data")
	}
}

func TestCheckpointEmptyVector(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, linalg.Vector{}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty checkpoint loaded %d params", len(got))
	}
}

func TestCheckpointSpecialValues(t *testing.T) {
	params := linalg.Vector{0, math.Inf(1), math.Inf(-1), math.NaN(), -0.0, math.MaxFloat64}
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if math.Float64bits(got[i]) != math.Float64bits(params[i]) {
			t.Errorf("param %d: bits changed", i)
		}
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	params := linalg.Vector{1, 2, 3}
	var buf bytes.Buffer
	if err := SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"badMagic", func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c }},
		{"badVersion", func(b []byte) []byte { c := append([]byte(nil), b...); c[5] = 99; return c }},
		{"flippedPayloadBit", func(b []byte) []byte { c := append([]byte(nil), b...); c[20] ^= 1; return c }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-5] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadParams(bytes.NewReader(tc.mutate(raw))); err == nil {
				t.Error("corrupted checkpoint accepted")
			}
		})
	}
}

func TestCheckpointRejectsHugeDim(t *testing.T) {
	// Forged header claiming an absurd dimension must not allocate.
	forged := []byte("SNAP")
	forged = append(forged, 0, 1)                                           // version 1
	forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF) // dim = 2^64-1
	if _, err := LoadParams(bytes.NewReader(forged)); err == nil {
		t.Error("absurd dimension accepted")
	}
}

// Property: round trip is exact for arbitrary vectors.
func TestCheckpointProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var buf bytes.Buffer
		if err := SaveParams(&buf, linalg.Vector(xs)); err != nil {
			return false
		}
		got, err := LoadParams(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float64bits(got[i]) != math.Float64bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointTrainedModel persists a converged model and verifies the
// reloaded parameters predict identically.
func TestCheckpointTrainedModel(t *testing.T) {
	m := NewLinearSVM(10)
	batch := creditBatch(100, 30)
	w := m.InitParams(31)
	for step := 0; step < 100; step++ {
		w.AXPYInPlace(-0.1, m.Gradient(w, batch))
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range batch {
		if m.Predict(w, s.X) != m.Predict(got, s.X) {
			t.Fatal("reloaded model predicts differently")
		}
	}
}
