package model

import (
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// BatchPredictor is the optional fast-inference capability: a model that
// can predict into caller-owned buffers without allocating. All four
// built-in models implement it; the serving gateway's steady-state
// predict path depends on it for its zero-allocation budget.
type BatchPredictor interface {
	Model
	// PredictScratchSize returns how many float64 scratch slots one
	// PredictInto call needs (0 for linear binary models whose score is a
	// single dot product).
	//snap:alloc-free
	PredictScratchSize() int
	// PredictInto returns the predicted class label for features x,
	// using scratch (len >= PredictScratchSize()) for any intermediate
	// activations. It must be pure in (params, x) — identical to
	// Predict — and safe for concurrent calls with disjoint scratch.
	//snap:alloc-free
	PredictInto(params linalg.Vector, x []float64, scratch []float64) int
}

// PredictScratch holds the reusable intermediate buffers PredictBatchInto
// needs. One scratch belongs to one predicting goroutine (e.g. one serving
// worker) and is reused across calls; the zero value is ready to use.
type PredictScratch struct {
	buf []float64
}

//snap:allocs-amortized
func (sc *PredictScratch) ensure(n int) []float64 {
	if cap(sc.buf) < n {
		sc.buf = make([]float64, n)
	}
	return sc.buf[:n]
}

// PredictBatchInto predicts the class label of every row of xs into
// dst[:len(xs)] and returns it. dst must have len >= len(xs).
//
// For models implementing BatchPredictor the batch runs through
// PredictInto with a scratch buffer recycled from sc, so the steady state
// allocates nothing; other models fall back to Model.Predict row by row.
// A nil sc allocates a private scratch (one allocation, not per row).
//
//snap:alloc-free
func PredictBatchInto(m Model, dst []int, params linalg.Vector, xs [][]float64, sc *PredictScratch) []int {
	bp, ok := m.(BatchPredictor)
	if !ok {
		for i, x := range xs {
			dst[i] = m.Predict(params, x)
		}
		return dst[:len(xs)]
	}
	if sc == nil {
		//snaplint:ignore allocfree nil-scratch fallback allocates once per caller, not per request
		sc = &PredictScratch{}
	}
	scratch := sc.ensure(bp.PredictScratchSize())
	for i, x := range xs {
		dst[i] = bp.PredictInto(params, x, scratch)
	}
	return dst[:len(xs)]
}

// AccuracyBatch evaluates params on ds through the alloc-free batch
// predict path, returning the fraction predicted correctly (0 for an
// empty dataset). It matches Accuracy exactly; it exists so evaluation
// loops can reuse a scratch.
func AccuracyBatch(m Model, params linalg.Vector, ds *dataset.Dataset, sc *PredictScratch) float64 {
	if ds.Len() == 0 {
		return 0
	}
	bp, ok := m.(BatchPredictor)
	if !ok {
		return Accuracy(m, params, ds)
	}
	if sc == nil {
		//snaplint:ignore allocfree nil-scratch fallback allocates once per caller, not per request
		sc = &PredictScratch{}
	}
	scratch := sc.ensure(bp.PredictScratchSize())
	correct := 0
	for _, s := range ds.Samples {
		if bp.PredictInto(params, s.X, scratch) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}
