package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

func gradTestBatch(n, features, classes int, seed int64) []dataset.Sample {
	rng := rand.New(rand.NewSource(seed))
	batch := make([]dataset.Sample, n)
	for i := range batch {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		batch[i] = dataset.Sample{X: x, Label: rng.Intn(classes)}
	}
	return batch
}

func bitsDiffer(v, w linalg.Vector) int {
	if len(v) != len(w) {
		return -1
	}
	for i := range v {
		if math.Float64bits(v[i]) != math.Float64bits(w[i]) {
			return i
		}
	}
	return len(v)
}

// TestGradientToDeterministicAcrossWorkers is the tentpole determinism
// guarantee: the sharded parallel gradient must be bitwise-identical to
// the serial one for every worker count, because the shard decomposition
// and the pairwise reduction shape depend only on the batch length.
func TestGradientToDeterministicAcrossWorkers(t *testing.T) {
	models := []struct {
		name string
		m    Model
	}{
		{"svm", NewLinearSVM(12)},
		{"logreg", NewLogisticRegression(12)},
		{"softmax", NewSoftmaxRegression(12, 4)},
		{"mlp", NewMLP(12, 6, 4)},
	}
	for _, tc := range models {
		t.Run(tc.name, func(t *testing.T) {
			// 3.5 shards, so the tree reduction is non-trivial.
			batch := gradTestBatch(3*GradShardSize+GradShardSize/2, 12, 4, 42)
			params := tc.m.InitParams(7)
			p := tc.m.NumParams()

			ref := GradientTo(tc.m, linalg.NewVector(p), params, batch, nil, 1)
			for _, workers := range []int{2, 3, 8, 64} {
				var sc GradScratch
				got := GradientTo(tc.m, linalg.NewVector(p), params, batch, &sc, workers)
				if at := bitsDiffer(ref, got); at != p {
					t.Errorf("workers=%d: gradient differs from serial at index %d", workers, at)
				}
			}
			// Model.Gradient is the same computation.
			if at := bitsDiffer(ref, tc.m.Gradient(params, batch)); at != p {
				t.Errorf("Gradient differs from GradientTo at index %d", at)
			}
		})
	}
}

// TestGradientToMatchesNumerical sanity-checks the accumulator refactor
// against central finite differences (the rescaled summation must still
// be the same mathematical gradient).
func TestGradientToMatchesNumerical(t *testing.T) {
	m := NewLogisticRegression(5)
	batch := gradTestBatch(40, 5, 2, 3)
	params := m.InitParams(9)
	g := m.Gradient(params, batch)
	const h = 1e-6
	for i := range params {
		pp := params.Clone()
		pp[i] += h
		pm := params.Clone()
		pm[i] -= h
		num := (m.Loss(pp, batch) - m.Loss(pm, batch)) / (2 * h)
		if math.Abs(num-g[i]) > 1e-5 {
			t.Errorf("param %d: analytic %g vs numerical %g", i, g[i], num)
		}
	}
}

// TestGradientToEmptyAndFallback covers the degenerate batch and the
// non-accumulator fallback path.
func TestGradientToEmptyAndFallback(t *testing.T) {
	m := NewLinearSVM(6)
	params := m.InitParams(1)
	g := GradientTo(m, linalg.NewVector(6), params, nil, nil, 4)
	want := params.Scale(m.Lambda)
	if at := bitsDiffer(g, want); at != 6 {
		t.Errorf("empty-batch gradient differs from λw at %d", at)
	}

	// A model that does not implement BatchAccumulator falls back to
	// Model.Gradient.
	fb := plainModel{m}
	batch := gradTestBatch(10, 6, 2, 5)
	got := GradientTo(fb, linalg.NewVector(6), params, batch, nil, 4)
	if at := bitsDiffer(got, fb.Gradient(params, batch)); at != 6 {
		t.Errorf("fallback gradient differs at %d", at)
	}
}

// plainModel hides LinearSVM's BatchAccumulator methods.
type plainModel struct{ *LinearSVM }

func (p plainModel) RegGradTo() {}
func (p plainModel) AccumGrad() {}

// TestGradientToSerialAllocFree pins the hot-path budget: with a warm
// scratch, the serial sharded gradient of an accumulator model performs
// zero allocations.
func TestGradientToSerialAllocFree(t *testing.T) {
	m := NewLinearSVM(24)
	params := m.InitParams(2)
	batch := gradTestBatch(2*GradShardSize, 24, 2, 6)
	dst := linalg.NewVector(24)
	var sc GradScratch
	GradientTo(m, dst, params, batch, &sc, 1) // warm the scratch
	if n := testing.AllocsPerRun(50, func() {
		GradientTo(m, dst, params, batch, &sc, 1)
	}); n != 0 {
		t.Errorf("serial GradientTo allocated %v times per run, want 0", n)
	}
}
