package model

import (
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/dataset"
)

func TestSoftmaxGradientNumerical(t *testing.T) {
	m := NewSoftmaxRegression(12, 4)
	rng := rand.New(rand.NewSource(1))
	batch := make([]dataset.Sample, 10)
	for i := range batch {
		x := make([]float64, 12)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		batch[i] = dataset.Sample{X: x, Label: rng.Intn(4)}
	}
	numericalGradCheck(t, m, batch, 1e-4)
}

func TestSoftmaxNumParams(t *testing.T) {
	m := NewSoftmaxRegression(100, 10)
	if got := m.NumParams(); got != 100*10+10 {
		t.Errorf("NumParams = %d, want 1010", got)
	}
	if m.Name() != "softmax-100x10" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestSoftmaxTrainsOnDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, test := dataset.SyntheticDigits(
		dataset.DigitsConfig{Train: 1200, Test: 300, Side: 10, Noise: 0.2}, rng)
	m := NewSoftmaxRegression(train.NumFeature, 10)
	p := m.InitParams(3)
	for step := 0; step < 300; step++ {
		p.AXPYInPlace(-0.5, m.Gradient(p, train.Batch(step, 64)))
	}
	if acc := Accuracy(m, p, test); acc < 0.8 {
		t.Errorf("softmax digit accuracy = %v, want ≥ 0.8", acc)
	}
}

func TestSoftmaxPredictInRange(t *testing.T) {
	m := NewSoftmaxRegression(5, 3)
	p := m.InitParams(4)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if got := m.Predict(p, x); got < 0 || got >= 3 {
			t.Fatalf("Predict = %d", got)
		}
	}
}

func TestSoftmaxPanicsOnBadShape(t *testing.T) {
	for _, f := range []func(){
		func() { NewSoftmaxRegression(0, 3) },
		func() { NewSoftmaxRegression(4, 1) },
		func() { NewSoftmaxRegression(4, 3).Gradient(make([]float64, 2), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad shape did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSoftmaxEmptyBatchRegularizationOnly(t *testing.T) {
	m := NewSoftmaxRegression(3, 2)
	p := m.InitParams(6)
	g := m.Gradient(p, nil)
	for i := 0; i < 6; i++ {
		want := m.lambda() * p[i]
		if g[i] != want {
			t.Errorf("weight grad %d = %v, want %v", i, g[i], want)
		}
	}
	// Bias gradients untouched by regularization.
	if g[6] != 0 || g[7] != 0 {
		t.Errorf("bias grads = %v, %v, want 0", g[6], g[7])
	}
}
