package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// MLP is a fully connected 3-layer neural network — the paper's testbed
// model: In inputs, Hidden sigmoid perceptrons, Out softmax outputs trained
// with cross-entropy (784-30-10 for the digit task). Parameters are packed
// as [W1 (In×Hidden row-major) | b1 (Hidden) | W2 (Hidden×Out) | b2 (Out)].
type MLP struct {
	In, Hidden, Out int
}

var (
	_ Model            = (*MLP)(nil)
	_ BatchAccumulator = (*MLP)(nil)
	_ BatchPredictor   = (*MLP)(nil)
)

// NewMLP returns the paper's 784-30-10 network when called as
// NewMLP(784, 30, 10).
func NewMLP(in, hidden, out int) *MLP {
	if in <= 0 || hidden <= 0 || out <= 0 {
		panic(fmt.Sprintf("model: invalid MLP shape %d-%d-%d", in, hidden, out))
	}
	return &MLP{In: in, Hidden: hidden, Out: out}
}

// Name implements Model.
func (m *MLP) Name() string { return fmt.Sprintf("mlp-%d-%d-%d", m.In, m.Hidden, m.Out) }

// NumParams implements Model.
//
//snap:alloc-free
func (m *MLP) NumParams() int {
	return m.In*m.Hidden + m.Hidden + m.Hidden*m.Out + m.Out
}

// Parameter block offsets within the flat vector.
//
//snap:alloc-free
func (m *MLP) offsets() (w1, b1, w2, b2 int) {
	w1 = 0
	b1 = m.In * m.Hidden
	w2 = b1 + m.Hidden
	b2 = w2 + m.Hidden*m.Out
	return
}

// forward computes the hidden activations and output probabilities for x.
func (m *MLP) forward(p linalg.Vector, x []float64) (hidden, probs []float64) {
	w1o, b1o, w2o, b2o := m.offsets()
	hidden = make([]float64, m.Hidden)
	for h := 0; h < m.Hidden; h++ {
		z := p[b1o+h]
		row := p[w1o+h*m.In : w1o+(h+1)*m.In]
		for i, xi := range x {
			z += row[i] * xi
		}
		hidden[h] = sigmoid(z)
	}
	logits := make([]float64, m.Out)
	for o := 0; o < m.Out; o++ {
		z := p[b2o+o]
		for h, hv := range hidden {
			z += p[w2o+o*m.Hidden+h] * hv
		}
		logits[o] = z
	}
	return hidden, softmax(logits)
}

// Loss implements Model: mean cross-entropy over the batch.
func (m *MLP) Loss(p linalg.Vector, batch []dataset.Sample) float64 {
	m.checkDim(p)
	if len(batch) == 0 {
		return 0
	}
	var ce float64
	for _, s := range batch {
		_, probs := m.forward(p, s.X)
		ce += -math.Log(math.Max(probs[s.Label], 1e-15))
	}
	return ce / float64(len(batch))
}

// Gradient implements Model via backpropagation.
func (m *MLP) Gradient(p linalg.Vector, batch []dataset.Sample) linalg.Vector {
	return GradientTo(m, linalg.NewVector(m.NumParams()), p, batch, nil, 1)
}

// RegGradTo implements BatchAccumulator: the MLP is unregularized.
//
//snap:alloc-free
func (m *MLP) RegGradTo(dst, p linalg.Vector) {
	m.checkDim(p)
	dst.Fill(0)
}

// AccumGrad implements BatchAccumulator (unscaled per-sample backprop
// terms; GradientTo applies the 1/m).
func (m *MLP) AccumGrad(dst, p linalg.Vector, batch []dataset.Sample) {
	w1o, b1o, w2o, b2o := m.offsets()
	for _, s := range batch {
		hidden, probs := m.forward(p, s.X)
		// Output delta: softmax+CE gives δ_o = p_o − 1{o=label}.
		deltaOut := make([]float64, m.Out)
		copy(deltaOut, probs)
		deltaOut[s.Label]--
		// Hidden delta: δ_h = σ'(z_h)·Σ_o w2[o][h]·δ_o.
		deltaHidden := make([]float64, m.Hidden)
		for h := 0; h < m.Hidden; h++ {
			var back float64
			for o := 0; o < m.Out; o++ {
				back += p[w2o+o*m.Hidden+h] * deltaOut[o]
			}
			deltaHidden[h] = back * hidden[h] * (1 - hidden[h])
		}
		for o := 0; o < m.Out; o++ {
			d := deltaOut[o]
			dst[b2o+o] += d
			for h, hv := range hidden {
				dst[w2o+o*m.Hidden+h] += d * hv
			}
		}
		for h := 0; h < m.Hidden; h++ {
			d := deltaHidden[h]
			dst[b1o+h] += d
			grow := dst[w1o+h*m.In : w1o+(h+1)*m.In]
			for i, xi := range s.X {
				grow[i] += d * xi
			}
		}
	}
}

// Predict implements Model: argmax over output probabilities.
func (m *MLP) Predict(p linalg.Vector, x []float64) int {
	_, probs := m.forward(p, x)
	best, bestV := 0, probs[0]
	for o := 1; o < m.Out; o++ {
		if probs[o] > bestV {
			best, bestV = o, probs[o]
		}
	}
	return best
}

// PredictScratchSize implements BatchPredictor: the hidden activations
// plus the output logits.
//
//snap:alloc-free
func (m *MLP) PredictScratchSize() int { return m.Hidden + m.Out }

// PredictInto implements BatchPredictor. Softmax is monotone, so the
// argmax over the output logits matches Predict's argmax over
// probabilities without the exp/normalize pass.
//
//snap:alloc-free
func (m *MLP) PredictInto(p linalg.Vector, x []float64, scratch []float64) int {
	w1o, b1o, w2o, b2o := m.offsets()
	hidden := scratch[:m.Hidden]
	logits := scratch[m.Hidden : m.Hidden+m.Out]
	for h := 0; h < m.Hidden; h++ {
		z := p[b1o+h]
		row := p[w1o+h*m.In : w1o+(h+1)*m.In]
		for i, xi := range x {
			z += row[i] * xi
		}
		hidden[h] = sigmoid(z)
	}
	best, bestV := 0, math.Inf(-1)
	for o := 0; o < m.Out; o++ {
		z := p[b2o+o]
		for h, hv := range hidden {
			z += p[w2o+o*m.Hidden+h] * hv
		}
		logits[o] = z
		if z > bestV {
			best, bestV = o, z
		}
	}
	return best
}

// InitParams implements Model: Xavier/Glorot uniform initialization.
func (m *MLP) InitParams(seed int64) linalg.Vector {
	rng := rand.New(rand.NewSource(seed))
	p := linalg.NewVector(m.NumParams())
	w1o, _, w2o, b2o := m.offsets()
	lim1 := math.Sqrt(6 / float64(m.In+m.Hidden))
	for i := w1o; i < w1o+m.In*m.Hidden; i++ {
		p[i] = lim1 * (2*rng.Float64() - 1)
	}
	lim2 := math.Sqrt(6 / float64(m.Hidden+m.Out))
	for i := w2o; i < b2o; i++ {
		p[i] = lim2 * (2*rng.Float64() - 1)
	}
	// Biases start at zero.
	return p
}

//snap:alloc-free
func (m *MLP) checkDim(p linalg.Vector) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("model: mlp params have %d entries, want %d", len(p), m.NumParams()))
	}
}

// softmax returns the stable softmax of logits.
func softmax(logits []float64) []float64 {
	maxZ := logits[0]
	for _, z := range logits[1:] {
		if z > maxZ {
			maxZ = z
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, z := range logits {
		e := math.Exp(z - maxZ)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}
