package model

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/snapml/snap/internal/linalg"
)

// Checkpoint format: a versioned, CRC-protected binary encoding of a flat
// parameter vector, so a converged edge model can be persisted and
// shipped to inference nodes.
//
//	magic "SNAP" | version u16 | dim u64 | dim × float64 | crc32 of payload
const (
	checkpointMagic   = "SNAP"
	checkpointVersion = 1
)

// SaveParams writes params to w in the checkpoint format.
func SaveParams(w io.Writer, params linalg.Vector) error {
	header := make([]byte, 0, 4+2+8)
	header = append(header, checkpointMagic...)
	header = binary.BigEndian.AppendUint16(header, checkpointVersion)
	header = binary.BigEndian.AppendUint64(header, uint64(len(params)))

	payload := make([]byte, 0, 8*len(params))
	for _, v := range params {
		payload = binary.BigEndian.AppendUint64(payload, math.Float64bits(v))
	}
	crc := crc32.ChecksumIEEE(payload)

	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("model: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("model: writing checkpoint payload: %w", err)
	}
	var tail [4]byte
	binary.BigEndian.PutUint32(tail[:], crc)
	if _, err := w.Write(tail[:]); err != nil {
		return fmt.Errorf("model: writing checkpoint checksum: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams, verifying magic,
// version, and checksum.
func LoadParams(r io.Reader) (linalg.Vector, error) {
	header := make([]byte, 4+2+8)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("model: reading checkpoint header: %w", err)
	}
	if string(header[:4]) != checkpointMagic {
		return nil, fmt.Errorf("model: bad checkpoint magic %q", header[:4])
	}
	if v := binary.BigEndian.Uint16(header[4:6]); v != checkpointVersion {
		return nil, fmt.Errorf("model: unsupported checkpoint version %d", v)
	}
	dim := binary.BigEndian.Uint64(header[6:14])
	const maxDim = 1 << 28 // 2 GiB of float64s — far above any SNAP model
	if dim > maxDim {
		return nil, fmt.Errorf("model: checkpoint dimension %d exceeds limit", dim)
	}
	payload := make([]byte, 8*dim)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("model: reading checkpoint payload: %w", err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("model: reading checkpoint checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("model: checkpoint checksum mismatch (got %08x, want %08x)", got, want)
	}
	out := linalg.NewVector(int(dim))
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[8*i : 8*i+8]))
	}
	return out, nil
}
