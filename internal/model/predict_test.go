package model

import (
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// randomRows builds n feature rows of dimension d.
func randomRows(rng *rand.Rand, n, d int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		xs[i] = row
	}
	return xs
}

// predictModels is the full built-in model zoo with a feature dimension
// for test inputs.
func predictModels() []struct {
	name     string
	m        Model
	features int
} {
	return []struct {
		name     string
		m        Model
		features int
	}{
		{"svm", NewLinearSVM(24), 24},
		{"logreg", NewLogisticRegression(24), 24},
		{"softmax", NewSoftmaxRegression(16, 10), 16},
		{"mlp", NewMLP(16, 8, 10), 16},
	}
}

// TestPredictBatchIntoMatchesPredict pins the batch path to the reference
// Predict implementation for every built-in model: the serving gateway
// swaps one for the other, so any divergence is a silent model change.
func TestPredictBatchIntoMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range predictModels() {
		params := tc.m.InitParams(7)
		xs := randomRows(rng, 64, tc.features)
		dst := make([]int, len(xs))
		var sc PredictScratch
		got := PredictBatchInto(tc.m, dst, params, xs, &sc)
		if len(got) != len(xs) {
			t.Fatalf("%s: PredictBatchInto returned %d labels for %d rows", tc.name, len(got), len(xs))
		}
		for i, x := range xs {
			if want := tc.m.Predict(params, x); got[i] != want {
				t.Errorf("%s: row %d: PredictBatchInto = %d, Predict = %d", tc.name, i, got[i], want)
			}
		}
	}
}

// TestPredictBatchIntoNilScratch covers the convenience path: a nil
// scratch must still produce correct labels.
func TestPredictBatchIntoNilScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(16, 8, 10)
	params := m.InitParams(3)
	xs := randomRows(rng, 8, 16)
	dst := make([]int, len(xs))
	got := PredictBatchInto(m, dst, params, xs, nil)
	for i, x := range xs {
		if want := m.Predict(params, x); got[i] != want {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want)
		}
	}
}

// TestPredictBatchIntoFallback checks models without the capability run
// through Model.Predict. The anonymous wrapper promotes only the Model
// methods, so the BatchPredictor type assertion fails while Predict
// still works.
func TestPredictBatchIntoFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inner := NewLinearSVM(8)
	var m Model = struct{ Model }{inner} // interface wrapper: no PredictInto
	params := inner.InitParams(4)
	xs := randomRows(rng, 16, 8)
	dst := make([]int, len(xs))
	got := PredictBatchInto(m, dst, params, xs, nil)
	for i, x := range xs {
		if want := inner.Predict(params, x); got[i] != want {
			t.Fatalf("row %d: got %d, want %d", i, got[i], want)
		}
	}
}

// TestPredictBatchIntoAllocFree is the steady-state allocation budget of
// the serving hot path's compute kernel: zero allocations per batch once
// the scratch is warm, for every built-in model.
func TestPredictBatchIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range predictModels() {
		params := tc.m.InitParams(5)
		xs := randomRows(rng, 32, tc.features)
		dst := make([]int, len(xs))
		var sc PredictScratch
		PredictBatchInto(tc.m, dst, params, xs, &sc) // warm the scratch
		allocs := testing.AllocsPerRun(100, func() {
			PredictBatchInto(tc.m, dst, params, xs, &sc)
		})
		if allocs != 0 {
			t.Errorf("%s: PredictBatchInto allocates %.1f/op in steady state, want 0", tc.name, allocs)
		}
	}
}

// TestAccuracyBatchMatchesAccuracy pins the scratch-reusing evaluator to
// the reference Accuracy.
func TestAccuracyBatchMatchesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, tc := range predictModels() {
		params := tc.m.InitParams(8)
		ds := &dataset.Dataset{NumFeature: tc.features, NumClasses: 10}
		for i := 0; i < 50; i++ {
			row := make([]float64, tc.features)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			ds.Samples = append(ds.Samples, dataset.Sample{X: row, Label: rng.Intn(2)})
		}
		want := Accuracy(tc.m, params, ds)
		got := AccuracyBatch(tc.m, params, ds, nil)
		if got != want {
			t.Errorf("%s: AccuracyBatch = %v, Accuracy = %v", tc.name, got, want)
		}
	}
	empty := &dataset.Dataset{}
	if got := AccuracyBatch(NewLinearSVM(2), linalg.NewVector(2), empty, nil); got != 0 {
		t.Errorf("empty dataset: AccuracyBatch = %v, want 0", got)
	}
}
