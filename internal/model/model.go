// Package model implements the machine-learning models SNAP trains: the
// linear SVM used by the paper's large-scale simulations, the 3-layer MLP
// used by its testbed experiments, and a logistic regression used by tests
// (its loss is smooth and strongly convex with L2 regularization, matching
// the convexity assumptions of the paper's Theorem 1).
//
// Every model exposes its parameters as a single flat vector so the
// consensus layer can mix, diff, and selectively transmit them without
// knowing the model's structure. All methods are pure functions of
// (params, batch) and are safe for concurrent use.
package model

import (
	"math"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// Model is a differentiable learner over a flat parameter vector.
type Model interface {
	// Name identifies the model family in logs and experiment output.
	Name() string
	// NumParams returns the length P of the flat parameter vector.
	NumParams() int
	// Loss returns the mean loss of params on batch (including any
	// regularization term).
	Loss(params linalg.Vector, batch []dataset.Sample) float64
	// Gradient returns ∇Loss(params) on batch as a fresh vector.
	Gradient(params linalg.Vector, batch []dataset.Sample) linalg.Vector
	// Predict returns the predicted class label for features x.
	Predict(params linalg.Vector, x []float64) int
	// InitParams returns a reasonable starting parameter vector using
	// randomness from seed (deterministic per seed).
	InitParams(seed int64) linalg.Vector
}

// Accuracy evaluates params on every sample in ds and returns the fraction
// predicted correctly. An empty dataset scores 0.
func Accuracy(m Model, params linalg.Vector, ds *dataset.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for _, s := range ds.Samples {
		if m.Predict(params, s.X) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

// MeanLoss evaluates the mean loss of params across the whole dataset in
// one call.
func MeanLoss(m Model, params linalg.Vector, ds *dataset.Dataset) float64 {
	return m.Loss(params, ds.Samples)
}

//snap:alloc-free
func sigmoid(z float64) float64 {
	// Numerically stable in both tails.
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// signedLabel maps a {0,1} class label to {-1,+1} for margin losses.
//
//snap:alloc-free
func signedLabel(label int) float64 {
	if label == 0 {
		return -1
	}
	return 1
}
