package model

import (
	"math"
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
)

// numericalGradCheck verifies m.Gradient against central finite differences
// on a random batch and random parameter point.
func numericalGradCheck(t *testing.T, m Model, batch []dataset.Sample, tol float64) {
	t.Helper()
	p := m.InitParams(123)
	analytic := m.Gradient(p, batch)
	const h = 1e-6
	// Check a sample of coordinates (all if small).
	step := 1
	if m.NumParams() > 200 {
		step = m.NumParams() / 97
	}
	for i := 0; i < m.NumParams(); i += step {
		orig := p[i]
		p[i] = orig + h
		up := m.Loss(p, batch)
		p[i] = orig - h
		down := m.Loss(p, batch)
		p[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
			t.Errorf("param %d: analytic grad %v vs numeric %v", i, analytic[i], numeric)
		}
	}
}

func creditBatch(n int, seed int64) []dataset.Sample {
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: n, Features: 10},
		rand.New(rand.NewSource(seed)))
	return ds.Samples
}

func TestSVMGradientNumerical(t *testing.T) {
	m := NewLinearSVM(10)
	// The hinge is non-differentiable exactly at margin 1, but random data
	// almost surely avoids that point.
	numericalGradCheck(t, m, creditBatch(20, 1), 1e-4)
}

func TestLogRegGradientNumerical(t *testing.T) {
	m := NewLogisticRegression(10)
	numericalGradCheck(t, m, creditBatch(20, 2), 1e-4)
}

func TestMLPGradientNumerical(t *testing.T) {
	m := NewMLP(16, 5, 3)
	rng := rand.New(rand.NewSource(3))
	batch := make([]dataset.Sample, 8)
	for i := range batch {
		x := make([]float64, 16)
		for j := range x {
			x[j] = rng.Float64()
		}
		batch[i] = dataset.Sample{X: x, Label: rng.Intn(3)}
	}
	numericalGradCheck(t, m, batch, 1e-3)
}

func TestSVMTrainsOnSeparableData(t *testing.T) {
	// Clearly separable 2-D data: label = x0 > 0.
	rng := rand.New(rand.NewSource(4))
	var samples []dataset.Sample
	for i := 0; i < 200; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		label := 0
		if x[0] > 0 {
			label = 1
		}
		// Margin gap.
		if math.Abs(x[0]) < 0.2 {
			continue
		}
		samples = append(samples, dataset.Sample{X: x, Label: label})
	}
	ds := &dataset.Dataset{Samples: samples, NumFeature: 2, NumClasses: 2}
	m := NewLinearSVM(2)
	w := m.InitParams(5)
	for step := 0; step < 300; step++ {
		g := m.Gradient(w, ds.Samples)
		w.AXPYInPlace(-0.1, g)
	}
	if acc := Accuracy(m, w, ds); acc < 0.97 {
		t.Errorf("SVM accuracy on separable data = %v, want ≥ 0.97", acc)
	}
}

func TestLogRegTrainsOnCredit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: 6000}, rng)
	train, test := ds.Split(0.8, rng)
	m := NewLogisticRegression(ds.NumFeature)
	p := m.InitParams(7)
	for step := 0; step < 600; step++ {
		g := m.Gradient(p, train.Batch(step, 128))
		p.AXPYInPlace(-0.5, g)
	}
	// Majority class is ~70%; a trained model must clearly beat it.
	if acc := Accuracy(m, p, test); acc < 0.80 {
		t.Errorf("logreg test accuracy = %v, want ≥ 0.80", acc)
	}
}

func TestMLPTrainsOnDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping MLP training in -short mode")
	}
	rng := rand.New(rand.NewSource(8))
	train, test := dataset.SyntheticDigits(
		dataset.DigitsConfig{Train: 1500, Test: 300, Side: 12, Noise: 0.2}, rng)
	m := NewMLP(train.NumFeature, 20, 10)
	p := m.InitParams(9)
	for step := 0; step < 400; step++ {
		g := m.Gradient(p, train.Batch(step, 64))
		p.AXPYInPlace(-0.5, g)
	}
	if acc := Accuracy(m, p, test); acc < 0.8 {
		t.Errorf("MLP test accuracy = %v, want ≥ 0.8", acc)
	}
}

func TestNumParams(t *testing.T) {
	if got := NewMLP(784, 30, 10).NumParams(); got != 784*30+30+30*10+10 {
		t.Errorf("MLP params = %d, want 23860", got)
	}
	if got := NewLinearSVM(24).NumParams(); got != 24 {
		t.Errorf("SVM params = %d, want 24 (paper: 24 parameters per SVM)", got)
	}
	if got := NewLogisticRegression(24).NumParams(); got != 25 {
		t.Errorf("logreg params = %d, want 25", got)
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	for _, m := range []Model{NewLinearSVM(5), NewLogisticRegression(5), NewMLP(4, 3, 2)} {
		a, b := m.InitParams(42), m.InitParams(42)
		if !a.Equal(b, 0) {
			t.Errorf("%s: InitParams not deterministic", m.Name())
		}
		c := m.InitParams(43)
		if a.Equal(c, 0) {
			t.Errorf("%s: different seeds produced identical params", m.Name())
		}
	}
}

func TestGradientDimensionPanics(t *testing.T) {
	for _, m := range []Model{NewLinearSVM(5), NewLogisticRegression(5), NewMLP(4, 3, 2)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: wrong-dim params did not panic", m.Name())
				}
			}()
			m.Gradient(linalg.NewVector(1), nil)
		}()
	}
}

func TestEmptyBatchGradient(t *testing.T) {
	m := NewLogisticRegression(3)
	p := m.InitParams(1)
	g := m.Gradient(p, nil)
	// Only the regularization term contributes.
	for j := 0; j < 3; j++ {
		want := m.lambda() * p[j]
		if math.Abs(g[j]-want) > 1e-15 {
			t.Errorf("empty-batch grad[%d] = %v, want %v", j, g[j], want)
		}
	}
	if g[3] != 0 {
		t.Errorf("bias grad = %v, want 0", g[3])
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	m := NewLinearSVM(2)
	if got := Accuracy(m, m.InitParams(1), &dataset.Dataset{NumFeature: 2}); got != 0 {
		t.Errorf("accuracy on empty dataset = %v, want 0", got)
	}
}

func TestPredictLabelsInRange(t *testing.T) {
	m := NewMLP(6, 4, 3)
	p := m.InitParams(11)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 50; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		if got := m.Predict(p, x); got < 0 || got >= 3 {
			t.Fatalf("Predict = %d out of range", got)
		}
	}
}

func TestSigmoidStable(t *testing.T) {
	if v := sigmoid(1000); v != 1 {
		t.Errorf("sigmoid(1000) = %v, want 1", v)
	}
	if v := sigmoid(-1000); v != 0 {
		t.Errorf("sigmoid(-1000) = %v, want 0", v)
	}
	if v := sigmoid(0); v != 0.5 {
		t.Errorf("sigmoid(0) = %v, want 0.5", v)
	}
}

func TestSoftplusStable(t *testing.T) {
	if v := softplus(100); v != 100 {
		t.Errorf("softplus(100) = %v, want 100", v)
	}
	if v := softplus(-100); v > 1e-40 {
		t.Errorf("softplus(-100) = %v, want ≈ 0", v)
	}
	if v := softplus(0); math.Abs(v-math.Log(2)) > 1e-12 {
		t.Errorf("softplus(0) = %v, want ln 2", v)
	}
}

func TestSoftmaxNormalized(t *testing.T) {
	probs := softmax([]float64{1000, 999, 998})
	var sum float64
	for _, p := range probs {
		if math.IsNaN(p) || p < 0 {
			t.Fatalf("softmax produced %v", probs)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sums to %v", sum)
	}
	if probs[0] <= probs[1] || probs[1] <= probs[2] {
		t.Errorf("softmax not order preserving: %v", probs)
	}
}

func TestMeanLossMatchesLoss(t *testing.T) {
	m := NewLinearSVM(10)
	batch := creditBatch(30, 20)
	ds := &dataset.Dataset{Samples: batch, NumFeature: 10, NumClasses: 2}
	p := m.InitParams(21)
	if got, want := MeanLoss(m, p, ds), m.Loss(p, batch); got != want {
		t.Errorf("MeanLoss = %v, Loss = %v", got, want)
	}
}
