package codec

import (
	"math/rand"
	"testing"
)

// FuzzDecode hardens the wire parser: arbitrary bytes must never panic,
// and any frame that decodes must re-encode to a frame that decodes to
// the same update.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		u := randomUpdate(rng, 1+rng.Intn(30))
		if frame, _, err := Encode(u); err == nil {
			f.Add(frame)
		}
		if frame, _, err := EncodeLossy(u); err == nil {
			f.Add(frame)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// A frame with a 24-byte transport trace block still prefixed — what
	// the decoder would see if a transport ever failed to strip the block.
	// It must be rejected (or decoded as garbage-that-validates), never
	// panic on.
	if frame, _, err := Encode(randomUpdate(rng, 12)); err == nil {
		block := make([]byte, 24, 24+len(frame))
		block[0], block[7], block[23] = 0xde, 0xad, 0x07
		f.Add(append(block, frame...))
	}

	f.Fuzz(func(t *testing.T, frame []byte) {
		u, err := Decode(frame)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("Decode returned invalid update: %v", err)
		}
		// Round trip through the full-precision encoder.
		re, _, err := Encode(u)
		if err != nil {
			t.Fatalf("re-encode of decoded update failed: %v", err)
		}
		u2, err := Decode(re)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		if u2.NumParams != u.NumParams || len(u2.Indices) != len(u.Indices) {
			t.Fatal("re-encode round trip changed structure")
		}
	})
}

// FuzzDiffApply checks the end-to-end selective-update path under
// arbitrary numeric inputs.
func FuzzDiffApply(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		if len(raw) == 0 || len(raw) > 256 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		n := len(raw)
		baseline := make([]float64, n)
		current := make([]float64, n)
		for i := range baseline {
			baseline[i] = rng.NormFloat64()
			current[i] = baseline[i] + float64(int8(raw[i]))/64
		}
		threshold := float64(raw[0]) / 255
		u, err := Diff(0, 0, baseline, current, threshold)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, err := Encode(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		dst := append([]float64(nil), baseline...)
		if err := Apply(dst, got); err != nil {
			t.Fatal(err)
		}
		for i := range dst {
			d := dst[i] - current[i]
			if d < 0 {
				d = -d
			}
			if d > threshold {
				t.Fatalf("residual %v exceeds threshold %v at %d", d, threshold, i)
			}
		}
	})
}
