package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Float32 wire formats — an extension beyond the paper: SNAP's selective
// transmission composes with value quantization. Parameters are carried as
// float32 instead of float64, halving the value bytes at a precision loss
// (~1e-7 relative) far below any APE threshold the schedule ever uses.
//
//	format 3 (unchanged-list, f32):  4 + 4M + 4(N−M) = 4 + 4N bytes
//	format 4 (index-value,  f32):   8(N−M) bytes
//
// Remarkably the crossover rule is unchanged: format 3 is smaller iff
// 4+4N < 8(N−M) ⟺ N > 2M+1 — the same rule as the paper's 64-bit formats.
const (
	// FormatUnchangedList32 is format 1 with float32 values.
	FormatUnchangedList32 Format = 3
	// FormatIndexValue32 is format 2 with float32 values.
	FormatIndexValue32 Format = 4
)

// ChooseFormat32 returns the cheaper float32 layout (same rule as
// ChooseFormat).
//
//snap:alloc-free
func ChooseFormat32(n, m int) Format {
	if n > 2*m+1 {
		return FormatUnchangedList32
	}
	return FormatIndexValue32
}

// EncodeLossy serializes u with float32 values in the cheaper float32
// format. Values are rounded to float32 — the receiver reconstructs them
// with ~1e-7 relative error, which is orders of magnitude below SNAP's
// send thresholds.
func EncodeLossy(u *Update) ([]byte, Format, error) {
	return EncodeLossyTo(nil, u)
}

// EncodeLossyTo is EncodeLossy into a caller-owned buffer: the frame is
// appended to buf[:0] (buf may be nil) and returned; see EncodeTo for
// the ownership rule.
//
//snap:alloc-free
func EncodeLossyTo(buf []byte, u *Update) ([]byte, Format, error) {
	if err := u.Validate(); err != nil {
		return nil, 0, err
	}
	f := ChooseFormat32(u.NumParams, u.NumWithheld())
	out, err := encodeAs32(buf, u, f)
	return out, f, err
}

//snap:alloc-free
func encodeAs32(buf []byte, u *Update, f Format) ([]byte, error) {
	n, m := u.NumParams, u.NumWithheld()
	buf = growFrame(buf, HeaderBytes+PayloadBytes(n, m, f))
	buf = append(buf[:0], byte(f))
	buf = binary.BigEndian.AppendUint32(buf, uint32(u.Sender))
	buf = binary.BigEndian.AppendUint32(buf, uint32(u.Round))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))

	switch f {
	case FormatUnchangedList32:
		buf = binary.BigEndian.AppendUint32(buf, uint32(m))
		next := 0
		for idx := 0; idx < n; idx++ {
			if next < len(u.Indices) && u.Indices[next] == idx {
				next++
				continue
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(idx))
		}
		for _, v := range u.Values {
			buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(v)))
		}
	case FormatIndexValue32:
		for i, idx := range u.Indices {
			buf = binary.BigEndian.AppendUint32(buf, uint32(idx))
			buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(u.Values[i])))
		}
	default:
		return nil, fmt.Errorf("codec: encodeAs32 got non-float32 format %d", f)
	}
	return buf, nil
}

// decode32 parses the float32 frame bodies (called from DecodeInto,
// which has already reset u's slices; same strictly-increasing
// unchanged-index rule as the float64 formats).
//
//snap:alloc-free
//snap:borrows body
func decode32(f Format, u *Update, body []byte) error {
	switch f {
	case FormatUnchangedList32:
		if len(body) < 4 {
			return fmt.Errorf("codec: truncated unchanged-list32 frame")
		}
		m := int(binary.BigEndian.Uint32(body[:4]))
		if m > u.NumParams {
			return fmt.Errorf("codec: unchanged count %d exceeds N=%d", m, u.NumParams)
		}
		body = body[4:]
		want := 4*m + 4*(u.NumParams-m)
		if len(body) != want {
			return fmt.Errorf("codec: unchanged-list32 body is %d bytes, want %d", len(body), want)
		}
		u.grow(u.NumParams - m)
		if err := complementInto(u, body[:4*m], m); err != nil {
			return err
		}
		body = body[4*m:]
		for i := 0; i < u.NumParams-m; i++ {
			u.Values = append(u.Values, float64(math.Float32frombits(binary.BigEndian.Uint32(body[4*i:4*i+4]))))
		}
		return nil
	case FormatIndexValue32:
		if len(body)%8 != 0 {
			return fmt.Errorf("codec: index-value32 body length %d not a multiple of 8", len(body))
		}
		count := len(body) / 8
		u.grow(count)
		for i := 0; i < count; i++ {
			u.Indices = append(u.Indices, int(binary.BigEndian.Uint32(body[8*i:8*i+4])))
			u.Values = append(u.Values, float64(math.Float32frombits(binary.BigEndian.Uint32(body[8*i+4:8*i+8]))))
		}
		if !sort.IntsAreSorted(u.Indices) {
			return fmt.Errorf("codec: index-value32 indices not sorted")
		}
		return nil
	default:
		return fmt.Errorf("codec: decode32 got non-float32 format %d", f)
	}
}
