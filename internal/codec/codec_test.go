package codec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestChooseFormatRule(t *testing.T) {
	cases := []struct {
		n, m int
		want Format
	}{
		{100, 0, FormatUnchangedList},  // nothing withheld: list of 0 indices wins
		{100, 49, FormatUnchangedList}, // 100 > 99
		{100, 50, FormatIndexValue},    // 100 <= 101
		{100, 99, FormatIndexValue},
		{3, 1, FormatIndexValue},    // 3 <= 3
		{4, 1, FormatUnchangedList}, // 4 > 3
		{1, 0, FormatIndexValue},    // 1 <= 1
	}
	for _, tc := range cases {
		if got := ChooseFormat(tc.n, tc.m); got != tc.want {
			t.Errorf("ChooseFormat(%d, %d) = %v, want %v", tc.n, tc.m, got, tc.want)
		}
	}
}

func TestPayloadBytesFormulas(t *testing.T) {
	// Paper §IV-C: 4+8N−4M for format 1, 12(N−M) for format 2.
	if got := PayloadBytes(100, 30, FormatUnchangedList); got != 4+8*100-4*30 {
		t.Errorf("format-1 size = %d, want %d", got, 4+8*100-4*30)
	}
	if got := PayloadBytes(100, 30, FormatIndexValue); got != 12*70 {
		t.Errorf("format-2 size = %d, want %d", got, 12*70)
	}
}

// Property: the selection rule always picks the byte-minimal format.
func TestChooseFormatIsOptimal(t *testing.T) {
	f := func(nRaw uint16, mRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		m := int(mRaw) % (n + 1)
		chosen := ChooseFormat(n, m)
		p1 := PayloadBytes(n, m, FormatUnchangedList)
		p2 := PayloadBytes(n, m, FormatIndexValue)
		best := p1
		if p2 < best {
			best = p2
		}
		return PayloadBytes(n, m, chosen) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomUpdate(rng *rand.Rand, n int) *Update {
	u := &Update{Sender: rng.Intn(100), Round: rng.Intn(1000), NumParams: n}
	for idx := 0; idx < n; idx++ {
		if rng.Float64() < 0.5 {
			u.Indices = append(u.Indices, idx)
			u.Values = append(u.Values, rng.NormFloat64())
		}
	}
	return u
}

func updatesEqual(a, b *Update) bool {
	if a.Sender != b.Sender || a.Round != b.Round || a.NumParams != b.NumParams {
		return false
	}
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] || a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundTripBothFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		u := randomUpdate(rng, 1+rng.Intn(40))
		for _, f := range []Format{FormatUnchangedList, FormatIndexValue} {
			frame, err := EncodeAs(u, f)
			if err != nil {
				t.Fatalf("EncodeAs(%v): %v", f, err)
			}
			wantLen := HeaderBytes + PayloadBytes(u.NumParams, u.NumWithheld(), f)
			if len(frame) != wantLen {
				t.Fatalf("format %v frame is %d bytes, want %d", f, len(frame), wantLen)
			}
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("Decode(%v): %v", f, err)
			}
			if !updatesEqual(u, got) {
				t.Fatalf("round trip mismatch in %v:\n in: %+v\nout: %+v", f, u, got)
			}
		}
	}
}

func TestEncodePicksCheaperFormat(t *testing.T) {
	// Almost everything updated → few withheld → format 1.
	u := &Update{NumParams: 50}
	for i := 0; i < 48; i++ {
		u.Indices = append(u.Indices, i)
		u.Values = append(u.Values, float64(i))
	}
	_, f, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatUnchangedList {
		t.Errorf("dense update encoded as %v, want unchanged-list", f)
	}
	// Almost nothing updated → format 2.
	u2 := &Update{NumParams: 50, Indices: []int{3}, Values: []float64{1}}
	_, f2, err := Encode(u2)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != FormatIndexValue {
		t.Errorf("sparse update encoded as %v, want index-value", f2)
	}
}

// Property: encode/decode round trip preserves arbitrary updates in
// whichever format Encode chooses.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUpdate(rng, 1+int(nRaw)%64)
		frame, _, err := Encode(u)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		return updatesEqual(u, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadUpdates(t *testing.T) {
	cases := []struct {
		name string
		u    Update
	}{
		{"lenMismatch", Update{NumParams: 5, Indices: []int{1}, Values: nil}},
		{"unsorted", Update{NumParams: 5, Indices: []int{2, 1}, Values: []float64{1, 2}}},
		{"duplicate", Update{NumParams: 5, Indices: []int{1, 1}, Values: []float64{1, 2}}},
		{"outOfRange", Update{NumParams: 5, Indices: []int{7}, Values: []float64{1}}},
		{"negativeN", Update{NumParams: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.u.Validate(); err == nil {
				t.Error("invalid update accepted")
			}
			if _, _, err := Encode(&tc.u); err == nil {
				t.Error("Encode accepted invalid update")
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		append([]byte{99}, make([]byte, 20)...), // unknown format tag
		append([]byte{2}, make([]byte, HeaderBytes-1+5)...), // format 2, body not multiple of 12
	}
	for i, frame := range cases {
		if _, err := Decode(frame); err == nil {
			t.Errorf("case %d: garbage frame decoded", i)
		}
	}
}

func TestDecodeRejectsTruncatedUnchangedList(t *testing.T) {
	u := &Update{NumParams: 10, Indices: []int{0, 1, 2, 3, 4, 5, 6, 7}, Values: make([]float64, 8)}
	frame, err := EncodeAs(u, FormatUnchangedList)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame[:len(frame)-3]); err == nil {
		t.Error("truncated frame decoded")
	}
}

func TestApply(t *testing.T) {
	dst := []float64{0, 0, 0, 0}
	u := &Update{NumParams: 4, Indices: []int{1, 3}, Values: []float64{5, -2}}
	if err := Apply(dst, u); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 0, -2}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestApplyDimensionError(t *testing.T) {
	u := &Update{NumParams: 4, Indices: []int{0}, Values: []float64{1}}
	if err := Apply([]float64{0, 0}, u); err == nil {
		t.Error("Apply with wrong target length accepted")
	}
}

func TestDiffThreshold(t *testing.T) {
	baseline := []float64{1, 2, 3, 4}
	current := []float64{1, 2.5, 3.001, 5}
	u, err := Diff(7, 3, baseline, current, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Sender != 7 || u.Round != 3 {
		t.Errorf("metadata lost: %+v", u)
	}
	if len(u.Indices) != 2 || u.Indices[0] != 1 || u.Indices[1] != 3 {
		t.Fatalf("Diff indices = %v, want [1 3]", u.Indices)
	}
	if u.Values[0] != 2.5 || u.Values[1] != 5 {
		t.Errorf("Diff values = %v", u.Values)
	}
}

func TestDiffZeroThresholdSkipsExactlyUnchanged(t *testing.T) {
	baseline := []float64{1, 2, 3}
	current := []float64{1, 2, 3.5}
	u, err := Diff(0, 0, baseline, current, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != 1 || u.Indices[0] != 2 {
		t.Errorf("Diff(0) indices = %v, want [2]", u.Indices)
	}
	// Negative threshold behaves as zero.
	u2, err := Diff(0, 0, baseline, current, -5)
	if err != nil {
		t.Fatal(err)
	}
	if len(u2.Indices) != 1 {
		t.Errorf("Diff(-5) indices = %v, want [2]", u2.Indices)
	}
}

func TestDiffLengthMismatch(t *testing.T) {
	if _, err := Diff(0, 0, []float64{1}, []float64{1, 2}, 0); err == nil {
		t.Error("mismatched Diff accepted")
	}
}

// Property: Diff → Encode → Decode → Apply reconstructs the current vector
// at every transmitted index and leaves the rest at baseline, with the
// residual bounded by the threshold.
func TestDiffApplyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, thRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%32
		threshold := float64(thRaw) / 255.0
		baseline := make([]float64, n)
		current := make([]float64, n)
		for i := range baseline {
			baseline[i] = rng.NormFloat64()
			current[i] = baseline[i] + rng.NormFloat64()
		}
		u, err := Diff(1, 1, baseline, current, threshold)
		if err != nil {
			return false
		}
		frame, _, err := Encode(u)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		reconstructed := append([]float64(nil), baseline...)
		if err := Apply(reconstructed, got); err != nil {
			return false
		}
		for i := range reconstructed {
			if math.Abs(reconstructed[i]-current[i]) > threshold {
				return false
			}
		}
		return sort.IntsAreSorted(got.Indices)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFormatString(t *testing.T) {
	if FormatUnchangedList.String() != "unchanged-list" ||
		FormatIndexValue.String() != "index-value" {
		t.Error("format names wrong")
	}
	if Format(9).String() != "Format(9)" {
		t.Errorf("unknown format name = %q", Format(9).String())
	}
}
