// Package codec implements SNAP's two parameter-update wire formats
// (paper §IV-C, Fig. 3) and the rule for choosing between them.
//
// A SNAP update carries the subset of a node's N parameters that changed
// enough to be worth sending; the M withheld parameters are *not* encoded
// and the receiver keeps using its last received values. Two frame layouts
// are defined, sized exactly as the paper counts them (4-byte integers,
// 8-byte doubles):
//
//	format 1 (unchanged-list): count of unchanged params + their indices,
//	  then the N−M updated values in index order → 4 + 4M + 8(N−M)
//	  = 4 + 8N − 4M bytes.
//	format 2 (index-value pairs): each updated parameter as index+value
//	  → 12(N−M) bytes.
//
// Format 1 is smaller iff N > 2M+1, which is exactly ChooseFormat's rule.
//
// The actual byte encodings add a fixed 13-byte header (format tag, sender,
// round, N) for framing and sanity checks; PayloadBytes reports the
// paper-accounted size, HeaderBytes the constant overhead.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Format identifies a frame layout.
type Format uint8

const (
	// FormatUnchangedList is the paper's first frame type: the indices of
	// the *unchanged* parameters, then all updated values in order.
	FormatUnchangedList Format = 1
	// FormatIndexValue is the paper's second frame type: (index, value)
	// pairs for every updated parameter.
	FormatIndexValue Format = 2
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatUnchangedList:
		return "unchanged-list"
	case FormatIndexValue:
		return "index-value"
	case FormatUnchangedList32:
		return "unchanged-list-f32"
	case FormatIndexValue32:
		return "index-value-f32"
	default:
		return fmt.Sprintf("Format(%d)", uint8(f))
	}
}

// HeaderBytes is the constant framing overhead of the concrete encoding
// (1 format tag + 4 sender + 4 round + 4 N). The paper's cost formulas
// exclude it; metrics may count it separately.
const HeaderBytes = 13

// Update is one node's selective parameter transmission for a round.
//
//snap:wire
type Update struct {
	Sender    int       `wire:"sender"`
	Round     int       `wire:"round"`
	NumParams int       `wire:"num_params"` // N: total parameters in the model
	Indices   []int     `wire:"indices"`    // strictly increasing indices of updated parameters
	Values    []float64 `wire:"values"`     // Values[i] is the new value of parameter Indices[i]
}

// Validate checks structural invariants: matching lengths, indices sorted,
// unique and in [0, NumParams).
//
//snap:alloc-free
func (u *Update) Validate() error {
	if u.NumParams < 0 {
		return fmt.Errorf("codec: negative NumParams %d", u.NumParams)
	}
	if len(u.Indices) != len(u.Values) {
		return fmt.Errorf("codec: %d indices but %d values", len(u.Indices), len(u.Values))
	}
	prev := -1
	for _, idx := range u.Indices {
		if idx <= prev {
			return fmt.Errorf("codec: indices not strictly increasing at %d", idx)
		}
		if idx >= u.NumParams {
			return fmt.Errorf("codec: index %d out of range [0,%d)", idx, u.NumParams)
		}
		prev = idx
	}
	return nil
}

// NumWithheld returns M, the count of parameters not in this update.
//
//snap:alloc-free
func (u *Update) NumWithheld() int { return u.NumParams - len(u.Indices) }

// ChooseFormat returns the cheaper frame layout for n total parameters of
// which m are withheld: format 1 iff n > 2m+1 (paper §IV-C).
//
//snap:alloc-free
func ChooseFormat(n, m int) Format {
	if n > 2*m+1 {
		return FormatUnchangedList
	}
	return FormatIndexValue
}

// FullFrameBytes returns the size of a full-parameter-send frame for a
// model of numParams parameters — the baseline the paper's communication
// savings are measured against, and the ground truth for the tracer's
// bytes-saved accounting. A full send withholds nothing (m = 0) and the
// chooser always picks the same layout it would pick for a real full
// send, so the figure matches what BuildUpdate+Encode would emit.
//
//snap:alloc-free
func FullFrameBytes(numParams int, lossy bool) int {
	f := ChooseFormat(numParams, 0)
	if lossy {
		f = ChooseFormat32(numParams, 0)
	}
	return HeaderBytes + PayloadBytes(numParams, 0, f)
}

// PayloadBytes returns the paper-accounted frame size for n total
// parameters, m withheld, in the given format: 4+8n−4m for format 1,
// 12(n−m) for format 2.
//
//snap:alloc-free
func PayloadBytes(n, m int, f Format) int {
	switch f {
	case FormatUnchangedList:
		return 4 + 8*n - 4*m
	case FormatIndexValue:
		return 12 * (n - m)
	case FormatUnchangedList32:
		return 4 + 4*n
	case FormatIndexValue32:
		return 8 * (n - m)
	default:
		panic(fmt.Sprintf("codec: unknown format %d", f))
	}
}

// Encode serializes u in the cheaper of the two formats and returns the
// frame plus the chosen format. The frame is HeaderBytes + PayloadBytes
// long.
func Encode(u *Update) ([]byte, Format, error) {
	return EncodeTo(nil, u)
}

// EncodeTo is Encode into a caller-owned buffer: the frame is appended
// to buf[:0] (reusing its capacity; buf may be nil) and returned. The
// returned slice aliases buf when the capacity sufficed, so the caller
// owns exactly one buffer — the returned one — and must not reuse it
// while the frame is still referenced by a transport.
//
//snap:alloc-free
func EncodeTo(buf []byte, u *Update) ([]byte, Format, error) {
	if err := u.Validate(); err != nil {
		return nil, 0, err
	}
	f := ChooseFormat(u.NumParams, u.NumWithheld())
	out, err := EncodeAsTo(buf, u, f)
	return out, f, err
}

// EncodeAs serializes u using a specific format (used by tests and
// ablations; Encode picks the cheaper one automatically).
func EncodeAs(u *Update, f Format) ([]byte, error) {
	return EncodeAsTo(nil, u, f)
}

// EncodeAsTo is EncodeAs into a caller-owned buffer (see EncodeTo for
// the ownership rule).
//
//snap:alloc-free
func EncodeAsTo(buf []byte, u *Update, f Format) ([]byte, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	n, m := u.NumParams, u.NumWithheld()
	buf = growFrame(buf, HeaderBytes+PayloadBytes(n, m, f))
	buf = append(buf[:0], byte(f))
	buf = binary.BigEndian.AppendUint32(buf, uint32(u.Sender))
	buf = binary.BigEndian.AppendUint32(buf, uint32(u.Round))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))

	switch f {
	case FormatUnchangedList:
		buf = binary.BigEndian.AppendUint32(buf, uint32(m))
		// Emit the complement of u.Indices in increasing order.
		next := 0 // cursor into u.Indices
		for idx := 0; idx < n; idx++ {
			if next < len(u.Indices) && u.Indices[next] == idx {
				next++
				continue
			}
			buf = binary.BigEndian.AppendUint32(buf, uint32(idx))
		}
		for _, v := range u.Values {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	case FormatIndexValue:
		for i, idx := range u.Indices {
			buf = binary.BigEndian.AppendUint32(buf, uint32(idx))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(u.Values[i]))
		}
	default:
		return nil, fmt.Errorf("codec: unknown format %d", f)
	}
	return buf, nil
}

// Decode parses a frame produced by Encode/EncodeAs.
func Decode(frame []byte) (*Update, error) {
	u := &Update{}
	if err := DecodeInto(u, frame); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeInto is Decode into a caller-owned Update: u's Indices/Values
// slices are reused via append(s[:0], ...) so a warm Update decodes
// without allocating. All scalar fields of u are overwritten. The
// decoded slices never alias frame; the frame may be recycled as soon
// as DecodeInto returns.
//
// DecodeInto is stricter than the wire format strictly requires: the
// unchanged-index list of formats 1 and 3 must be strictly increasing
// (which Encode always produces), so the complement can be emitted with
// a single cursor walk instead of a per-frame set.
//
//snap:alloc-free
//snap:borrows frame
func DecodeInto(u *Update, frame []byte) error {
	if len(frame) < HeaderBytes {
		return fmt.Errorf("codec: frame too short (%d bytes)", len(frame))
	}
	f := Format(frame[0])
	u.Sender = int(binary.BigEndian.Uint32(frame[1:5]))
	u.Round = int(binary.BigEndian.Uint32(frame[5:9]))
	u.NumParams = int(binary.BigEndian.Uint32(frame[9:13]))
	u.Indices = u.Indices[:0]
	u.Values = u.Values[:0]
	body := frame[HeaderBytes:]

	switch f {
	case FormatUnchangedList:
		if len(body) < 4 {
			return fmt.Errorf("codec: truncated unchanged-list frame")
		}
		m := int(binary.BigEndian.Uint32(body[:4]))
		if m > u.NumParams {
			return fmt.Errorf("codec: unchanged count %d exceeds N=%d", m, u.NumParams)
		}
		body = body[4:]
		want := 4*m + 8*(u.NumParams-m)
		if len(body) != want {
			return fmt.Errorf("codec: unchanged-list body is %d bytes, want %d", len(body), want)
		}
		u.grow(u.NumParams - m)
		if err := complementInto(u, body[:4*m], m); err != nil {
			return err
		}
		body = body[4*m:]
		for i := 0; i < u.NumParams-m; i++ {
			u.Values = append(u.Values, math.Float64frombits(binary.BigEndian.Uint64(body[8*i:8*i+8])))
		}
	case FormatUnchangedList32, FormatIndexValue32:
		if err := decode32(f, u, body); err != nil {
			return err
		}
	case FormatIndexValue:
		if len(body)%12 != 0 {
			return fmt.Errorf("codec: index-value body length %d not a multiple of 12", len(body))
		}
		count := len(body) / 12
		u.grow(count)
		for i := 0; i < count; i++ {
			u.Indices = append(u.Indices, int(binary.BigEndian.Uint32(body[12*i:12*i+4])))
			u.Values = append(u.Values, math.Float64frombits(binary.BigEndian.Uint64(body[12*i+4:12*i+12])))
		}
		if !sort.IntsAreSorted(u.Indices) {
			return fmt.Errorf("codec: index-value indices not sorted")
		}
	default:
		return fmt.Errorf("codec: unknown format tag %d", frame[0])
	}
	if err := u.Validate(); err != nil {
		return fmt.Errorf("codec: decoded frame invalid: %w", err)
	}
	return nil
}

// growFrame returns a length-0 buffer with capacity for at least need
// bytes, reusing buf's backing array when it suffices. A warm encode
// path therefore never allocates; a cold one allocates exactly once, at
// the final frame size.
//
//snap:allocs-amortized
func growFrame(buf []byte, need int) []byte {
	if cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	return buf[:0]
}

// grow ensures u's (already length-0) Indices and Values slices can hold
// count entries without append growth, so a cold Update costs exactly one
// allocation per slice instead of a geometric growth sequence.
//
//snap:allocs-amortized
func (u *Update) grow(count int) {
	if cap(u.Indices) < count {
		u.Indices = make([]int, 0, count)
	}
	if cap(u.Values) < count {
		u.Values = make([]float64, 0, count)
	}
}

// complementInto appends to u.Indices the complement of the m big-endian
// uint32 unchanged indices in raw, which must be strictly increasing and
// within [0, u.NumParams).
//
//snap:alloc-free
//snap:borrows raw
func complementInto(u *Update, raw []byte, m int) error {
	next := 0 // next parameter index not yet emitted
	prev := -1
	for i := 0; i < m; i++ {
		idx := int(binary.BigEndian.Uint32(raw[4*i : 4*i+4]))
		if idx <= prev || idx >= u.NumParams {
			return fmt.Errorf("codec: bad unchanged index %d", idx)
		}
		prev = idx
		for ; next < idx; next++ {
			u.Indices = append(u.Indices, next)
		}
		next = idx + 1
	}
	for ; next < u.NumParams; next++ {
		u.Indices = append(u.Indices, next)
	}
	return nil
}

// Apply overwrites dst's entries at u.Indices with u.Values. dst must have
// length u.NumParams.
//
//snap:alloc-free
func Apply(dst []float64, u *Update) error {
	if len(dst) != u.NumParams {
		return fmt.Errorf("codec: Apply target has %d params, update says %d", len(dst), u.NumParams)
	}
	if err := u.Validate(); err != nil {
		return err
	}
	for i, idx := range u.Indices {
		dst[idx] = u.Values[i]
	}
	return nil
}

// Diff builds the Update a sender should transmit given the receiver-known
// baseline and the sender's current parameters: every index whose absolute
// accumulated change exceeds threshold is included. threshold < 0 is
// treated as 0 (send every changed parameter — the SNAP-0 scheme).
func Diff(sender, round int, baseline, current []float64, threshold float64) (*Update, error) {
	u := &Update{}
	if err := DiffInto(u, sender, round, baseline, current, threshold); err != nil {
		return nil, err
	}
	return u, nil
}

// DiffInto is Diff into a caller-owned Update, reusing u's Indices and
// Values capacity. All fields of u are overwritten.
//
//snap:alloc-free
func DiffInto(u *Update, sender, round int, baseline, current []float64, threshold float64) error {
	if len(baseline) != len(current) {
		return fmt.Errorf("codec: Diff length mismatch %d vs %d", len(baseline), len(current))
	}
	if threshold < 0 {
		threshold = 0
	}
	u.Sender, u.Round, u.NumParams = sender, round, len(current)
	u.Indices = u.Indices[:0]
	u.Values = u.Values[:0]
	u.grow(len(current))
	for idx := range current {
		delta := math.Abs(current[idx] - baseline[idx])
		if delta > threshold {
			u.Indices = append(u.Indices, idx)
			u.Values = append(u.Values, current[idx])
		}
	}
	return nil
}
