package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestEncodeToMatchesEncode pins the buffer-reusing encoders to the
// allocating ones byte-for-byte, across formats and withheld fractions.
func TestEncodeToMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var buf []byte
	for trial := 0; trial < 50; trial++ {
		u := randomUpdate(rng, 1+rng.Intn(64))

		want, wantF, err := Encode(u)
		if err != nil {
			t.Fatal(err)
		}
		var gotF Format
		buf, gotF, err = EncodeTo(buf, u)
		if err != nil {
			t.Fatal(err)
		}
		if gotF != wantF || !bytes.Equal(buf, want) {
			t.Fatalf("trial %d: EncodeTo (format %v) differs from Encode (format %v)", trial, gotF, wantF)
		}

		wantL, wantLF, err := EncodeLossy(u)
		if err != nil {
			t.Fatal(err)
		}
		buf, gotF, err = EncodeLossyTo(buf, u)
		if err != nil {
			t.Fatal(err)
		}
		if gotF != wantLF || !bytes.Equal(buf, wantL) {
			t.Fatalf("trial %d: EncodeLossyTo differs from EncodeLossy", trial)
		}
	}
}

// TestDecodeIntoMatchesDecode round-trips random updates through a
// single reused Update across all four wire formats.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var u Update
	for trial := 0; trial < 50; trial++ {
		orig := randomUpdate(rng, 1+rng.Intn(64))
		for _, lossy := range []bool{false, true} {
			var frame []byte
			var err error
			if lossy {
				frame, _, err = EncodeLossy(orig)
			} else {
				frame, _, err = Encode(orig)
			}
			if err != nil {
				t.Fatal(err)
			}
			want, err := Decode(frame)
			if err != nil {
				t.Fatal(err)
			}
			if err := DecodeInto(&u, frame); err != nil {
				t.Fatal(err)
			}
			if u.Sender != want.Sender || u.Round != want.Round || u.NumParams != want.NumParams {
				t.Fatalf("trial %d lossy=%v: header mismatch", trial, lossy)
			}
			if len(u.Indices) != len(want.Indices) {
				t.Fatalf("trial %d lossy=%v: %d indices, want %d", trial, lossy, len(u.Indices), len(want.Indices))
			}
			for i := range u.Indices {
				if u.Indices[i] != want.Indices[i] ||
					math.Float64bits(u.Values[i]) != math.Float64bits(want.Values[i]) {
					t.Fatalf("trial %d lossy=%v: entry %d differs", trial, lossy, i)
				}
			}
		}
	}
}

// TestDecodeIntoRejectsUnsortedUnchanged documents the stricter contract:
// unchanged-index lists must be strictly increasing on the wire.
func TestDecodeIntoRejectsUnsortedUnchanged(t *testing.T) {
	u := &Update{Sender: 1, Round: 2, NumParams: 6, Indices: []int{0, 3, 5}, Values: []float64{1, 2, 3}}
	frame, err := EncodeAs(u, FormatUnchangedList)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the two unchanged indices (bytes 17..25 hold them after the
	// header and the 4-byte count).
	bad := append([]byte(nil), frame...)
	copy(bad[17:21], frame[21:25])
	copy(bad[21:25], frame[17:21])
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted out-of-order unchanged indices")
	}
}

// TestDiffIntoMatchesDiff pins DiffInto to Diff with a reused Update.
func TestDiffIntoMatchesDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var u Update
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		baseline := make([]float64, n)
		current := make([]float64, n)
		for i := range baseline {
			baseline[i] = rng.NormFloat64()
			current[i] = baseline[i] + rng.NormFloat64()*0.1
		}
		threshold := rng.Float64() * 0.1
		want, err := Diff(3, trial, baseline, current, threshold)
		if err != nil {
			t.Fatal(err)
		}
		if err := DiffInto(&u, 3, trial, baseline, current, threshold); err != nil {
			t.Fatal(err)
		}
		if u.NumParams != want.NumParams || len(u.Indices) != len(want.Indices) {
			t.Fatalf("trial %d: structure mismatch", trial)
		}
		for i := range u.Indices {
			if u.Indices[i] != want.Indices[i] ||
				math.Float64bits(u.Values[i]) != math.Float64bits(want.Values[i]) {
				t.Fatalf("trial %d: entry %d differs", trial, i)
			}
		}
	}
}

// TestCodecReuseAllocFree pins the steady-state budget of the reusable
// codec surface to zero allocations per cycle.
func TestCodecReuseAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	orig := randomUpdate(rng, 48)
	buf, _, err := EncodeTo(nil, orig)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), buf...)
	var dec Update
	if err := DecodeInto(&dec, frame); err != nil {
		t.Fatal(err)
	}
	baseline := make([]float64, 48)
	current := make([]float64, 48)
	for i := range current {
		current[i] = rng.NormFloat64()
	}
	var diff Update
	if err := DiffInto(&diff, 0, 0, baseline, current, 0.1); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(100, func() {
		buf, _, _ = EncodeTo(buf, orig)
	}); n != 0 {
		t.Errorf("EncodeTo allocated %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf, _, _ = EncodeLossyTo(buf, orig)
	}); n != 0 {
		t.Errorf("EncodeLossyTo allocated %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := DecodeInto(&dec, frame); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeInto allocated %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := DiffInto(&diff, 0, 0, baseline, current, 0.1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DiffInto allocated %v times per run, want 0", n)
	}
}

// TestUpdatePoolResets verifies the pool hands back cleared updates.
func TestUpdatePoolResets(t *testing.T) {
	u := GetUpdate()
	u.Sender, u.Round, u.NumParams = 7, 9, 5
	u.Indices = append(u.Indices, 1, 2)
	u.Values = append(u.Values, 0.5, 0.25)
	PutUpdate(u)
	PutUpdate(nil) // must be a no-op

	got := GetUpdate()
	defer PutUpdate(got)
	if got.Sender != 0 || got.Round != 0 || got.NumParams != 0 ||
		len(got.Indices) != 0 || len(got.Values) != 0 {
		t.Fatalf("pooled update not reset: %+v", got)
	}
}
