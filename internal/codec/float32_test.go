package codec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChooseFormat32SameRule(t *testing.T) {
	// The float32 crossover coincides with the float64 one: N > 2M+1.
	f := func(nRaw, mRaw uint16) bool {
		n := int(nRaw)%500 + 1
		m := int(mRaw) % (n + 1)
		want64 := ChooseFormat(n, m) == FormatUnchangedList
		want32 := ChooseFormat32(n, m) == FormatUnchangedList32
		return want64 == want32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChooseFormat32IsOptimal(t *testing.T) {
	f := func(nRaw, mRaw uint16) bool {
		n := int(nRaw)%500 + 1
		m := int(mRaw) % (n + 1)
		chosen := ChooseFormat32(n, m)
		p3 := PayloadBytes(n, m, FormatUnchangedList32)
		p4 := PayloadBytes(n, m, FormatIndexValue32)
		best := p3
		if p4 < best {
			best = p4
		}
		return PayloadBytes(n, m, chosen) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPayloadBytes32Formulas(t *testing.T) {
	if got := PayloadBytes(100, 30, FormatUnchangedList32); got != 4+4*100 {
		t.Errorf("format-3 size = %d, want %d", got, 4+4*100)
	}
	if got := PayloadBytes(100, 30, FormatIndexValue32); got != 8*70 {
		t.Errorf("format-4 size = %d, want %d", got, 8*70)
	}
}

func TestEncodeLossyHalvesBytes(t *testing.T) {
	u := &Update{NumParams: 1000}
	for i := 0; i < 1000; i++ {
		u.Indices = append(u.Indices, i)
		u.Values = append(u.Values, float64(i)*0.001)
	}
	full, _, err := Encode(u)
	if err != nil {
		t.Fatal(err)
	}
	lossy, f, err := EncodeLossy(u)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatUnchangedList32 {
		t.Errorf("dense lossy frame used %v", f)
	}
	if len(lossy) >= len(full)*6/10 {
		t.Errorf("lossy frame %d bytes vs full %d — expected ≈ half", len(lossy), len(full))
	}
}

// Property: lossy round trip preserves structure exactly and values to
// float32 precision, in both float32 formats.
func TestLossyRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		u := randomUpdate(rng, 1+int(nRaw)%64)
		frame, _, err := EncodeLossy(u)
		if err != nil {
			return false
		}
		got, err := Decode(frame)
		if err != nil {
			return false
		}
		if got.Sender != u.Sender || got.Round != u.Round || got.NumParams != u.NumParams {
			return false
		}
		if len(got.Indices) != len(u.Indices) {
			return false
		}
		for i := range u.Indices {
			if got.Indices[i] != u.Indices[i] {
				return false
			}
			if got.Values[i] != float64(float32(u.Values[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLossyBothFormatsExercised(t *testing.T) {
	// Dense update → format 3; sparse update → format 4.
	dense := &Update{NumParams: 20}
	for i := 0; i < 20; i++ {
		dense.Indices = append(dense.Indices, i)
		dense.Values = append(dense.Values, float64(i))
	}
	_, f, err := EncodeLossy(dense)
	if err != nil {
		t.Fatal(err)
	}
	if f != FormatUnchangedList32 {
		t.Errorf("dense = %v", f)
	}
	sparse := &Update{NumParams: 20, Indices: []int{3}, Values: []float64{1.5}}
	frame, f2, err := EncodeLossy(sparse)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != FormatIndexValue32 {
		t.Errorf("sparse = %v", f2)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Values[0] != 1.5 {
		t.Errorf("value = %v", got.Values[0])
	}
}

func TestDecode32RejectsGarbage(t *testing.T) {
	u := &Update{NumParams: 10, Indices: []int{0, 1}, Values: []float64{1, 2}}
	frame, _, err := EncodeLossy(u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(frame[:len(frame)-1]); err == nil {
		t.Error("truncated float32 frame decoded")
	}
	// Corrupt the format tag into the other float32 format with a body
	// that cannot parse.
	bad := append([]byte(nil), frame...)
	bad[0] = byte(FormatUnchangedList32)
	if _, err := Decode(bad); err == nil {
		t.Error("mismatched float32 body decoded")
	}
}

func TestFloat32FormatNames(t *testing.T) {
	if FormatUnchangedList32.String() != "unchanged-list-f32" ||
		FormatIndexValue32.String() != "index-value-f32" {
		t.Error("float32 format names wrong")
	}
}

func TestFloat32PrecisionBound(t *testing.T) {
	u := &Update{NumParams: 3, Indices: []int{0, 1, 2}, Values: []float64{math.Pi, -math.E, 1e-8}}
	frame, _, err := EncodeLossy(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u.Values {
		rel := math.Abs(got.Values[i]-v) / math.Max(math.Abs(v), 1e-30)
		if rel > 1e-6 {
			t.Errorf("value %d relative error %v exceeds float32 precision", i, rel)
		}
	}
}
