package codec

import "sync"

// updatePool recycles Update values (with their Indices/Values backing
// arrays) across decode cycles so receive paths that handle one update
// per neighbor per round stop allocating once the pool is warm.
var updatePool = sync.Pool{
	New: func() any { return new(Update) },
}

// GetUpdate returns a cleared *Update from the pool. The caller owns it
// until it calls PutUpdate; typical use is GetUpdate → DecodeInto →
// consume → PutUpdate.
func GetUpdate() *Update {
	return updatePool.Get().(*Update)
}

// PutUpdate resets u (keeping slice capacity) and returns it to the
// pool. The caller must not retain u, u.Indices, or u.Values afterward.
func PutUpdate(u *Update) {
	if u == nil {
		return
	}
	u.Sender, u.Round, u.NumParams = 0, 0, 0
	u.Indices = u.Indices[:0]
	u.Values = u.Values[:0]
	updatePool.Put(u)
}
