package baseline

import (
	"errors"
	"fmt"
	"math"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/transport"
	"github.com/snapml/snap/internal/weights"
)

// DGDConfig configures classic decentralized gradient descent
// (Nedić-Ozdaglar): x_i ← Σ_j w_ij·x_j − α·∇f_i(x_i).
//
// DGD is the natural first thing to try for peer-to-peer learning, and
// it is exactly what EXTRA (and therefore SNAP) improves on: with a
// constant step size DGD converges only to an O(α)-neighborhood of the
// optimum — each node's local gradient keeps pushing it away from the
// consensus point — whereas EXTRA's correction term cancels that bias and
// reaches the exact optimum. This implementation exists to demonstrate
// that gap (see BenchmarkAblationDGDvsEXTRA).
type DGDConfig struct {
	Topology      *graph.Graph
	Model         model.Model
	Partitions    []*dataset.Dataset
	Test          *dataset.Dataset
	Alpha         float64
	MaxIterations int
	Convergence   metrics.ConvergenceDetector
	Seed          int64
	// EvalEvery computes test accuracy every this many rounds (default 1).
	EvalEvery int
}

// RunDGD executes decentralized gradient descent with Metropolis mixing
// weights over the simulated network, sending full parameter vectors to
// neighbors every round (DGD has no selective-transmission story — every
// node needs fresh neighbor values each step).
func RunDGD(cfg DGDConfig) (*core.Result, error) {
	if cfg.Topology == nil || cfg.Topology.N() == 0 {
		return nil, errors.New("baseline: DGD requires a topology")
	}
	if !cfg.Topology.IsConnected() {
		return nil, errors.New("baseline: DGD topology must be connected")
	}
	n := cfg.Topology.N()
	if len(cfg.Partitions) != n {
		return nil, fmt.Errorf("baseline: %d partitions for %d nodes", len(cfg.Partitions), n)
	}
	if cfg.Model == nil {
		return nil, errors.New("baseline: DGD requires a model")
	}
	if cfg.Alpha <= 0 {
		return nil, errors.New("baseline: DGD requires positive Alpha")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 500
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}

	w := weights.Metropolis(cfg.Topology, 0)
	net := transport.NewSim(cfg.Topology, nil)
	p := cfg.Model.NumParams()
	init := cfg.Model.InitParams(cfg.Seed)
	x := make([]linalg.Vector, n)
	for i := range x {
		x[i] = init.Clone()
	}
	detector := cfg.Convergence
	res := &core.Result{Scheme: "dgd"}

	aggregate := func() float64 {
		var total float64
		for i, part := range cfg.Partitions {
			total += cfg.Model.Loss(x[i], part.Samples)
		}
		return total
	}
	average := func() linalg.Vector {
		avg := linalg.NewVector(p)
		for i := range x {
			avg.AddInPlace(x[i])
		}
		return avg.Scale(1 / float64(n))
	}

	frame := make([]byte, 8*p) // full-vector payload, accounted per paper sizes

	for round := 0; round < cfg.MaxIterations; round++ {
		net.BeginRound(round)
		// Charge the full-vector neighbor traffic.
		for i := 0; i < n; i++ {
			for _, j := range cfg.Topology.Neighbors(i) {
				if err := net.Send(i, j, frame); err != nil {
					return nil, err
				}
			}
		}
		// Synchronous DGD step on exact neighbor values.
		next := make([]linalg.Vector, n)
		for i := 0; i < n; i++ {
			mix := x[i].Scale(w.At(i, i))
			for _, j := range cfg.Topology.Neighbors(i) {
				mix.AXPYInPlace(w.At(i, j), x[j])
			}
			grad := cfg.Model.Gradient(x[i], cfg.Partitions[i].Samples)
			next[i] = mix.AXPYInPlace(-cfg.Alpha, grad)
		}
		x = next

		loss := aggregate()
		avg := average()
		var consensus float64
		for i := range x {
			if d := x[i].Sub(avg).NormInf(); d > consensus {
				consensus = d
			}
		}
		acc := math.NaN()
		if cfg.Test != nil && (round%cfg.EvalEvery == 0 || round == cfg.MaxIterations-1) {
			acc = model.Accuracy(cfg.Model, avg, cfg.Test)
		}
		res.Trace.Append(metrics.IterationStat{
			Round:     round,
			Loss:      loss,
			Accuracy:  acc,
			Consensus: consensus,
			RoundCost: net.Ledger().RoundCost(round),
		})
		res.Iterations = round + 1
		if detector.Observe(loss, consensus) {
			res.Converged = true
			break
		}
	}
	res.FinalLoss = aggregate()
	if cfg.Test != nil {
		res.FinalAccuracy = model.Accuracy(cfg.Model, average(), cfg.Test)
	} else {
		res.FinalAccuracy = math.NaN()
	}
	res.TotalCost = net.Ledger().Total()
	res.PerRoundCost = net.Ledger().PerRound()
	return res, nil
}
