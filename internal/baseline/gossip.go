package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/transport"
)

// GossipConfig configures randomized pairwise gossip SGD (the
// Boyd-Ghosh-Prabhakar-Shah gossip averaging the paper cites as [22],
// combined with local gradient steps): each round a set of disjoint edges
// activates; the two endpoints of an active edge exchange full parameter
// vectors and average them, then every node takes a local gradient step.
//
// Gossip needs no synchronized all-neighbor rounds — only pairwise
// meetings — which suits intermittently connected edge devices; the price
// is slower information spreading than a full EXTRA round and, like DGD,
// convergence only to a neighborhood of the optimum under a constant
// step.
type GossipConfig struct {
	Topology   *graph.Graph
	Model      model.Model
	Partitions []*dataset.Dataset
	Test       *dataset.Dataset
	Alpha      float64
	// PairsPerRound bounds how many disjoint edges activate each round
	// (default: N/2, a maximal matching's worth).
	PairsPerRound int
	MaxIterations int
	Convergence   metrics.ConvergenceDetector
	Seed          int64
	EvalEvery     int
}

// RunGossip executes randomized pairwise gossip SGD over the simulated
// network, charging each meeting two full-vector transfers (one each way)
// across one hop.
func RunGossip(cfg GossipConfig) (*core.Result, error) {
	if cfg.Topology == nil || cfg.Topology.N() == 0 {
		return nil, errors.New("baseline: gossip requires a topology")
	}
	if !cfg.Topology.IsConnected() {
		return nil, errors.New("baseline: gossip topology must be connected")
	}
	n := cfg.Topology.N()
	if len(cfg.Partitions) != n {
		return nil, fmt.Errorf("baseline: %d partitions for %d nodes", len(cfg.Partitions), n)
	}
	if cfg.Model == nil {
		return nil, errors.New("baseline: gossip requires a model")
	}
	if cfg.Alpha <= 0 {
		return nil, errors.New("baseline: gossip requires positive Alpha")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 500
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	if cfg.PairsPerRound <= 0 {
		cfg.PairsPerRound = n / 2
		if cfg.PairsPerRound == 0 {
			cfg.PairsPerRound = 1
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	net := transport.NewSim(cfg.Topology, nil)
	p := cfg.Model.NumParams()
	init := cfg.Model.InitParams(cfg.Seed)
	x := make([]linalg.Vector, n)
	for i := range x {
		x[i] = init.Clone()
	}
	edges := cfg.Topology.Edges()
	detector := cfg.Convergence
	res := &core.Result{Scheme: "gossip"}
	frame := make([]byte, 8*p)

	aggregate := func() float64 {
		var total float64
		for i, part := range cfg.Partitions {
			total += cfg.Model.Loss(x[i], part.Samples)
		}
		return total
	}
	average := func() linalg.Vector {
		avg := linalg.NewVector(p)
		for i := range x {
			avg.AddInPlace(x[i])
		}
		return avg.Scale(1 / float64(n))
	}

	for round := 0; round < cfg.MaxIterations; round++ {
		net.BeginRound(round)

		// Activate up to PairsPerRound disjoint random edges.
		busy := make([]bool, n)
		perm := rng.Perm(len(edges))
		activated := 0
		for _, idx := range perm {
			if activated >= cfg.PairsPerRound {
				break
			}
			e := edges[idx]
			if busy[e.U] || busy[e.V] {
				continue
			}
			busy[e.U], busy[e.V] = true, true
			activated++
			// Two full-vector transfers, one each way.
			if err := net.Send(e.U, e.V, frame); err != nil {
				return nil, err
			}
			if err := net.Send(e.V, e.U, frame); err != nil {
				return nil, err
			}
			mean := x[e.U].Add(x[e.V]).Scale(0.5)
			copy(x[e.U], mean)
			copy(x[e.V], mean)
		}

		// Local SGD step everywhere.
		for i := 0; i < n; i++ {
			grad := cfg.Model.Gradient(x[i], cfg.Partitions[i].Samples)
			x[i].AXPYInPlace(-cfg.Alpha, grad)
		}

		loss := aggregate()
		avg := average()
		var consensus float64
		for i := range x {
			if d := x[i].Sub(avg).NormInf(); d > consensus {
				consensus = d
			}
		}
		acc := math.NaN()
		if cfg.Test != nil && (round%cfg.EvalEvery == 0 || round == cfg.MaxIterations-1) {
			acc = model.Accuracy(cfg.Model, avg, cfg.Test)
		}
		res.Trace.Append(metrics.IterationStat{
			Round:     round,
			Loss:      loss,
			Accuracy:  acc,
			Consensus: consensus,
			RoundCost: net.Ledger().RoundCost(round),
		})
		res.Iterations = round + 1
		if detector.Observe(loss, consensus) {
			res.Converged = true
			break
		}
	}
	res.FinalLoss = aggregate()
	if cfg.Test != nil {
		res.FinalAccuracy = model.Accuracy(cfg.Model, average(), cfg.Test)
	} else {
		res.FinalAccuracy = math.NaN()
	}
	res.TotalCost = net.Ledger().Total()
	res.PerRoundCost = net.Ledger().PerRound()
	return res, nil
}
