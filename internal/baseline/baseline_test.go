package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
)

func setup(t *testing.T, n, total int, seed int64) (model.Model, []*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: total, Features: 24}, rng)
	train, test := ds.Split(0.85, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewLinearSVM(24), parts, test
}

func detector() metrics.ConvergenceDetector {
	return metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3}
}

func TestCentralizedConverges(t *testing.T) {
	m, parts, test := setup(t, 4, 2000, 1)
	res, err := RunCentralized(CentralizedConfig{
		Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 400, Convergence: detector(), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("centralized did not converge in %d iterations", res.Iterations)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("centralized accuracy = %v, want ≥ 0.8", res.FinalAccuracy)
	}
	if res.TotalCost != 0 {
		t.Errorf("centralized cost = %v, want 0", res.TotalCost)
	}
	if res.Scheme != "centralized" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}

func TestCentralizedValidation(t *testing.T) {
	m, parts, _ := setup(t, 2, 100, 2)
	if _, err := RunCentralized(CentralizedConfig{Model: nil, Partitions: parts, Alpha: 0.1}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := RunCentralized(CentralizedConfig{Model: m, Partitions: nil, Alpha: 0.1}); err == nil {
		t.Error("no data accepted")
	}
	if _, err := RunCentralized(CentralizedConfig{Model: m, Partitions: parts, Alpha: 0}); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestPSConvergesAndChargesHops(t *testing.T) {
	m, parts, test := setup(t, 6, 2400, 3)
	topo := graph.RandomConnected(6, 3, rand.New(rand.NewSource(7)))
	res, err := RunPS(PSConfig{
		Topology: topo, Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 400, Convergence: detector(), Seed: 5, EvalEvery: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("PS did not converge in %d iterations", res.Iterations)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("PS accuracy = %v", res.FinalAccuracy)
	}
	if res.TotalCost <= 0 {
		t.Error("PS charged no communication cost")
	}
	// Per-round PS cost is constant (full gradients + full params).
	if res.PerRoundCost[0] != res.PerRoundCost[len(res.PerRoundCost)-1] {
		t.Errorf("PS per-round cost varies: %v vs %v",
			res.PerRoundCost[0], res.PerRoundCost[len(res.PerRoundCost)-1])
	}
	if res.Scheme != "ps" {
		t.Errorf("scheme = %q", res.Scheme)
	}
}

func TestPSMatchesCentralizedTrajectory(t *testing.T) {
	// With lossless gradient transport, PS is exactly centralized GD —
	// losses must match round for round.
	m, parts, _ := setup(t, 4, 1200, 4)
	topo := graph.Ring(4)
	ps, err := RunPS(PSConfig{
		Topology: topo, Model: m, Partitions: parts,
		Alpha: 0.1, MaxIterations: 30,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 1000},
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	central, err := RunCentralized(CentralizedConfig{
		Model: m, Partitions: parts,
		Alpha: 0.1, MaxIterations: 30,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 1000},
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Trace.Stats) != len(central.Trace.Stats) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ps.Trace.Stats), len(central.Trace.Stats))
	}
	for i := range ps.Trace.Stats {
		a, b := ps.Trace.Stats[i].Loss, central.Trace.Stats[i].Loss
		// Same up to the per-partition averaging of gradients: PS averages
		// per-node mean gradients while centralized averages over pooled
		// samples; with unequal partitions these differ slightly, so allow
		// a modest tolerance.
		if math.Abs(a-b) > 0.05*(1+math.Abs(b)) {
			t.Fatalf("round %d: PS loss %v vs centralized %v", i, a, b)
		}
	}
}

func TestTernGradWorseThanPSInMinibatchRegime(t *testing.T) {
	// TernGrad's characteristic slowdown appears in its native minibatch
	// regime (quantization noise scales with max|∇| of a small batch).
	// Over a fixed horizon its loss stays above PS's, while its per-round
	// traffic is far smaller.
	m, parts, test := setup(t, 6, 2400, 5)
	topo := graph.RandomConnected(6, 3, rand.New(rand.NewSource(11)))
	run := func(ternary bool) *core.Result {
		r, err := RunPS(PSConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, MaxIterations: 150,
			Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 100000},
			Seed:        13,
			Ternary:     ternary, BatchSize: 2, EvalEvery: 150,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ps := run(false)
	tern := run(true)
	if tern.Scheme != "terngrad" {
		t.Errorf("scheme = %q", tern.Scheme)
	}
	if tern.FinalLoss <= ps.FinalLoss {
		t.Errorf("TernGrad loss %v not above PS loss %v after fixed horizon",
			tern.FinalLoss, ps.FinalLoss)
	}
	// TernGrad compresses only the worker→server direction; the
	// server→worker push stays at full precision, so the per-round floor
	// sits just above half of PS's (paper §II-A makes the same point).
	if tern.PerRoundCost[0] >= 0.65*ps.PerRoundCost[0] {
		t.Errorf("TernGrad round cost %v not well below PS %v", tern.PerRoundCost[0], ps.PerRoundCost[0])
	}
}

func TestPSValidation(t *testing.T) {
	m, parts, _ := setup(t, 3, 300, 6)
	topo := graph.Ring(3)
	cases := []struct {
		name string
		cfg  PSConfig
	}{
		{"nilTopology", PSConfig{Model: m, Partitions: parts, Alpha: 0.1}},
		{"partitionMismatch", PSConfig{Topology: topo, Model: m, Partitions: parts[:2], Alpha: 0.1}},
		{"nilModel", PSConfig{Topology: topo, Partitions: parts, Alpha: 0.1}},
		{"zeroAlpha", PSConfig{Topology: topo, Model: m, Partitions: parts}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunPS(tc.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	disconnected := graph.New(3)
	if _, err := RunPS(PSConfig{Topology: disconnected, Model: m, Partitions: parts, Alpha: 0.1}); err == nil {
		t.Error("disconnected topology accepted")
	}
}

func TestTernarizeUnbiasedAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := linalg.Vector{0.5, -0.25, 0.1, 0, -1.0}
	const trials = 20000
	sum := linalg.NewVector(len(g))
	for trial := 0; trial < trials; trial++ {
		q := ternarize(g, rng)
		for j, v := range q {
			if v != 0 && math.Abs(v) != 1.0 {
				t.Fatalf("ternary value %v not in {0, ±s}", v)
			}
			sum[j] += v
		}
	}
	for j := range g {
		mean := sum[j] / trials
		if math.Abs(mean-g[j]) > 0.02 {
			t.Errorf("E[ternarize] coordinate %d = %v, want %v (unbiased)", j, mean, g[j])
		}
	}
}

func TestTernarizeZeroVector(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	q := ternarize(linalg.NewVector(4), rng)
	for _, v := range q {
		if v != 0 {
			t.Fatalf("ternarize(0) produced %v", q)
		}
	}
}

// Property: ternary encode/decode round trip is lossless for ternarized
// vectors.
func TestTernaryCodecRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		g := linalg.NewVector(n)
		for j := range g {
			g[j] = rng.NormFloat64()
		}
		q := ternarize(g, rng)
		frame := encodeTernary(q)
		got, err := decodeGradient(frame, n)
		if err != nil {
			return false
		}
		return got.Equal(q, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDenseCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := linalg.NewVector(17)
	for j := range g {
		g[j] = rng.NormFloat64()
	}
	frame := encodeDense(g)
	got, err := decodeGradient(frame, 17)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g, 0) {
		t.Error("dense round trip lost data")
	}
}

func TestDecodeGradientRejectsGarbage(t *testing.T) {
	if _, err := decodeGradient(nil, 4); err == nil {
		t.Error("nil frame decoded")
	}
	if _, err := decodeGradient(make([]byte, 20), 4); err == nil {
		t.Error("wrong-length frame decoded")
	}
	bad := encodeDense(linalg.NewVector(4))
	bad[0] = 9
	if _, err := decodeGradient(bad, 4); err == nil {
		t.Error("unknown tag decoded")
	}
}

func TestTernaryFrameMuchSmallerThanDense(t *testing.T) {
	v := linalg.NewVector(1000)
	dense := encodeDense(v)
	tern := encodeTernary(v)
	// 2 bits vs 64 bits per coordinate: ~24x smaller asymptotically.
	if len(tern) >= len(dense)/10 {
		t.Errorf("ternary frame %d bytes vs dense %d — not small enough", len(tern), len(dense))
	}
}
