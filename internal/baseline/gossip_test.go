package baseline

import (
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
)

func TestGossipValidation(t *testing.T) {
	m, parts, _ := setup(t, 3, 300, 60)
	topo := graph.Ring(3)
	if _, err := RunGossip(GossipConfig{Model: m, Partitions: parts, Alpha: 0.1}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := RunGossip(GossipConfig{Topology: topo, Model: m, Partitions: parts[:2], Alpha: 0.1}); err == nil {
		t.Error("partition mismatch accepted")
	}
	if _, err := RunGossip(GossipConfig{Topology: topo, Model: m, Partitions: parts}); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestGossipLearnsAndSpreadsInformation(t *testing.T) {
	m, parts, test := setup(t, 8, 3200, 61)
	topo := graph.RandomConnected(8, 3, rand.New(rand.NewSource(62)))
	res, err := RunGossip(GossipConfig{
		Topology: topo, Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 300,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
		Seed:        63, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "gossip" {
		t.Errorf("scheme = %q", res.Scheme)
	}
	if res.FinalAccuracy < 0.8 {
		t.Errorf("gossip accuracy = %v", res.FinalAccuracy)
	}
	// Pairwise meetings really happened and were charged.
	if res.TotalCost <= 0 {
		t.Error("no gossip traffic recorded")
	}
	// Starting from a shared init, disagreement grows toward the
	// constant-step plateau but stays bounded well below the parameter
	// scale (gossip averaging keeps pulling the nodes together).
	late := res.Trace.Stats[299].Consensus
	if late > 0.2 {
		t.Errorf("gossip consensus plateau %v unexpectedly large", late)
	}
}

func TestGossipCheaperPerRoundThanDGD(t *testing.T) {
	// A gossip round moves 2×pairs full vectors; a DGD round moves
	// 2×|edges|. With pairs ≈ N/2 < |edges| gossip is cheaper per round.
	m, parts, _ := setup(t, 10, 2000, 64)
	topo := graph.RandomConnected(10, 4, rand.New(rand.NewSource(65)))
	noStop := metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}
	gossip, err := RunGossip(GossipConfig{
		Topology: topo, Model: m, Partitions: parts,
		Alpha: 0.1, MaxIterations: 20, Convergence: noStop, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	dgd, err := RunDGD(DGDConfig{
		Topology: topo, Model: m, Partitions: parts,
		Alpha: 0.1, MaxIterations: 20, Convergence: noStop, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gossip.PerRoundCost[5] >= dgd.PerRoundCost[5] {
		t.Errorf("gossip round cost %v not below DGD %v",
			gossip.PerRoundCost[5], dgd.PerRoundCost[5])
	}
}

func TestGossipPairsAreDisjoint(t *testing.T) {
	// With PairsPerRound = 1 each round moves exactly 2 frames.
	m, parts, _ := setup(t, 6, 600, 67)
	topo := graph.Complete(6)
	res, err := RunGossip(GossipConfig{
		Topology: topo, Model: m, Partitions: parts,
		Alpha: 0.1, MaxIterations: 5, PairsPerRound: 1,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
		Seed:        68,
	})
	if err != nil {
		t.Fatal(err)
	}
	perFrame := res.PerRoundCost[0] / 2
	for i, c := range res.PerRoundCost {
		if c != 2*perFrame {
			t.Errorf("round %d moved %v bytes, want exactly one pair (%v)", i, c, 2*perFrame)
		}
	}
}
