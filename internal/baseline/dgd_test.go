package baseline

import (
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
)

func TestDGDValidation(t *testing.T) {
	m, parts, _ := setup(t, 3, 300, 40)
	topo := graph.Ring(3)
	if _, err := RunDGD(DGDConfig{Model: m, Partitions: parts, Alpha: 0.1}); err == nil {
		t.Error("missing topology accepted")
	}
	if _, err := RunDGD(DGDConfig{Topology: topo, Model: m, Partitions: parts[:2], Alpha: 0.1}); err == nil {
		t.Error("partition mismatch accepted")
	}
	if _, err := RunDGD(DGDConfig{Topology: topo, Model: m, Partitions: parts}); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestDGDMakesProgressButStallsAboveEXTRA(t *testing.T) {
	// The headline property: with the same constant step size, DGD stalls
	// at a strictly higher aggregate loss than EXTRA (SNAP-0), because
	// each node's local gradient biases it away from consensus; EXTRA's
	// correction term removes that bias. The bias scales with gradient
	// heterogeneity, so the workload uses label-skewed non-IID shards
	// (under IID splits local gradients nearly agree and DGD's bias is
	// invisible).
	rng := rand.New(rand.NewSource(41))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: 2400}, rng)
	trainSet, test := ds.Split(0.85, rng)
	parts, err := trainSet.PartitionNonIID(6, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := model.NewLinearSVM(ds.NumFeature)
	topo := graph.RandomConnected(6, 3, rand.New(rand.NewSource(42)))
	noStop := metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}

	dgd, err := RunDGD(DGDConfig{
		Topology: topo, Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 300, Convergence: noStop, Seed: 43, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := core.NewCluster(core.ClusterConfig{
		Topology: topo, Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, Policy: core.SendChanged, MaxIterations: 300,
		Convergence: noStop, Seed: 43, EvalEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := cluster.Run()
	if err != nil {
		t.Fatal(err)
	}

	if dgd.Scheme != "dgd" {
		t.Errorf("scheme = %q", dgd.Scheme)
	}
	// DGD does learn (loss well below the starting point, usable accuracy).
	first := dgd.Trace.Stats[0].Loss
	if dgd.FinalLoss > 0.8*first {
		t.Errorf("DGD made no progress: start %v, end %v", first, dgd.FinalLoss)
	}
	if dgd.FinalAccuracy < 0.8 {
		t.Errorf("DGD accuracy = %v", dgd.FinalAccuracy)
	}
	// ... but with a constant step it never reaches consensus: the nodes'
	// disagreement stalls at O(α·heterogeneity), while EXTRA's correction
	// term drives it to numerical zero. This is exactly the gap the paper
	// inherits by building on EXTRA.
	dgdLast, _ := dgd.Trace.Last()
	extraLast, _ := extra.Trace.Last()
	if dgdLast.Consensus < 100*extraLast.Consensus {
		t.Errorf("DGD consensus %v vs EXTRA %v — expected DGD to stall orders of magnitude above",
			dgdLast.Consensus, extraLast.Consensus)
	}
	if extraLast.Consensus > 1e-4 {
		t.Errorf("EXTRA consensus %v did not approach zero", extraLast.Consensus)
	}
}
