// Package baseline implements the schemes the paper compares SNAP against:
//
//   - Centralized: plain gradient descent on the pooled data — the
//     accuracy yardstick ("the baseline to evaluate the accuracy of each
//     scheme").
//
//   - PS: the parameter-server scheme — a randomly selected edge server
//     acts as the server; every other server ships its full local
//     gradient to it along the least-hop path each iteration and receives
//     the full updated parameters back, with cost charged hops × bytes.
//
//   - TernGrad: the state-of-the-art communication-reduction baseline —
//     the PS scheme with worker→server gradients ternarized to
//     {−s, 0, +s} and packed 2 bits per coordinate (Wen et al., NIPS'17).
//     The stochastic quantization preserves the gradient in expectation
//     but adds variance, which slows convergence and costs accuracy —
//     the paper's central criticism of it.
//
// All three run over the same simulated network and report the same
// core.Result, so the experiment harness can compare them directly with
// the SNAP cluster runs.
package baseline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/transport"
)

// frameHeaderBytes matches codec.HeaderBytes so PS/TernGrad frames are
// accounted consistently with SNAP frames.
const frameHeaderBytes = 13

// CentralizedConfig configures the pooled-data baseline.
type CentralizedConfig struct {
	Model         model.Model
	Partitions    []*dataset.Dataset // pooled for training; kept split to evaluate Σ f_i
	Test          *dataset.Dataset
	Alpha         float64
	MaxIterations int
	Convergence   metrics.ConvergenceDetector
	Seed          int64
}

// RunCentralized trains on the union of all partitions with plain gradient
// descent. It incurs no communication cost by definition (the paper uses
// it purely as the accuracy/convergence yardstick).
func RunCentralized(cfg CentralizedConfig) (*core.Result, error) {
	if cfg.Model == nil || len(cfg.Partitions) == 0 {
		return nil, errors.New("baseline: centralized run requires a model and data")
	}
	if cfg.Alpha <= 0 {
		return nil, errors.New("baseline: centralized run requires positive Alpha")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 500
	}
	var pooled []dataset.Sample
	for _, p := range cfg.Partitions {
		pooled = append(pooled, p.Samples...)
	}
	x := cfg.Model.InitParams(cfg.Seed)
	detector := cfg.Convergence
	res := &core.Result{Scheme: "centralized"}

	aggregate := func() float64 {
		var total float64
		for _, p := range cfg.Partitions {
			total += cfg.Model.Loss(x, p.Samples)
		}
		return total
	}

	for round := 0; round < cfg.MaxIterations; round++ {
		g := cfg.Model.Gradient(x, pooled)
		x.AXPYInPlace(-cfg.Alpha, g)

		loss := aggregate()
		acc := math.NaN()
		if cfg.Test != nil {
			acc = model.Accuracy(cfg.Model, x, cfg.Test)
		}
		res.Trace.Append(metrics.IterationStat{Round: round, Loss: loss, Accuracy: acc})
		res.Iterations = round + 1
		if detector.Observe(loss, 0) {
			res.Converged = true
			break
		}
	}
	res.FinalLoss = aggregate()
	if cfg.Test != nil {
		res.FinalAccuracy = model.Accuracy(cfg.Model, x, cfg.Test)
	} else {
		res.FinalAccuracy = math.NaN()
	}
	return res, nil
}

// PSConfig configures the parameter-server and TernGrad baselines.
type PSConfig struct {
	// Topology is the physical network; gradient/parameter traffic is
	// charged along least-hop paths over it.
	Topology   *graph.Graph
	Model      model.Model
	Partitions []*dataset.Dataset
	Test       *dataset.Dataset
	// Alpha is the server's gradient-descent step on the averaged
	// gradient.
	Alpha         float64
	MaxIterations int
	Convergence   metrics.ConvergenceDetector
	// Seed drives the initial parameters, the random server selection and
	// (for TernGrad) the stochastic ternarization.
	Seed int64
	// Ternary enables TernGrad's 2-bit worker→server gradient encoding.
	Ternary bool
	// BatchSize limits each worker's per-round gradient batch (0 = full
	// local data). TernGrad is defined on minibatch SGD, and its
	// characteristic slowdown/accuracy loss only appears in that regime:
	// with full-batch gradients the quantization noise scales with
	// max|∇f| and vanishes as training converges.
	BatchSize int
	// EvalEvery computes test accuracy every this many rounds (default 1).
	EvalEvery int
}

// RunPS executes the parameter-server scheme (or TernGrad when
// cfg.Ternary): each round every worker sends its local gradient to the
// randomly chosen server along least-hop paths; the server averages,
// steps, and pushes the full parameters back the same way.
func RunPS(cfg PSConfig) (*core.Result, error) {
	if cfg.Topology == nil || cfg.Topology.N() == 0 {
		return nil, errors.New("baseline: PS requires a topology")
	}
	if !cfg.Topology.IsConnected() {
		return nil, errors.New("baseline: PS topology must be connected")
	}
	n := cfg.Topology.N()
	if len(cfg.Partitions) != n {
		return nil, fmt.Errorf("baseline: %d partitions for %d nodes", len(cfg.Partitions), n)
	}
	if cfg.Model == nil {
		return nil, errors.New("baseline: PS requires a model")
	}
	if cfg.Alpha <= 0 {
		return nil, errors.New("baseline: PS requires positive Alpha")
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 500
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	server := rng.Intn(n)
	net := transport.NewSim(cfg.Topology, nil)
	p := cfg.Model.NumParams()
	x := cfg.Model.InitParams(cfg.Seed)
	detector := cfg.Convergence

	scheme := "ps"
	if cfg.Ternary {
		scheme = "terngrad"
	}
	res := &core.Result{Scheme: scheme}

	aggregate := func() float64 {
		var total float64
		for _, part := range cfg.Partitions {
			total += cfg.Model.Loss(x, part.Samples)
		}
		return total
	}

	for round := 0; round < cfg.MaxIterations; round++ {
		net.BeginRound(round)

		// Workers compute local gradients at the shared parameters and
		// ship them to the server.
		sum := linalg.NewVector(p)
		for i := 0; i < n; i++ {
			batch := cfg.Partitions[i].Samples
			if cfg.BatchSize > 0 {
				batch = cfg.Partitions[i].Batch(round, cfg.BatchSize)
			}
			g := cfg.Model.Gradient(x, batch)
			if cfg.Ternary {
				g = ternarize(g, rng)
			}
			if i == server {
				sum.AddInPlace(g) // local, no network traffic
				continue
			}
			var frame []byte
			if cfg.Ternary {
				frame = encodeTernary(g)
			} else {
				frame = encodeDense(g)
			}
			if err := net.Unicast(i, server, frame); err != nil {
				return nil, fmt.Errorf("baseline: worker %d: %w", i, err)
			}
			got, err := decodeGradient(frame, p)
			if err != nil {
				return nil, fmt.Errorf("baseline: decoding worker %d frame: %w", i, err)
			}
			sum.AddInPlace(got)
		}
		// Server averages and steps.
		x.AXPYInPlace(-cfg.Alpha/float64(n), sum)

		// Server pushes the full updated parameters back.
		paramFrame := encodeDense(x)
		for i := 0; i < n; i++ {
			if i == server {
				continue
			}
			if err := net.Unicast(server, i, paramFrame); err != nil {
				return nil, fmt.Errorf("baseline: push to worker %d: %w", i, err)
			}
		}

		loss := aggregate()
		acc := math.NaN()
		if cfg.Test != nil && (round%cfg.EvalEvery == 0 || round == cfg.MaxIterations-1) {
			acc = model.Accuracy(cfg.Model, x, cfg.Test)
		}
		res.Trace.Append(metrics.IterationStat{
			Round:     round,
			Loss:      loss,
			Accuracy:  acc,
			RoundCost: net.Ledger().RoundCost(round),
		})
		res.Iterations = round + 1
		if detector.Observe(loss, 0) {
			res.Converged = true
			break
		}
	}
	res.FinalLoss = aggregate()
	if cfg.Test != nil {
		res.FinalAccuracy = model.Accuracy(cfg.Model, x, cfg.Test)
	} else {
		res.FinalAccuracy = math.NaN()
	}
	res.TotalCost = net.Ledger().Total()
	res.PerRoundCost = net.Ledger().PerRound()
	return res, nil
}

// ternarize applies TernGrad's stochastic quantization: each coordinate
// becomes s·sign(g_j) with probability |g_j|/s (s = max|g|), else 0. The
// result is unbiased: E[ternarize(g)] = g.
func ternarize(g linalg.Vector, rng *rand.Rand) linalg.Vector {
	s := g.NormInf()
	out := linalg.NewVector(len(g))
	if s == 0 {
		return out
	}
	for j, v := range g {
		if math.Abs(v)/s > rng.Float64() {
			if v > 0 {
				out[j] = s
			} else {
				out[j] = -s
			}
		}
	}
	return out
}

// encodeDense packs a float64 vector: header + 8 bytes per coordinate.
func encodeDense(v linalg.Vector) []byte {
	buf := make([]byte, 0, frameHeaderBytes+8*len(v))
	buf = append(buf, 0) // format tag: dense
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	buf = append(buf, make([]byte, 8)...) // reserved (sender/round in real deployments)
	for _, x := range v {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(x))
	}
	return buf
}

// encodeTernary packs a ternarized vector as TernGrad does: an 8-byte
// scale plus 2 bits per coordinate (00 = 0, 01 = +s, 10 = −s).
func encodeTernary(v linalg.Vector) []byte {
	s := v.NormInf()
	buf := make([]byte, 0, frameHeaderBytes+8+(2*len(v)+7)/8)
	buf = append(buf, 1) // format tag: ternary
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
	buf = append(buf, make([]byte, 8)...) // reserved
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(s))
	packed := make([]byte, (2*len(v)+7)/8)
	for j, x := range v {
		var code byte
		switch {
		case x > 0:
			code = 1
		case x < 0:
			code = 2
		}
		packed[j/4] |= code << uint(2*(j%4))
	}
	return append(buf, packed...)
}

// decodeGradient parses a frame produced by encodeDense or encodeTernary.
func decodeGradient(frame []byte, wantLen int) (linalg.Vector, error) {
	if len(frame) < frameHeaderBytes {
		return nil, fmt.Errorf("baseline: frame too short (%d bytes)", len(frame))
	}
	n := int(binary.BigEndian.Uint32(frame[1:5]))
	if n != wantLen {
		return nil, fmt.Errorf("baseline: frame carries %d params, want %d", n, wantLen)
	}
	body := frame[frameHeaderBytes:]
	switch frame[0] {
	case 0:
		if len(body) != 8*n {
			return nil, fmt.Errorf("baseline: dense body is %d bytes, want %d", len(body), 8*n)
		}
		out := linalg.NewVector(n)
		for j := range out {
			out[j] = math.Float64frombits(binary.BigEndian.Uint64(body[8*j : 8*j+8]))
		}
		return out, nil
	case 1:
		want := 8 + (2*n+7)/8
		if len(body) != want {
			return nil, fmt.Errorf("baseline: ternary body is %d bytes, want %d", len(body), want)
		}
		s := math.Float64frombits(binary.BigEndian.Uint64(body[:8]))
		packed := body[8:]
		out := linalg.NewVector(n)
		for j := 0; j < n; j++ {
			code := (packed[j/4] >> uint(2*(j%4))) & 3
			switch code {
			case 1:
				out[j] = s
			case 2:
				out[j] = -s
			case 3:
				return nil, fmt.Errorf("baseline: invalid ternary code at %d", j)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("baseline: unknown frame tag %d", frame[0])
	}
}
