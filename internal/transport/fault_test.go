package transport

import (
	"testing"
	"time"
)

func TestFaultDropLosesFrameSilently(t *testing.T) {
	peers := startPeers(t, 2)
	faults := NewFaultSet().Add(FaultRule{Peer: 1, Round: 0, Action: FaultDrop})
	peers[0].SetFaults(faults)

	if err := peers[0].Send(1, 0, []byte("lost")); err != nil {
		t.Fatalf("dropped send must look successful to the sender, got %v", err)
	}
	if got := peers[0].BytesSent(); got != 0 {
		t.Errorf("BytesSent after drop = %d, want 0 (frame never crossed the link)", got)
	}
	if got := peers[1].Gather(0, 200*time.Millisecond); len(got) != 0 {
		t.Errorf("receiver gathered %v, want nothing", got)
	}

	// One-shot: the next round goes through.
	if err := peers[0].Send(1, 1, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if got := peers[1].Gather(1, 2*time.Second); string(got[0]) != "kept" {
		t.Errorf("round 1 gather = %v, want the frame delivered", got)
	}
}

func TestFaultDelayStallsThenDelivers(t *testing.T) {
	peers := startPeers(t, 2)
	const delay = 150 * time.Millisecond
	peers[0].SetFaults(NewFaultSet().Add(
		FaultRule{Peer: 1, Round: 0, Action: FaultDelay, Delay: delay}))

	start := time.Now()
	if err := peers[0].Send(1, 0, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("delayed send returned after %v, want ≥ %v", elapsed, delay)
	}
	if got := peers[1].Gather(0, 2*time.Second); string(got[0]) != "slow" {
		t.Errorf("gather = %v, want the delayed frame", got)
	}
}

func TestFaultResetKillsConnection(t *testing.T) {
	peers := startPeers(t, 2)
	peers[0].SetFaults(NewFaultSet().Add(
		FaultRule{Peer: 1, Round: 3, Action: FaultReset}))

	// Rounds before the scheduled fault are unaffected.
	for r := 0; r < 3; r++ {
		if err := peers[0].Send(1, r, []byte("ok")); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	if err := peers[0].Send(1, 3, []byte("reset")); err == nil {
		t.Fatal("send at the reset round succeeded, want error")
	}
	// The reconnect machinery heals the link without intervention.
	waitFor(t, 10*time.Second, "link to heal after reset", func() bool {
		return peers[0].Healthy(1) && peers[1].Healthy(0)
	})
}

func TestFaultSetRulesAreOneShotAndKeyed(t *testing.T) {
	f := NewFaultSet()
	f.Add(FaultRule{Peer: 2, Round: 5, Action: FaultDrop})
	f.Add(FaultRule{Peer: 2, Round: 5, Action: FaultReset}) // replaces
	f.Add(FaultRule{Peer: 3, Round: 5, Action: FaultDrop})

	if got := f.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2 (same-key rule replaced)", got)
	}
	if _, ok := f.take(2, 4); ok {
		t.Error("rule fired for wrong round")
	}
	r, ok := f.take(2, 5)
	if !ok || r.Action != FaultReset {
		t.Fatalf("take(2,5) = %+v, %v; want the replacing reset rule", r, ok)
	}
	if _, ok := f.take(2, 5); ok {
		t.Error("rule fired twice")
	}
	if f.Fired() != 1 || f.Pending() != 1 {
		t.Errorf("fired=%d pending=%d, want 1 and 1", f.Fired(), f.Pending())
	}
}

func TestFaultActionString(t *testing.T) {
	cases := map[FaultAction]string{
		FaultDrop:       "drop",
		FaultDelay:      "delay",
		FaultReset:      "reset",
		FaultAction(99): "FaultAction(99)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}
