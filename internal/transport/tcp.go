package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
)

// maxFrameBytes bounds a single wire frame; generous for the paper's
// largest model (a 784-30-10 MLP update is < 300 KB).
const maxFrameBytes = 64 << 20

// frameFlagTrace marks a frame that carries a trace.BlockBytes trace
// block between the header and the payload. It lives in the top bit of
// the round field — rounds are far below 2^31, so the bit is free — and
// the length field covers block + payload. A peer with tracing disabled
// emits frames byte-identical to the pre-trace wire format, which keeps
// traceless new binaries interoperable with old ones in both directions;
// tracing itself is enabled cluster-wide or not at all.
const frameFlagTrace = 1 << 31

const (
	// dialAttemptTimeout caps a single TCP dial attempt so a hanging SYN
	// (blackholed route, dropped packets) cannot consume the whole retry
	// budget — the overall deadline still bounds the retry loop.
	dialAttemptTimeout = 1 * time.Second
	// reconnectBaseDelay and reconnectMaxDelay bound the exponential
	// backoff between re-dial attempts after a connection dies.
	reconnectBaseDelay = 50 * time.Millisecond
	reconnectMaxDelay  = 2 * time.Second
)

// LinkStats counts connection lifecycle events on one neighbor link.
type LinkStats struct {
	// Connects is the number of connections ever established (initial
	// connects, reconnects, and duplicate-resolution replacements).
	Connects int
	// Disconnects is the number of times the registered connection died.
	Disconnects int
	// Reconnects is the number of link healings: either a new connection
	// filled a slot the link had before (the dead conn was already
	// evicted), or a canonical duplicate replaced a registered connection
	// — which only happens in reconnection races, when the remote's
	// re-dial outran our read loop's error.
	Reconnects int
}

// Peer is one edge server's TCP endpoint. Peers keep one persistent
// connection per neighbor and exchange length-prefixed, round-tagged
// frames. Gather implements the paper's RIP-like synchronization: wait for
// this round's frame from every *currently connected* neighbor, giving up
// on stragglers after a timeout.
//
// The transport is fault tolerant: a dead connection is evicted as soon as
// its read loop observes the failure (so Gather stops waiting for it), and
// both sides re-dial with exponential backoff and jitter. For initial
// connection establishment the lower-id peer accepts and the higher-id
// peer dials; during reconnection either side may dial, and duplicate
// connections are resolved deterministically by keeping the one dialed by
// the higher-id peer.
type Peer struct {
	id       int
	listener net.Listener

	mu        sync.Mutex
	conns     map[int]*peerConn    // guarded by mu
	addrs     map[int]string       // guarded by mu; known neighbor listen addresses (for re-dial)
	redialing map[int]bool         // guarded by mu; a reconnectLoop is running for this neighbor
	stats     map[int]*LinkStats   // guarded by mu
	linkM     map[int]*linkMetrics // guarded by mu; per-link metric handles (lazy)
	downSince map[int]time.Time    // guarded by mu; link-down timestamp, for reconnect latency

	// onReconnect, when set (before Connect), is invoked once per link
	// down→up transition with the neighbor id. Called from a transport
	// goroutine; implementations must be safe for concurrent use.
	onReconnect func(nid int) // guarded by mu

	// faults, when set, injects deterministic failures into Send.
	faults *FaultSet

	inbox chan inFrame

	// membership is nudged whenever the connection set changes so a
	// blocked Gather re-evaluates how many frames it should wait for.
	membership chan struct{}

	// pending buffers frames by round until Gather asks for them.
	pendingMu sync.Mutex
	pending   map[int]map[int][]byte // guarded by pendingMu

	// Streaming-gather scratch, owned by the single gathering goroutine:
	// Gather/GatherStream must not be invoked concurrently with each
	// other (the round loop is their only caller). Reused across rounds
	// so a steady-state stream performs no allocations.
	streamSeen  map[int]bool // senders already delivered this call
	streamKeep  map[int]bool // expected-sender set, rebuilt per flush
	streamReady []inFrame    // frames staged for delivery outside locks

	bytesSent  atomic.Int64
	framesSent atomic.Int64
	// tracer, when set, records a receive observation per inbound traced
	// frame and stamps a trace block onto every outbound frame. Atomic so
	// long-lived read loops observe a SetTracer issued after their
	// connection was established.
	tracer atomic.Pointer[trace.Tracer]
	// latestRound tracks the highest round tag seen on any inbound frame:
	// a node (re)joining an elastic cluster uses it to fast-forward its
	// round counter to where the cluster actually is.
	latestRound atomic.Int64
	closed      chan struct{}
	closeOnce   sync.Once
	closeErr    error // set once inside closeOnce.Do, read after it
	wg          sync.WaitGroup

	// Observability. The handles are always valid: with no observer they
	// are detached metrics, so hot paths record unconditionally.
	obs         *obs.Observer  // guarded by mu
	gatherWaitH *obs.Histogram // guarded by mu
	reconnLatH  *obs.Histogram // guarded by mu
	gatherShort *obs.Counter   // guarded by mu
}

// linkMetrics caches one neighbor link's counter handles so the per-frame
// path does one map lookup, not seven registry lookups.
type linkMetrics struct {
	framesOut, bytesOut   *obs.Counter
	framesIn, bytesIn     *obs.Counter
	connects, disconnects *obs.Counter
	reconnects            *obs.Counter
}

type peerConn struct {
	writeMu sync.Mutex
	conn    net.Conn
	dialed  bool // we dialed this connection (vs. accepted it)
}

type inFrame struct {
	from  int
	round int
	frame []byte
}

// NewPeer creates a peer with the given id listening on addr
// (e.g. "127.0.0.1:0" for an ephemeral port).
func NewPeer(id int, addr string) (*Peer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: peer %d listen: %w", id, err)
	}
	return NewPeerFromListener(id, ln), nil
}

// NewPeerFromListener wraps an already-bound listener in a peer. Elastic
// clusters need this ordering: a node must know its listen address to
// advertise it to the coordinator, but only learns its id from the join
// response — so it listens first and builds the peer afterwards.
func NewPeerFromListener(id int, ln net.Listener) *Peer {
	p := &Peer{
		id:         id,
		listener:   ln,
		conns:      make(map[int]*peerConn),
		addrs:      make(map[int]string),
		redialing:  make(map[int]bool),
		stats:      make(map[int]*LinkStats),
		linkM:      make(map[int]*linkMetrics),
		downSince:  make(map[int]time.Time),
		inbox:      make(chan inFrame, 1024),
		membership: make(chan struct{}, 1),
		pending:    make(map[int]map[int][]byte),
		closed:     make(chan struct{}),
	}
	p.mu.Lock()
	p.initObsHandles()
	p.mu.Unlock()
	p.wg.Add(1)
	go p.acceptLoop()
	return p
}

// initObsHandles (re)binds the link-independent metric handles against the
// current observer (detached metrics when there is none). Caller holds
// p.mu.
func (p *Peer) initObsHandles() {
	p.gatherWaitH = p.obs.Histogram(obs.MGatherWait, obs.TimeBuckets)
	p.reconnLatH = p.obs.Histogram(obs.MReconnectSeconds, obs.TimeBuckets)
	p.gatherShort = p.obs.Counter(obs.MGatherIncomplete)
}

// SetObserver attaches a metrics registry and event log. Call before
// Connect; per-link series are labeled peer="<neighbor id>".
func (p *Peer) SetObserver(o *obs.Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = o
	p.initObsHandles()
	p.linkM = make(map[int]*linkMetrics) // rebind any pre-existing links
}

// linkMetricsFor returns (creating if needed) the metric handles for the
// link to nid. Caller holds p.mu.
func (p *Peer) linkMetricsFor(nid int) *linkMetrics {
	lm, ok := p.linkM[nid]
	if !ok {
		peer := strconv.Itoa(nid)
		lm = &linkMetrics{
			framesOut:   p.obs.Counter(obs.Label(obs.MLinkFramesSent, obs.LPeer, peer)),
			bytesOut:    p.obs.Counter(obs.Label(obs.MLinkBytesSent, obs.LPeer, peer)),
			framesIn:    p.obs.Counter(obs.Label(obs.MLinkFramesRecv, obs.LPeer, peer)),
			bytesIn:     p.obs.Counter(obs.Label(obs.MLinkBytesRecv, obs.LPeer, peer)),
			connects:    p.obs.Counter(obs.Label(obs.MLinkConnects, obs.LPeer, peer)),
			disconnects: p.obs.Counter(obs.Label(obs.MLinkDisconnects, obs.LPeer, peer)),
			reconnects:  p.obs.Counter(obs.Label(obs.MLinkReconnects, obs.LPeer, peer)),
		}
		p.linkM[nid] = lm
	}
	return lm
}

// ID returns this peer's node id.
func (p *Peer) ID() int { return p.id }

// Addr returns the listener address (use after NewPeer with port 0).
func (p *Peer) Addr() string { return p.listener.Addr().String() }

// BytesSent returns the total payload bytes written to sockets — the
// quantity the paper's testbed experiment records. Trace blocks and
// frame headers are excluded: the figure stays comparable across traced
// and untraced runs.
func (p *Peer) BytesSent() int64 { return p.bytesSent.Load() }

// FramesSent returns the total number of frames written to sockets.
// Together with BytesSent it yields the ground truth for the tracer's
// bytes-saved-vs-full-send accounting.
func (p *Peer) FramesSent() int64 { return p.framesSent.Load() }

// SetTracer attaches a round tracer: every outbound frame gains a wire
// trace block and every inbound traced frame is recorded as a receive
// observation. May be called at any time; pass nil to disable.
func (p *Peer) SetTracer(t *trace.Tracer) { p.tracer.Store(t) }

// SetReconnectHandler registers fn to be called whenever a neighbor link
// transitions from down to up after having been connected before. Set it
// before Connect; it must be safe to call from transport goroutines.
func (p *Peer) SetReconnectHandler(fn func(nid int)) {
	p.mu.Lock()
	p.onReconnect = fn
	p.mu.Unlock()
}

// SetFaults installs a deterministic fault-injection plan consulted by
// Send. Pass nil to clear.
func (p *Peer) SetFaults(f *FaultSet) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// LatestRound returns the highest round tag observed on any inbound
// frame, or -1 before the first frame. An elastically joining node uses
// it to fast-forward its round counter when the coordinator's view of the
// cluster's progress was stale.
func (p *Peer) LatestRound() int { return int(p.latestRound.Load()) - 1 }

// Drop removes neighbor nid from the peer's neighbor set: the connection
// (if any) is closed, the stored address is forgotten so no reconnect
// loop revives the link, and Gather stops expecting frames from it. Used
// when an epoch reconfiguration removes a topology edge or a member
// leaves the cluster. Dropping an unknown neighbor is a no-op.
func (p *Peer) Drop(nid int) {
	p.mu.Lock()
	delete(p.addrs, nid)
	pc, ok := p.conns[nid]
	if ok {
		delete(p.conns, nid)
	}
	o := p.obs
	p.mu.Unlock()
	if ok {
		// The read loop's removeConn will find the registry no longer
		// holds pc and exit quietly; no reconnect loop is spawned because
		// the address is gone.
		pc.conn.Close()
		o.Emit(p.id, obs.EvLinkDrop, -1, nid, nil)
	}
	p.notifyMembership()
}

// Healthy reports whether a live connection to neighbor nid is currently
// registered.
func (p *Peer) Healthy(nid int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.conns[nid]
	return ok
}

// Stats returns a copy of the per-link connection lifecycle counters.
func (p *Peer) Stats() map[int]LinkStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[int]LinkStats, len(p.stats))
	for nid, st := range p.stats {
		out[nid] = *st
	}
	return out
}

// statsFor returns the (mutable) stats entry for nid. Caller holds p.mu.
func (p *Peer) statsFor(nid int) *LinkStats {
	st, ok := p.stats[nid]
	if !ok {
		st = &LinkStats{}
		p.stats[nid] = st
	}
	return st
}

// Connect establishes connections to all neighbors: it dials every
// neighbor with a higher id and waits until connections with all listed
// neighbors (dialed or accepted) exist, or the timeout expires. The
// addresses are remembered so that either side can re-dial if a
// connection later dies.
func (p *Peer) Connect(neighbors map[int]string, timeout time.Duration) error {
	p.mu.Lock()
	for nid, addr := range neighbors {
		if nid == p.id {
			p.mu.Unlock()
			return fmt.Errorf("transport: peer %d listed as its own neighbor", p.id)
		}
		p.addrs[nid] = addr
	}
	p.mu.Unlock()
	for nid, addr := range neighbors {
		if nid > p.id {
			if err := p.dial(nid, addr, timeout); err != nil {
				return err
			}
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		missing := 0
		for nid := range neighbors {
			if _, ok := p.conns[nid]; !ok {
				missing++
			}
		}
		p.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peer %d timed out waiting for %d neighbor connection(s)", p.id, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dial connects to a neighbor, retrying until the deadline — peers start
// in arbitrary order, so the target may not be listening yet. Each attempt
// is individually capped so a single hanging SYN cannot consume the whole
// retry budget.
func (p *Peer) dial(nid int, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	// One timer reused across retries instead of a time.After per
	// iteration, which would leak a live timer into the runtime heap on
	// every attempt. Each loop iteration consumes the timer's channel
	// before Reset, so reuse is race-free; paths that return without
	// consuming it are covered by the deferred Stop.
	var retry *time.Timer
	defer func() {
		if retry != nil {
			retry.Stop()
		}
	}()
	for {
		conn, err := p.dialOnce(addr, deadline)
		if err == nil {
			if p.addConn(nid, conn, true) {
				return nil
			}
			// A duplicate connection won; the link is up either way.
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peer %d dial %d@%s: %w", p.id, nid, addr, err)
		}
		if retry == nil {
			retry = time.NewTimer(50 * time.Millisecond)
		} else {
			retry.Reset(50 * time.Millisecond)
		}
		select {
		case <-p.closed:
			return fmt.Errorf("transport: peer %d closed while dialing %d", p.id, nid)
		case <-retry.C:
		}
	}
}

// dialOnce performs one capped dial attempt plus the hello handshake.
func (p *Peer) dialOnce(addr string, deadline time.Time) (net.Conn, error) {
	attempt := dialAttemptTimeout
	if remaining := time.Until(deadline); remaining < attempt {
		attempt = remaining
	}
	if attempt <= 0 {
		attempt = time.Millisecond
	}
	conn, err := net.DialTimeout("tcp", addr, attempt)
	if err != nil {
		return nil, err
	}
	// Hello: announce our id.
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(p.id))
	conn.SetWriteDeadline(time.Now().Add(dialAttemptTimeout))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("hello: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	return conn, nil
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		// Read the hello to learn the remote id.
		var hello [4]byte
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		p.addConn(int(binary.BigEndian.Uint32(hello[:])), conn, false)
	}
}

// addConn registers a connection for neighbor nid, resolving duplicates
// deterministically: the canonical connection for a pair is the one dialed
// by the higher-id peer, so when both sides re-dial concurrently both
// independently keep the same TCP connection. Returns false if the
// connection was rejected (peer closed, or a canonical duplicate already
// exists).
func (p *Peer) addConn(nid int, conn net.Conn, dialed bool) bool {
	// Disable Nagle explicitly on every registered conn, dialed or
	// accepted. Go's dialer does this by default, but the round loop's
	// latency budget depends on it (a delayed small frame stalls the
	// whole gather), so it is pinned here rather than left implicit.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	canonical := dialed == (p.id > nid)
	p.mu.Lock()
	select {
	case <-p.closed:
		p.mu.Unlock()
		conn.Close()
		return false
	default:
	}
	old, existed := p.conns[nid]
	if existed {
		oldCanonical := old.dialed == (p.id > nid)
		if oldCanonical && !canonical {
			p.mu.Unlock()
			conn.Close()
			return false
		}
		// Replace: the old conn's readLoop will exit and see it has been
		// superseded (identity check in removeConn), so no reconnect is
		// spawned for it.
		old.conn.Close()
	}
	pc := &peerConn{conn: conn, dialed: dialed}
	st := p.statsFor(nid)
	lm := p.linkMetricsFor(nid)
	// A link heals in one of two ways: a new connection fills an empty
	// slot the link had before (the read loop already evicted the dead
	// conn), or — when the remote's re-dial outraces our read loop's
	// error — a canonical duplicate replaces a connection that is still
	// registered. Initial connection establishment never produces
	// replacements (only the higher-id peer dials), so a replacement is
	// always a reconnection race and must fire the same down→up handling:
	// frames may have died with the old connection, and the neighbor
	// needs the full-parameter refresh.
	reconnected := existed || st.Connects > 0
	st.Connects++
	lm.connects.Inc()
	var downFor time.Duration
	if reconnected {
		st.Reconnects++
		lm.reconnects.Inc()
		if since, ok := p.downSince[nid]; ok {
			downFor = time.Since(since)
			delete(p.downSince, nid)
		}
	}
	p.conns[nid] = pc
	// wg.Add under p.mu, ordered against Close's close(p.closed) (also
	// under p.mu): either we observed closed above and bailed, or this Add
	// happens before Close's wg.Wait can see a zero counter.
	p.wg.Add(1)
	cb := p.onReconnect
	o, reconnH := p.obs, p.reconnLatH
	p.mu.Unlock()
	go p.readLoop(nid, pc)
	p.notifyMembership()
	if reconnected {
		// downFor is zero when the remote re-dialed before our read loop
		// evicted the dead conn (replacement path): no downtime was
		// observable, so none is recorded in the latency histogram.
		if downFor > 0 {
			reconnH.Observe(downFor.Seconds())
		}
		if o.LogEnabled() {
			f := obs.GetFields()
			f["down_seconds"] = downFor.Seconds()
			o.Emit(p.id, obs.EvReconnect, -1, nid, f)
			obs.PutFields(f)
		}
	} else {
		o.Emit(p.id, obs.EvLinkUp, -1, nid, nil)
	}
	if reconnected && cb != nil {
		cb(nid)
	}
	return true
}

// removeConn evicts pc if it is still the registered connection for nid,
// and — unless the peer is closing — spawns a reconnect loop so the link
// heals itself.
func (p *Peer) removeConn(nid int, pc *peerConn) {
	p.mu.Lock()
	cur, ok := p.conns[nid]
	if !ok || cur != pc {
		// Superseded by a replacement connection; nothing to evict.
		p.mu.Unlock()
		pc.conn.Close()
		return
	}
	delete(p.conns, nid)
	p.statsFor(nid).Disconnects++
	p.linkMetricsFor(nid).disconnects.Inc()
	p.downSince[nid] = time.Now()
	o := p.obs
	addr, haveAddr := p.addrs[nid]
	spawn := false
	select {
	case <-p.closed:
	default:
		if haveAddr && !p.redialing[nid] {
			p.redialing[nid] = true
			p.wg.Add(1)
			spawn = true
		}
	}
	p.mu.Unlock()
	pc.conn.Close()
	o.Emit(p.id, obs.EvLinkDown, -1, nid, nil)
	p.notifyMembership()
	if spawn {
		go p.reconnectLoop(nid, addr)
	}
}

// reconnectLoop re-dials a dead neighbor link with exponential backoff and
// jitter until the link is up again (dialed by us or re-accepted from the
// other side) or the peer closes. Either side of a link runs this; the
// canonical-connection rule in addConn dedups concurrent re-dials.
func (p *Peer) reconnectLoop(nid int, addr string) {
	defer p.wg.Done()
	defer func() {
		p.mu.Lock()
		p.redialing[nid] = false
		p.mu.Unlock()
	}()
	backoff := reconnectBaseDelay
	// Reused backoff timer (see dial): reconnect loops can spin for the
	// whole lifetime of a partition, and a time.After per attempt keeps
	// feeding garbage timers to the runtime.
	var retry *time.Timer
	defer func() {
		if retry != nil {
			retry.Stop()
		}
	}()
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		p.mu.Lock()
		_, up := p.conns[nid]
		_, wanted := p.addrs[nid]
		p.mu.Unlock()
		if up {
			return // the other side reconnected to us
		}
		if !wanted {
			return // neighbor was Dropped; stop trying to revive the link
		}
		conn, err := p.dialOnce(addr, time.Now().Add(dialAttemptTimeout))
		if err == nil {
			p.addConn(nid, conn, true)
			return
		}
		// Full jitter on top of the exponential base keeps a partitioned
		// clique from re-dialing in lockstep.
		sleep := backoff + time.Duration(rand.Int63n(int64(backoff)))
		if retry == nil {
			retry = time.NewTimer(sleep)
		} else {
			retry.Reset(sleep)
		}
		select {
		case <-p.closed:
			return
		case <-retry.C:
		}
		backoff *= 2
		if backoff > reconnectMaxDelay {
			backoff = reconnectMaxDelay
		}
	}
}

// notifyMembership nudges a blocked Gather to re-evaluate the connection
// set. Non-blocking: a single pending nudge is enough.
func (p *Peer) notifyMembership() {
	select {
	case p.membership <- struct{}{}:
	default:
	}
}

// readLoop parses length-prefixed frames: [len u32][round u32][payload].
// On any read error the connection is evicted from the registry (so Gather
// stops counting it) and a reconnect loop takes over.
func (p *Peer) readLoop(from int, pc *peerConn) {
	defer p.wg.Done()
	defer p.removeConn(from, pc)
	p.mu.Lock()
	lm := p.linkMetricsFor(from)
	p.mu.Unlock()
	conn := pc.conn
	var header [8]byte
	var block [trace.BlockBytes]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:4])
		rawRound := binary.BigEndian.Uint32(header[4:8])
		round := int(rawRound &^ frameFlagTrace)
		traced := rawRound&frameFlagTrace != 0
		if size > maxFrameBytes {
			return
		}
		var ctx trace.Context
		if traced {
			if size < trace.BlockBytes {
				return
			}
			// Read the block into the stack array, not into the pooled
			// frame: slicing the block off a pooled buffer would shrink its
			// capacity a little more on every recycle.
			if _, err := io.ReadFull(conn, block[:]); err != nil {
				return
			}
			c, err := trace.ParseBlock(block[:])
			if err != nil {
				return
			}
			ctx = c
			size -= trace.BlockBytes
		}
		frame := getFrameBuf(int(size))
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		lm.framesIn.Inc()
		lm.bytesIn.Add(int64(size))
		if traced {
			p.tracer.Load().Recv(round, from, int(size), ctx, time.Now())
		}
		// Track the cluster's highest observed round (stored +1 so the
		// zero value reads as "none seen" = -1).
		for {
			cur := p.latestRound.Load()
			if int64(round)+1 <= cur || p.latestRound.CompareAndSwap(cur, int64(round)+1) {
				break
			}
		}
		select {
		case p.inbox <- inFrame{from: from, round: round, frame: frame}:
		case <-p.closed:
			return
		}
	}
}

// Send transmits a round-tagged frame to one neighbor. A send to a
// currently-down link fails fast (the caller should treat the neighbor as
// a straggler for the round); the background reconnect loop heals the link.
func (p *Peer) Send(to, round int, frame []byte) error {
	p.mu.Lock()
	faults := p.faults
	p.mu.Unlock()
	if faults != nil {
		if rule, ok := faults.take(to, round); ok {
			if err := p.applyFault(to, round, rule); err != nil || rule.Action != FaultDelay {
				return err
			}
		}
	}
	p.mu.Lock()
	pc, ok := p.conns[to]
	lm := p.linkMetricsFor(to)
	p.mu.Unlock()
	tr := p.tracer.Load()
	if !ok {
		return fmt.Errorf("transport: peer %d has no connection to %d", p.id, to)
	}
	// header is sized for the traced layout; n is how much of it this
	// frame actually uses. With tracing off the bytes written are
	// identical to the pre-trace wire format.
	var header [8 + trace.BlockBytes]byte
	n := 8
	size, wireRound := uint32(len(frame)), uint32(round)
	if tr.Enabled() {
		size += trace.BlockBytes
		wireRound |= frameFlagTrace
		trace.PutBlock(header[8:], trace.Context{
			TraceID:       trace.ID(p.id, round),
			Node:          p.id,
			Round:         round,
			SendUnixNanos: time.Now().UnixNano(),
		})
		n += trace.BlockBytes
	}
	binary.BigEndian.PutUint32(header[:4], size)
	binary.BigEndian.PutUint32(header[4:8], wireRound)
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	if _, err := pc.conn.Write(header[:n]); err != nil {
		return fmt.Errorf("transport: peer %d send header to %d: %w", p.id, to, err)
	}
	if _, err := pc.conn.Write(frame); err != nil {
		return fmt.Errorf("transport: peer %d send frame to %d: %w", p.id, to, err)
	}
	p.bytesSent.Add(int64(len(frame)))
	p.framesSent.Add(1)
	lm.framesOut.Inc()
	lm.bytesOut.Add(int64(len(frame)))
	return nil
}

// Broadcast sends the frame to every connected neighbor and returns the
// first error encountered (continuing to the rest regardless). Neighbors
// whose links are down are simply skipped — they are already counted as
// stragglers by the receiver side.
func (p *Peer) Broadcast(round int, frame []byte) error {
	ids := p.expectedConns()
	var firstErr error
	for _, nid := range ids {
		if err := p.Send(nid, round, frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// expectedConns returns the ids of connected neighbors that are also
// *expected* — registered via Connect (and not since Dropped). A live
// connection from a peer outside the expected set (an elastically joining
// node that dialed ahead of the epoch switch) is neither broadcast to nor
// waited for; its buffered frames become visible once an epoch adds it.
func (p *Peer) expectedConns() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]int, 0, len(p.conns))
	for nid := range p.conns {
		if _, ok := p.addrs[nid]; ok {
			ids = append(ids, nid)
		}
	}
	// Ascending order so Broadcast visits links deterministically instead
	// of in map-iteration order: on slow links a frame's queueing delay
	// behind its siblings becomes reproducible, which keeps lockstep
	// rounds from staggering differently run to run.
	sort.Ints(ids)
	return ids
}

// Gather blocks until a frame for the given round has arrived from every
// currently connected *expected* neighbor (see expectedConns), or the
// timeout elapses; it returns whatever arrived (possibly empty). Frames
// from other rounds are buffered for their own Gather calls. The expected
// count is re-evaluated whenever the connection set changes, so a
// neighbor that dies mid-round costs at most this one timeout —
// subsequent rounds no longer wait for it.
//
// Gather is a thin batch adapter over GatherStream; all fault semantics
// (dead-link re-evaluation, mid-wait membership changes, withholding of
// unexpected senders) live in the streaming core.
func (p *Peer) Gather(round int, timeout time.Duration) map[int][]byte {
	got := make(map[int][]byte)
	p.GatherStream(round, timeout, func(from int, frame []byte) bool {
		got[from] = frame
		return true
	})
	return got
}

// GatherStream is the streaming form of Gather: deliver is invoked with
// (sender, frame) as each of the round's frames arrives, instead of the
// frames being batched until the round completes. This is what lets a
// caller decode and integrate frame i while frame i+1 is still on the
// wire. deliver returning false aborts the stream early. The return
// values are the number of frames delivered and the number the stream
// was waiting for when it returned (got < want means stragglers).
//
// Semantics match the historical batch Gather exactly: at most one frame
// per sender per call; frames from senders outside the expected neighbor
// set (see expectedConns) are withheld, left buffered for a later epoch;
// the expected count is re-evaluated on every membership change; frames
// stay buffered until ForgetRound, so a repeated call for the same round
// re-delivers them. Frame ownership transfers to deliver — the caller
// recycles (or retains) each frame it is handed.
//
// GatherStream, Gather, and the deliver callback run on the caller's
// goroutine; the transport never calls deliver concurrently.
func (p *Peer) GatherStream(round int, timeout time.Duration, deliver func(from int, frame []byte) bool) (got, want int) {
	start := time.Now()
	got, want = p.gatherStream(round, timeout, deliver)
	wait := time.Since(start).Seconds()
	p.mu.Lock()
	waitH, short, o := p.gatherWaitH, p.gatherShort, p.obs
	p.mu.Unlock()
	waitH.Observe(wait)
	if got < want {
		short.Inc()
	}
	// Skip the field map entirely when no event log is attached: this is
	// once-per-round on the hot path, and the map literal was the last
	// steady-state allocation in the transport.
	if o.LogEnabled() {
		f := obs.GetFields()
		f["seconds"] = wait
		f["got"] = got
		f["want"] = want
		o.Emit(p.id, obs.EvGatherWait, round, -1, f)
		obs.PutFields(f)
	}
	return got, want
}

// gatherStream implements GatherStream. Frames from senders outside the
// expected neighbor set are withheld (left buffered): handing them up
// would make the engine reject the round, since a not-yet-reconfigured
// engine treats them as non-neighbors.
func (p *Peer) gatherStream(round int, timeout time.Duration, deliver func(from int, frame []byte) bool) (int, int) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()

	seen := p.streamSeen
	if seen == nil {
		seen = make(map[int]bool, 8)
		p.streamSeen = seen
	}
	clear(seen)

	got := 0
	// flush hands every buffered, expected, not-yet-delivered frame to
	// deliver (outside all locks) and reports the current want count.
	flush := func() (want int, aborted bool) {
		want, ready := p.readyFrames(round, seen)
		for _, m := range ready {
			got++
			if !deliver(m.from, m.frame) {
				return want, true
			}
		}
		return want, false
	}
	for {
		want, aborted := flush()
		if aborted || got >= want {
			return got, want
		}
		select {
		case m := <-p.inbox:
			p.storePending(m)
		case <-p.membership:
			// Connection set changed; recompute want.
		case <-deadline.C:
			want, _ := flush()
			return got, want
		case <-p.closed:
			want, _ := flush()
			return got, want
		}
	}
}

// readyFrames stages (into reusable scratch) the frames buffered for
// round from expected senders not yet marked in seen, marking them, and
// returns the current expected-sender count. Staged frames are sorted by
// sender id so delivery order is deterministic when several frames are
// already buffered. The frames themselves stay in the pending bucket
// until ForgetRound.
func (p *Peer) readyFrames(round int, seen map[int]bool) (int, []inFrame) {
	p.mu.Lock()
	keep := p.streamKeep
	if keep == nil {
		keep = make(map[int]bool, len(p.conns))
		p.streamKeep = keep
	}
	clear(keep)
	want := 0
	for nid := range p.conns {
		if _, ok := p.addrs[nid]; ok {
			keep[nid] = true
			want++
		}
	}
	p.mu.Unlock()

	ready := p.streamReady[:0]
	p.pendingMu.Lock()
	for from, frame := range p.pending[round] {
		if keep[from] && !seen[from] {
			seen[from] = true
			ready = append(ready, inFrame{from: from, round: round, frame: frame})
		}
	}
	p.pendingMu.Unlock()
	// Insertion sort: degree-sized, already mostly sorted, no allocation.
	for i := 1; i < len(ready); i++ {
		for j := i; j > 0 && ready[j].from < ready[j-1].from; j-- {
			ready[j], ready[j-1] = ready[j-1], ready[j]
		}
	}
	p.streamReady = ready
	return want, ready
}

func (p *Peer) storePending(m inFrame) {
	p.pendingMu.Lock()
	defer p.pendingMu.Unlock()
	byFrom, ok := p.pending[m.round]
	if !ok {
		byFrom = make(map[int][]byte)
		p.pending[m.round] = byFrom
	}
	byFrom[m.from] = m.frame
}

// ForgetRound discards buffered frames for rounds at or before the given
// round. Call it after integrating a round to bound memory.
func (p *Peer) ForgetRound(round int) {
	p.pendingMu.Lock()
	defer p.pendingMu.Unlock()
	for r := range p.pending {
		if r <= round {
			delete(p.pending, r)
		}
	}
}

// Close shuts down the listener, all connections, and any reconnect loops.
func (p *Peer) Close() error {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		close(p.closed)
		// Peer connections are often already dead (that is what the
		// reconnect machinery is for), so their close errors are noise;
		// the listener close error is the one worth reporting.
		p.closeErr = p.listener.Close()
		for _, pc := range p.conns {
			pc.conn.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
	return p.closeErr
}
