package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrameBytes bounds a single wire frame; generous for the paper's
// largest model (a 784-30-10 MLP update is < 300 KB).
const maxFrameBytes = 64 << 20

// Peer is one edge server's TCP endpoint. Peers keep one persistent
// connection per neighbor (the lower-id peer accepts, the higher-id peer
// dials, so each pair has exactly one connection) and exchange
// length-prefixed, round-tagged frames. Gather implements the paper's
// RIP-like synchronization: wait for this round's frame from every
// neighbor, giving up on stragglers after a timeout.
type Peer struct {
	id       int
	listener net.Listener

	mu    sync.Mutex
	conns map[int]*peerConn

	inbox chan inFrame

	// pending buffers frames by round until Gather asks for them.
	pendingMu sync.Mutex
	pending   map[int]map[int][]byte

	bytesSent atomic.Int64
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

type peerConn struct {
	writeMu sync.Mutex
	conn    net.Conn
}

type inFrame struct {
	from  int
	round int
	frame []byte
}

// NewPeer creates a peer with the given id listening on addr
// (e.g. "127.0.0.1:0" for an ephemeral port).
func NewPeer(id int, addr string) (*Peer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: peer %d listen: %w", id, err)
	}
	p := &Peer{
		id:       id,
		listener: ln,
		conns:    make(map[int]*peerConn),
		inbox:    make(chan inFrame, 1024),
		pending:  make(map[int]map[int][]byte),
		closed:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// ID returns this peer's node id.
func (p *Peer) ID() int { return p.id }

// Addr returns the listener address (use after NewPeer with port 0).
func (p *Peer) Addr() string { return p.listener.Addr().String() }

// BytesSent returns the total payload bytes written to sockets — the
// quantity the paper's testbed experiment records.
func (p *Peer) BytesSent() int64 { return p.bytesSent.Load() }

// Connect establishes connections to all neighbors: it dials every
// neighbor with a higher id and waits until connections with all listed
// neighbors (dialed or accepted) exist, or the timeout expires.
func (p *Peer) Connect(neighbors map[int]string, timeout time.Duration) error {
	for nid, addr := range neighbors {
		if nid == p.id {
			return fmt.Errorf("transport: peer %d listed as its own neighbor", p.id)
		}
		if nid > p.id {
			if err := p.dial(nid, addr, timeout); err != nil {
				return err
			}
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		missing := 0
		for nid := range neighbors {
			if _, ok := p.conns[nid]; !ok {
				missing++
			}
		}
		p.mu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peer %d timed out waiting for %d neighbor connection(s)", p.id, missing)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// dial connects to a neighbor, retrying until the deadline — peers start
// in arbitrary order, so the target may not be listening yet.
func (p *Peer) dial(nid int, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: peer %d dial %d@%s: %w", p.id, nid, addr, err)
		}
		select {
		case <-p.closed:
			return fmt.Errorf("transport: peer %d closed while dialing %d", p.id, nid)
		case <-time.After(50 * time.Millisecond):
		}
	}
	// Hello: announce our id.
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(p.id))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return fmt.Errorf("transport: peer %d hello to %d: %w", p.id, nid, err)
	}
	p.addConn(nid, conn)
	return nil
}

func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.listener.Accept()
		if err != nil {
			select {
			case <-p.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		// Read the hello to learn the remote id.
		var hello [4]byte
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Time{})
		p.addConn(int(binary.BigEndian.Uint32(hello[:])), conn)
	}
}

func (p *Peer) addConn(nid int, conn net.Conn) {
	pc := &peerConn{conn: conn}
	p.mu.Lock()
	if old, ok := p.conns[nid]; ok {
		old.conn.Close()
	}
	p.conns[nid] = pc
	p.mu.Unlock()
	p.wg.Add(1)
	go p.readLoop(nid, conn)
}

// readLoop parses length-prefixed frames: [len u32][round u32][payload].
func (p *Peer) readLoop(from int, conn net.Conn) {
	defer p.wg.Done()
	var header [8]byte
	for {
		if _, err := io.ReadFull(conn, header[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(header[:4])
		round := int(binary.BigEndian.Uint32(header[4:8]))
		if size > maxFrameBytes {
			conn.Close()
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		select {
		case p.inbox <- inFrame{from: from, round: round, frame: frame}:
		case <-p.closed:
			return
		}
	}
}

// Send transmits a round-tagged frame to one neighbor.
func (p *Peer) Send(to, round int, frame []byte) error {
	p.mu.Lock()
	pc, ok := p.conns[to]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: peer %d has no connection to %d", p.id, to)
	}
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(frame)))
	binary.BigEndian.PutUint32(header[4:8], uint32(round))
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	if _, err := pc.conn.Write(header[:]); err != nil {
		return fmt.Errorf("transport: peer %d send header to %d: %w", p.id, to, err)
	}
	if _, err := pc.conn.Write(frame); err != nil {
		return fmt.Errorf("transport: peer %d send frame to %d: %w", p.id, to, err)
	}
	p.bytesSent.Add(int64(len(frame)))
	return nil
}

// Broadcast sends the frame to every connected neighbor and returns the
// first error encountered (continuing to the rest regardless).
func (p *Peer) Broadcast(round int, frame []byte) error {
	p.mu.Lock()
	ids := make([]int, 0, len(p.conns))
	for nid := range p.conns {
		ids = append(ids, nid)
	}
	p.mu.Unlock()
	var firstErr error
	for _, nid := range ids {
		if err := p.Send(nid, round, frame); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Gather blocks until a frame for the given round has arrived from every
// currently connected neighbor, or the timeout elapses; it returns
// whatever arrived (possibly empty). Frames from other rounds are buffered
// for their own Gather calls.
func (p *Peer) Gather(round int, timeout time.Duration) map[int][]byte {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()

	p.mu.Lock()
	want := len(p.conns)
	p.mu.Unlock()

	for {
		if got := p.takePending(round); len(got) >= want {
			return got
		}
		select {
		case m := <-p.inbox:
			p.storePending(m)
		case <-deadline.C:
			return p.takePending(round)
		case <-p.closed:
			return p.takePending(round)
		}
	}
}

func (p *Peer) storePending(m inFrame) {
	p.pendingMu.Lock()
	defer p.pendingMu.Unlock()
	byFrom, ok := p.pending[m.round]
	if !ok {
		byFrom = make(map[int][]byte)
		p.pending[m.round] = byFrom
	}
	byFrom[m.from] = m.frame
}

// takePending returns a copy of the frames buffered for round. The bucket
// itself is kept until ForgetRound so a late Gather retry still sees them.
func (p *Peer) takePending(round int) map[int][]byte {
	p.pendingMu.Lock()
	defer p.pendingMu.Unlock()
	byFrom := p.pending[round]
	if byFrom == nil {
		return map[int][]byte{}
	}
	out := make(map[int][]byte, len(byFrom))
	for k, v := range byFrom {
		out[k] = v
	}
	return out
}

// ForgetRound discards buffered frames for rounds at or before the given
// round. Call it after integrating a round to bound memory.
func (p *Peer) ForgetRound(round int) {
	p.pendingMu.Lock()
	defer p.pendingMu.Unlock()
	for r := range p.pending {
		if r <= round {
			delete(p.pending, r)
		}
	}
}

// Close shuts down the listener and all connections.
func (p *Peer) Close() error {
	p.closeOnce.Do(func() {
		close(p.closed)
		p.listener.Close()
		p.mu.Lock()
		for _, pc := range p.conns {
			pc.conn.Close()
		}
		p.mu.Unlock()
	})
	p.wg.Wait()
	return nil
}
