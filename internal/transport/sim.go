// Package transport moves SNAP frames between edge servers.
//
// Two implementations are provided:
//
//   - Sim: a deterministic in-memory network for the paper's large-scale
//     simulations. It delivers frames in lockstep rounds over a fixed
//     topology, injects per-round link failures (the straggler experiments
//     of Fig. 9), and charges every message hops × bytes to a cost ledger
//     (the paper's definition of communication cost).
//
//   - Peer: a real TCP endpoint for the testbed mode: length-prefixed
//     frames over persistent connections between neighbor edge servers,
//     with a round-tagged gather that tolerates missing neighbors
//     (stragglers) via timeout.
package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
)

// Sim is a lockstep simulated network over a fixed topology. Messages sent
// during a round are delivered at that round's Exchange call. Direct
// neighbor traffic crosses one hop; Unicast traffic is routed along
// shortest paths and charged accordingly. Sim is safe for concurrent use
// by per-node goroutines within a round.
type Sim struct {
	topo   *graph.Graph
	hops   [][]int
	ledger *metrics.CostLedger

	// failureRate is the per-round probability that an individual link is
	// down (both directions). Failed links drop neighbor frames silently,
	// which is exactly the paper's straggler model: the receiver just
	// reuses the neighbor's last parameters.
	failureRate float64
	failureRNG  *rand.Rand

	mu         sync.Mutex
	round      int
	downLinks  map[graph.Edge]bool
	inboxes    []map[int][]byte // inboxes[to][from] = frame (neighbor traffic)
	uniInboxes []map[int][]byte // unicast traffic, same shape
	// inboxSpare/uniSpare hold each node's off-duty inbox map: Collect
	// swaps the active map with the (cleared) spare instead of
	// allocating a fresh map per call, so the steady-state round loop
	// reuses two maps per node forever.
	inboxSpare []map[int][]byte
	uniSpare   []map[int][]byte
	dropped    int64 // frames lost to failed links

	// nbrSorted caches each node's neighbor ids in ascending order so
	// CollectStream delivers deterministically without re-querying (and
	// re-copying) the topology every round. Immutable after NewSim.
	nbrSorted [][]int
}

// NewSim builds a simulated network over topo. ledger may be nil, in which
// case an internal ledger is created (retrievable via Ledger).
func NewSim(topo *graph.Graph, ledger *metrics.CostLedger) *Sim {
	if ledger == nil {
		ledger = metrics.NewCostLedger()
	}
	s := &Sim{
		topo:   topo,
		hops:   topo.AllPairsHops(),
		ledger: ledger,
	}
	s.resetInboxes()
	s.downLinks = make(map[graph.Edge]bool)
	s.nbrSorted = make([][]int, topo.N())
	for i := range s.nbrSorted {
		ids := topo.Neighbors(i)
		sort.Ints(ids)
		s.nbrSorted[i] = ids
	}
	return s
}

// SetFailures enables per-round link failures: each link is independently
// down for a whole round with probability rate, drawn deterministically
// from seed.
func (s *Sim) SetFailures(rate float64, seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failureRate = rate
	s.failureRNG = rand.New(rand.NewSource(seed))
}

// Ledger returns the cost ledger charged by this network.
func (s *Sim) Ledger() *metrics.CostLedger { return s.ledger }

// NumNodes returns the number of simulated edge servers.
func (s *Sim) NumNodes() int { return s.topo.N() }

// Neighbors returns the neighbor set of node i.
func (s *Sim) Neighbors(i int) []int { return s.topo.Neighbors(i) }

// Topology returns the underlying graph (not a copy; callers must not
// mutate it mid-run).
func (s *Sim) Topology() *graph.Graph { return s.topo }

// Dropped returns the number of frames lost to failed links so far.
func (s *Sim) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// BeginRound starts round r: clears inboxes and resamples link failures.
// Rounds must begin in nondecreasing order.
func (s *Sim) BeginRound(r int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = r
	s.resetInboxesLocked()
	for k := range s.downLinks {
		delete(s.downLinks, k)
	}
	if s.failureRate > 0 && s.failureRNG != nil {
		for _, e := range s.topo.Edges() {
			if s.failureRNG.Float64() < s.failureRate {
				s.downLinks[e] = true
			}
		}
	}
}

// Send transmits a frame from node `from` to direct neighbor `to` during
// the current round. It returns an error if the nodes are not neighbors.
// If the link is down this round the frame is dropped silently (the
// sender cannot tell — as with a congested wireless link) but the cost is
// not charged, since the frame never crossed the link.
//
// The frame is aliased, not copied: the sender must not rewrite the
// buffer until the round's receivers have collected and consumed it,
// which the lockstep protocol (send phase → barrier → collect phase)
// guarantees.
func (s *Sim) Send(from, to int, frame []byte) error {
	if !s.topo.HasEdge(from, to) {
		return fmt.Errorf("transport: %d→%d are not neighbors", from, to)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.downLinks[canonical(from, to)] {
		s.dropped++
		return nil
	}
	s.ledger.Record(s.round, 1, len(frame))
	s.inboxes[to][from] = frame
	return nil
}

// Unicast transmits a frame between two arbitrary nodes along the shortest
// path, charging hops × bytes. Used by the parameter-server baselines.
// Unicast traffic is not subject to link-failure injection (the PS
// baselines in the paper are evaluated without stragglers).
func (s *Sim) Unicast(from, to int, frame []byte) error {
	h := s.hops[from][to]
	if h < 0 {
		return fmt.Errorf("transport: no path %d→%d", from, to)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ledger.Record(s.round, h, len(frame))
	s.uniInboxes[to][from] = frame
	return nil
}

// Collect drains node i's neighbor inbox for the current round: a map from
// sender id to frame. The returned map is owned by the Sim and is reused:
// it stays valid only until node i's next Collect call, matching the
// lockstep round protocol where each round's inbox is consumed before the
// next begins.
func (s *Sim) Collect(i int) map[int][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.inboxes[i]
	spare := s.inboxSpare[i]
	clear(spare)
	s.inboxes[i], s.inboxSpare[i] = spare, out
	return out
}

// CollectStream drains node i's neighbor inbox for the current round,
// delivering (sender, frame) pairs in ascending sender-id order — the
// streaming shape of Peer.GatherStream, so simulated and TCP round
// loops share one ingest path. A lockstep network has no mid-round
// arrivals, so the whole inbox is delivered synchronously; the value of
// the streaming form here is the fixed per-sender iteration order.
// Frames follow the same reuse contract as Collect: valid until node
// i's next Collect/CollectStream. deliver returning false stops the
// stream early (remaining frames are discarded with the round, as with
// an unconsumed Collect map). Returns the number of frames delivered.
func (s *Sim) CollectStream(i int, deliver func(from int, frame []byte) bool) int {
	box := s.Collect(i)
	n := 0
	for _, from := range s.nbrSorted[i] {
		frame, ok := box[from]
		if !ok {
			continue
		}
		n++
		if !deliver(from, frame) {
			break
		}
	}
	return n
}

// CollectUnicast drains node i's unicast inbox for the current round,
// with the same reuse contract as Collect.
func (s *Sim) CollectUnicast(i int) map[int][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.uniInboxes[i]
	spare := s.uniSpare[i]
	clear(spare)
	s.uniInboxes[i], s.uniSpare[i] = spare, out
	return out
}

// Hops returns the shortest-path hop count between two nodes (-1 if
// disconnected).
func (s *Sim) Hops(from, to int) int { return s.hops[from][to] }

func (s *Sim) resetInboxes() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resetInboxesLocked()
}

func (s *Sim) resetInboxesLocked() {
	n := s.topo.N()
	if s.inboxes == nil {
		s.inboxes = make([]map[int][]byte, n)
		s.uniInboxes = make([]map[int][]byte, n)
		s.inboxSpare = make([]map[int][]byte, n)
		s.uniSpare = make([]map[int][]byte, n)
		for i := 0; i < n; i++ {
			s.inboxes[i] = make(map[int][]byte)
			s.uniInboxes[i] = make(map[int][]byte)
			s.inboxSpare[i] = make(map[int][]byte)
			s.uniSpare[i] = make(map[int][]byte)
		}
		return
	}
	for i := 0; i < n; i++ {
		clear(s.inboxes[i])
		clear(s.uniInboxes[i])
	}
}

func canonical(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: u, V: v}
}
