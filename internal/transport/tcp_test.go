package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// startPeers launches n fully connected TCP peers on loopback.
func startPeers(t *testing.T, n int) []*Peer {
	t.Helper()
	peers := make([]*Peer, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		p, err := NewPeer(i, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		peers[i] = p
		addrs[i] = p.Addr()
		t.Cleanup(func() { p.Close() })
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for j, a := range addrs {
				if j != i {
					neighbors[j] = a
				}
			}
			errs[i] = peers[i].Connect(neighbors, 5*time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect peer %d: %v", i, err)
		}
	}
	return peers
}

func TestPeerBroadcastGather(t *testing.T) {
	peers := startPeers(t, 3)
	var wg sync.WaitGroup
	results := make([]map[int][]byte, 3)
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			if err := p.Broadcast(0, []byte(fmt.Sprintf("from-%d", i))); err != nil {
				t.Errorf("broadcast %d: %v", i, err)
				return
			}
			results[i] = p.Gather(0, 5*time.Second)
		}(i, p)
	}
	wg.Wait()
	for i, got := range results {
		if len(got) != 2 {
			t.Fatalf("peer %d gathered %d frames, want 2: %v", i, len(got), got)
		}
		for from, frame := range got {
			if want := fmt.Sprintf("from-%d", from); string(frame) != want {
				t.Errorf("peer %d got %q from %d, want %q", i, frame, from, want)
			}
		}
	}
}

func TestPeerRoundSeparation(t *testing.T) {
	peers := startPeers(t, 2)
	// Peer 0 sends rounds 1 and 2 back-to-back; peer 1 must see them
	// separately.
	if err := peers[0].Send(1, 1, []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := peers[0].Send(1, 2, []byte("r2")); err != nil {
		t.Fatal(err)
	}
	got1 := peers[1].Gather(1, 2*time.Second)
	if string(got1[0]) != "r1" {
		t.Errorf("round 1 gather = %v", got1)
	}
	got2 := peers[1].Gather(2, 2*time.Second)
	if string(got2[0]) != "r2" {
		t.Errorf("round 2 gather = %v", got2)
	}
}

func TestPeerGatherTimeoutOnStraggler(t *testing.T) {
	peers := startPeers(t, 3)
	// Only peer 1 sends; peer 2 stays silent (straggler).
	if err := peers[1].Send(0, 0, []byte("present")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got := peers[0].Gather(0, 300*time.Millisecond)
	elapsed := time.Since(start)
	if len(got) != 1 || string(got[1]) != "present" {
		t.Errorf("gather = %v, want only peer 1's frame", got)
	}
	if elapsed < 250*time.Millisecond {
		t.Errorf("gather returned after %v, expected to wait out the timeout", elapsed)
	}
}

func TestPeerBytesSent(t *testing.T) {
	peers := startPeers(t, 2)
	payload := make([]byte, 1000)
	if err := peers[0].Send(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	if got := peers[0].BytesSent(); got != 1000 {
		t.Errorf("BytesSent = %d, want 1000", got)
	}
	if got := peers[1].BytesSent(); got != 0 {
		t.Errorf("receiver BytesSent = %d, want 0", got)
	}
}

func TestPeerForgetRound(t *testing.T) {
	peers := startPeers(t, 2)
	if err := peers[0].Send(1, 0, []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Let the frame arrive and be buffered.
	got := peers[1].Gather(0, 2*time.Second)
	if len(got) != 1 {
		t.Fatalf("gather = %v", got)
	}
	peers[1].ForgetRound(0)
	if got := peers[1].Gather(0, 50*time.Millisecond); len(got) != 0 {
		t.Errorf("forgotten round still gathered: %v", got)
	}
}

func TestPeerSendToUnknownNeighbor(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Send(5, 0, []byte("x")); err == nil {
		t.Error("send to unconnected neighbor accepted")
	}
}

func TestPeerConnectRejectsSelf(t *testing.T) {
	p, err := NewPeer(3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Connect(map[int]string{3: p.Addr()}, time.Second); err == nil {
		t.Error("self-neighbor accepted")
	}
}

func TestPeerCloseIdempotent(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it returns true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPeerEvictsDeadConn kills one peer and checks the survivor evicts the
// connection: Healthy flips false, Gather no longer counts the dead
// neighbor (so it returns as soon as live neighbors report), and
// Broadcast stops erroring.
func TestPeerEvictsDeadConn(t *testing.T) {
	peers := startPeers(t, 3)
	peers[2].Close()

	waitFor(t, 5*time.Second, "eviction of dead conn", func() bool {
		return !peers[0].Healthy(2) && !peers[1].Healthy(2)
	})

	// Gather must not wait the full timeout for the evicted neighbor.
	if err := peers[1].Send(0, 0, []byte("live")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got := peers[0].Gather(0, 10*time.Second)
	elapsed := time.Since(start)
	if len(got) != 1 || string(got[1]) != "live" {
		t.Fatalf("gather = %v, want only the live neighbor's frame", got)
	}
	if elapsed > 2*time.Second {
		t.Errorf("gather took %v with a dead neighbor; eviction should keep it fast", elapsed)
	}

	// Broadcast skips the dead link rather than erroring forever.
	if err := peers[0].Broadcast(1, []byte("x")); err != nil {
		t.Errorf("broadcast after eviction: %v", err)
	}

	st := peers[0].Stats()[2]
	if st.Disconnects < 1 {
		t.Errorf("stats for dead link = %+v, want at least one disconnect", st)
	}
}

// TestPeerReconnectAfterReset resets the only connection of a two-peer
// pair via fault injection and checks that the link heals itself with
// backoff, fires the reconnect handler on both sides, and carries frames
// again.
func TestPeerReconnectAfterReset(t *testing.T) {
	peers := startPeers(t, 2)

	reconnected := make(chan int, 4)
	for _, p := range peers {
		p.SetReconnectHandler(func(nid int) { reconnected <- nid })
	}

	faults := NewFaultSet().Add(FaultRule{Peer: 1, Round: 0, Action: FaultReset})
	peers[0].SetFaults(faults)

	if err := peers[0].Send(1, 0, []byte("doomed")); err == nil {
		t.Fatal("send through injected reset succeeded, want error")
	}
	if faults.Fired() != 1 {
		t.Fatalf("faults fired = %d, want 1", faults.Fired())
	}

	waitFor(t, 10*time.Second, "link to heal", func() bool {
		return peers[0].Healthy(1) && peers[1].Healthy(0)
	})

	select {
	case <-reconnected:
	case <-time.After(5 * time.Second):
		t.Fatal("reconnect handler never fired")
	}

	// The healed link carries frames again (the reset rule was one-shot).
	waitFor(t, 5*time.Second, "frame over healed link", func() bool {
		if err := peers[0].Send(1, 1, []byte("healed")); err != nil {
			return false
		}
		got := peers[1].Gather(1, time.Second)
		return string(got[0]) == "healed"
	})

	if st := peers[0].Stats()[1]; st.Reconnects < 1 || st.Disconnects < 1 {
		t.Errorf("peer 0 link stats = %+v, want at least one disconnect and reconnect", st)
	}
}

// TestPeerConnectFailsWithinBudget checks the dial retry loop respects its
// overall deadline even though each attempt is individually capped.
func TestPeerConnectFailsWithinBudget(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Reserve a port with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	start := time.Now()
	err = p.Connect(map[int]string{1: dead}, 500*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("connect to dead address succeeded")
	}
	if elapsed > 500*time.Millisecond+2*dialAttemptTimeout {
		t.Errorf("connect took %v, want bounded by the %v budget plus one capped attempt", elapsed, 500*time.Millisecond)
	}
}

// TestPeerCloseDuringConcurrentAccepts hammers a closing peer with new
// connections; under -race this exercises the addConn/Close WaitGroup
// ordering.
func TestPeerCloseDuringConcurrentAccepts(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		p, err := NewPeer(0, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := p.Addr()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer conn.Close()
				var hello [4]byte
				hello[3] = byte(id + 1)
				conn.Write(hello[:])
				time.Sleep(time.Millisecond)
			}(i)
		}
		time.Sleep(time.Duration(trial) * 100 * time.Microsecond)
		p.Close()
		wg.Wait()
	}
}

func TestPeerManyRoundsUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping load test in -short mode")
	}
	peers := startPeers(t, 4)
	const rounds = 30
	var wg sync.WaitGroup
	failures := make([]error, len(peers))
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *Peer) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				payload := []byte(fmt.Sprintf("%d:%d", i, r))
				if err := p.Broadcast(r, payload); err != nil {
					failures[i] = err
					return
				}
				got := p.Gather(r, 5*time.Second)
				if len(got) != 3 {
					failures[i] = fmt.Errorf("round %d: got %d frames", r, len(got))
					return
				}
				p.ForgetRound(r)
			}
		}(i, p)
	}
	wg.Wait()
	for i, err := range failures {
		if err != nil {
			t.Errorf("peer %d: %v", i, err)
		}
	}
}
