package transport

import (
	"sync"
	"testing"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
)

func TestSimNeighborDelivery(t *testing.T) {
	g := graph.Ring(4)
	s := NewSim(g, nil)
	s.BeginRound(0)
	if err := s.Send(0, 1, []byte("ab")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(2, 1, []byte("cde")); err != nil {
		t.Fatal(err)
	}
	in := s.Collect(1)
	if len(in) != 2 || string(in[0]) != "ab" || string(in[2]) != "cde" {
		t.Errorf("Collect(1) = %v", in)
	}
	// Collect drains.
	if len(s.Collect(1)) != 0 {
		t.Error("second Collect not empty")
	}
}

func TestSimRejectsNonNeighborSend(t *testing.T) {
	g := graph.Ring(5) // 0 and 2 are not adjacent
	s := NewSim(g, nil)
	s.BeginRound(0)
	if err := s.Send(0, 2, []byte("x")); err == nil {
		t.Error("non-neighbor Send accepted")
	}
}

func TestSimCostAccounting(t *testing.T) {
	g := graph.Ring(6)
	led := metrics.NewCostLedger()
	s := NewSim(g, led)
	s.BeginRound(0)
	if err := s.Send(0, 1, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Neighbor traffic: 1 hop × 100 bytes.
	if got := led.Total(); got != 100 {
		t.Errorf("neighbor cost = %v, want 100", got)
	}
	// Unicast 0→3 on a 6-ring crosses 3 hops.
	if err := s.Unicast(0, 3, make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if got := led.Total(); got != 130 {
		t.Errorf("total cost = %v, want 130", got)
	}
	if got := s.Hops(0, 3); got != 3 {
		t.Errorf("Hops(0,3) = %d, want 3", got)
	}
}

func TestSimUnicastDelivery(t *testing.T) {
	g := graph.Ring(5)
	s := NewSim(g, nil)
	s.BeginRound(0)
	if err := s.Unicast(0, 2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	in := s.CollectUnicast(2)
	if string(in[0]) != "hi" {
		t.Errorf("unicast inbox = %v", in)
	}
	// Unicast and neighbor inboxes are separate.
	if len(s.Collect(2)) != 0 {
		t.Error("unicast leaked into neighbor inbox")
	}
}

func TestSimUnicastDisconnected(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	s := NewSim(g, nil)
	s.BeginRound(0)
	if err := s.Unicast(0, 2, []byte("x")); err == nil {
		t.Error("unicast across disconnected components accepted")
	}
}

func TestSimBeginRoundClearsInboxes(t *testing.T) {
	g := graph.Ring(3)
	s := NewSim(g, nil)
	s.BeginRound(0)
	if err := s.Send(0, 1, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	s.BeginRound(1)
	if got := s.Collect(1); len(got) != 0 {
		t.Errorf("stale frame survived BeginRound: %v", got)
	}
}

func TestSimLinkFailures(t *testing.T) {
	g := graph.Complete(4)
	s := NewSim(g, nil)
	s.SetFailures(1.0, 42) // every link down every round
	s.BeginRound(0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if err := s.Send(i, j, []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if got := s.Collect(i); len(got) != 0 {
			t.Errorf("node %d received %d frames through failed links", i, len(got))
		}
	}
	if s.Dropped() != 12 {
		t.Errorf("Dropped = %d, want 12", s.Dropped())
	}
	// No cost charged for dropped frames.
	if s.Ledger().Total() != 0 {
		t.Errorf("cost charged for dropped frames: %v", s.Ledger().Total())
	}
}

func TestSimFailuresDeterministic(t *testing.T) {
	run := func() int64 {
		g := graph.RandomConnected(20, 3, newSeededRand(5))
		s := NewSim(g, nil)
		s.SetFailures(0.3, 99)
		total := 0
		for r := 0; r < 10; r++ {
			s.BeginRound(r)
			for _, e := range g.Edges() {
				if err := s.Send(e.U, e.V, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < g.N(); i++ {
				total += len(s.Collect(i))
			}
		}
		return int64(total)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("failure injection not deterministic: %d vs %d", a, b)
	}
}

func TestSimZeroFailureRateDeliversAll(t *testing.T) {
	g := graph.Ring(10)
	s := NewSim(g, nil)
	s.SetFailures(0, 7)
	s.BeginRound(0)
	for _, e := range g.Edges() {
		if err := s.Send(e.U, e.V, []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	delivered := 0
	for i := 0; i < 10; i++ {
		delivered += len(s.Collect(i))
	}
	if delivered != 10 {
		t.Errorf("delivered %d frames, want 10", delivered)
	}
}

func TestSimConcurrentSends(t *testing.T) {
	g := graph.Complete(8)
	s := NewSim(g, nil)
	s.BeginRound(0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for to := 0; to < 8; to++ {
				if to != from {
					if err := s.Send(from, to, []byte{byte(from)}); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		if got := len(s.Collect(i)); got != 7 {
			t.Errorf("node %d received %d frames, want 7", i, got)
		}
	}
}
