package transport

import (
	"sync"
	"testing"
	"time"
)

// TestGatherStreamDeliversIncrementally proves frames reach the deliver
// callback as they arrive, not after the barrier: the second sender waits
// until the receiver has already consumed the first frame, so a batching
// implementation would deadlock here (it could never release frame one
// before frame two was sent).
func TestGatherStreamDeliversIncrementally(t *testing.T) {
	peers := startPeers(t, 3)
	firstSeen := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := peers[1].Send(0, 0, []byte("early")); err != nil {
			t.Errorf("send from 1: %v", err)
		}
		<-firstSeen // frame two only exists after frame one was delivered
		if err := peers[2].Send(0, 0, []byte("late")); err != nil {
			t.Errorf("send from 2: %v", err)
		}
	}()

	var order []int
	got, want := peers[0].GatherStream(0, 10*time.Second, func(from int, frame []byte) bool {
		order = append(order, from)
		if len(order) == 1 {
			if from != 1 || string(frame) != "early" {
				t.Errorf("first delivery = (%d, %q), want (1, early)", from, frame)
			}
			close(firstSeen)
		}
		return true
	})
	wg.Wait()

	if got != 2 || want != 2 {
		t.Fatalf("GatherStream = (got %d, want %d), expected (2, 2)", got, want)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", order)
	}
}

// TestGatherStreamFaultDrop checks the straggler path: a silently dropped
// frame leaves the stream short, so it delivers what it has and returns
// got < want at the deadline instead of blocking forever.
func TestGatherStreamFaultDrop(t *testing.T) {
	peers := startPeers(t, 3)
	peers[1].SetFaults(NewFaultSet().Add(
		FaultRule{Peer: 0, Round: 0, Action: FaultDrop}))

	if err := peers[1].Send(0, 0, []byte("lost")); err != nil {
		t.Fatalf("dropped send must look successful, got %v", err)
	}
	if err := peers[2].Send(0, 0, []byte("kept")); err != nil {
		t.Fatal(err)
	}

	const timeout = 300 * time.Millisecond
	start := time.Now()
	var froms []int
	got, want := peers[0].GatherStream(0, timeout, func(from int, frame []byte) bool {
		froms = append(froms, from)
		return true
	})
	if elapsed := time.Since(start); elapsed < timeout {
		t.Errorf("short stream returned after %v, want the full %v deadline", elapsed, timeout)
	}
	if got != 1 || want != 2 {
		t.Errorf("GatherStream = (got %d, want %d), expected (1, 2) after a drop", got, want)
	}
	if len(froms) != 1 || froms[0] != 2 {
		t.Errorf("delivered senders = %v, want just [2]", froms)
	}
}

// TestGatherStreamFaultDelay checks a delayed frame still lands inside a
// generous deadline: the stream keeps waiting after the prompt frames and
// picks up the slow one when it finally crosses the link.
func TestGatherStreamFaultDelay(t *testing.T) {
	peers := startPeers(t, 2)
	const delay = 150 * time.Millisecond
	peers[1].SetFaults(NewFaultSet().Add(
		FaultRule{Peer: 0, Round: 0, Action: FaultDelay, Delay: delay}))

	// Send blocks for the injected delay, so it runs off the test goroutine.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := peers[1].Send(0, 0, []byte("slow")); err != nil {
			t.Errorf("delayed send: %v", err)
		}
	}()

	start := time.Now()
	got, want := peers[0].GatherStream(0, 5*time.Second, func(from int, frame []byte) bool {
		if from != 1 || string(frame) != "slow" {
			t.Errorf("delivery = (%d, %q), want (1, slow)", from, frame)
		}
		return true
	})
	elapsed := time.Since(start)
	wg.Wait()

	if got != 1 || want != 1 {
		t.Errorf("GatherStream = (got %d, want %d), expected (1, 1)", got, want)
	}
	if elapsed < delay {
		t.Errorf("stream returned after %v, cannot have waited out the %v delay", elapsed, delay)
	}
	if elapsed > 4*time.Second {
		t.Errorf("stream took %v, should return as soon as the delayed frame lands", elapsed)
	}
}

// TestGatherStreamFaultReset checks that losing a connection mid-stream
// re-evaluates want downward: once the reset link is evicted the stream
// has every frame it can still expect and returns well before the
// deadline instead of waiting on a peer that cannot deliver. The sender
// is closed right after the injected reset — otherwise the reconnect
// machinery (correctly) revives the link and restores want.
func TestGatherStreamFaultReset(t *testing.T) {
	peers := startPeers(t, 2)
	peers[1].SetFaults(NewFaultSet().Add(
		FaultRule{Peer: 0, Round: 0, Action: FaultReset}))
	if err := peers[1].Send(0, 0, []byte("doomed")); err == nil {
		t.Fatal("send at the reset round succeeded, want error")
	}
	peers[1].Close() // keep the link down: no listener left to heal against

	const timeout = 10 * time.Second
	start := time.Now()
	got, want := peers[0].GatherStream(0, timeout, func(from int, frame []byte) bool {
		t.Errorf("unexpected delivery from %d", from)
		return true
	})
	elapsed := time.Since(start)

	if got != 0 {
		t.Errorf("got = %d frames, want 0", got)
	}
	if want != 0 {
		t.Errorf("want = %d after eviction, expected 0 (dead link no longer counted)", want)
	}
	if elapsed > timeout/2 {
		t.Errorf("stream took %v with a dead peer; membership nudge should end it early", elapsed)
	}
}

// TestGatherStreamDropMidStream drops a neighbor while the stream is
// blocked waiting on it — the transport half of an elastic Reconfigure
// landing mid-round. The membership change must wake the stream and
// shrink want so the round completes with the surviving frames.
func TestGatherStreamDropMidStream(t *testing.T) {
	peers := startPeers(t, 3)
	if err := peers[1].Send(0, 0, []byte("present")); err != nil {
		t.Fatal(err)
	}

	const timeout = 10 * time.Second
	delivered := make(chan struct{})
	go func() {
		<-delivered // stream is live and has consumed peer 1's frame
		peers[0].Drop(2)
	}()

	start := time.Now()
	var once sync.Once
	got, want := peers[0].GatherStream(0, timeout, func(from int, frame []byte) bool {
		if from != 1 {
			t.Errorf("delivery from %d, want only peer 1", from)
		}
		once.Do(func() { close(delivered) })
		return true
	})
	elapsed := time.Since(start)

	if got != 1 || want != 1 {
		t.Errorf("GatherStream = (got %d, want %d), expected (1, 1) after dropping peer 2", got, want)
	}
	if elapsed > timeout/2 {
		t.Errorf("stream took %v; Drop should shrink want and end the wait", elapsed)
	}
}

// TestGatherStreamAbortKeepsFramesPending checks the two halves of the
// abort contract: returning false stops delivery immediately, and frames
// stay in the pending buffer until ForgetRound, so a later batch Gather
// (itself built on the stream) still sees the whole round.
func TestGatherStreamAbortKeepsFramesPending(t *testing.T) {
	peers := startPeers(t, 3)
	if err := peers[1].Send(0, 0, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := peers[2].Send(0, 0, []byte("two")); err != nil {
		t.Fatal(err)
	}
	// Both frames are in flight; wait until they are buffered so the
	// abort decision races nothing.
	waitFor(t, 5*time.Second, "both frames pending", func() bool {
		return peers[0].LatestRound() >= 0 && len(peers[0].Gather(0, 10*time.Millisecond)) == 2
	})

	calls := 0
	got, _ := peers[0].GatherStream(0, 5*time.Second, func(from int, frame []byte) bool {
		calls++
		return false // abort after the first frame
	})
	if calls != 1 {
		t.Fatalf("deliver ran %d times after abort, want 1", calls)
	}
	if got != 1 {
		t.Errorf("aborted stream got = %d, want 1", got)
	}

	// The aborted round is replayable in full…
	if again := peers[0].Gather(0, 2*time.Second); len(again) != 2 {
		t.Errorf("re-gather after abort = %d frames, want 2 (abort must not consume)", len(again))
	}
	// …until the caller retires it.
	peers[0].ForgetRound(0)
	if after := peers[0].Gather(0, 50*time.Millisecond); len(after) != 0 {
		t.Errorf("gather after ForgetRound = %d frames, want 0", len(after))
	}
}
