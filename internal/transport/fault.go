package transport

import (
	"fmt"
	"sync"
	"time"
)

// FaultAction is a deterministic failure injected into a Peer's Send path.
type FaultAction int

const (
	// FaultDrop silently discards the frame: the sender observes success
	// (as with a congested wireless link — it cannot tell), the receiver
	// treats the sender as a straggler for the round. No bytes are
	// charged, matching the simulator's link-failure accounting.
	FaultDrop FaultAction = iota + 1
	// FaultDelay sleeps for Rule.Delay before writing the frame,
	// simulating a slow link or a transient stall.
	FaultDelay
	// FaultReset closes the underlying TCP connection instead of sending,
	// simulating a mid-round connection reset: the Send fails, both read
	// loops exit, and the reconnect machinery takes over.
	FaultReset
)

// String implements fmt.Stringer.
func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultReset:
		return "reset"
	default:
		return fmt.Sprintf("FaultAction(%d)", int(a))
	}
}

// FaultRule schedules one action on the link to Peer at the given Round.
// Rules are one-shot: after firing, the link behaves normally again (a
// reset link reconnects; the rule does not re-fire on the new connection).
type FaultRule struct {
	Peer   int
	Round  int
	Action FaultAction
	Delay  time.Duration // used by FaultDelay
}

type faultKey struct{ peer, round int }

// FaultSet is a deterministic fault-injection plan keyed on (neighbor,
// round). Install it on a Peer with SetFaults; because faults fire on the
// sender's own Send calls at exact rounds, tests reproduce network
// flakiness bit-for-bit without real packet loss. Safe for concurrent use.
type FaultSet struct {
	mu    sync.Mutex
	rules map[faultKey]FaultRule
	fired int
}

// NewFaultSet returns an empty plan.
func NewFaultSet() *FaultSet {
	return &FaultSet{rules: make(map[faultKey]FaultRule)}
}

// Add schedules a rule, replacing any existing rule for the same
// (Peer, Round) pair.
func (f *FaultSet) Add(r FaultRule) *FaultSet {
	f.mu.Lock()
	f.rules[faultKey{peer: r.Peer, round: r.Round}] = r
	f.mu.Unlock()
	return f
}

// Fired returns how many rules have fired so far.
func (f *FaultSet) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Pending returns how many rules have not fired yet.
func (f *FaultSet) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.rules)
}

// take removes and returns the rule for (peer, round), if any.
func (f *FaultSet) take(peer, round int) (FaultRule, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := faultKey{peer: peer, round: round}
	r, ok := f.rules[k]
	if ok {
		delete(f.rules, k)
		f.fired++
	}
	return r, ok
}

// applyFault executes a fired rule on the link to neighbor `to`. It
// returns a non-nil error when the send must be reported as failed
// (reset, or peer closed during a delay); FaultDrop returns nil and the
// caller skips the write, FaultDelay returns nil and the caller proceeds.
func (p *Peer) applyFault(to, round int, rule FaultRule) error {
	switch rule.Action {
	case FaultDrop:
		return nil
	case FaultDelay:
		t := time.NewTimer(rule.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-p.closed:
			return fmt.Errorf("transport: peer %d closed during injected delay to %d", p.id, to)
		}
	case FaultReset:
		p.mu.Lock()
		pc, ok := p.conns[to]
		p.mu.Unlock()
		if ok {
			pc.conn.Close()
		}
		return fmt.Errorf("transport: injected connection reset on link %d→%d at round %d", p.id, to, round)
	default:
		return fmt.Errorf("transport: unknown fault action %d on link %d→%d", int(rule.Action), p.id, to)
	}
}
