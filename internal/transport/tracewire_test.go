package transport

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"github.com/snapml/snap/internal/trace"
)

// dialRaw opens a raw TCP connection to p and completes the hello
// handshake as neighbor id, returning the socket for hand-crafted
// frames. The peer must already know the id as a neighbor address (via
// Connect) or the frames will be withheld from Gather.
func dialRaw(t *testing.T, p *Peer, id int) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(id))
	if _, err := conn.Write(hello[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}

// registerNeighbor teaches p that id exists (address only; the raw test
// socket provides the connection) so expectedConns includes it.
func registerNeighbor(p *Peer, id int) {
	p.mu.Lock()
	p.addrs[id] = "127.0.0.1:1" // never dialed in these tests
	p.mu.Unlock()
}

// TestOldFormatFrameAgainstTracedPeer: a frame in the pre-trace wire
// layout ([len][round][payload], no flag bit, no block) must decode
// cleanly on a peer that has tracing enabled — old senders keep working
// against new receivers.
func TestOldFormatFrameAgainstTracedPeer(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetTracer(trace.New(trace.Config{Node: 0}))
	registerNeighbor(p, 1)
	conn := dialRaw(t, p, 1)
	waitFor(t, 2*time.Second, "raw conn registered", func() bool { return p.Healthy(1) })

	payload := []byte("old-format")
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], 3) // round 3, no trace flag
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := p.Gather(3, 2*time.Second)
	if !bytes.Equal(got[1], payload) {
		t.Fatalf("gathered %q, want %q", got[1], payload)
	}
	// No trace context existed, so no receive observation may have been
	// recorded for the round.
	tr := p.tracer.Load()
	tr.StartRound(3, time.Now())
	tr.EndRound(3, time.Now())
	if d, ok := tr.Digest(3); ok && len(d.Recvs) != 0 {
		t.Fatalf("untraced frame produced a recv observation: %+v", d.Recvs)
	}
}

// TestTracelessNewPeerEmitsOldFormat: with no tracer attached, Send must
// produce bytes identical to the pre-trace wire format, so a new binary
// with tracing off interoperates with old peers in both directions.
func TestTracelessNewPeerEmitsOldFormat(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	registerNeighbor(p, 1)
	conn := dialRaw(t, p, 1)
	waitFor(t, 2*time.Second, "raw conn registered", func() bool { return p.Healthy(1) })

	payload := []byte("hello-old-world")
	if err := p.Send(1, 7, payload); err != nil {
		t.Fatal(err)
	}
	var header [8]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		t.Fatal(err)
	}
	if size := binary.BigEndian.Uint32(header[:4]); size != uint32(len(payload)) {
		t.Fatalf("size field = %d, want %d (trace block must be absent)", size, len(payload))
	}
	if round := binary.BigEndian.Uint32(header[4:8]); round != 7 {
		t.Fatalf("round field = %#x, want 7 (no flag bits)", round)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

// TestTracedFrameWireLayout: with a tracer attached the frame must carry
// the flag bit, a parseable trace block whose context identifies the
// sender and round, and a size field covering block + payload.
func TestTracedFrameWireLayout(t *testing.T) {
	p, err := NewPeer(5, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetTracer(trace.New(trace.Config{Node: 5}))
	registerNeighbor(p, 1)
	conn := dialRaw(t, p, 1)
	waitFor(t, 2*time.Second, "raw conn registered", func() bool { return p.Healthy(1) })

	payload := []byte("traced")
	before := time.Now().UnixNano()
	if err := p.Send(1, 9, payload); err != nil {
		t.Fatal(err)
	}
	after := time.Now().UnixNano()

	var header [8]byte
	if _, err := io.ReadFull(conn, header[:]); err != nil {
		t.Fatal(err)
	}
	size := binary.BigEndian.Uint32(header[:4])
	rawRound := binary.BigEndian.Uint32(header[4:8])
	if rawRound&frameFlagTrace == 0 {
		t.Fatalf("trace flag missing: round field %#x", rawRound)
	}
	if got := rawRound &^ frameFlagTrace; got != 9 {
		t.Fatalf("round = %d, want 9", got)
	}
	if size != uint32(len(payload)+trace.BlockBytes) {
		t.Fatalf("size = %d, want %d", size, len(payload)+trace.BlockBytes)
	}
	block := make([]byte, trace.BlockBytes)
	if _, err := io.ReadFull(conn, block); err != nil {
		t.Fatal(err)
	}
	ctx, err := trace.ParseBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Node != 5 || ctx.Round != 9 || ctx.TraceID != trace.ID(5, 9) {
		t.Fatalf("trace context = %+v", ctx)
	}
	if ctx.SendUnixNanos < before || ctx.SendUnixNanos > after {
		t.Fatalf("send timestamp %d outside [%d, %d]", ctx.SendUnixNanos, before, after)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if p.FramesSent() != 1 || p.BytesSent() != int64(len(payload)) {
		t.Fatalf("frames=%d bytes=%d, want 1/%d (trace block excluded from BytesSent)",
			p.FramesSent(), p.BytesSent(), len(payload))
	}
}

// TestTracedPeersEndToEnd: two traced peers exchange a round; each
// receiver must surface the payload unchanged and record a receive
// observation carrying the sender's trace context.
func TestTracedPeersEndToEnd(t *testing.T) {
	peers := startPeers(t, 2)
	tracers := make([]*trace.Tracer, 2)
	for i, p := range peers {
		tracers[i] = trace.New(trace.Config{Node: i})
		p.SetTracer(tracers[i])
	}
	if err := peers[0].Send(1, 4, []byte("zero->one")); err != nil {
		t.Fatal(err)
	}
	if err := peers[1].Send(0, 4, []byte("one->zero")); err != nil {
		t.Fatal(err)
	}
	got0 := peers[0].Gather(4, 2*time.Second)
	got1 := peers[1].Gather(4, 2*time.Second)
	if string(got0[1]) != "one->zero" || string(got1[0]) != "zero->one" {
		t.Fatalf("payloads corrupted: %q / %q", got0[1], got1[0])
	}
	for i, tr := range tracers {
		tr.StartRound(4, time.Now())
		tr.EndRound(4, time.Now())
		d, ok := tr.Digest(4)
		if !ok || len(d.Recvs) != 1 {
			t.Fatalf("peer %d: recvs = %+v (ok=%v)", i, d.Recvs, ok)
		}
		r := d.Recvs[0]
		if r.From != 1-i || r.TraceID != trace.ID(1-i, 4) {
			t.Fatalf("peer %d recv = %+v", i, r)
		}
		if r.SendUnixNanos <= 0 || r.RecvUnixNanos < r.SendUnixNanos-int64(time.Second) {
			t.Fatalf("peer %d recv timestamps implausible: %+v", i, r)
		}
	}
}

// TestTracedToTracelessPeer: a traced sender against a traceless new
// receiver — the receiver understands the flag bit, strips the block,
// and hands up the clean payload even with no tracer attached.
func TestTracedToTracelessPeer(t *testing.T) {
	peers := startPeers(t, 2)
	peers[0].SetTracer(trace.New(trace.Config{Node: 0}))
	if err := peers[0].Send(1, 2, []byte("traced-to-plain")); err != nil {
		t.Fatal(err)
	}
	got := peers[1].Gather(2, 2*time.Second)
	if string(got[0]) != "traced-to-plain" {
		t.Fatalf("gathered %q", got[0])
	}
}

// TestTracedFrameTooSmallRejected: a flagged frame whose size field is
// smaller than the trace block is malformed; the read loop must drop the
// connection rather than misparse.
func TestTracedFrameTooSmallRejected(t *testing.T) {
	p, err := NewPeer(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetTracer(trace.New(trace.Config{Node: 0}))
	registerNeighbor(p, 1)
	conn := dialRaw(t, p, 1)
	waitFor(t, 2*time.Second, "raw conn registered", func() bool { return p.Healthy(1) })

	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], trace.BlockBytes-1)
	binary.BigEndian.PutUint32(header[4:8], uint32(0)|frameFlagTrace)
	if _, err := conn.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(make([]byte, trace.BlockBytes-1)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "malformed conn evicted", func() bool { return !p.Healthy(1) })
}
