package transport

import "sync"

// framePool recycles receive-side frame buffers. The TCP read loop
// allocates one buffer per incoming frame; under a steady round rate
// that is one garbage buffer per neighbor per round. Consumers that
// finish with a frame hand it back via RecycleFrame and the read loop
// reuses it for a later frame of any size that fits.
var framePool = sync.Pool{}

// getFrameBuf returns a length-n buffer, reusing a pooled backing array
// when one with enough capacity is available.
func getFrameBuf(n int) []byte {
	if v := framePool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
		// Too small for this frame; let it be collected rather than
		// cycling undersized buffers through the pool forever.
	}
	return make([]byte, n)
}

// RecycleFrame returns a frame buffer received from Peer.Gather to the
// receive pool. Strictly optional: callers that retain frames simply
// don't recycle them. After recycling, the caller must not touch the
// slice again.
func RecycleFrame(b []byte) {
	if cap(b) == 0 {
		return
	}
	framePool.Put(&b)
}
