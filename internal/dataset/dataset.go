// Package dataset provides the training data SNAP's experiments run on.
//
// The paper evaluates on MNIST (a 10-class 28×28-pixel digit task for the
// MLP testbed experiments) and on the UCI "default of credit card clients"
// data (a 24-feature binary task for the large-scale SVM simulations).
// Neither corpus can be downloaded in this offline reproduction, so the
// package generates synthetic equivalents that preserve what the
// experiments actually exercise: feature dimensionality, sample counts,
// class structure, class imbalance, and enough learnable signal that the
// models' training dynamics (loss curvature, parameter-change statistics)
// resemble the originals. See DESIGN.md §2 for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labeled example: a dense feature vector and an integer
// class label in [0, NumClasses).
type Sample struct {
	X     []float64
	Label int
}

// Dataset is an in-memory collection of samples sharing a feature
// dimensionality and class count.
type Dataset struct {
	Samples    []Sample
	NumFeature int
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Subset returns a Dataset viewing the samples at the given indices.
func (d *Dataset) Subset(indices []int) *Dataset {
	out := &Dataset{
		Samples:    make([]Sample, len(indices)),
		NumFeature: d.NumFeature,
		NumClasses: d.NumClasses,
	}
	for i, idx := range indices {
		out.Samples[i] = d.Samples[idx]
	}
	return out
}

// Batch returns up to size samples starting at a deterministic offset that
// advances with round, wrapping around the dataset. It gives every node a
// reproducible mini-batch schedule without shared state.
func (d *Dataset) Batch(round, size int) []Sample {
	return d.BatchInto(nil, round, size)
}

// BatchInto is Batch into a caller-owned buffer: the mini-batch is
// appended to buf[:0] (buf may be nil), so a warm buffer makes the
// steady-state batch schedule allocation-free. When size covers the
// whole dataset the shared d.Samples slice is returned directly — the
// caller must treat the result as read-only and must not keep it as its
// reuse buffer.
//
//snap:alloc-free
func (d *Dataset) BatchInto(buf []Sample, round, size int) []Sample {
	n := len(d.Samples)
	if n == 0 || size <= 0 {
		return nil
	}
	if size >= n {
		return d.Samples
	}
	start := (round * size) % n
	out := buf[:0]
	for i := 0; i < size; i++ {
		out = append(out, d.Samples[(start+i)%n])
	}
	return out
}

// Partition randomly assigns every sample to one of n partitions
// (emulating the paper's "randomly allocate each training sample to one of
// the servers") and returns the per-partition datasets. Every partition is
// guaranteed at least one sample when n ≤ len(samples).
func (d *Dataset) Partition(n int, rng *rand.Rand) ([]*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: partition count %d must be positive", n)
	}
	if n > d.Len() {
		return nil, fmt.Errorf("dataset: cannot split %d samples into %d non-empty partitions", d.Len(), n)
	}
	assign := make([]int, d.Len())
	// First n samples (in shuffled order) seed one partition each so none
	// is empty; the rest go to uniformly random partitions.
	perm := rng.Perm(d.Len())
	for i, p := range perm {
		if i < n {
			assign[p] = i
		} else {
			assign[p] = rng.Intn(n)
		}
	}
	buckets := make([][]int, n)
	for idx, part := range assign {
		buckets[part] = append(buckets[part], idx)
	}
	out := make([]*Dataset, n)
	for i, b := range buckets {
		out[i] = d.Subset(b)
	}
	return out, nil
}

// Split divides the dataset into train/test parts with the given train
// fraction, after a deterministic shuffle.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	cut := int(trainFrac * float64(d.Len()))
	if cut < 0 {
		cut = 0
	}
	if cut > d.Len() {
		cut = d.Len()
	}
	return d.Subset(perm[:cut]), d.Subset(perm[cut:])
}

// CreditConfig parameterizes the synthetic credit-default generator.
type CreditConfig struct {
	Samples  int     // default 30000 (matching the UCI corpus)
	Features int     // default 24
	PosRate  float64 // approximate positive-class rate, default 0.22
	Noise    float64 // logit noise std, default 0.3
}

func (c CreditConfig) withDefaults() CreditConfig {
	if c.Samples <= 0 {
		c.Samples = 30000
	}
	if c.Features < 2 { // at least one informative + the intercept feature
		c.Features = 24
	}
	if c.PosRate <= 0 || c.PosRate >= 1 {
		c.PosRate = 0.22
	}
	if c.Noise <= 0 {
		c.Noise = 0.3
	}
	return c
}

// SyntheticCredit generates a binary classification dataset shaped like the
// UCI "default of credit card clients" data: cfg.Features−1 standardized,
// mildly correlated informative features plus a final constant-1 intercept
// feature; labels come from a fixed logistic ground truth with an
// intercept tuned to cfg.PosRate. Labels are 0 (no default) and 1
// (default).
//
// The explicit intercept feature matters for the paper's setup: the SVM
// has exactly cfg.Features parameters and no separate bias, yet the class
// imbalance means the Bayes boundary does not pass through the origin —
// the constant feature lets a bias-free linear model represent it.
func SyntheticCredit(cfg CreditConfig, rng *rand.Rand) *Dataset {
	cfg = cfg.withDefaults()
	informative := cfg.Features - 1
	// Fixed ground-truth weight vector: alternating-sign, decaying
	// magnitudes so a linear model can recover most of the signal. The
	// vector is rescaled so the logit signal clearly dominates the noise
	// term (otherwise the Bayes accuracy falls to the majority-class rate
	// and accuracy comparisons between schemes become meaningless).
	truth := make([]float64, informative)
	var norm float64
	for j := range truth {
		sign := 1.0
		if j%2 == 1 {
			sign = -1
		}
		truth[j] = sign * 1.5 / (1 + float64(j)/4)
		norm += truth[j] * truth[j]
	}
	norm = math.Sqrt(norm)
	const signalStrength = 4.0
	for j := range truth {
		truth[j] *= signalStrength / norm
	}
	// Calibrate the intercept so the *marginal* positive rate hits
	// cfg.PosRate despite the logit spread: E[σ(μ+sZ)] ≈ σ(μ/√(1+πs²/8))
	// (the probit approximation), so μ = logit(p)·√(1+πs²/8). The
	// per-feature variance is 0.7²+0.3² = 0.58 (see below).
	spread2 := signalStrength*signalStrength*0.58 + cfg.Noise*cfg.Noise
	intercept := logit(cfg.PosRate) * math.Sqrt(1+math.Pi*spread2/8)

	// A shared latent factor induces mild feature correlation, like the
	// bill-amount columns of the real corpus.
	ds := &Dataset{NumFeature: cfg.Features, NumClasses: 2}
	ds.Samples = make([]Sample, cfg.Samples)
	for i := range ds.Samples {
		latent := rng.NormFloat64()
		x := make([]float64, cfg.Features)
		var score float64
		for j := 0; j < informative; j++ {
			x[j] = 0.7*rng.NormFloat64() + 0.3*latent
			score += truth[j] * x[j]
		}
		x[informative] = 1 // intercept feature
		score = score + intercept + cfg.Noise*rng.NormFloat64()
		label := 0
		if sigmoid(score) > rng.Float64() {
			label = 1
		}
		ds.Samples[i] = Sample{X: x, Label: label}
	}
	return ds
}

// DigitsConfig parameterizes the synthetic MNIST-like generator.
type DigitsConfig struct {
	Train int     // default 50000 (matching MNIST's training split as the paper cites it)
	Test  int     // default 10000
	Side  int     // image side length, default 28 (features = Side²)
	Noise float64 // per-pixel noise std, default 0.25
	Shift int     // max prototype translation in pixels, default 2
}

func (c DigitsConfig) withDefaults() DigitsConfig {
	if c.Train <= 0 {
		c.Train = 50000
	}
	if c.Test <= 0 {
		c.Test = 10000
	}
	if c.Side <= 0 {
		c.Side = 28
	}
	if c.Noise <= 0 {
		c.Noise = 0.25
	}
	if c.Shift < 0 {
		c.Shift = 2
	}
	return c
}

// SyntheticDigits generates an MNIST-shaped 10-class image dataset: ten
// smooth random prototypes (sums of Gaussian blobs on a Side×Side canvas),
// each sample a randomly shifted prototype plus pixel noise, clipped to
// [0,1]. A 784-30-10 MLP learns it with dynamics comparable to MNIST.
func SyntheticDigits(cfg DigitsConfig, rng *rand.Rand) (train, test *Dataset) {
	cfg = cfg.withDefaults()
	protos := digitPrototypes(cfg.Side, rng)
	gen := func(n int) *Dataset {
		ds := &Dataset{NumFeature: cfg.Side * cfg.Side, NumClasses: 10}
		ds.Samples = make([]Sample, n)
		for i := range ds.Samples {
			label := rng.Intn(10)
			ds.Samples[i] = Sample{
				X:     renderDigit(protos[label], cfg, rng),
				Label: label,
			}
		}
		return ds
	}
	return gen(cfg.Train), gen(cfg.Test)
}

// digitPrototypes builds ten distinct smooth prototype images. Blob
// centers are confined to the middle of the canvas and faint ink is
// truncated to exactly zero, so — like MNIST digits — every prototype has
// a hard blank border. Weights fanning in from those always-blank pixels
// receive exactly-zero gradients, the population of "unchanged
// parameters" the paper measures in Fig. 2.
func digitPrototypes(side int, rng *rand.Rand) [][]float64 {
	const inkFloor = 0.04
	protos := make([][]float64, 10)
	for c := range protos {
		img := make([]float64, side*side)
		// 4-6 Gaussian blobs per class, positions drawn once per class.
		blobs := 4 + rng.Intn(3)
		for b := 0; b < blobs; b++ {
			cx := float64(side) * (0.32 + 0.36*rng.Float64())
			cy := float64(side) * (0.32 + 0.36*rng.Float64())
			sigma := float64(side) * (0.045 + 0.035*rng.Float64())
			amp := 0.5 + 0.5*rng.Float64()
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					dx, dy := float64(x)-cx, float64(y)-cy
					img[y*side+x] += amp * math.Exp(-(dx*dx+dy*dy)/(2*sigma*sigma))
				}
			}
		}
		clip01(img)
		for i, v := range img {
			if v < inkFloor {
				img[i] = 0
			}
		}
		protos[c] = img
	}
	return protos
}

// renderDigit produces one noisy, shifted instance of a prototype. Noise
// is applied only where the prototype has ink: background pixels stay
// exactly 0 across every sample, like MNIST's borders. This matters for
// the paper's Fig. 2 — weights fanning in from always-zero pixels receive
// exactly-zero gradients and are the "unchanged parameters" SNAP never
// retransmits.
func renderDigit(proto []float64, cfg DigitsConfig, rng *rand.Rand) []float64 {
	const inkThreshold = 0.02
	side := cfg.Side
	dx := rng.Intn(2*cfg.Shift+1) - cfg.Shift
	dy := rng.Intn(2*cfg.Shift+1) - cfg.Shift
	out := make([]float64, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			sx, sy := x-dx, y-dy
			var v float64
			if sx >= 0 && sx < side && sy >= 0 && sy < side {
				v = proto[sy*side+sx]
			}
			if v <= inkThreshold {
				continue // background stays exactly zero
			}
			v += cfg.Noise * rng.NormFloat64()
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out[y*side+x] = v
		}
	}
	return out
}

func clip01(xs []float64) {
	for i, v := range xs {
		if v < 0 {
			xs[i] = 0
		} else if v > 1 {
			xs[i] = 1
		}
	}
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

// PartitionNonIID assigns samples to n partitions with label skew: each
// partition draws its class mix from a symmetric Dirichlet distribution
// with concentration alpha. Small alpha (e.g. 0.1) gives nearly
// single-class shards — the heterogeneous edge-data regime that makes
// decentralized mixing genuinely hard; large alpha approaches the IID
// random split. Every partition is guaranteed at least one sample.
func (d *Dataset) PartitionNonIID(n int, alpha float64, rng *rand.Rand) ([]*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: partition count %d must be positive", n)
	}
	if n > d.Len() {
		return nil, fmt.Errorf("dataset: cannot split %d samples into %d non-empty partitions", d.Len(), n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("dataset: Dirichlet concentration %g must be positive", alpha)
	}
	classes := d.NumClasses
	if classes <= 0 {
		classes = 1
	}
	// Per-class partition preference vectors p[c][k] ~ Dirichlet(alpha).
	prefs := make([][]float64, classes)
	for c := range prefs {
		prefs[c] = dirichlet(n, alpha, rng)
	}
	buckets := make([][]int, n)
	for idx, s := range d.Samples {
		c := s.Label
		if c < 0 || c >= classes {
			c = 0
		}
		k := samplePartition(prefs[c], rng)
		buckets[k] = append(buckets[k], idx)
	}
	// Repair empty partitions by stealing from the largest.
	for k := range buckets {
		for len(buckets[k]) == 0 {
			largest := 0
			for j := range buckets {
				if len(buckets[j]) > len(buckets[largest]) {
					largest = j
				}
			}
			if len(buckets[largest]) < 2 {
				return nil, fmt.Errorf("dataset: cannot repair empty partition %d", k)
			}
			last := len(buckets[largest]) - 1
			buckets[k] = append(buckets[k], buckets[largest][last])
			buckets[largest] = buckets[largest][:last]
		}
	}
	out := make([]*Dataset, n)
	for k, b := range buckets {
		out[k] = d.Subset(b)
	}
	return out, nil
}

// dirichlet draws one symmetric Dirichlet(alpha) sample of dimension n via
// normalized Gamma(alpha, 1) variates (Marsaglia-Tsang for alpha ≥ 1,
// boosted for alpha < 1).
func dirichlet(n int, alpha float64, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	var sum float64
	for i := range out {
		out[i] = gammaSample(alpha, rng)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) by Marsaglia & Tsang's method.
func gammaSample(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) · U^(1/a).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// samplePartition draws an index from the categorical distribution p.
func samplePartition(p []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var acc float64
	for k, w := range p {
		acc += w
		if u < acc {
			return k
		}
	}
	return len(p) - 1
}
