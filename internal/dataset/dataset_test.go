package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSyntheticCreditShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := SyntheticCredit(CreditConfig{Samples: 1000, Features: 24}, rng)
	if ds.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", ds.Len())
	}
	if ds.NumFeature != 24 || ds.NumClasses != 2 {
		t.Fatalf("shape = (%d feats, %d classes), want (24, 2)", ds.NumFeature, ds.NumClasses)
	}
	for i, s := range ds.Samples {
		if len(s.X) != 24 {
			t.Fatalf("sample %d has %d features", i, len(s.X))
		}
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("sample %d has label %d", i, s.Label)
		}
	}
}

func TestSyntheticCreditImbalance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := SyntheticCredit(CreditConfig{Samples: 20000}, rng)
	pos := 0
	for _, s := range ds.Samples {
		pos += s.Label
	}
	rate := float64(pos) / float64(ds.Len())
	// Target 22% (the UCI corpus rate); allow generous tolerance.
	if rate < 0.12 || rate > 0.35 {
		t.Errorf("positive rate = %v, want ≈ 0.22", rate)
	}
}

func TestSyntheticCreditDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := SyntheticCredit(CreditConfig{Samples: 10}, rng)
	if ds.NumFeature != 24 {
		t.Errorf("default features = %d, want 24", ds.NumFeature)
	}
}

func TestSyntheticCreditDeterministic(t *testing.T) {
	a := SyntheticCredit(CreditConfig{Samples: 50}, rand.New(rand.NewSource(9)))
	b := SyntheticCredit(CreditConfig{Samples: 50}, rand.New(rand.NewSource(9)))
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("same seed produced different labels")
		}
		for j := range a.Samples[i].X {
			if a.Samples[i].X[j] != b.Samples[i].X[j] {
				t.Fatal("same seed produced different features")
			}
		}
	}
}

func TestSyntheticDigitsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train, test := SyntheticDigits(DigitsConfig{Train: 200, Test: 50, Side: 12}, rng)
	if train.Len() != 200 || test.Len() != 50 {
		t.Fatalf("sizes = (%d, %d), want (200, 50)", train.Len(), test.Len())
	}
	if train.NumFeature != 144 || train.NumClasses != 10 {
		t.Fatalf("features = %d classes = %d, want 144/10", train.NumFeature, train.NumClasses)
	}
	for _, s := range train.Samples {
		if s.Label < 0 || s.Label > 9 {
			t.Fatalf("label %d out of range", s.Label)
		}
		for _, v := range s.X {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("pixel %v out of [0,1]", v)
			}
		}
	}
}

func TestSyntheticDigitsAllClassesPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train, _ := SyntheticDigits(DigitsConfig{Train: 500, Test: 10, Side: 10}, rng)
	seen := make(map[int]bool)
	for _, s := range train.Samples {
		seen[s.Label] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d classes present in 500 samples", len(seen))
	}
}

func TestSyntheticDigitsClassesDistinct(t *testing.T) {
	// Mean images of different classes should differ noticeably; otherwise
	// the task is unlearnable.
	rng := rand.New(rand.NewSource(6))
	train, _ := SyntheticDigits(DigitsConfig{Train: 2000, Test: 10, Side: 10, Noise: 0.1}, rng)
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range means {
		means[i] = make([]float64, train.NumFeature)
	}
	for _, s := range train.Samples {
		counts[s.Label]++
		for j, v := range s.X {
			means[s.Label][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	var minDist = math.Inf(1)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			var d float64
			for j := range means[a] {
				diff := means[a][j] - means[b][j]
				d += diff * diff
			}
			if d = math.Sqrt(d); d < minDist {
				minDist = d
			}
		}
	}
	if minDist < 0.3 {
		t.Errorf("closest class-mean distance = %v; prototypes too similar", minDist)
	}
}

func TestPartitionCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := SyntheticCredit(CreditConfig{Samples: 100}, rng)
	parts, err := ds.Partition(7, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range parts {
		if p.Len() == 0 {
			t.Errorf("partition %d empty", i)
		}
		if p.NumFeature != ds.NumFeature || p.NumClasses != ds.NumClasses {
			t.Errorf("partition %d lost metadata", i)
		}
		total += p.Len()
	}
	if total != ds.Len() {
		t.Errorf("partitions hold %d samples, want %d", total, ds.Len())
	}
}

func TestPartitionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := SyntheticCredit(CreditConfig{Samples: 5}, rng)
	if _, err := ds.Partition(0, rng); err == nil {
		t.Error("Partition(0) accepted")
	}
	if _, err := ds.Partition(-1, rng); err == nil {
		t.Error("Partition(-1) accepted")
	}
	if _, err := ds.Partition(6, rng); err == nil {
		t.Error("Partition larger than dataset accepted")
	}
}

// Property: every partition size is valid and sizes sum to the original.
func TestPartitionProperty(t *testing.T) {
	base := SyntheticCredit(CreditConfig{Samples: 200}, rand.New(rand.NewSource(10)))
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw)%20
		parts, err := base.Partition(n, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		total := 0
		for _, p := range parts {
			if p.Len() == 0 {
				return false
			}
			total += p.Len()
		}
		return total == base.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := SyntheticCredit(CreditConfig{Samples: 100}, rng)
	train, test := ds.Split(0.8, rng)
	if train.Len() != 80 || test.Len() != 20 {
		t.Errorf("split = (%d, %d), want (80, 20)", train.Len(), test.Len())
	}
	// Degenerate fractions clamp.
	all, none := ds.Split(1.5, rng)
	if all.Len() != 100 || none.Len() != 0 {
		t.Errorf("Split(1.5) = (%d, %d)", all.Len(), none.Len())
	}
}

func TestBatchWrapsAround(t *testing.T) {
	ds := &Dataset{NumFeature: 1, NumClasses: 2}
	for i := 0; i < 5; i++ {
		ds.Samples = append(ds.Samples, Sample{X: []float64{float64(i)}, Label: 0})
	}
	b := ds.Batch(1, 3) // starts at (1*3)%5 = 3 → samples 3,4,0
	if len(b) != 3 {
		t.Fatalf("batch size = %d, want 3", len(b))
	}
	if b[0].X[0] != 3 || b[1].X[0] != 4 || b[2].X[0] != 0 {
		t.Errorf("batch = [%v %v %v], want [3 4 0]", b[0].X[0], b[1].X[0], b[2].X[0])
	}
}

func TestBatchEdgeCases(t *testing.T) {
	ds := &Dataset{}
	if b := ds.Batch(0, 10); b != nil {
		t.Error("batch of empty dataset should be nil")
	}
	ds = &Dataset{Samples: []Sample{{X: []float64{1}}}}
	if b := ds.Batch(0, 0); b != nil {
		t.Error("zero-size batch should be nil")
	}
	if b := ds.Batch(3, 10); len(b) != 1 {
		t.Error("oversized batch should return all samples")
	}
}

func TestSubsetIndependentMetadata(t *testing.T) {
	ds := &Dataset{
		Samples:    []Sample{{X: []float64{1}, Label: 1}, {X: []float64{2}, Label: 0}},
		NumFeature: 1,
		NumClasses: 2,
	}
	sub := ds.Subset([]int{1})
	if sub.Len() != 1 || sub.Samples[0].Label != 0 {
		t.Errorf("Subset wrong: %+v", sub.Samples)
	}
}
