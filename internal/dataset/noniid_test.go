package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPartitionNonIIDCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train, _ := SyntheticDigits(DigitsConfig{Train: 600, Test: 10, Side: 8}, rng)
	parts, err := train.PartitionNonIID(6, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, p := range parts {
		if p.Len() == 0 {
			t.Errorf("partition %d empty", i)
		}
		total += p.Len()
	}
	if total != train.Len() {
		t.Errorf("partitions hold %d samples, want %d", total, train.Len())
	}
}

// TestPartitionNonIIDSkewsLabels verifies small alpha yields strongly
// skewed shards and large alpha approaches uniform.
func TestPartitionNonIIDSkewsLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train, _ := SyntheticDigits(DigitsConfig{Train: 4000, Test: 10, Side: 8}, rng)

	skewOf := func(alpha float64) float64 {
		parts, err := train.PartitionNonIID(8, alpha, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		// Average max-class share per partition: 0.1 for uniform 10-class,
		// →1 for single-class shards.
		var total float64
		for _, p := range parts {
			counts := make([]int, 10)
			for _, s := range p.Samples {
				counts[s.Label]++
			}
			maxC := 0
			for _, c := range counts {
				if c > maxC {
					maxC = c
				}
			}
			total += float64(maxC) / float64(p.Len())
		}
		return total / float64(len(parts))
	}

	skewed := skewOf(0.1)
	uniform := skewOf(100)
	if skewed < uniform+0.15 {
		t.Errorf("alpha=0.1 skew %v not clearly above alpha=100 skew %v", skewed, uniform)
	}
	if uniform > 0.35 {
		t.Errorf("alpha=100 max-class share %v, want near the IID 0.1-0.2 range", uniform)
	}
}

func TestPartitionNonIIDValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := SyntheticCredit(CreditConfig{Samples: 20}, rng)
	if _, err := ds.PartitionNonIID(0, 0.5, rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ds.PartitionNonIID(30, 0.5, rng); err == nil {
		t.Error("n > samples accepted")
	}
	if _, err := ds.PartitionNonIID(4, 0, rng); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestDirichletSumsToOne(t *testing.T) {
	f := func(seed int64, nRaw, aRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%20
		alpha := 0.05 + float64(aRaw)/32
		p := dirichlet(n, alpha, rng)
		var sum float64
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGammaSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shape := range []float64{0.3, 1, 2.5} {
		const trials = 50000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += gammaSample(shape, rng)
		}
		mean := sum / trials
		// E[Gamma(a,1)] = a.
		if math.Abs(mean-shape) > 0.05*shape+0.02 {
			t.Errorf("Gamma(%g) sample mean = %v, want %v", shape, mean, shape)
		}
	}
}
