package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmallWorldLattice(t *testing.T) {
	// beta=0: pure ring lattice, every vertex has degree k.
	g := SmallWorld(20, 4, 0, rand.New(rand.NewSource(1)))
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("lattice disconnected")
	}
	// Ring lattices cluster heavily.
	if cc := g.ClusteringCoefficient(); cc < 0.4 {
		t.Errorf("lattice clustering %v, want ≥ 0.4", cc)
	}
}

func TestSmallWorldRewiringShrinksDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lattice := SmallWorld(60, 4, 0, rng)
	rewired := SmallWorld(60, 4, 0.3, rand.New(rand.NewSource(3)))
	if !rewired.IsConnected() {
		t.Fatal("rewired graph disconnected")
	}
	if rewired.Diameter() >= lattice.Diameter() {
		t.Errorf("rewiring did not shrink diameter: %d vs %d",
			rewired.Diameter(), lattice.Diameter())
	}
}

func TestSmallWorldOddKAndCaps(t *testing.T) {
	// k is rounded up to even and capped below n.
	g := SmallWorld(6, 3, 0, rand.New(rand.NewSource(4)))
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4 (k rounded to even)", v, g.Degree(v))
		}
	}
	big := SmallWorld(5, 10, 0, rand.New(rand.NewSource(5)))
	if !big.IsConnected() {
		t.Error("capped-k graph disconnected")
	}
	if tiny := SmallWorld(1, 2, 0.5, rand.New(rand.NewSource(6))); tiny.N() != 1 {
		t.Error("n=1 small world wrong")
	}
}

// Property: small-world graphs stay connected for any beta.
func TestSmallWorldAlwaysConnected(t *testing.T) {
	f := func(seed int64, nRaw, betaRaw uint8) bool {
		n := 4 + int(nRaw)%40
		beta := float64(betaRaw) / 255
		g := SmallWorld(n, 4, beta, rand.New(rand.NewSource(seed)))
		return g.IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScaleFreeBasics(t *testing.T) {
	g := ScaleFree(100, 2, rand.New(rand.NewSource(7)))
	if !g.IsConnected() {
		t.Fatal("scale-free graph disconnected")
	}
	// |E| = clique(3) + 2 per remaining vertex = 3 + 2·97.
	if got, want := g.NumEdges(), 3+2*97; got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	// Heavy tail: the max degree dwarfs the median.
	hist := g.DegreeHistogram()
	median := hist[len(hist)/2]
	if g.MaxDegree() < 3*median {
		t.Errorf("max degree %d vs median %d — no heavy tail", g.MaxDegree(), median)
	}
}

func TestScaleFreeEdgeCases(t *testing.T) {
	if g := ScaleFree(1, 2, rand.New(rand.NewSource(8))); g.N() != 1 {
		t.Error("n=1 wrong")
	}
	// m capped at n-1.
	g := ScaleFree(4, 10, rand.New(rand.NewSource(9)))
	if !g.IsConnected() {
		t.Error("capped-m graph disconnected")
	}
	// m < 1 promoted to 1: still a connected tree-ish graph.
	g2 := ScaleFree(30, 0, rand.New(rand.NewSource(10)))
	if !g2.IsConnected() {
		t.Error("m=0 graph disconnected")
	}
}

// Property: scale-free graphs are always connected.
func TestScaleFreeAlwaysConnected(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%60
		m := 1 + int(mRaw)%4
		return ScaleFree(n, m, rand.New(rand.NewSource(seed))).IsConnected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClusteringCoefficientKnownValues(t *testing.T) {
	// Complete graph: clustering 1.
	if cc := Complete(5).ClusteringCoefficient(); cc != 1 {
		t.Errorf("K5 clustering = %v, want 1", cc)
	}
	// Star: hub's neighbors are never connected → 0.
	if cc := Star(6).ClusteringCoefficient(); cc != 0 {
		t.Errorf("star clustering = %v, want 0", cc)
	}
	// Ring (degree 2): neighbor pairs not adjacent for n > 3 → 0.
	if cc := Ring(6).ClusteringCoefficient(); cc != 0 {
		t.Errorf("C6 clustering = %v, want 0", cc)
	}
	// Triangle: 1.
	if cc := Ring(3).ClusteringCoefficient(); cc != 1 {
		t.Errorf("C3 clustering = %v, want 1", cc)
	}
	// No vertex with degree ≥ 2 → 0.
	g := New(3)
	g.AddEdge(0, 1)
	if cc := g.ClusteringCoefficient(); cc != 0 {
		t.Errorf("path clustering = %v, want 0", cc)
	}
}

func TestDegreeHistogramSorted(t *testing.T) {
	g := Star(5)
	hist := g.DegreeHistogram()
	want := []int{1, 1, 1, 1, 4}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", hist, want)
		}
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}
