package graph

import (
	"math/rand"
	"sort"
)

// SmallWorld generates a connected Watts-Strogatz small-world graph: a
// ring lattice where every vertex connects to its k nearest neighbors
// (k rounded up to even), with each edge rewired to a random endpoint
// with probability beta. beta=0 is the pure lattice, beta=1 approaches a
// random graph; intermediate values give the high-clustering /
// short-diameter regime typical of real edge deployments.
//
// Rewiring never disconnects the graph: a rewire that would is skipped.
func SmallWorld(n, k int, beta float64, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	if k < 2 {
		k = 2
	}
	if k%2 == 1 {
		k++
	}
	if k >= n {
		k = n - 1
		if k%2 == 1 {
			k--
		}
	}
	// Ring lattice.
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			g.AddEdge(i, (i+j)%n)
		}
	}
	if beta <= 0 {
		return g
	}
	// Rewire each lattice edge's far endpoint with probability beta.
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			if rng.Float64() >= beta {
				continue
			}
			old := (i + j) % n
			if !g.HasEdge(i, old) {
				continue
			}
			target := rng.Intn(n)
			if target == i || g.HasEdge(i, target) {
				continue
			}
			g.RemoveEdge(i, old)
			if !g.IsConnected() {
				g.AddEdge(i, old) // rewire would disconnect: keep the lattice edge
				continue
			}
			g.AddEdge(i, target)
		}
	}
	return g
}

// ScaleFree generates a Barabási-Albert preferential-attachment graph:
// starting from a small clique, each new vertex attaches m edges to
// existing vertices with probability proportional to their degree. The
// result is connected with a heavy-tailed degree distribution — a few
// well-connected "aggregation" edge servers and many leaves.
func ScaleFree(n, m int, rng *rand.Rand) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	if m < 1 {
		m = 1
	}
	if m >= n {
		m = n - 1
	}
	// Seed clique of m+1 vertices.
	seed := m + 1
	if seed > n {
		seed = n
	}
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.AddEdge(i, j)
		}
	}
	// repeated holds every edge endpoint twice over; sampling uniformly
	// from it is degree-proportional sampling.
	var repeated []int
	for _, e := range g.Edges() {
		repeated = append(repeated, e.U, e.V)
	}
	for v := seed; v < n; v++ {
		attached := make(map[int]bool, m)
		for len(attached) < m {
			var target int
			if len(repeated) == 0 {
				target = rng.Intn(v)
			} else {
				target = repeated[rng.Intn(len(repeated))]
			}
			if target == v || attached[target] {
				continue
			}
			attached[target] = true
		}
		for target := range attached {
			g.AddEdge(v, target)
			repeated = append(repeated, v, target)
		}
	}
	return g
}

// ClusteringCoefficient returns the average local clustering coefficient:
// for each vertex, the fraction of its neighbor pairs that are themselves
// connected, averaged over vertices with degree ≥ 2 (0 if none).
func (g *Graph) ClusteringCoefficient() float64 {
	var total float64
	counted := 0
	for v := 0; v < g.n; v++ {
		nbrs := g.Neighbors(v)
		d := len(nbrs)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nbrs[i], nbrs[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// DegreeHistogram returns the sorted list of vertex degrees.
func (g *Graph) DegreeHistogram() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(v)
	}
	sort.Ints(out)
	return out
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > best {
			best = d
		}
	}
	return best
}
