// Package graph models the edge-server topology SNAP runs on: an undirected
// graph in which vertices are edge servers and an edge means two servers are
// neighbors (one-hop peers that exchange parameters directly).
//
// It provides deterministic random-topology generation (for the paper's
// large-scale simulations), classic named topologies (for tests and the
// testbed setup), and BFS all-pairs hop counts (used to price parameter-
// server traffic, whose cost is hops x bytes).
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected simple graph over vertices 0..N-1.
type Graph struct {
	n   int
	adj []map[int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{n: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops and duplicate
// edges are ignored. It panics if u or v is out of range.
func (g *Graph) AddEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// AddVertex appends a new isolated vertex and returns its index (the new
// N−1). Membership churn uses it when an edge server joins the cluster.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, make(map[int]bool))
	g.n++
	return g.n - 1
}

// RemoveVertex deletes vertex v along with every incident edge and
// renumbers vertices above v down by one, keeping the vertex set dense
// (0..N−2). Callers tracking external identities must shift their own
// mappings the same way. It panics if v is out of range.
func (g *Graph) RemoveVertex(v int) {
	g.checkVertex(v)
	for u := range g.adj[v] {
		delete(g.adj[u], v)
	}
	g.adj = append(g.adj[:v], g.adj[v+1:]...)
	g.n--
	for i, m := range g.adj {
		shifted := make(map[int]bool, len(m))
		for u := range m {
			if u > v {
				u--
			}
			shifted[u] = true
		}
		g.adj[i] = shifted
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	return g.adj[u][v]
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// Neighbors returns the sorted neighbor set of v.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

// AverageDegree returns 2*|E|/|V|, or 0 for an empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(g.n)
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// Edges returns all edges sorted by (U, V), each with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			out.adj[u][v] = true
		}
	}
	return out
}

// IsConnected reports whether every vertex is reachable from vertex 0.
// The empty graph is connected.
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// HopCountsFrom returns the BFS hop distance from src to every vertex.
// Unreachable vertices get -1.
func (g *Graph) HopCountsFrom(src int) []int {
	g.checkVertex(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsHops returns the matrix of BFS hop counts; entry [i][j] is -1 when
// j is unreachable from i.
func (g *Graph) AllPairsHops() [][]int {
	out := make([][]int, g.n)
	for i := 0; i < g.n; i++ {
		out[i] = g.HopCountsFrom(i)
	}
	return out
}

// Diameter returns the longest shortest-path length in a connected graph,
// or -1 if the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	best := 0
	for i := 0; i < g.n; i++ {
		for _, d := range g.HopCountsFrom(i) {
			if d < 0 {
				return -1
			}
			if d > best {
				best = d
			}
		}
	}
	return best
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Ring returns the cycle C_n (a path for n=2, a single vertex for n=1).
func Ring(n int) *Graph {
	g := New(n)
	if n < 2 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g
}

// Star returns the star graph with vertex 0 as the hub.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g
}

// Grid returns an approximately square 2-D grid graph on n vertices:
// rows x cols with rows = floor(sqrt(n)) and a possibly ragged last row.
func Grid(n int) *Graph {
	g := New(n)
	if n <= 1 {
		return g
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	for i := 0; i < n; i++ {
		if (i+1)%cols != 0 && i+1 < n {
			g.AddEdge(i, i+1)
		}
		if i+cols < n {
			g.AddEdge(i, i+cols)
		}
	}
	return g
}

// RandomConnected generates a random connected graph on n vertices whose
// average degree approximates avgDegree, deterministically from rng.
//
// Construction: a random spanning tree (uniform attachment) guarantees
// connectivity, then random extra edges are added until the edge count
// reaches round(n*avgDegree/2). avgDegree below the tree's average
// (2-2/n) yields just the spanning tree; avgDegree above n-1 yields the
// complete graph.
func RandomConnected(n int, avgDegree float64, rng *rand.Rand) *Graph {
	if n <= 0 {
		return New(0)
	}
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach each new vertex to a uniformly random earlier vertex:
		// a random spanning tree.
		g.AddEdge(perm[i], perm[rng.Intn(i)])
	}
	target := int(float64(n)*avgDegree/2 + 0.5)
	maxEdges := n * (n - 1) / 2
	if target > maxEdges {
		target = maxEdges
	}
	for g.NumEdges() < target {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}
