package graph

import (
	"math/rand"
	"testing"
)

func TestAddVertex(t *testing.T) {
	g := Ring(4)
	v := g.AddVertex()
	if v != 4 || g.N() != 5 {
		t.Fatalf("AddVertex returned %d on N=%d, want 4 on 5", v, g.N())
	}
	if g.Degree(v) != 0 {
		t.Fatalf("new vertex has degree %d, want 0", g.Degree(v))
	}
	if g.IsConnected() {
		t.Fatal("graph with isolated new vertex must not be connected")
	}
	g.AddEdge(v, 0)
	g.AddEdge(v, 2)
	if !g.IsConnected() {
		t.Fatal("graph should be connected after attaching new vertex")
	}
	if got := g.Neighbors(v); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("new vertex neighbors = %v, want [0 2]", got)
	}
}

// TestRemoveVertexRenumbers pins the renumbering contract: removing v
// shifts every vertex above v down by one, preserving all non-incident
// edges.
func TestRemoveVertexRenumbers(t *testing.T) {
	// 0-1-2-3-4 path plus chord {1,4}.
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	g.AddEdge(1, 4)

	g.RemoveVertex(2)
	if g.N() != 4 {
		t.Fatalf("N = %d after removal, want 4", g.N())
	}
	// Old vertices 3, 4 are now 2, 3. Surviving edges: {0,1}, {2,3}
	// (old {3,4}) and {1,3} (old chord {1,4}).
	wantEdges := []Edge{{U: 0, V: 1}, {U: 1, V: 3}, {U: 2, V: 3}}
	got := g.Edges()
	if len(got) != len(wantEdges) {
		t.Fatalf("edges = %v, want %v", got, wantEdges)
	}
	for i, e := range wantEdges {
		if got[i] != e {
			t.Fatalf("edges = %v, want %v", got, wantEdges)
		}
	}
}

// TestRemoveVertexConnectivityAndDiameter checks that IsConnected and
// Diameter stay correct after removals — both the case where the graph
// stays connected and the articulation-point case where it splits.
func TestRemoveVertexConnectivityAndDiameter(t *testing.T) {
	// Ring of 6: removing any vertex leaves a 5-path.
	g := Ring(6)
	g.RemoveVertex(3)
	if !g.IsConnected() {
		t.Fatal("ring minus one vertex must stay connected")
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("path diameter = %d, want 4", d)
	}

	// Star: removing the hub isolates every leaf.
	s := Star(5)
	s.RemoveVertex(0)
	if s.IsConnected() {
		t.Fatal("star minus hub must be disconnected")
	}
	if d := s.Diameter(); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}

	// Removing a leaf keeps the star connected.
	s2 := Star(5)
	s2.RemoveVertex(4)
	if !s2.IsConnected() {
		t.Fatal("star minus leaf must stay connected")
	}
	if d := s2.Diameter(); d != 2 {
		t.Fatalf("star diameter = %d, want 2", d)
	}
}

// TestChurnSequence grows and shrinks a random graph repeatedly, checking
// structural invariants hold throughout (the control-plane usage pattern).
func TestChurnSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(8, 3, rng)
	for step := 0; step < 40; step++ {
		if rng.Intn(2) == 0 || g.N() <= 3 {
			v := g.AddVertex()
			// Attach to two random existing vertices to stay connected.
			g.AddEdge(v, rng.Intn(v))
			g.AddEdge(v, rng.Intn(v))
		} else {
			g.RemoveVertex(rng.Intn(g.N()))
		}
		// Invariants: edge symmetry, no self-loops, in-range endpoints.
		for _, e := range g.Edges() {
			if e.U == e.V || e.U < 0 || e.V >= g.N() {
				t.Fatalf("step %d: bad edge %+v on N=%d", step, e, g.N())
			}
			if !g.HasEdge(e.V, e.U) {
				t.Fatalf("step %d: edge %+v not symmetric", step, e)
			}
		}
		if g.IsConnected() && g.N() > 1 && g.Diameter() < 1 {
			t.Fatalf("step %d: connected graph with diameter %d", step, g.Diameter())
		}
	}
}
