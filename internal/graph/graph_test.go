package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate
	g.AddEdge(2, 2) // self-loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop stored")
	}
	if got := g.NumEdges(); got != 1 {
		t.Errorf("NumEdges = %d, want 1", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.RemoveEdge(1, 0)
	if g.HasEdge(0, 1) {
		t.Error("edge survived removal")
	}
	g.RemoveEdge(0, 2) // absent edge: no-op
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
	if g.Degree(2) != 3 {
		t.Errorf("Degree(2) = %d, want 3", g.Degree(2))
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0] != (Edge{0, 2}) || edges[1] != (Edge{1, 3}) {
		t.Errorf("Edges = %v, want [{0 2} {1 3}]", edges)
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(5)
	if got, want := g.NumEdges(), 10; got != want {
		t.Errorf("K5 edges = %d, want %d", got, want)
	}
	if g.Diameter() != 1 {
		t.Errorf("K5 diameter = %d, want 1", g.Diameter())
	}
	if g.AverageDegree() != 4 {
		t.Errorf("K5 avg degree = %v, want 4", g.AverageDegree())
	}
}

func TestRingGraph(t *testing.T) {
	g := Ring(6)
	if got := g.NumEdges(); got != 6 {
		t.Errorf("C6 edges = %d, want 6", got)
	}
	if got := g.Diameter(); got != 3 {
		t.Errorf("C6 diameter = %d, want 3", got)
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("C6 degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestStarGraph(t *testing.T) {
	g := Star(7)
	if g.Degree(0) != 6 {
		t.Errorf("star hub degree = %d, want 6", g.Degree(0))
	}
	if g.Diameter() != 2 {
		t.Errorf("star diameter = %d, want 2", g.Diameter())
	}
}

func TestGridGraph(t *testing.T) {
	g := Grid(9) // 3x3
	if !g.IsConnected() {
		t.Fatal("3x3 grid disconnected")
	}
	if got := g.NumEdges(); got != 12 {
		t.Errorf("3x3 grid edges = %d, want 12", got)
	}
	if got := g.Diameter(); got != 4 {
		t.Errorf("3x3 grid diameter = %d, want 4", got)
	}
	// Ragged grid still connected.
	if !Grid(7).IsConnected() {
		t.Error("ragged grid disconnected")
	}
}

func TestHopCounts(t *testing.T) {
	// Path 0-1-2-3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.HopCountsFrom(0)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist 0->%d = %d, want %d", i, d[i], want[i])
		}
	}
	hops := g.AllPairsHops()
	if hops[3][0] != 3 || hops[1][2] != 1 {
		t.Errorf("AllPairsHops wrong: %v", hops)
	}
}

func TestHopCountsUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	d := g.HopCountsFrom(0)
	if d[2] != -1 {
		t.Errorf("unreachable vertex distance = %d, want -1", d[2])
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Errorf("disconnected diameter = %d, want -1", g.Diameter())
	}
}

func TestCloneIndependent(t *testing.T) {
	g := Ring(4)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Error("Clone shares adjacency storage")
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	for _, n := range []int{2, 10, 60, 100} {
		for _, deg := range []float64{2, 3, 6} {
			rng := rand.New(rand.NewSource(int64(n*100) + int64(deg)))
			g := RandomConnected(n, deg, rng)
			if g.N() != n {
				t.Fatalf("n=%d: N() = %d", n, g.N())
			}
			if !g.IsConnected() {
				t.Errorf("n=%d deg=%v: graph disconnected", n, deg)
			}
			want := math.Min(deg, float64(n-1))
			if n > 10 && math.Abs(g.AverageDegree()-want) > 1.0 {
				t.Errorf("n=%d deg=%v: average degree %v too far from target", n, deg, g.AverageDegree())
			}
		}
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	g1 := RandomConnected(30, 3, rand.New(rand.NewSource(42)))
	g2 := RandomConnected(30, 3, rand.New(rand.NewSource(42)))
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("same seed produced different graphs at edge %d", i)
		}
	}
}

func TestRandomConnectedDegreeCapped(t *testing.T) {
	g := RandomConnected(5, 100, rand.New(rand.NewSource(1)))
	if got := g.NumEdges(); got != 10 {
		t.Errorf("overspecified degree should give K5 (10 edges), got %d", got)
	}
}

func TestRandomConnectedEmptyAndTiny(t *testing.T) {
	if g := RandomConnected(0, 3, rand.New(rand.NewSource(1))); g.N() != 0 {
		t.Error("n=0 not empty")
	}
	if g := RandomConnected(1, 3, rand.New(rand.NewSource(1))); g.N() != 1 || g.NumEdges() != 0 {
		t.Error("n=1 should have a single isolated vertex")
	}
}

// Property: random connected graphs are always connected and every edge is
// symmetric.
func TestRandomConnectedQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, degRaw uint8) bool {
		n := 2 + int(nRaw)%50
		deg := 2 + float64(degRaw%5)
		g := RandomConnected(n, deg, rand.New(rand.NewSource(seed)))
		if !g.IsConnected() {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.V, e.U) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVertexRangePanic(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range vertex did not panic")
		}
	}()
	g.AddEdge(0, 2)
}
