package controlplane

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapml/snap/internal/trace"
)

// ClientConfig configures a node's connection to the coordinator.
type ClientConfig struct {
	// Coordinator is the coordinator's control-plane address.
	Coordinator string
	// Advertise is this node's data-plane listen address as other members
	// should dial it.
	Advertise string
	// DialTimeout bounds the initial dial and join handshake (default 10s).
	DialTimeout time.Duration
	// JoinWait bounds how long Join blocks for the first epoch (default
	// 2 minutes — founding members wait here until the quorum completes).
	JoinWait time.Duration
	// HeartbeatEvery is the heartbeat period (default 1s).
	HeartbeatEvery time.Duration
	// Logf, when set, receives control-plane diagnostics.
	Logf func(format string, args ...any)
}

func (cfg ClientConfig) withDefaults() ClientConfig {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.JoinWait <= 0 {
		cfg.JoinWait = 2 * time.Minute
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	return cfg
}

// Client is the node-side control-plane handle: it joins the cluster,
// heartbeats training progress, and surfaces the coordinator's epochs for
// the node to apply at round boundaries.
type Client struct {
	cfg     ClientConfig
	conn    net.Conn
	writeMu sync.Mutex
	id      int

	mu     sync.Mutex
	latest *Epoch // guarded by mu

	round        atomic.Int64 // latest round reported by the node
	appliedEpoch atomic.Int64 // highest epoch id the node has applied

	// tracer, when set, has its completed round digests piggybacked onto
	// heartbeats so the coordinator's aggregator sees every round.
	tracer atomic.Pointer[trace.Tracer]

	firstEpoch chan struct{} // closed when the first epoch arrives
	leaveResp  chan leaveResult
	closed     chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
}

type leaveResult struct {
	ok     bool
	reason string
}

// Join connects to the coordinator, requests admission, and blocks until
// the cluster's current (or first) epoch arrives, so the caller returns
// with a complete initial configuration: its assigned node id and a Plan
// to boot from.
func Join(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Advertise == "" {
		return nil, fmt.Errorf("controlplane: join requires an advertised data-plane address")
	}
	conn, err := net.DialTimeout("tcp", cfg.Coordinator, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("controlplane: dial coordinator %s: %w", cfg.Coordinator, err)
	}
	if err := writeFrame(conn, msgJoin, joinReq{Addr: cfg.Advertise}, cfg.DialTimeout); err != nil {
		conn.Close()
		return nil, err
	}
	typ, body, err := readFrame(conn, cfg.DialTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("controlplane: awaiting join reply: %w", err)
	}
	switch typ {
	case msgJoinOK:
	case msgReject:
		var rej rejectResp
		unmarshal(body, &rej)
		conn.Close()
		return nil, fmt.Errorf("controlplane: join rejected: %s", rej.Reason)
	default:
		conn.Close()
		return nil, fmt.Errorf("controlplane: unexpected %v reply to join", typ)
	}
	var resp joinResp
	if err := unmarshal(body, &resp); err != nil {
		conn.Close()
		return nil, err
	}
	c := &Client{
		cfg:        cfg,
		conn:       conn,
		id:         resp.ID,
		firstEpoch: make(chan struct{}),
		leaveResp:  make(chan leaveResult, 1),
		closed:     make(chan struct{}),
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.heartbeatLoop()

	select {
	case <-c.firstEpoch:
	case <-time.After(cfg.JoinWait):
		c.Close()
		return nil, fmt.Errorf("controlplane: node %d joined but no epoch arrived within %v "+
			"(cluster below quorum?)", resp.ID, cfg.JoinWait)
	case <-c.closed:
		return nil, fmt.Errorf("controlplane: connection to coordinator lost before the first epoch")
	}
	return c, nil
}

// ID returns the node id the coordinator assigned.
func (c *Client) ID() int { return c.id }

// Latest returns the newest epoch received, never nil after Join returns.
func (c *Client) Latest() *Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.latest
}

// PlanNewerThan returns this node's plan for the newest epoch if its id
// exceeds cur, or nil when the node is already up to date. A malformed
// epoch (or one that no longer includes this node, i.e. the node was
// evicted) is reported as an error.
func (c *Client) PlanNewerThan(cur int) (*Plan, error) {
	c.mu.Lock()
	ep := c.latest
	c.mu.Unlock()
	if ep == nil || ep.ID <= cur {
		return nil, nil
	}
	return ep.PlanFor(c.id)
}

// ReportRound records the node's current training round; the heartbeat
// loop forwards it so the coordinator can place ApplyAtRound ahead of the
// whole cluster.
func (c *Client) ReportRound(round int) { c.round.Store(int64(round)) }

// ReportEpoch records the highest epoch id the node has applied.
func (c *Client) ReportEpoch(id int) { c.appliedEpoch.Store(int64(id)) }

// SetTracer attaches the node's round tracer: completed round digests
// ride on heartbeats, and the client answers the coordinator's clock
// probes (probes are answered either way — a nil tracer only stops the
// digest push).
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer.Store(t) }

// Leave asks the coordinator for a graceful departure and waits for the
// verdict. On success the control connection is closed; a leave that
// would disconnect the topology returns an error and the node remains a
// member.
func (c *Client) Leave(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c.writeMu.Lock()
	err := writeFrame(c.conn, msgLeave, leaveReq{ID: c.id}, timeout)
	c.writeMu.Unlock()
	if err != nil {
		return err
	}
	select {
	case res := <-c.leaveResp:
		if !res.ok {
			return fmt.Errorf("controlplane: leave rejected: %s", res.reason)
		}
		c.Close()
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("controlplane: no reply to leave within %v", timeout)
	case <-c.closed:
		// Connection died after the request; the coordinator will treat us
		// as gone either way.
		return nil
	}
}

// Close tears down the control connection. It does not notify the
// coordinator — use Leave for a graceful exit; a plain Close leaves
// heartbeat eviction to reclaim the membership.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.conn.Close()
	})
	c.wg.Wait()
	return nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// readLoop consumes coordinator pushes: epochs and leave verdicts. There
// is no control-plane reconnect — a node whose control connection dies
// keeps training on its last epoch until heartbeat eviction removes it,
// at which point surviving members drop it via the next epoch.
func (c *Client) readLoop() {
	defer c.wg.Done()
	first := true
	for {
		typ, body, err := readFrame(c.conn, 0)
		if err != nil {
			select {
			case <-c.closed:
			default:
				c.logf("controlplane: node %d: coordinator connection lost: %v", c.id, err)
				c.closeOnce.Do(func() {
					close(c.closed)
					c.conn.Close()
				})
			}
			return
		}
		switch typ {
		case msgEpoch:
			var ep Epoch
			if err := unmarshal(body, &ep); err != nil {
				c.logf("controlplane: node %d: bad epoch payload: %v", c.id, err)
				continue
			}
			c.mu.Lock()
			stale := c.latest != nil && ep.ID <= c.latest.ID
			if !stale {
				c.latest = &ep
			}
			c.mu.Unlock()
			if stale {
				continue
			}
			c.logf("controlplane: node %d: received epoch %d (%d members, apply at round %d)",
				c.id, ep.ID, len(ep.Members), ep.ApplyAtRound)
			if first {
				first = false
				close(c.firstEpoch)
			}
		case msgLeaveOK:
			select {
			case c.leaveResp <- leaveResult{ok: true}:
			default:
			}
		case msgReject:
			var rej rejectResp
			unmarshal(body, &rej)
			select {
			case c.leaveResp <- leaveResult{ok: false, reason: rej.Reason}:
			default:
			}
		case msgClockProbe:
			// Echo immediately: the midpoint estimate's error grows with the
			// processing gap between T1 and T2, so both are stamped here, as
			// close to the socket as the protocol allows.
			t1 := time.Now().UnixNano()
			var probe clockProbe
			if err := unmarshal(body, &probe); err != nil {
				c.logf("controlplane: node %d: bad clock probe: %v", c.id, err)
				continue
			}
			echo := clockEcho{T0: probe.T0, T1: t1, T2: time.Now().UnixNano()}
			c.writeMu.Lock()
			err := writeFrame(c.conn, msgClockEcho, echo, 5*time.Second)
			c.writeMu.Unlock()
			if err != nil {
				c.logf("controlplane: node %d: clock echo failed: %v", c.id, err)
			}
		default:
			c.logf("controlplane: node %d: unexpected %v from coordinator", c.id, typ)
		}
	}
}

// maxDigestsPerBeat bounds the trace digests piggybacked on one
// heartbeat: enough to drain several rounds of backlog per beat without
// letting one frame grow unboundedly after a long stall.
const maxDigestsPerBeat = 16

func (c *Client) heartbeatLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	// lastPushed tracks the newest round digest already shipped, so each
	// beat sends only what completed since the previous one.
	lastPushed := -1
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		hb := heartbeat{
			ID:    c.id,
			Round: int(c.round.Load()),
			Epoch: int(c.appliedEpoch.Load()),
		}
		if tr := c.tracer.Load(); tr.Enabled() {
			hb.Traces = tr.DigestsSince(lastPushed+1, maxDigestsPerBeat)
			if n := len(hb.Traces); n > 0 {
				lastPushed = hb.Traces[n-1].Round
			}
		}
		c.writeMu.Lock()
		err := writeFrame(c.conn, msgHeartbeat, hb, 5*time.Second)
		c.writeMu.Unlock()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				c.logf("controlplane: node %d: heartbeat failed: %v", c.id, err)
			}
		}
	}
}
