package controlplane

import (
	"net"
	"testing"
	"time"

	"github.com/snapml/snap/internal/trace"
)

// completeRound records one fully-formed round on a tracer so its digest
// is eligible for the heartbeat push.
func completeRound(tr *trace.Tracer, round int) {
	start := time.Now()
	tr.StartRound(round, start)
	tr.Phase(round, trace.PhaseBuild, start, start.Add(time.Millisecond))
	tr.Sent(round, 2, 100, 400, 10, 40)
	tr.EndRound(round, start.Add(2*time.Millisecond))
}

// TestHeartbeatCarriesDigests drives the full push path: tracer → client
// heartbeat → coordinator aggregator, including clock probing.
func TestHeartbeatCarriesDigests(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{
		MinMembers:     2,
		TraceRounds:    16,
		ClockSyncEvery: 25 * time.Millisecond,
	})
	clients := joinAll(t, coord, []string{"10.0.0.1:9000", "10.0.0.2:9000"})

	tracers := make([]*trace.Tracer, len(clients))
	for i, c := range clients {
		tracers[i] = trace.New(trace.Config{Node: c.ID()})
		c.SetTracer(tracers[i])
	}
	for round := 0; round < 3; round++ {
		for _, tr := range tracers {
			completeRound(tr, round)
		}
	}

	agg := coord.Trace()
	if agg == nil {
		t.Fatal("TraceRounds > 0 but Trace() returned nil")
	}
	waitFor(t, "all rounds merged from every member", func() bool {
		cr, ok := agg.Round(2)
		return ok && cr.Completeness == 1.0
	})
	cr, _ := agg.Round(2)
	if cr.BytesSent != 200 || cr.BytesFullSend != 800 {
		t.Errorf("round 2 bytes = %d/%d, want 200/800", cr.BytesSent, cr.BytesFullSend)
	}
	sent, full := agg.CumulativeBytes()
	if sent != 600 || full != 2400 {
		t.Errorf("cumulative bytes = %d/%d, want 600/2400", sent, full)
	}

	// The clock loop probes both members; with real echoes the offsets
	// must converge near zero (same host, same clock).
	for _, c := range clients {
		c := c
		waitFor(t, "clock offset sample", func() bool {
			return agg.Offset(c.ID()).Samples > 0
		})
		if est := agg.Offset(c.ID()); est.OffsetNanos > int64(time.Second) || est.OffsetNanos < -int64(time.Second) {
			t.Errorf("node %d offset %v implausible for a same-host clock", c.ID(), est.OffsetNanos)
		}
	}

	// Digests are pushed incrementally: a later round arrives without
	// resending the earlier ones (lastPushed advances).
	for _, tr := range tracers {
		completeRound(tr, 3)
	}
	waitFor(t, "round 3 merged", func() bool {
		cr, ok := agg.Round(3)
		return ok && cr.Completeness == 1.0
	})
}

// TestSpoofedDigestRejected verifies the coordinator drops digests whose
// Node field does not match the sending member: one member must not be
// able to pollute another's timeline.
func TestSpoofedDigestRejected(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{
		MinMembers:  1,
		TraceRounds: 16,
	})
	victim := joinClient(t, coord, "10.0.0.1:9000")

	// A raw control connection joining as a second member, so we control
	// exactly what rides on its heartbeats.
	conn, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatalf("dial coordinator: %v", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, msgJoin, joinReq{Addr: "10.0.0.2:9000"}, time.Second); err != nil {
		t.Fatalf("join: %v", err)
	}
	var attackerID int
	for {
		typ, body, err := readFrame(conn, 5*time.Second)
		if err != nil {
			t.Fatalf("awaiting join_ok: %v", err)
		}
		if typ == msgJoinOK {
			var resp joinResp
			if err := unmarshal(body, &resp); err != nil {
				t.Fatalf("join_ok payload: %v", err)
			}
			attackerID = resp.ID
			break
		}
	}

	spoofed := trace.RoundDigest{Node: victim.ID(), Round: 0, StartUnixNanos: 1, EndUnixNanos: 2}
	legit := trace.RoundDigest{Node: attackerID, Round: 0, StartUnixNanos: 1, EndUnixNanos: 2}
	hb := heartbeat{ID: attackerID, Traces: []trace.RoundDigest{spoofed, legit}}
	if err := writeFrame(conn, msgHeartbeat, hb, time.Second); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}

	agg := coord.Trace()
	waitFor(t, "legit digest to merge", func() bool {
		cr, ok := agg.Round(0)
		return ok && len(cr.Nodes) > 0
	})
	cr, _ := agg.Round(0)
	for _, nr := range cr.Nodes {
		if nr.Digest.Node == victim.ID() {
			t.Fatalf("spoofed digest for node %d was merged", victim.ID())
		}
	}
}

// TestClockEchoStampsOrdered checks the client answers probes with
// T1 ≤ T2 in its own clock domain and echoes T0 untouched. The client's
// read loop is exercised directly over an in-memory pipe.
func TestClockEchoStampsOrdered(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cl := &Client{cfg: ClientConfig{}.withDefaults(), conn: b,
		firstEpoch: make(chan struct{}), leaveResp: make(chan leaveResult, 1),
		closed: make(chan struct{})}
	cl.wg.Add(1)
	go cl.readLoop()
	defer func() {
		b.Close()
		cl.wg.Wait()
	}()

	before := time.Now().UnixNano()
	go writeFrame(a, msgClockProbe, clockProbe{T0: 12345}, time.Second)
	typ, body, err := readFrame(a, 5*time.Second)
	after := time.Now().UnixNano()
	if err != nil {
		t.Fatalf("awaiting echo: %v", err)
	}
	if typ != msgClockEcho {
		t.Fatalf("reply type = %v, want clock_echo", typ)
	}
	var echo clockEcho
	if err := unmarshal(body, &echo); err != nil {
		t.Fatalf("echo payload: %v", err)
	}
	if echo.T0 != 12345 {
		t.Errorf("echo T0 = %d, want 12345 (must be returned untouched)", echo.T0)
	}
	if echo.T1 > echo.T2 {
		t.Errorf("echo stamps out of order: T1 %d > T2 %d", echo.T1, echo.T2)
	}
	if echo.T1 < before || echo.T2 > after {
		t.Errorf("echo stamps [%d,%d] outside probe window [%d,%d]", echo.T1, echo.T2, before, after)
	}
}
