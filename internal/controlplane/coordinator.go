package controlplane

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/weights"
)

// CoordinatorConfig configures the cluster coordinator. Zero values select
// the documented defaults.
type CoordinatorConfig struct {
	// ListenAddr is the control-plane TCP address ("127.0.0.1:0" for an
	// ephemeral port).
	ListenAddr string
	// MinMembers defers the first epoch until this many members have
	// joined (default 2), so a cluster bootstraps deterministically: every
	// founding node blocks in Join until the quorum is complete and then
	// starts training at round 0 together.
	MinMembers int
	// AttachDegree is how many existing members a joining node is linked
	// to (default 2, capped at the current member count). Attachment
	// prefers the lowest-degree members, keeping the topology balanced.
	AttachDegree int
	// ApplyMargin is the number of rounds between the cluster's highest
	// heartbeat-reported round and a new epoch's ApplyAtRound (default 3):
	// slack for the epoch to reach every member before it takes effect.
	ApplyMargin int
	// HeartbeatTimeout evicts members that have not heartbeat for this
	// long (0 disables eviction; then only graceful leaves shrink the
	// cluster).
	HeartbeatTimeout time.Duration
	// Bound parameterizes the convergence-rate bound (paper eq. 17) used
	// to pick the best W candidate.
	Bound weights.BoundParams
	// WeightOpt tunes the projected-subgradient W optimizer.
	WeightOpt weights.Options
	// Logf, when set, receives membership and epoch diagnostics.
	Logf func(format string, args ...any)
	// Obs, when set, receives coordinator metrics (member count, epoch id,
	// λ̄max, optimization time) and membership events.
	Obs *obs.Observer
	// TraceRounds, when positive, enables cluster-wide trace aggregation:
	// members push round digests on their heartbeats, the coordinator
	// merges the most recent TraceRounds rounds, estimates per-member
	// clock offsets, and serves the merged view via Trace().
	TraceRounds int
	// ClockSyncEvery is the clock-probe period when tracing is enabled
	// (default 2s). Each member is probed on admission and then
	// periodically, keeping the offset model fresh against drift.
	ClockSyncEvery time.Duration
}

func (cfg CoordinatorConfig) withDefaults() CoordinatorConfig {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.MinMembers <= 0 {
		cfg.MinMembers = 2
	}
	if cfg.AttachDegree <= 0 {
		cfg.AttachDegree = 2
	}
	if cfg.ApplyMargin <= 0 {
		cfg.ApplyMargin = 3
	}
	if cfg.ClockSyncEvery <= 0 {
		cfg.ClockSyncEvery = 2 * time.Second
	}
	return cfg
}

// member is the coordinator's book-keeping for one admitted node.
type member struct {
	id      int
	addr    string
	conn    net.Conn
	writeMu sync.Mutex

	// Progress bookkeeping, written by connection goroutines and read
	// by the eviction sweep and epoch planner.
	round    int       // guarded by Coordinator.mu
	epoch    int       // guarded by Coordinator.mu
	lastBeat time.Time // guarded by Coordinator.mu

	// offsetG exposes this member's estimated clock offset (labeled
	// node="<id>"); bound once at admission, detached when unobserved.
	offsetG *obs.Gauge
}

func (m *member) push(typ msgType, payload any, timeout time.Duration) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	return writeFrame(m.conn, typ, payload, timeout)
}

// coordMetrics caches the coordinator's metric handles.
type coordMetrics struct {
	epoch, members, lambda   *obs.Gauge
	joins, leaves, evictions *obs.Counter
	broadcasts               *obs.Counter
	optSeconds               *obs.Histogram

	// Trace aggregation (all detached when tracing or observation is off).
	traceDigests *obs.Counter
	bytesSaved   *obs.Counter
	completeness *obs.Gauge
	straggler    *obs.Gauge
	stragglerLag *obs.Gauge
}

// Coordinator is the control-plane service: it admits and removes
// members, owns the authoritative topology, re-optimizes W on every
// membership change, and pushes versioned epochs to all members.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu      sync.Mutex
	members map[int]*member // guarded by mu
	order   []int           // guarded by mu; member ids sorted ascending; order[v] is topology vertex v
	topo    *graph.Graph    // guarded by mu
	nextID  int             // guarded by mu
	epoch   *Epoch          // guarded by mu; latest published epoch (nil before the first)
	started bool            // guarded by mu; the first epoch has been published

	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error // set once inside closeOnce.Do, read after it
	wg        sync.WaitGroup

	met coordMetrics

	// agg merges member round digests into the cluster trace view; nil
	// when TraceRounds is 0 (every trace.Aggregator method is nil-safe).
	agg *trace.Aggregator
}

// NewCoordinator starts a coordinator listening on cfg.ListenAddr.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("controlplane: coordinator listen: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		ln:      ln,
		members: make(map[int]*member),
		topo:    graph.New(0),
		closed:  make(chan struct{}),
		met: coordMetrics{
			epoch:      cfg.Obs.Gauge(obs.MEpoch),
			members:    cfg.Obs.Gauge(obs.MMembers),
			lambda:     cfg.Obs.Gauge(obs.MLambdaBarMax),
			joins:      cfg.Obs.Counter(obs.MJoins),
			leaves:     cfg.Obs.Counter(obs.MLeaves),
			evictions:  cfg.Obs.Counter(obs.MEvictions),
			broadcasts: cfg.Obs.Counter(obs.MEpochsBroadcast),
			optSeconds: cfg.Obs.Histogram(obs.MWeightOptSeconds, obs.TimeBuckets),

			traceDigests: cfg.Obs.Counter(obs.MTraceDigests),
			bytesSaved:   cfg.Obs.Counter(obs.MTraceBytesSaved),
			completeness: cfg.Obs.Gauge(obs.MTraceCompleteness),
			straggler:    cfg.Obs.Gauge(obs.MTraceStraggler),
			stragglerLag: cfg.Obs.Gauge(obs.MTraceStragglerLag),
		},
	}
	if cfg.TraceRounds > 0 {
		c.agg = trace.NewAggregator(cfg.TraceRounds)
	}
	c.wg.Add(1)
	go c.acceptLoop()
	if cfg.HeartbeatTimeout > 0 {
		c.wg.Add(1)
		go c.evictionLoop()
	}
	if c.agg != nil {
		c.wg.Add(1)
		go c.clockLoop()
	}
	return c, nil
}

// Trace returns the coordinator's trace aggregator, nil unless
// CoordinatorConfig.TraceRounds enabled aggregation. Serve it with
// trace.ClusterHandler for the merged /trace endpoint.
func (c *Coordinator) Trace() *trace.Aggregator { return c.agg }

// Addr returns the coordinator's control-plane listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Epoch returns the id of the latest published epoch (0 before the
// first).
func (c *Coordinator) Epoch() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch == nil {
		return 0
	}
	return c.epoch.ID
}

// CurrentEpoch returns the latest published epoch, or nil before the
// first. Epochs are immutable once published; callers must not mutate
// the returned value.
func (c *Coordinator) CurrentEpoch() *Epoch {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Members returns the current member ids, sorted.
func (c *Coordinator) Members() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.order...)
}

// Close shuts down the coordinator: the listener, every member control
// connection, and the background loops.
func (c *Coordinator) Close() error {
	c.closeOnce.Do(func() {
		c.mu.Lock()
		close(c.closed)
		// Member connections may already be gone (eviction, crashes);
		// only the listener close error is worth surfacing.
		c.closeErr = c.ln.Close()
		for _, m := range c.members {
			m.conn.Close()
		}
		c.mu.Unlock()
	})
	c.wg.Wait()
	return c.closeErr
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				return
			default:
				continue
			}
		}
		c.wg.Add(1)
		//snaplint:ignore golife one goroutine per control connection; handleConn drops any conn whose first frame is not a valid join, so the live population tracks cluster membership
		go c.handleConn(conn)
	}
}

// handleConn serves one control connection: a join must come first, then
// heartbeats and at most one leave.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	typ, body, err := readFrame(conn, 30*time.Second)
	if err != nil || typ != msgJoin {
		conn.Close()
		return
	}
	m, err := c.admit(conn, body)
	if err != nil {
		writeFrame(conn, msgReject, rejectResp{Reason: err.Error()}, 5*time.Second)
		conn.Close()
		return
	}
	for {
		typ, body, err := readFrame(conn, 0)
		if err != nil {
			// Control connection died. The member may still be training;
			// heartbeat eviction (if enabled) reclaims it.
			c.logf("coordinator: control connection to member %d lost: %v", m.id, err)
			return
		}
		switch typ {
		case msgHeartbeat:
			c.beat(m, body)
		case msgClockEcho:
			c.clockEchoFrom(m, body, time.Now().UnixNano())
		case msgLeave:
			if c.leave(m) {
				conn.Close()
				return
			}
		default:
			c.logf("coordinator: unexpected %v from member %d", typ, m.id)
		}
	}
}

// admit registers a joining node: assigns the next id, attaches it to the
// topology, replies join_ok, and publishes a new epoch (unless the
// founding quorum is still incomplete).
func (c *Coordinator) admit(conn net.Conn, body []byte) (*member, error) {
	var req joinReq
	if err := unmarshal(body, &req); err != nil {
		return nil, err
	}
	if req.Addr == "" {
		return nil, fmt.Errorf("join request carries no advertised address")
	}
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return nil, fmt.Errorf("coordinator is shut down")
	default:
	}
	m := &member{id: c.nextID, addr: req.Addr, conn: conn, lastBeat: time.Now()}
	if c.agg != nil {
		m.offsetG = c.cfg.Obs.Gauge(obs.Label(obs.MClockOffset, obs.LNode, strconv.Itoa(m.id)))
	}
	c.nextID++
	c.members[m.id] = m
	// New ids are monotonic, so appending keeps order sorted and the new
	// vertex index is N−1.
	c.order = append(c.order, m.id)
	v := c.topo.AddVertex()
	for _, u := range c.attachTargets(v) {
		c.topo.AddEdge(v, u)
	}
	c.met.joins.Inc()
	c.met.members.Set(float64(len(c.members)))
	c.agg.SetMembers(c.order)
	c.cfg.Obs.Emit(-1, obs.EvMemberJoin, -1, m.id, map[string]any{"addr": m.addr})
	c.logf("coordinator: member %d joined from %s (%d members)", m.id, m.addr, len(c.members))
	epoch, targets := c.maybeNewEpochLocked()
	c.mu.Unlock()

	if err := m.push(msgJoinOK, joinResp{ID: m.id}, 5*time.Second); err != nil {
		return nil, fmt.Errorf("reply to join: %v", err)
	}
	c.broadcast(epoch, targets)
	if c.agg != nil {
		// Probe immediately so the new member has an offset estimate before
		// its first digests arrive, not ClockSyncEvery later.
		c.probeClock(m)
	}
	return m, nil
}

// attachTargets picks which existing vertices a new vertex v links to:
// the AttachDegree lowest-degree members (ties to the lowest vertex), the
// balanced-growth policy. Caller holds c.mu.
func (c *Coordinator) attachTargets(v int) []int {
	candidates := make([]int, 0, v)
	for u := 0; u < v; u++ {
		candidates = append(candidates, u)
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return c.topo.Degree(candidates[i]) < c.topo.Degree(candidates[j])
	})
	if len(candidates) > c.cfg.AttachDegree {
		candidates = candidates[:c.cfg.AttachDegree]
	}
	return candidates
}

func (c *Coordinator) beat(m *member, body []byte) {
	var hb heartbeat
	if err := unmarshal(body, &hb); err != nil {
		c.logf("coordinator: bad heartbeat from member %d: %v", m.id, err)
		return
	}
	c.mu.Lock()
	m.lastBeat = time.Now()
	m.round = hb.Round
	m.epoch = hb.Epoch
	c.mu.Unlock()
	c.ingestTraces(m, hb.Traces)
}

// ingestTraces merges heartbeat-pushed round digests into the aggregator
// and refreshes the cluster-trace gauges from the latest merged round.
func (c *Coordinator) ingestTraces(m *member, digests []trace.RoundDigest) {
	if c.agg == nil || len(digests) == 0 {
		return
	}
	for _, d := range digests {
		if d.Node != m.id {
			// A digest must describe the member that sent it; anything else
			// is a bug or a spoof, and either way must not pollute the view.
			c.logf("coordinator: member %d pushed a digest for node %d; dropped", m.id, d.Node)
			continue
		}
		if c.agg.Add(d) {
			c.met.traceDigests.Inc()
			if saved := d.BytesFullSend - d.BytesSent; saved > 0 {
				c.met.bytesSaved.Add(saved)
			}
		}
	}
	if latest := c.agg.Latest(); latest >= 0 {
		if cr, ok := c.agg.Round(latest); ok {
			c.met.completeness.Set(cr.Completeness)
			c.met.straggler.Set(float64(cr.Straggler))
			c.met.stragglerLag.Set(time.Duration(cr.StragglerLagNanos).Seconds())
		}
	}
}

// clockEchoFrom feeds one probe reply into the offset model. t3 is the
// arrival timestamp, taken before JSON decoding so parse time does not
// inflate the apparent round trip.
func (c *Coordinator) clockEchoFrom(m *member, body []byte, t3 int64) {
	if c.agg == nil {
		return
	}
	var echo clockEcho
	if err := unmarshal(body, &echo); err != nil {
		c.logf("coordinator: bad clock echo from member %d: %v", m.id, err)
		return
	}
	c.agg.ObserveClock(m.id, echo.T0, echo.T1, echo.T2, t3)
	est := c.agg.Offset(m.id)
	m.offsetG.Set(time.Duration(est.OffsetNanos).Seconds())
	if c.cfg.Obs.LogEnabled() {
		f := obs.GetFields()
		f["offset_seconds"] = time.Duration(est.OffsetNanos).Seconds()
		f["delay_seconds"] = time.Duration(est.DelayNanos).Seconds()
		c.cfg.Obs.Emit(-1, obs.EvClockSync, -1, m.id, f)
		obs.PutFields(f)
	}
}

// clockLoop periodically probes every member's clock. Echo handling
// happens on the members' connection goroutines (clockEchoFrom).
func (c *Coordinator) clockLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.ClockSyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		targets := make([]*member, 0, len(c.members))
		for _, m := range c.members {
			targets = append(targets, m)
		}
		c.mu.Unlock()
		for _, m := range targets {
			c.probeClock(m)
		}
	}
}

// probeClock sends one clock probe; failures are tolerated (the next
// tick retries, and a dead connection is heartbeat-eviction's problem).
func (c *Coordinator) probeClock(m *member) {
	if err := m.push(msgClockProbe, clockProbe{T0: time.Now().UnixNano()}, 5*time.Second); err != nil {
		c.logf("coordinator: clock probe to member %d: %v", m.id, err)
	}
}

// leave handles a graceful departure request. It returns true when the
// member was removed (the caller closes the connection); a leave that
// would disconnect the remaining topology is rejected and the member
// stays.
func (c *Coordinator) leave(m *member) bool {
	c.mu.Lock()
	v := c.vertexOf(m.id)
	if v < 0 {
		c.mu.Unlock()
		m.push(msgLeaveOK, struct{}{}, 5*time.Second)
		return true
	}
	// Reject reconfigurations that would disconnect the graph: the
	// remaining members could no longer reach consensus.
	probe := c.topo.Clone()
	probe.RemoveVertex(v)
	if !probe.IsConnected() {
		c.mu.Unlock()
		c.logf("coordinator: rejecting leave of member %d: topology would disconnect", m.id)
		m.push(msgReject, rejectResp{
			Reason: fmt.Sprintf("leave of member %d would disconnect the topology", m.id),
		}, 5*time.Second)
		return false
	}
	c.removeLocked(m.id, "leave")
	c.met.leaves.Inc()
	epoch, targets := c.maybeNewEpochLocked()
	c.mu.Unlock()
	m.push(msgLeaveOK, struct{}{}, 5*time.Second)
	c.broadcast(epoch, targets)
	return true
}

// vertexOf returns the topology vertex of member id, or -1. Caller holds
// c.mu.
func (c *Coordinator) vertexOf(id int) int {
	for v, mid := range c.order {
		if mid == id {
			return v
		}
	}
	return -1
}

// removeLocked deletes a member from the books and the topology,
// repairing connectivity if the removal split the graph (possible only
// for evictions — leaves are rejected instead). Caller holds c.mu.
func (c *Coordinator) removeLocked(id int, reason string) {
	v := c.vertexOf(id)
	if v < 0 {
		return
	}
	c.topo.RemoveVertex(v)
	c.order = append(c.order[:v], c.order[v+1:]...)
	delete(c.members, id)
	c.repairLocked()
	c.met.members.Set(float64(len(c.members)))
	c.agg.SetMembers(c.order)
	c.cfg.Obs.Emit(-1, obs.EvMemberLeave, -1, id, map[string]any{"reason": reason})
	c.logf("coordinator: member %d removed (%s; %d members remain)", id, reason, len(c.members))
}

// repairLocked reconnects a split topology by bridging components with
// new edges (lowest-degree vertex of each side). An eviction is a fait
// accompli — the node is gone whether or not the graph liked it — so the
// coordinator must heal rather than reject. Caller holds c.mu.
func (c *Coordinator) repairLocked() {
	for c.topo.N() > 1 && !c.topo.IsConnected() {
		comp := components(c.topo)
		a := lowestDegree(c.topo, comp[0])
		b := lowestDegree(c.topo, comp[1])
		c.topo.AddEdge(a, b)
		c.logf("coordinator: bridged split topology with edge {%d,%d}", a, b)
	}
}

// components returns the connected components of g as vertex lists.
func components(g *graph.Graph) [][]int {
	seen := make([]bool, g.N())
	var out [][]int
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			for _, u := range g.Neighbors(comp[i]) {
				if !seen[u] {
					seen[u] = true
					comp = append(comp, u)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

func lowestDegree(g *graph.Graph, comp []int) int {
	best := comp[0]
	for _, v := range comp[1:] {
		if g.Degree(v) < g.Degree(best) {
			best = v
		}
	}
	return best
}

// evictionLoop removes members whose heartbeats stopped.
func (c *Coordinator) evictionLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatTimeout / 2)
	defer tick.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		var dead []*member
		for _, m := range c.members {
			if time.Since(m.lastBeat) > c.cfg.HeartbeatTimeout {
				dead = append(dead, m)
			}
		}
		for _, m := range dead {
			c.removeLocked(m.id, "heartbeat timeout")
			c.met.evictions.Inc()
		}
		var epoch *Epoch
		var targets []*member
		if len(dead) > 0 {
			epoch, targets = c.maybeNewEpochLocked()
		}
		c.mu.Unlock()
		for _, m := range dead {
			m.conn.Close()
		}
		c.broadcast(epoch, targets)
	}
}

// maybeNewEpochLocked recomputes W over the current topology and builds
// the next epoch, returning it plus the members to push it to — or (nil,
// nil) while the founding quorum is incomplete or the cluster is empty.
// Caller holds c.mu; the returned epoch is broadcast after unlocking.
func (c *Coordinator) maybeNewEpochLocked() (*Epoch, []*member) {
	if len(c.members) == 0 || (!c.started && len(c.members) < c.cfg.MinMembers) {
		return nil, nil
	}
	w, lambda, objective := c.optimizeLocked()

	id := 1
	applyAt := 0
	if c.epoch != nil {
		id = c.epoch.ID + 1
		maxRound := 0
		for _, m := range c.members {
			if m.round > maxRound {
				maxRound = m.round
			}
		}
		applyAt = maxRound + c.cfg.ApplyMargin
	}
	ep := &Epoch{ID: id, ApplyAtRound: applyAt, LambdaBarMax: lambda, Objective: objective}
	for v, mid := range c.order {
		m := c.members[mid]
		peers := make([]int, 0, c.topo.Degree(v))
		for _, u := range c.topo.Neighbors(v) {
			peers = append(peers, c.order[u])
		}
		ep.Members = append(ep.Members, EpochMember{
			ID:    m.id,
			Addr:  m.addr,
			Peers: peers,
			Row:   w.Row(v),
		})
	}
	c.epoch = ep
	c.started = true
	c.met.epoch.Set(float64(ep.ID))
	c.met.lambda.Set(lambda)
	c.met.broadcasts.Inc()
	c.cfg.Obs.Emit(-1, obs.EvEpochBroadcast, applyAt, -1, map[string]any{
		"epoch":          ep.ID,
		"members":        len(ep.Members),
		"apply_at_round": applyAt,
		"lambda_bar_max": lambda,
		"objective":      objective,
	})
	c.logf("coordinator: epoch %d: %d members, apply at round %d, λ̄max %.4f (%s)",
		ep.ID, len(ep.Members), applyAt, lambda, objective)
	targets := make([]*member, 0, len(c.members))
	for _, mid := range c.order {
		targets = append(targets, c.members[mid])
	}
	return ep, targets
}

// optimizeLocked runs the paper's centralized weight-matrix optimization
// over the current topology, falling back to Metropolis if the optimizer
// fails. Caller holds c.mu.
func (c *Coordinator) optimizeLocked() (w *linalg.Matrix, lambdaBarMax float64, objective string) {
	if c.topo.N() == 1 {
		// A solo member mixes only with itself: W = [1]. The spectral
		// machinery has nothing to optimize.
		w := linalg.NewMatrix(1, 1)
		w.Set(0, 0, 1)
		return w, 1, weights.MetropolisBaseline.String()
	}
	start := time.Now()
	res, err := weights.OptimizeBest(c.topo, c.cfg.Bound, c.cfg.WeightOpt)
	c.met.optSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		// Metropolis is always valid; an optimizer failure degrades the
		// convergence rate, never correctness.
		c.logf("coordinator: weight optimization failed (%v); using Metropolis", err)
		m := weights.Metropolis(c.topo, 0)
		sp, specErr := linalg.AnalyzeSpectrum(m)
		lambda := 1.0
		if specErr == nil {
			lambda = sp.LambdaBarMax
		}
		return m, lambda, weights.MetropolisBaseline.String()
	}
	return res.W, res.Spectrum.LambdaBarMax, res.Objective.String()
}

// broadcast pushes an epoch to the given members. Push failures are
// logged and tolerated: a member with a dead control connection misses
// epochs and is eventually reclaimed by heartbeat eviction.
func (c *Coordinator) broadcast(ep *Epoch, targets []*member) {
	if ep == nil {
		return
	}
	for _, m := range targets {
		if err := m.push(msgEpoch, ep, 5*time.Second); err != nil {
			c.logf("coordinator: pushing epoch %d to member %d: %v", ep.ID, m.id, err)
		}
	}
}

func unmarshal(body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("controlplane: decode payload: %w", err)
	}
	return nil
}
