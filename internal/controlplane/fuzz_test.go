package controlplane

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/snapml/snap/internal/trace"
)

// frameBytes renders one control frame into a byte slice for seeding.
func frameBytes(t *testing.F, typ msgType, payload any) []byte {
	var buf bytes.Buffer
	if err := writeFrameTo(&buf, typ, payload); err != nil {
		t.Fatalf("seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzReadFrame hardens the control-plane frame parser the same way
// codec.FuzzDecode hardens the data plane: arbitrary byte streams from a
// remote peer must never panic the coordinator, and any frame that
// parses must survive a write/read round trip unchanged.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(f, msgJoin, joinReq{Addr: "127.0.0.1:7000"}))
	f.Add(frameBytes(f, msgHeartbeat, heartbeat{ID: 3, Round: 17, Epoch: 2}))
	f.Add(frameBytes(f, msgHeartbeat, heartbeat{ID: 3, Round: 17, Epoch: 2,
		Traces: []trace.RoundDigest{{
			Node: 3, Round: 17, TraceID: trace.ID(3, 17),
			StartUnixNanos: 100, EndUnixNanos: 900,
			Phases: []trace.SpanDigest{{Name: trace.SpanBuild, StartUnixNanos: 100, EndUnixNanos: 200}},
			Recvs:  []trace.RecvDigest{{From: 1, Bytes: 64, TraceID: trace.ID(1, 17), SendUnixNanos: 150, RecvUnixNanos: 400}},
		}}}))
	f.Add(frameBytes(f, msgClockProbe, clockProbe{T0: 123456789}))
	f.Add(frameBytes(f, msgClockEcho, clockEcho{T0: 1, T1: 2, T2: 3}))
	f.Add(frameBytes(f, msgEpoch, Epoch{
		ID:           1,
		ApplyAtRound: 5,
		Members: []EpochMember{
			{ID: 0, Addr: "a", Peers: []int{1}, Row: []float64{0.5, 0.5}},
			{ID: 1, Addr: "b", Peers: []int{0}, Row: []float64{0.5, 0.5}},
		},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 1, '{'})
	// Header advertising a body far beyond maxControlFrame.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, raw []byte) {
		typ, body, err := readFrameFrom(bytes.NewReader(raw))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := writeFrameTo(&buf, typ, json.RawMessage(body)); err != nil {
			// Only a payload that is not valid JSON fails re-marshaling;
			// readFrameFrom does not inspect the payload, so that is fine.
			return
		}
		typ2, body2, err := readFrameFrom(&buf)
		if err != nil {
			t.Fatalf("re-read of re-written frame failed: %v", err)
		}
		if typ2 != typ || !bytes.Equal(body2, body) {
			t.Fatalf("round trip changed frame: type %v->%v, %d->%d payload bytes",
				typ, typ2, len(body), len(body2))
		}
	})
}

// FuzzEpochPlan feeds arbitrary JSON into the epoch payload path: a
// malformed or adversarial epoch pushed over a control connection must
// produce an error from PlanFor, never a panic in the node.
func FuzzEpochPlan(f *testing.F) {
	good, _ := json.Marshal(Epoch{
		ID:           2,
		ApplyAtRound: 9,
		Members: []EpochMember{
			{ID: 0, Addr: "a", Peers: []int{1, 2}, Row: []float64{0.4, 0.3, 0.3}},
			{ID: 1, Addr: "b", Peers: []int{0}, Row: []float64{0.3, 0.7, 0}},
			{ID: 2, Addr: "c", Peers: []int{0}, Row: []float64{0.3, 0, 0.7}},
		},
	})
	f.Add(good, 0)
	f.Add([]byte(`{"id":1,"members":[{"id":-5,"row":[1]}]}`), -5)
	f.Add([]byte(`{"id":1,"members":[{"id":0,"peers":[99],"row":[1]}]}`), 0)
	f.Add([]byte(`{"id":1,"members":[{"id":0,"row":[]}]}`), 0)
	f.Add([]byte(`null`), 0)

	f.Fuzz(func(t *testing.T, raw []byte, id int) {
		var e Epoch
		if err := json.Unmarshal(raw, &e); err != nil {
			return
		}
		plan, err := e.PlanFor(id)
		if err != nil {
			return // rejection is fine; panics and index escapes are not
		}
		if plan.Epoch != e.ID || plan.StartRound != e.ApplyAtRound {
			t.Fatalf("plan carries wrong epoch identity: %+v vs epoch %d@%d",
				plan, e.ID, e.ApplyAtRound)
		}
		for _, nid := range plan.Neighbors {
			if _, ok := plan.Addrs[nid]; !ok {
				t.Fatalf("accepted plan missing address for neighbor %d", nid)
			}
			if nid < 0 || nid >= len(plan.WRow) {
				t.Fatalf("accepted plan neighbor %d outside weight row of length %d", nid, len(plan.WRow))
			}
		}
		// Every member of an accepted epoch must itself project cleanly.
		for _, m := range e.Members {
			if _, err := e.PlanFor(m.ID); err != nil && m.ID == id {
				t.Fatalf("member %d accepted then rejected: %v", m.ID, err)
			}
		}
	})
}
