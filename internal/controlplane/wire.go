// Package controlplane makes a SNAP TCP cluster elastic: a coordinator
// service owns the authoritative membership and topology, re-optimizes the
// mixing weight matrix W centrally on every membership change (the paper's
// Section IV-B optimization assumes exactly this kind of global view), and
// publishes versioned epochs that nodes apply at a round boundary.
//
// The paper fixes the set of edge servers before training starts; this
// package removes that assumption while preserving the algorithmic
// contract: within one epoch the cluster runs plain SNAP/EXTRA over a
// static topology and a centrally optimized W, and every epoch switch
// restarts the EXTRA recursion and forces a full-parameter exchange, so
// stale correction history never leaks across reconfigurations.
//
// Wire protocol: control connections carry length-prefixed frames in the
// same style as the data plane ([len u32][type u32][payload]), with JSON
// payloads — control traffic is rare (joins, leaves, heartbeats, epoch
// pushes), so debuggability beats compactness.
package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/snapml/snap/internal/trace"
)

// maxControlFrame bounds one control frame. Epochs grow with cluster size
// (a row per member), but even a 10k-member epoch is far below this.
const maxControlFrame = 16 << 20

// Control frame types.
type msgType uint32

const (
	// msgJoin (node → coordinator): request admission. Payload: joinReq.
	msgJoin msgType = iota + 1
	// msgJoinOK (coordinator → node): admission granted. Payload: joinResp.
	msgJoinOK
	// msgLeave (node → coordinator): request graceful removal. Payload:
	// leaveReq.
	msgLeave
	// msgLeaveOK (coordinator → node): removal granted; the connection
	// closes after this.
	msgLeaveOK
	// msgReject (coordinator → node): a join or leave was refused.
	// Payload: rejectResp.
	msgReject
	// msgHeartbeat (node → coordinator): liveness + training progress.
	// Payload: heartbeat.
	msgHeartbeat
	// msgEpoch (coordinator → node): a new cluster configuration. Payload:
	// Epoch.
	msgEpoch
	// msgClockProbe (coordinator → node): an NTP-style clock probe; the
	// node echoes immediately. Payload: clockProbe. Appended after the
	// original types so the wire values of older messages never move.
	msgClockProbe
	// msgClockEcho (node → coordinator): the probe reply. Payload:
	// clockEcho.
	msgClockEcho
)

func (t msgType) String() string {
	switch t {
	case msgJoin:
		return "join"
	case msgJoinOK:
		return "join_ok"
	case msgLeave:
		return "leave"
	case msgLeaveOK:
		return "leave_ok"
	case msgReject:
		return "reject"
	case msgHeartbeat:
		return "heartbeat"
	case msgEpoch:
		return "epoch"
	case msgClockProbe:
		return "clock_probe"
	case msgClockEcho:
		return "clock_echo"
	default:
		return fmt.Sprintf("msgType(%d)", uint32(t))
	}
}

//snap:wire
type joinReq struct {
	// Addr is the node's data-plane listen address, as reachable by the
	// other members.
	Addr string `json:"addr"`
}

//snap:wire
type joinResp struct {
	// ID is the node id the coordinator assigned. Ids are monotonic and
	// never reused, so a node that dies and rejoins gets a fresh identity
	// (its stale views die with the old id).
	ID int `json:"id"`
}

//snap:wire
type leaveReq struct {
	ID int `json:"id"`
}

//snap:wire
type rejectResp struct {
	Reason string `json:"reason"`
}

//snap:wire
type heartbeat struct {
	ID int `json:"id"`
	// Round is the node's current training round; the coordinator uses the
	// cluster maximum to place ApplyAtRound safely in the future.
	Round int `json:"round"`
	// Epoch is the highest epoch the node has applied.
	Epoch int `json:"epoch"`
	// Traces carries the node's completed round digests since the last
	// heartbeat (empty when tracing is off). JSON keeps this forward- and
	// backward-compatible: an old coordinator ignores the field, an old
	// node simply never sends it.
	Traces []trace.RoundDigest `json:"traces,omitempty"`
}

// clockProbe is the coordinator's NTP-style probe: T0 is the
// coordinator's clock at send time, echoed back so the coordinator can
// pair the reply without per-member state.
//
//snap:wire
type clockProbe struct {
	T0 int64 `json:"t0"`
}

// clockEcho is the node's reply: T0 from the probe, T1 the node's clock
// at receive, T2 the node's clock at reply. The coordinator stamps T3 on
// arrival and feeds all four into trace.Aggregator.ObserveClock.
//
//snap:wire
type clockEcho struct {
	T0 int64 `json:"t0"`
	T1 int64 `json:"t1"`
	T2 int64 `json:"t2"`
}

// EpochMember is one cluster member as described by an epoch.
//
//snap:wire
type EpochMember struct {
	// ID is the member's permanent node id.
	ID int `json:"id"`
	// Addr is the member's data-plane listen address.
	Addr string `json:"addr"`
	// Peers lists the member's topology neighbors by node id.
	Peers []int `json:"peers"`
	// Row is the member's row of the optimized W, indexed by position in
	// the epoch's Members slice (which is sorted by ID).
	Row []float64 `json:"row"`
}

// Epoch is one versioned cluster configuration: the authoritative member
// list, topology, and per-node weight rows. Nodes apply an epoch at the
// boundary of round ApplyAtRound (immediately, if already past it).
//
//snap:wire
type Epoch struct {
	// ID is the epoch number, starting at 1 and strictly increasing.
	ID int `json:"id"`
	// ApplyAtRound is the round at whose start members switch to this
	// configuration. A joining node starts its round counter here.
	ApplyAtRound int `json:"apply_at_round"`
	// Members is the full membership, sorted by node id. Row vectors are
	// indexed by position in this slice.
	Members []EpochMember `json:"members"`
	// LambdaBarMax is λ̄max(W) of the epoch's weight matrix — the spectral
	// quantity the paper's problem (21)/(23) minimizes.
	LambdaBarMax float64 `json:"lambda_bar_max"`
	// Objective names the weights.Objective that won the bound comparison
	// ("metropolis" when no optimized candidate beat the baseline).
	Objective string `json:"objective"`
}

// Member returns the epoch entry for node id, or nil if id is not a
// member of this epoch.
func (e *Epoch) Member(id int) *EpochMember {
	for i := range e.Members {
		if e.Members[i].ID == id {
			return &e.Members[i]
		}
	}
	return nil
}

// Plan is the node-side digest of an epoch: everything a PeerNode needs
// to reconfigure itself, in node-id space.
type Plan struct {
	// Epoch is the epoch id.
	Epoch int
	// StartRound is the round at whose boundary the plan applies.
	StartRound int
	// WRow is this node's sparse weight row indexed by node id (length
	// max member id + 1; nonzero only at the diagonal and neighbors).
	WRow []float64
	// Neighbors is the sorted neighbor id set.
	Neighbors []int
	// Addrs maps each neighbor id to its data-plane address.
	Addrs map[int]string
}

// PlanFor projects the epoch onto one member, translating the dense row
// into node-id space. It returns an error if id is not in the epoch or
// the epoch is internally inconsistent.
func (e *Epoch) PlanFor(id int) (*Plan, error) {
	self := e.Member(id)
	if self == nil {
		return nil, fmt.Errorf("controlplane: node %d is not a member of epoch %d", id, e.ID)
	}
	if len(self.Row) != len(e.Members) {
		return nil, fmt.Errorf("controlplane: epoch %d row for node %d has %d entries for %d members",
			e.ID, id, len(self.Row), len(e.Members))
	}
	maxID := 0
	addrByID := make(map[int]string, len(e.Members))
	for _, m := range e.Members {
		if m.ID < 0 {
			return nil, fmt.Errorf("controlplane: epoch %d lists negative member id %d", e.ID, m.ID)
		}
		if m.ID > maxID {
			maxID = m.ID
		}
		addrByID[m.ID] = m.Addr
	}
	wRow := make([]float64, maxID+1)
	for j, m := range e.Members {
		wRow[m.ID] = self.Row[j]
	}
	neighbors := append([]int(nil), self.Peers...)
	addrs := make(map[int]string, len(neighbors))
	for _, nid := range neighbors {
		addr, ok := addrByID[nid]
		if !ok {
			return nil, fmt.Errorf("controlplane: epoch %d lists unknown neighbor %d for node %d", e.ID, nid, id)
		}
		addrs[nid] = addr
	}
	return &Plan{
		Epoch:      e.ID,
		StartRound: e.ApplyAtRound,
		WRow:       wRow,
		Neighbors:  neighbors,
		Addrs:      addrs,
	}, nil
}

// writeFrameTo serializes payload as JSON and writes one
// [len][type][json] control frame to w. Safe for concurrent use only
// with external locking.
func writeFrameTo(w io.Writer, typ msgType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("controlplane: marshal %v: %w", typ, err)
	}
	var header [8]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(body)))
	binary.BigEndian.PutUint32(header[4:8], uint32(typ))
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("controlplane: write %v header: %w", typ, err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("controlplane: write %v body: %w", typ, err)
	}
	return nil
}

// writeFrame is writeFrameTo over a connection with a write deadline.
func writeFrame(conn net.Conn, typ msgType, payload any, timeout time.Duration) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return writeFrameTo(conn, typ, payload)
}

// readFrameFrom reads one control frame from r, returning its type and
// raw JSON payload. Malformed input yields an error, never a panic —
// the coordinator feeds this bytes from arbitrary remote peers.
func readFrameFrom(r io.Reader) (msgType, []byte, error) {
	var header [8]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(header[:4])
	typ := msgType(binary.BigEndian.Uint32(header[4:8]))
	if size > maxControlFrame {
		return 0, nil, fmt.Errorf("controlplane: %v frame of %d bytes exceeds limit", typ, size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

// readFrame is readFrameFrom over a connection with a read deadline.
func readFrame(conn net.Conn, timeout time.Duration) (msgType, []byte, error) {
	if timeout > 0 {
		conn.SetReadDeadline(time.Now().Add(timeout))
		defer conn.SetReadDeadline(time.Time{})
	}
	return readFrameFrom(conn)
}
