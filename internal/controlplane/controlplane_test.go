package controlplane

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func startCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	cfg.Logf = t.Logf
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

func joinClient(t *testing.T, coord *Coordinator, advertise string) *Client {
	t.Helper()
	c, err := Join(ClientConfig{
		Coordinator:    coord.Addr(),
		Advertise:      advertise,
		JoinWait:       5 * time.Second,
		HeartbeatEvery: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("Join(%s): %v", advertise, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// joinAll joins n clients concurrently: with MinMembers = n every Join
// blocks until the last founder arrives, so they must overlap.
func joinAll(t *testing.T, coord *Coordinator, addrs []string) []*Client {
	t.Helper()
	clients := make([]*Client, len(addrs))
	errs := make([]error, len(addrs))
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			c, err := Join(ClientConfig{
				Coordinator:    coord.Addr(),
				Advertise:      addr,
				JoinWait:       5 * time.Second,
				HeartbeatEvery: 20 * time.Millisecond,
			})
			clients[i], errs[i] = c, err
		}(i, addr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Join(%s): %v", addrs[i], err)
		}
		c := clients[i]
		t.Cleanup(func() { c.Close() })
	}
	return clients
}

// checkEpoch validates the structural invariants every epoch must hold:
// members sorted by id, square row block, stochastic symmetric rows, and
// a symmetric neighbor relation consistent with nonzero weights.
func checkEpoch(t *testing.T, ep *Epoch) {
	t.Helper()
	n := len(ep.Members)
	byID := make(map[int]int, n) // id -> index
	for i, m := range ep.Members {
		if i > 0 && ep.Members[i-1].ID >= m.ID {
			t.Errorf("epoch %d: members not sorted by id at %d", ep.ID, i)
		}
		if len(m.Row) != n {
			t.Fatalf("epoch %d: member %d row has %d entries, want %d", ep.ID, m.ID, len(m.Row), n)
		}
		byID[m.ID] = i
	}
	for i, m := range ep.Members {
		sum := 0.0
		for _, w := range m.Row {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("epoch %d: member %d row sums to %g", ep.ID, m.ID, sum)
		}
		for _, p := range m.Peers {
			j, ok := byID[p]
			if !ok {
				t.Fatalf("epoch %d: member %d lists unknown peer %d", ep.ID, m.ID, p)
			}
			back := false
			for _, q := range ep.Members[j].Peers {
				if q == m.ID {
					back = true
				}
			}
			if !back {
				t.Errorf("epoch %d: neighbor relation %d->%d not symmetric", ep.ID, m.ID, p)
			}
			if math.Abs(m.Row[j]-ep.Members[j].Row[i]) > 1e-9 {
				t.Errorf("epoch %d: W not symmetric between %d and %d", ep.ID, m.ID, p)
			}
		}
	}
}

func TestQuorumBootstrap(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{MinMembers: 3})
	clients := joinAll(t, coord, []string{"10.0.0.1:9000", "10.0.0.2:9000", "10.0.0.3:9000"})

	ids := map[int]bool{}
	for _, c := range clients {
		ids[c.ID()] = true
		ep := c.Latest()
		if ep == nil {
			t.Fatal("Join returned without an epoch")
		}
		if ep.ID != 1 {
			t.Errorf("first epoch id = %d, want 1", ep.ID)
		}
		if ep.ApplyAtRound != 0 {
			t.Errorf("first epoch ApplyAtRound = %d, want 0", ep.ApplyAtRound)
		}
		if len(ep.Members) != 3 {
			t.Errorf("first epoch has %d members, want 3", len(ep.Members))
		}
		checkEpoch(t, ep)
	}
	if len(ids) != 3 {
		t.Errorf("ids not unique: %v", ids)
	}
	if got := coord.Epoch(); got != 1 {
		t.Errorf("coordinator epoch = %d, want 1", got)
	}
}

func TestJoinAfterQuorumPublishesEpoch(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{MinMembers: 2, AttachDegree: 2})
	founders := joinAll(t, coord, []string{"10.0.0.1:9000", "10.0.0.2:9000"})

	// Simulate training progress so ApplyAtRound lands in the future.
	for _, c := range founders {
		c.ReportRound(10)
	}
	waitFor(t, "heartbeat round to reach coordinator", func() bool {
		coord.mu.Lock()
		defer coord.mu.Unlock()
		for _, m := range coord.members {
			if m.round < 10 {
				return false
			}
		}
		return true
	})

	joiner := joinClient(t, coord, "10.0.0.3:9000")
	ep := joiner.Latest()
	if ep.ID != 2 {
		t.Fatalf("joiner got epoch %d, want 2", ep.ID)
	}
	if len(ep.Members) != 3 {
		t.Fatalf("epoch 2 has %d members, want 3", len(ep.Members))
	}
	if ep.ApplyAtRound < 13 {
		t.Errorf("epoch 2 ApplyAtRound = %d, want >= 13 (max round 10 + margin 3)", ep.ApplyAtRound)
	}
	checkEpoch(t, ep)
	// AttachDegree=2 with two existing members: the joiner links to both.
	self := ep.Member(joiner.ID())
	if len(self.Peers) != 2 {
		t.Errorf("joiner has %d peers, want 2", len(self.Peers))
	}

	// The founders receive the same epoch by push.
	for _, c := range founders {
		c := c
		waitFor(t, "founder to receive epoch 2", func() bool {
			return c.Latest().ID == 2
		})
	}

	// PlanNewerThan projects the epoch into node-id space.
	plan, err := joiner.PlanNewerThan(0)
	if err != nil {
		t.Fatalf("PlanNewerThan: %v", err)
	}
	if plan == nil || plan.Epoch != 2 {
		t.Fatalf("plan = %+v, want epoch 2", plan)
	}
	if plan.StartRound != ep.ApplyAtRound {
		t.Errorf("plan start round %d, want %d", plan.StartRound, ep.ApplyAtRound)
	}
	if len(plan.Addrs) != len(plan.Neighbors) {
		t.Errorf("plan addrs %v do not cover neighbors %v", plan.Addrs, plan.Neighbors)
	}
	sum := 0.0
	for _, w := range plan.WRow {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("plan WRow sums to %g", sum)
	}
	// Up to date: no newer plan.
	if p, err := joiner.PlanNewerThan(2); err != nil || p != nil {
		t.Errorf("PlanNewerThan(2) = %v, %v; want nil, nil", p, err)
	}
}

func TestLeaveRejectedWhenDisconnecting(t *testing.T) {
	// AttachDegree=1 builds a tree: 1-0, 2-0 (vertex 0 is the cut vertex).
	coord := startCoordinator(t, CoordinatorConfig{MinMembers: 1, AttachDegree: 1})
	hub := joinClient(t, coord, "10.0.0.1:9000")
	joinClient(t, coord, "10.0.0.2:9000")
	leaf := joinClient(t, coord, "10.0.0.3:9000")

	if err := hub.Leave(2 * time.Second); err == nil {
		t.Fatal("leave of the cut vertex was allowed; topology would disconnect")
	}
	// The rejected leaver is still a member and still receives epochs.
	if got := len(coord.Members()); got != 3 {
		t.Fatalf("after rejected leave: %d members, want 3", got)
	}

	epochBefore := coord.Epoch()
	if err := leaf.Leave(2 * time.Second); err != nil {
		t.Fatalf("leave of a leaf: %v", err)
	}
	waitFor(t, "membership to shrink", func() bool { return len(coord.Members()) == 2 })
	waitFor(t, "survivors to see the post-leave epoch", func() bool {
		return hub.Latest().ID > epochBefore
	})
	ep := hub.Latest()
	if len(ep.Members) != 2 {
		t.Fatalf("post-leave epoch has %d members, want 2", len(ep.Members))
	}
	if ep.Member(leaf.ID()) != nil {
		t.Error("departed member still listed in the epoch")
	}
	checkEpoch(t, ep)
}

func TestHeartbeatEviction(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{
		MinMembers:       2,
		HeartbeatTimeout: 250 * time.Millisecond,
	})
	survivor := joinAll(t, coord, []string{"10.0.0.1:9000", "10.0.0.2:9000"})[0]
	ghost := joinClient(t, coord, "10.0.0.3:9000")
	waitFor(t, "three members", func() bool { return len(coord.Members()) == 3 })

	// Kill the ghost's control connection without a graceful leave.
	ghost.Close()
	waitFor(t, "eviction", func() bool { return len(coord.Members()) == 2 })
	waitFor(t, "survivor to see the post-eviction epoch", func() bool {
		return survivor.Latest().Member(ghost.ID()) == nil
	})
	checkEpoch(t, survivor.Latest())
}

func TestIDsAreNeverReused(t *testing.T) {
	coord := startCoordinator(t, CoordinatorConfig{MinMembers: 1})
	a := joinClient(t, coord, "10.0.0.1:9000")
	b := joinClient(t, coord, "10.0.0.2:9000")
	if err := b.Leave(2 * time.Second); err != nil {
		t.Fatalf("leave: %v", err)
	}
	waitFor(t, "membership to shrink", func() bool { return len(coord.Members()) == 1 })
	c := joinClient(t, coord, "10.0.0.3:9000")
	if c.ID() == b.ID() {
		t.Errorf("rejoined node reused id %d", b.ID())
	}
	if c.ID() <= a.ID() {
		t.Errorf("ids not monotonic: %d after %d", c.ID(), a.ID())
	}
}

func TestWireRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ep := &Epoch{
		ID:           7,
		ApplyAtRound: 42,
		Members: []EpochMember{
			{ID: 0, Addr: "h0:1", Peers: []int{3}, Row: []float64{0.6, 0.4}},
			{ID: 3, Addr: "h3:1", Peers: []int{0}, Row: []float64{0.4, 0.6}},
		},
		LambdaBarMax: 0.2,
		Objective:    "slem",
	}
	go func() {
		writeFrame(a, msgEpoch, ep, time.Second)
	}()
	typ, body, err := readFrame(b, time.Second)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if typ != msgEpoch {
		t.Fatalf("type = %v, want epoch", typ)
	}
	var got Epoch
	if err := unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.ID != 7 || got.ApplyAtRound != 42 || len(got.Members) != 2 {
		t.Fatalf("round-tripped epoch = %+v", got)
	}

	plan, err := got.PlanFor(3)
	if err != nil {
		t.Fatalf("PlanFor: %v", err)
	}
	// Sparse row in node-id space: indices 0 and 3 populated.
	want := []float64{0.4, 0, 0, 0.6}
	if len(plan.WRow) != len(want) {
		t.Fatalf("WRow = %v, want %v", plan.WRow, want)
	}
	for i := range want {
		if math.Abs(plan.WRow[i]-want[i]) > 1e-12 {
			t.Fatalf("WRow = %v, want %v", plan.WRow, want)
		}
	}
	if plan.Addrs[0] != "h0:1" {
		t.Errorf("plan addrs = %v", plan.Addrs)
	}
	if _, err := got.PlanFor(9); err == nil {
		t.Error("PlanFor(non-member) succeeded")
	}
}

func TestMsgTypeString(t *testing.T) {
	for typ, want := range map[msgType]string{
		msgJoin: "join", msgJoinOK: "join_ok", msgLeave: "leave",
		msgLeaveOK: "leave_ok", msgReject: "reject",
		msgHeartbeat: "heartbeat", msgEpoch: "epoch",
		msgClockProbe: "clock_probe", msgClockEcho: "clock_echo",
		msgType(99): "msgType(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", uint32(typ), got, want)
		}
	}
}
