package experiments

import (
	"fmt"

	"github.com/snapml/snap/internal/metrics"
)

// Fig9 reproduces the straggler study (paper Fig. 9): iterations to
// convergence for SNAP as a growing fraction of links is unavailable each
// round (the node simply reuses the neighbor's last parameters — the
// paper's dropout-like straggler policy).
func Fig9(opt Options) (*FigResult, error) {
	const (
		n   = 60
		deg = 3
	)
	rates := failureRates(opt)
	w, err := buildSVM(n, opt)
	if err != nil {
		return nil, err
	}
	topo := topologyFor(n, deg, opt)

	iters := make([]float64, len(rates))
	accs := make([]float64, len(rates))
	xs := make([]float64, len(rates))
	for i, rate := range rates {
		// Every Fig. 9 point — including the failure-free baseline — uses
		// the straggler consensus tolerance so the sweep is comparable.
		runRate := rate
		if runRate == 0 {
			runRate = 1e-9
		}
		res, err := schemeRun("snap", topo, w, opt, true, runRate)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig9 rate=%g: %w", rate, err)
		}
		xs[i] = rate * 100
		iters[i] = float64(res.Iterations)
		accs[i] = res.FinalAccuracy
	}

	tab := &metrics.Table{
		Title:  "Fig 9: impact of stragglers (60 servers, avg degree 3)",
		XLabel: "unavailable links (%)",
		YLabel: "iterations to converge",
		X:      xs,
	}
	mustAdd(tab, "snap", iters)
	mustAdd(tab, "accuracy", accs)

	return &FigResult{
		ID:     "fig9",
		Tables: []*metrics.Table{tab},
		Notes: []string{
			"the accuracy column confirms the converged model quality is unaffected by stragglers.",
		},
	}, nil
}

// All runs every figure in order. Used by cmd/snapsim -fig all.
func All(opt Options) ([]*FigResult, error) {
	runs := []func(Options) (*FigResult, error){Fig2, Fig4, Fig5, Fig6, Fig7, Fig8, Fig9}
	out := make([]*FigResult, 0, len(runs))
	for _, f := range runs {
		r, err := f(opt)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
