package experiments

import (
	"fmt"

	"github.com/snapml/snap/internal/metrics"
)

// Fig5 reproduces the weight-matrix-optimization study (paper Fig. 5):
// iterations to convergence for SNAP and SNAP-0 with and without the
// spectral weight-matrix optimization, (a) vs network scale at average
// degree 3, and (b) vs average node degree at 60 servers.
func Fig5(opt Options) (*FigResult, error) {
	tabA, err := fig5Sweep(opt, "Fig 5(a): weight-matrix optimization vs network scale",
		"edge servers", scalePoints(opt), func(n int) (int, float64) { return n, 3 })
	if err != nil {
		return nil, err
	}
	degs := sparseDegrees(opt)
	degInts := make([]int, len(degs))
	for i, d := range degs {
		degInts[i] = int(d)
	}
	tabB, err := fig5Sweep(opt, "Fig 5(b): weight-matrix optimization vs average node degree (60 servers)",
		"average node degree", degInts, func(d int) (int, float64) { return 60, float64(d) })
	if err != nil {
		return nil, err
	}
	return &FigResult{
		ID:     "fig5",
		Tables: []*metrics.Table{tabA, tabB},
		Notes: []string{
			"the optimizer solves paper problems (21) and (22) by projected subgradient and keeps the better candidate under the rate bound (17);",
			"at degree 2 the random graph is nearly a ring, where uniform weights are already optimal — no improvement is expected (the paper observes the same).",
		},
	}, nil
}

// fig5Sweep measures iterations-to-convergence over one sweep axis.
func fig5Sweep(opt Options, title, xlabel string, points []int, topoParams func(int) (int, float64)) (*metrics.Table, error) {
	tab := &metrics.Table{
		Title:  title,
		XLabel: xlabel,
		YLabel: "iterations to converge",
		X:      floatsOf(points),
	}
	series := map[string][]float64{}
	for _, scheme := range []string{"snap", "snap-0"} {
		for _, optimized := range []bool{false, true} {
			series[fig5Name(scheme, optimized)] = make([]float64, len(points))
		}
	}
	for i, p := range points {
		n, deg := topoParams(p)
		w, err := buildSVM(n, opt)
		if err != nil {
			return nil, err
		}
		topo := topologyFor(n, deg, opt)
		for _, scheme := range []string{"snap", "snap-0"} {
			for _, optimized := range []bool{false, true} {
				res, err := schemeRun(scheme, topo, w, opt, optimized, 0)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig5 %s n=%d deg=%g: %w", scheme, n, deg, err)
				}
				series[fig5Name(scheme, optimized)][i] = float64(res.Iterations)
			}
		}
	}
	for _, scheme := range []string{"snap", "snap-0"} {
		for _, optimized := range []bool{true, false} {
			name := fig5Name(scheme, optimized)
			mustAdd(tab, name, series[name])
		}
	}
	return tab, nil
}

func fig5Name(scheme string, optimized bool) string {
	if optimized {
		return scheme + "+wopt"
	}
	return scheme
}
