package experiments

import (
	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/metrics"
)

// Frames reproduces the §IV-C frame-format analysis: payload bytes of the
// two wire formats as a function of the withheld-parameter count M, for
// the paper's two model sizes (24-parameter SVM and 23,860-parameter MLP,
// scaled axis). The crossover sits exactly at N = 2M+1.
func Frames(opt Options) (*FigResult, error) {
	mk := func(n int, title string) *metrics.Table {
		points := 13
		tab := &metrics.Table{
			Title:  title,
			XLabel: "withheld parameters M",
			YLabel: "payload bytes",
		}
		f1 := make([]float64, 0, points)
		f2 := make([]float64, 0, points)
		chosen := make([]float64, 0, points)
		for i := 0; i < points; i++ {
			m := i * n / (points - 1)
			if m > n {
				m = n
			}
			tab.X = append(tab.X, float64(m))
			f1 = append(f1, float64(codec.PayloadBytes(n, m, codec.FormatUnchangedList)))
			f2 = append(f2, float64(codec.PayloadBytes(n, m, codec.FormatIndexValue)))
			chosen = append(chosen, float64(codec.PayloadBytes(n, m, codec.ChooseFormat(n, m))))
		}
		mustAdd(tab, "format1(unchanged-list)", f1)
		mustAdd(tab, "format2(index-value)", f2)
		mustAdd(tab, "chosen", chosen)
		return tab
	}
	return &FigResult{
		ID: "frames",
		Tables: []*metrics.Table{
			mk(24, "Frame payload vs withheld count, N=24 (SVM model)"),
			mk(23860, "Frame payload vs withheld count, N=23860 (784-30-10 MLP)"),
		},
		Notes: []string{
			"format 1 costs 4+8N−4M bytes, format 2 costs 12(N−M); the chosen format switches at N = 2M+1 (paper §IV-C).",
		},
	}, nil
}
