// Package experiments reproduces every figure of the paper's evaluation
// (Section V): the parameter-evolution study (Fig. 2), the testbed
// experiment (Fig. 4), the weight-matrix-optimization study (Fig. 5), the
// convergence/accuracy/cost scaling simulations (Figs. 6-8) and the
// straggler study (Fig. 9).
//
// Each FigN function builds the paper's workload, runs every scheme the
// figure compares, and returns the series as metrics.Tables — the same
// rows the paper plots. Options.Quick shrinks workloads and sweep grids
// for benchmarks and CI; the full grids match the paper's axes.
package experiments

import (
	"fmt"

	"github.com/snapml/snap/internal/baseline"
	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"math/rand"
	"sync"

	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

// Experiment hyperparameters, calibrated once for the synthetic workloads
// (see EXPERIMENTS.md for the calibration notes).
const (
	// svmAlpha is the EXTRA/GD step size for the credit-SVM simulations.
	svmAlpha = 0.1
	// mlpAlpha is the step size for the digits-MLP testbed experiments.
	mlpAlpha = 0.5
	// svmTernBatch and mlpTernBatch are TernGrad's per-worker minibatch
	// sizes (TernGrad is an SGD method; its characteristic noise needs
	// small batches — see internal/baseline).
	svmTernBatch = 2
	mlpTernBatch = 8
	// weightOptIterations and weightOptStep tune the spectral optimizer
	// inside sweeps (calibrated: at 60 nodes/degree 3 they improve the
	// Metropolis spectral gap by ~30-50%).
	weightOptIterations = 300
	weightOptStep       = 3.0
)

// Options tunes workload sizes.
type Options struct {
	// Quick shrinks datasets and sweep grids (used by benchmarks/CI).
	Quick bool
	// Seed drives all randomness; runs are deterministic per seed.
	Seed int64
}

// FigResult is one reproduced figure: its tables (one per sub-plot) plus
// free-form notes about deviations or measurement details.
type FigResult struct {
	ID     string
	Tables []*metrics.Table
	Notes  []string
}

// Render formats all tables for terminal output.
func (f *FigResult) Render() string {
	out := ""
	for _, t := range f.Tables {
		out += t.Render() + "\n"
	}
	for _, n := range f.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// detector is the shared stopping rule for "iterations to converge"
// measurements: aggregate loss stable within 0.1% for 3 rounds and
// consensus disagreement below 0.002 (the converged SVM weights are of
// order 0.5, so this demands ~0.4% cross-node agreement). The consensus
// tolerance is what makes the topology matter: with a loose tolerance
// the loss descent dominates and neither the weight matrix nor the
// network scale affects the iteration count.
func detector() metrics.ConvergenceDetector {
	return metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.002}
}

// psDetector is the stopping rule for centralized/PS-style runs, which
// have no consensus dimension.
func psDetector() metrics.ConvergenceDetector {
	return metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3}
}

// svmWorkload is the credit-SVM simulation setup shared by Figs. 5-9.
type svmWorkload struct {
	model model.Model
	parts []*dataset.Dataset
	test  *dataset.Dataset
}

// buildSVM creates the credit dataset (30,000 samples in full mode,
// matching the UCI corpus) and randomly distributes the training split
// across n servers.
func buildSVM(n int, opt Options) (*svmWorkload, error) {
	total := 30000
	if opt.Quick {
		total = 6000
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1000))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: total}, rng)
	train, test := ds.Split(0.85, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: partitioning credit data: %w", err)
	}
	return &svmWorkload{model: model.NewLinearSVM(ds.NumFeature), parts: parts, test: test}, nil
}

// digitsWorkload is the MLP testbed setup (Figs. 2 and 4).
type digitsWorkload struct {
	model model.Model
	parts []*dataset.Dataset
	test  *dataset.Dataset
}

// buildDigits creates the MNIST-like digit task and splits it across n
// servers. Full mode uses the paper's 784-30-10 network.
func buildDigits(n int, opt Options) (*digitsWorkload, error) {
	cfg := dataset.DigitsConfig{Train: 1500, Test: 400, Noise: 0.4, Shift: 3}
	if opt.Quick {
		cfg.Train, cfg.Test = 600, 200
	}
	rng := rand.New(rand.NewSource(opt.Seed + 2000))
	train, test := dataset.SyntheticDigits(cfg, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		return nil, fmt.Errorf("experiments: partitioning digits: %w", err)
	}
	return &digitsWorkload{
		model: model.NewMLP(train.NumFeature, 30, 10),
		parts: parts,
		test:  test,
	}, nil
}

// maxIterations is the per-run round cap.
func maxIterations(opt Options) int {
	if opt.Quick {
		return 300
	}
	return 400
}

// weightCache memoizes OptimizeBest per topology so the schemes sharing a
// sweep point do not re-run the spectral optimizer.
var weightCache sync.Map // *graph.Graph → *linalg.Matrix

func optimizedWeightsFor(topo *graph.Graph, alpha float64) (*linalg.Matrix, error) {
	if w, ok := weightCache.Load(topo); ok {
		return w.(*linalg.Matrix), nil
	}
	res, err := weights.OptimizeBest(topo, weights.BoundParams{Alpha: alpha},
		weights.Options{Iterations: weightOptIterations, Step: weightOptStep})
	if err != nil {
		return nil, err
	}
	weightCache.Store(topo, res.W)
	return res.W, nil
}

// schemeRun executes one named scheme on the SVM workload over topo and
// returns its result. Recognized schemes: "snap", "snap-0", "sno", "ps",
// "terngrad", "centralized". optimizeWeights applies to the decentralized
// schemes only.
//
// Straggler runs (failureRate > 0) are scored with a looser consensus
// tolerance: ongoing link failures keep the instantaneous disagreement
// bouncing at the staleness level even though the shared solution has
// converged, and the paper's convergence criterion is unspecified.
func schemeRun(scheme string, topo *graph.Graph, w *svmWorkload, opt Options, optimizeWeights bool, failureRate float64) (*core.Result, error) {
	det := detector()
	if failureRate > 0 {
		det.ConsensusTol = 0.02
	}
	switch scheme {
	case "snap", "snap-0", "sno":
		policy := core.SendSelected
		switch scheme {
		case "snap-0":
			policy = core.SendChanged
		case "sno":
			policy = core.SendAll
		}
		var wm *linalg.Matrix
		if optimizeWeights {
			var err error
			if wm, err = optimizedWeightsFor(topo, svmAlpha); err != nil {
				return nil, err
			}
		}
		cluster, err := core.NewCluster(core.ClusterConfig{
			Topology:      topo,
			Model:         w.model,
			Partitions:    w.parts,
			Test:          w.test,
			Alpha:         svmAlpha,
			Policy:        policy,
			Weights:       wm,
			MaxIterations: maxIterations(opt),
			Convergence:   det,
			EvalEvery:     100,
			Seed:          opt.Seed,
			// Simulated edge servers initialize independently; the
			// resulting initial disagreement is what makes the network
			// topology a genuine factor (Figs. 5, 6b, 8b).
			PerNodeInit: true,
			FailureRate: failureRate,
		})
		if err != nil {
			return nil, err
		}
		return cluster.Run()
	case "ps", "terngrad":
		cfg := baseline.PSConfig{
			Topology:      topo,
			Model:         w.model,
			Partitions:    w.parts,
			Test:          w.test,
			Alpha:         svmAlpha,
			MaxIterations: maxIterations(opt),
			Convergence:   psDetector(),
			EvalEvery:     100,
			Seed:          opt.Seed,
		}
		if scheme == "terngrad" {
			cfg.Ternary = true
			cfg.BatchSize = svmTernBatch
		}
		return baseline.RunPS(cfg)
	case "centralized":
		return baseline.RunCentralized(baseline.CentralizedConfig{
			Model:         w.model,
			Partitions:    w.parts,
			Test:          w.test,
			Alpha:         svmAlpha,
			MaxIterations: maxIterations(opt),
			Convergence:   psDetector(),
			Seed:          opt.Seed,
		})
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", scheme)
	}
}

// scalePoints returns the network sizes the scaling figures sweep.
func scalePoints(opt Options) []int {
	if opt.Quick {
		return []int{20, 60}
	}
	return []int{20, 40, 60, 80, 100}
}

// sparseDegrees returns the average-node-degree sweep for sparse networks.
func sparseDegrees(opt Options) []float64 {
	if opt.Quick {
		return []float64{2, 4, 6}
	}
	return []float64{2, 3, 4, 5, 6}
}

// denseDegrees returns the degree sweep for densely connected networks.
func denseDegrees(opt Options) []float64 {
	if opt.Quick {
		return []float64{10, 30, 50}
	}
	return []float64{10, 20, 30, 40, 50}
}

// failureRates returns the unavailable-link percentages of Fig. 9.
func failureRates(opt Options) []float64 {
	if opt.Quick {
		return []float64{0, 0.02, 0.05}
	}
	return []float64{0, 0.01, 0.02, 0.03, 0.04, 0.05}
}

// topoCache memoizes topologyFor so every figure sweeping the same point
// gets the *same* graph object — which also makes the weight-matrix cache
// hit across figures.
var topoCache sync.Map // topoKey → *graph.Graph

type topoKey struct {
	n    int
	deg  float64
	seed int64
}

// topologyFor builds the random topology for a sweep point,
// deterministically from the experiment seed.
func topologyFor(n int, avgDegree float64, opt Options) *graph.Graph {
	key := topoKey{n: n, deg: avgDegree, seed: opt.Seed}
	if g, ok := topoCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := graph.RandomConnected(n, avgDegree, rand.New(rand.NewSource(opt.Seed+int64(n)*7919+int64(avgDegree*13))))
	topoCache.Store(key, g)
	return g
}

// floatsOf converts ints for table axes.
func floatsOf(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// mustAdd panics on series-length mismatch — a programmer error in the
// harness, not a data condition.
func mustAdd(t *metrics.Table, name string, points []float64) {
	if err := t.AddSeries(name, points); err != nil {
		panic(err)
	}
}
