package experiments

import (
	"fmt"
	"math"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
)

// Fig2 reproduces the parameter-evolution study (paper Fig. 2): a 3-server
// complete graph trains the MLP with plain EXTRA (full exchange, no
// communication reduction) while we record, per iteration,
//
//	(a) the fraction of parameters that did not change,
//	(b) the CDF of the absolute parameter difference |Δx|, and
//	(c) the CDF of the parameter change ratio |Δx|/|x|,
//
// the observations that motivate SNAP's selective transmission.
//
// "Unchanged" is reported at two granularities: exactly zero at float64
// (weights fed by always-blank pixels), and below 1e-6 — roughly the
// resolution at which a float32 implementation like the paper's stores
// parameters, which is where the paper's 98%-unchanged tail comes from.
func Fig2(opt Options) (*FigResult, error) {
	const n = 3
	iterations := 25
	if opt.Quick {
		iterations = 15
	}
	w, err := buildDigits(n, opt)
	if err != nil {
		return nil, err
	}

	type snapshot struct {
		unchangedExact float64
		unchangedTiny  float64
		deltas         []float64 // |Δx| for the CDF iterations
		ratios         []float64 // |Δx|/|x|
	}
	snaps := make([]snapshot, 0, iterations)
	cdfIters := map[int]bool{1: true, 20: true}
	if opt.Quick {
		cdfIters = map[int]bool{1: true, 12: true}
	}

	var prev linalg.Vector
	cluster, err := core.NewCluster(core.ClusterConfig{
		Topology:      graph.Complete(n),
		Model:         w.model,
		Partitions:    w.parts,
		Alpha:         mlpAlpha,
		Policy:        core.SendAll,
		MaxIterations: iterations,
		Convergence:   metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
		Seed:          opt.Seed,
		OnIteration: func(round int, c *core.Cluster) {
			cur := c.Engines()[0].Params()
			if prev == nil {
				prev = cur.Clone()
				return
			}
			var s snapshot
			exact, tiny := 0, 0
			for i := range cur {
				d := math.Abs(cur[i] - prev[i])
				if d == 0 {
					exact++
				}
				if d < 1e-6 {
					tiny++
				}
				if cdfIters[round] {
					s.deltas = append(s.deltas, d)
					if a := math.Abs(prev[i]); a > 1e-12 {
						s.ratios = append(s.ratios, d/a)
					}
				}
			}
			s.unchangedExact = float64(exact) / float64(len(cur))
			s.unchangedTiny = float64(tiny) / float64(len(cur))
			snaps = append(snaps, s)
			prev = cur.Clone()
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := cluster.Run(); err != nil {
		return nil, err
	}

	// Table (a): unchanged fraction per iteration.
	tabA := &metrics.Table{
		Title:  "Fig 2(a): fraction of unchanged parameters per iteration",
		XLabel: "iteration",
		YLabel: "fraction of parameters",
		X:      make([]float64, len(snaps)),
	}
	exactSeries := make([]float64, len(snaps))
	tinySeries := make([]float64, len(snaps))
	for i, s := range snaps {
		tabA.X[i] = float64(i + 1)
		exactSeries[i] = s.unchangedExact
		tinySeries[i] = s.unchangedTiny
	}
	mustAdd(tabA, "unchanged(|dx|=0)", exactSeries)
	mustAdd(tabA, "unchanged(|dx|<1e-6)", tinySeries)

	// Tables (b) and (c): log-CDFs at the two snapshot iterations.
	grid := metrics.LogGrid(1e-8, 1, 17)
	tabB := &metrics.Table{
		Title:  "Fig 2(b): CDF of parameter difference |dx|",
		XLabel: "|dx|",
		YLabel: "CDF",
		X:      grid,
	}
	tabC := &metrics.Table{
		Title:  "Fig 2(c): CDF of parameter change ratio |dx|/|x|",
		XLabel: "|dx|/|x|",
		YLabel: "CDF",
		X:      grid,
	}
	for i, s := range snaps {
		round := i + 1
		if !cdfIters[round] || s.deltas == nil {
			continue
		}
		mustAdd(tabB, fmt.Sprintf("iter%d", round), metrics.CDF(s.deltas, grid))
		mustAdd(tabC, fmt.Sprintf("iter%d", round), metrics.CDF(s.ratios, grid))
	}

	return &FigResult{
		ID:     "fig2",
		Tables: []*metrics.Table{tabA, tabB, tabC},
		Notes: []string{
			"unchanged(|dx|=0) counts parameters bit-identical across an iteration (weights from always-blank pixels);",
			"unchanged(|dx|<1e-6) approximates the paper's float32-resolution measurement.",
		},
	}, nil
}
