package experiments

import (
	"math"

	"github.com/snapml/snap/internal/baseline"
	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
)

// Fig4 reproduces the testbed experiment (paper Fig. 4): three fully
// connected edge servers train the 784-30-10 MLP on the digit task.
//
//	(a) test accuracy vs iteration for Centralized / SNAP / SNAP-0 /
//	    TernGrad (the paper omits PS here because on K3 it behaves like
//	    SNAP-0);
//	(b) communication cost per iteration for SNAP / SNAP-0 / SNO / PS /
//	    TernGrad;
//	(c) total communication cost per scheme over the whole run.
//
// All nodes are one hop apart on K3, so cost is simply bytes written —
// matching the paper's "bytes written into the socket" measurement.
func Fig4(opt Options) (*FigResult, error) {
	const n = 3
	iterations := 60
	if opt.Quick {
		iterations = 25
	}
	w, err := buildDigits(n, opt)
	if err != nil {
		return nil, err
	}
	topo := graph.Complete(n)
	noStop := metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30}

	runCluster := func(policy core.SendPolicy, maxIter int, det metrics.ConvergenceDetector) (*core.Result, error) {
		cluster, err := core.NewCluster(core.ClusterConfig{
			Topology:      topo,
			Model:         w.model,
			Partitions:    w.parts,
			Test:          w.test,
			Alpha:         mlpAlpha,
			Policy:        policy,
			MaxIterations: maxIter,
			Convergence:   det,
			EvalEvery:     1,
			Seed:          opt.Seed,
		})
		if err != nil {
			return nil, err
		}
		return cluster.Run()
	}
	runPS := func(ternary bool, maxIter int, det metrics.ConvergenceDetector) (*core.Result, error) {
		cfg := baseline.PSConfig{
			Topology:      topo,
			Model:         w.model,
			Partitions:    w.parts,
			Test:          w.test,
			Alpha:         mlpAlpha,
			MaxIterations: maxIter,
			Convergence:   det,
			EvalEvery:     1,
			Seed:          opt.Seed,
		}
		if ternary {
			cfg.Ternary = true
			cfg.BatchSize = mlpTernBatch
		}
		return baseline.RunPS(cfg)
	}

	snap, err := runCluster(core.SendSelected, iterations, noStop)
	if err != nil {
		return nil, err
	}
	snap0, err := runCluster(core.SendChanged, iterations, noStop)
	if err != nil {
		return nil, err
	}
	sno, err := runCluster(core.SendAll, iterations, noStop)
	if err != nil {
		return nil, err
	}
	ps, err := runPS(false, iterations, noStop)
	if err != nil {
		return nil, err
	}
	tern, err := runPS(true, iterations, noStop)
	if err != nil {
		return nil, err
	}
	central, err := baseline.RunCentralized(baseline.CentralizedConfig{
		Model:         w.model,
		Partitions:    w.parts,
		Test:          w.test,
		Alpha:         mlpAlpha,
		MaxIterations: iterations,
		Convergence:   noStop,
		Seed:          opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	// (a) accuracy vs iteration.
	x := make([]float64, iterations)
	for i := range x {
		x[i] = float64(i + 1)
	}
	tabA := &metrics.Table{
		Title:  "Fig 4(a): testbed model accuracy vs iteration (3-server K3, MLP)",
		XLabel: "iteration",
		YLabel: "test accuracy",
		X:      x,
	}
	mustAdd(tabA, "centralized", accuracySeries(central, iterations))
	mustAdd(tabA, "snap", accuracySeries(snap, iterations))
	mustAdd(tabA, "snap-0", accuracySeries(snap0, iterations))
	mustAdd(tabA, "terngrad", accuracySeries(tern, iterations))

	// (b) per-iteration communication cost.
	tabB := &metrics.Table{
		Title:  "Fig 4(b): communication cost per iteration (bytes)",
		XLabel: "iteration",
		YLabel: "bytes sent cluster-wide",
		X:      x,
	}
	mustAdd(tabB, "snap", costSeries(snap, iterations))
	mustAdd(tabB, "snap-0", costSeries(snap0, iterations))
	mustAdd(tabB, "sno", costSeries(sno, iterations))
	mustAdd(tabB, "ps", costSeries(ps, iterations))
	mustAdd(tabB, "terngrad", costSeries(tern, iterations))

	// (c) total communication cost per scheme, each run to its own
	// convergence (this is where TernGrad's extra iterations overtake its
	// per-iteration savings, as the paper reports).
	convIter := 150
	if opt.Quick {
		convIter = 60
	}
	snapConv, err := runCluster(core.SendSelected, convIter, detector())
	if err != nil {
		return nil, err
	}
	snap0Conv, err := runCluster(core.SendChanged, convIter, detector())
	if err != nil {
		return nil, err
	}
	snoConv, err := runCluster(core.SendAll, convIter, detector())
	if err != nil {
		return nil, err
	}
	psConv, err := runPS(false, convIter, psDetector())
	if err != nil {
		return nil, err
	}
	ternConv, err := runPS(true, convIter, psDetector())
	if err != nil {
		return nil, err
	}
	tabC := &metrics.Table{
		Title:  "Fig 4(c): total communication cost to convergence by scheme (bytes)",
		XLabel: "scheme#",
		YLabel: "total bytes",
		X:      []float64{0},
	}
	mustAdd(tabC, "snap", []float64{snapConv.TotalCost})
	mustAdd(tabC, "snap-0", []float64{snap0Conv.TotalCost})
	mustAdd(tabC, "sno", []float64{snoConv.TotalCost})
	mustAdd(tabC, "ps", []float64{psConv.TotalCost})
	mustAdd(tabC, "terngrad", []float64{ternConv.TotalCost})

	return &FigResult{
		ID:     "fig4",
		Tables: []*metrics.Table{tabA, tabB, tabC},
		Notes: []string{
			"PS is omitted from (a): on the 3-server complete graph its accuracy trajectory matches SNAP-0 (the paper makes the same argument).",
		},
	}, nil
}

// accuracySeries extracts the per-round accuracy, carrying forward the
// last evaluated value over unevaluated rounds.
func accuracySeries(res *core.Result, rounds int) []float64 {
	out := make([]float64, rounds)
	last := math.NaN()
	for i := 0; i < rounds; i++ {
		if i < len(res.Trace.Stats) && !math.IsNaN(res.Trace.Stats[i].Accuracy) {
			last = res.Trace.Stats[i].Accuracy
		}
		out[i] = last
	}
	return out
}

// costSeries extracts the per-round communication cost.
func costSeries(res *core.Result, rounds int) []float64 {
	out := make([]float64, rounds)
	for i := 0; i < rounds; i++ {
		if i < len(res.PerRoundCost) {
			out[i] = res.PerRoundCost[i]
		}
	}
	return out
}
