package experiments

import (
	"math"
	"testing"
)

// quickOpt is the shared quick-mode configuration for shape tests.
func quickOpt() Options { return Options{Quick: true, Seed: 1} }

// seriesByName finds a series in a table.
func seriesByName(t *testing.T, fig *FigResult, tableIdx int, name string) []float64 {
	t.Helper()
	tab := fig.Tables[tableIdx]
	for _, s := range tab.Series {
		if s.Name == name {
			return s.Points
		}
	}
	t.Fatalf("table %q has no series %q", tab.Title, name)
	return nil
}

func last(xs []float64) float64 { return xs[len(xs)-1] }

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig2(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Tables) != 3 {
		t.Fatalf("fig2 has %d tables, want 3", len(fig.Tables))
	}
	// (a) a sizeable fraction of parameters never changes (paper: >30%;
	// our synthetic digits: >10% exactly, >20% at float32 resolution).
	exact := seriesByName(t, fig, 0, "unchanged(|dx|=0)")
	tiny := seriesByName(t, fig, 0, "unchanged(|dx|<1e-6)")
	if exact[0] < 0.10 {
		t.Errorf("exactly-unchanged fraction at iteration 1 = %v, want ≥ 0.10", exact[0])
	}
	if tiny[0] < 0.20 {
		t.Errorf("tiny-change fraction at iteration 1 = %v, want ≥ 0.20", tiny[0])
	}
	for i := range exact {
		if tiny[i] < exact[i] {
			t.Fatalf("iteration %d: |dx|<1e-6 fraction below |dx|=0 fraction", i+1)
		}
	}
	// (b) most parameter differences are small (paper: >90% below 1e-3)
	// and the CDF shifts left (larger) at the later iteration.
	early := seriesByName(t, fig, 1, "iter1")
	lateIter := seriesByName(t, fig, 1, "iter12")
	grid := fig.Tables[1].X
	for i, q := range grid {
		if q >= 1e-3 {
			if early[i] < 0.5 {
				t.Errorf("CDF(|dx| ≤ %g) = %v at iteration 1, want most parameters small", q, early[i])
			}
			break
		}
	}
	// Compare at the 1e-3 grid point: later iterations have more small
	// changes.
	for i, q := range grid {
		if q >= 1e-3 && lateIter[i]+1e-9 < early[i] {
			t.Errorf("CDF at %g did not shift left: iter1=%v iter12=%v", q, early[i], lateIter[i])
		}
	}
}

func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig4(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// (a) SNAP tracks centralized within a few points at the end; TernGrad
	// lags at the early/middle iterations.
	central := seriesByName(t, fig, 0, "centralized")
	snap := seriesByName(t, fig, 0, "snap")
	tern := seriesByName(t, fig, 0, "terngrad")
	if d := math.Abs(last(snap) - last(central)); d > 0.05 {
		t.Errorf("final SNAP accuracy %v vs centralized %v (gap %v)", last(snap), last(central), d)
	}
	mid := len(snap) / 3
	if tern[mid] >= snap[mid] {
		t.Errorf("TernGrad accuracy %v not below SNAP %v at iteration %d", tern[mid], snap[mid], mid+1)
	}

	// (b) SNAP per-iteration cost decreases over the run; SNO and PS stay
	// flat.
	snapCost := seriesByName(t, fig, 1, "snap")
	snoCost := seriesByName(t, fig, 1, "sno")
	psCost := seriesByName(t, fig, 1, "ps")
	if last(snapCost) >= snapCost[2] {
		t.Errorf("SNAP per-iteration cost did not decay: round3=%v last=%v", snapCost[2], last(snapCost))
	}
	if snoCost[2] != last(snoCost) {
		t.Errorf("SNO per-iteration cost not flat: %v vs %v", snoCost[2], last(snoCost))
	}
	if psCost[2] != last(psCost) {
		t.Errorf("PS per-iteration cost not flat: %v vs %v", psCost[2], last(psCost))
	}

	// (c) totals: SNAP cheapest among decentralized; SNO ≈ 1.5× PS on K3
	// (paper's observation); SNAP well below PS.
	get := func(name string) float64 { return seriesByName(t, fig, 2, name)[0] }
	if !(get("snap") < get("snap-0") && get("snap-0") < get("sno")) {
		t.Errorf("decentralized cost ordering violated: snap=%v snap-0=%v sno=%v",
			get("snap"), get("snap-0"), get("sno"))
	}
	if get("snap") > 0.6*get("ps") {
		t.Errorf("SNAP total %v not well below PS %v", get("snap"), get("ps"))
	}
	ratio := get("sno") / get("ps")
	if ratio < 1.2 || ratio > 1.8 {
		t.Errorf("SNO/PS ratio = %v, want ≈ 1.5 on K3", ratio)
	}
}

func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig5(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// At quick scale the loss branch of the stopping rule masks most of
	// the mixing gain, so we assert the optimized matrix is within
	// detector noise of the plain one (never drastically slower); the
	// strict improvement appears at full scale (see EXPERIMENTS.md) and
	// the underlying spectral improvement is asserted deterministically
	// in internal/weights.
	for _, scheme := range []string{"snap", "snap-0"} {
		plain := seriesByName(t, fig, 0, scheme)
		opt := seriesByName(t, fig, 0, scheme+"+wopt")
		if last(opt) > last(plain)+5 {
			t.Errorf("%s: weight optimization slowed the largest network: %v vs %v",
				scheme, last(opt), last(plain))
		}
	}
}

func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig6(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	snap := seriesByName(t, fig, 0, "snap")
	snap0 := seriesByName(t, fig, 0, "snap-0")
	tern := seriesByName(t, fig, 0, "terngrad")
	// Iterations grow with scale for the decentralized schemes.
	if last(snap) < snap[0] {
		t.Errorf("snap iterations decreased with scale: %v", snap)
	}
	// SNAP stays within a few iterations of SNAP-0 (paper: 3-4 more).
	for i := range snap {
		if math.Abs(snap[i]-snap0[i]) > 15 {
			t.Errorf("snap %v vs snap-0 %v at point %d", snap[i], snap0[i], i)
		}
	}
	// TernGrad is the slowest at every point.
	for i := range tern {
		if tern[i] < snap[i] {
			t.Errorf("terngrad %v below snap %v at point %d", tern[i], snap[i], i)
		}
	}
	// (b): SNAP iterations decrease as the degree grows.
	snapDeg := seriesByName(t, fig, 1, "snap")
	if last(snapDeg) > snapDeg[0] {
		t.Errorf("snap iterations did not fall with degree: %v", snapDeg)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig7(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	central := seriesByName(t, fig, 0, "centralized")
	snap := seriesByName(t, fig, 0, "snap")
	for i := range snap {
		if math.Abs(snap[i]-central[i]) > 0.02 {
			t.Errorf("snap accuracy %v vs centralized %v at point %d", snap[i], central[i], i)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig8(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// (a) at the largest network, SNAP is clearly below PS and TernGrad
	// (the paper reports far larger factors at N=100 full scale; see
	// EXPERIMENTS.md for the magnitude discussion).
	snap := seriesByName(t, fig, 0, "snap")
	ps := seriesByName(t, fig, 0, "ps")
	tern := seriesByName(t, fig, 0, "terngrad")
	// Quick mode runs SNAP ~2x the iterations PS needs (the tight
	// consensus criterion only gates the decentralized schemes), which
	// narrows the gap; at full scale SNAP is 54% of PS (EXPERIMENTS.md).
	if last(snap) > 0.9*last(ps) {
		t.Errorf("snap total %v not below ps %v at the largest scale", last(snap), last(ps))
	}
	if last(snap) > 0.6*last(tern) {
		t.Errorf("snap total %v not well below terngrad %v", last(snap), last(tern))
	}
	// (b) sparse regime: the paper's directly verifiable claim is that in
	// sparsely connected networks even SNO (full vectors to neighbors)
	// costs much less than PS, because PS pays multi-hop routing.
	snoSparse := seriesByName(t, fig, 1, "sno")
	psSparse := seriesByName(t, fig, 1, "ps")
	if snoSparse[0] > 0.8*psSparse[0] {
		t.Errorf("sparse regime: sno %v not below ps %v at the lowest degree", snoSparse[0], psSparse[0])
	}
	snapSparse := seriesByName(t, fig, 1, "snap")
	for i := range snapSparse {
		if snapSparse[i] > snoSparse[i] {
			t.Errorf("snap %v above sno %v at sparse point %d", snapSparse[i], snoSparse[i], i)
		}
	}
	// (c) dense regime: cost rises with degree.
	snapDense := seriesByName(t, fig, 2, "snap")
	if last(snapDense) < snapDense[0] {
		t.Errorf("dense-regime snap cost did not rise with degree: %v", snapDense)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	fig, err := Fig9(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	iters := seriesByName(t, fig, 0, "snap")
	accs := seriesByName(t, fig, 0, "accuracy")
	// More failures → no fewer iterations; ≤35% overhead at 5% loss.
	if last(iters) < iters[0] {
		t.Errorf("iterations fell with failure rate: %v", iters)
	}
	if last(iters) > 1.35*iters[0] {
		t.Errorf("straggler overhead too large: %v vs %v", last(iters), iters[0])
	}
	// Accuracy unaffected (paper's robustness claim).
	for i := range accs {
		if math.Abs(accs[i]-accs[0]) > 0.02 {
			t.Errorf("straggler accuracy shifted: %v", accs)
		}
	}
}

func TestSchemeRunUnknown(t *testing.T) {
	w, err := buildSVM(3, Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schemeRun("nope", topologyFor(3, 2, Options{Quick: true, Seed: 1}), w, Options{Quick: true}, false, 0); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	// Covered implicitly by the individual shape tests; here we only
	// check the registry wiring with the cheapest possible probe.
	if testing.Short() {
		t.Skip("experiment shape tests are heavy")
	}
	t.Skip("All() is exercised by cmd/snapsim; individual figures are tested above")
}
