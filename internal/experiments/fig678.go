package experiments

import (
	"fmt"
	"sync"

	"github.com/snapml/snap/internal/core"
	"github.com/snapml/snap/internal/metrics"
)

// sweepResult caches every scheme's run at one sweep point so Figs. 6, 7
// and 8 can be derived from a single set of trainings.
type sweepResult map[string]*core.Result

// sweepCache memoizes whole sweep points: Figs. 6, 7 and 8 read different
// metrics from identical trainings, so each (n, degree, failureRate,
// options) point runs once per process.
var sweepCache sync.Map // sweepKey → sweepResult

type sweepKey struct {
	n           int
	deg         float64
	failureRate float64
	quick       bool
	seed        int64
}

// runSweepPoint trains every compared scheme on one (n, degree) point.
// Decentralized schemes use the optimized weight matrix — the paper makes
// weight optimization part of SNAP from Fig. 6 on ("Hereafter, when we
// mention SNAP or SNAP-0, it denotes the version with optimized weight
// matrix").
func runSweepPoint(n int, deg float64, schemes []string, opt Options, failureRate float64) (sweepResult, error) {
	key := sweepKey{n: n, deg: deg, failureRate: failureRate, quick: opt.Quick, seed: opt.Seed}
	if cached, ok := sweepCache.Load(key); ok {
		return cached.(sweepResult), nil
	}
	w, err := buildSVM(n, opt)
	if err != nil {
		return nil, err
	}
	topo := topologyFor(n, deg, opt)
	out := sweepResult{}
	for _, scheme := range schemes {
		res, err := schemeRun(scheme, topo, w, opt, true, failureRate)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s at n=%d deg=%g: %w", scheme, n, deg, err)
		}
		out[scheme] = res
	}
	sweepCache.Store(key, out)
	return out, nil
}

// convergenceSchemes are the schemes Figs. 6-8 compare.
var convergenceSchemes = []string{"snap", "snap-0", "sno", "ps", "terngrad", "centralized"}

// sweep runs all schemes across a whole axis.
func sweep(points []struct {
	n   int
	deg float64
}, opt Options, failureRate float64) ([]sweepResult, error) {
	out := make([]sweepResult, len(points))
	for i, p := range points {
		r, err := runSweepPoint(p.n, p.deg, convergenceSchemes, opt, failureRate)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func scaleAxis(opt Options) (xs []float64, points []struct {
	n   int
	deg float64
}) {
	for _, n := range scalePoints(opt) {
		points = append(points, struct {
			n   int
			deg float64
		}{n, 3})
		xs = append(xs, float64(n))
	}
	return xs, points
}

func degreeAxis(opt Options, degrees []float64) (xs []float64, points []struct {
	n   int
	deg float64
}) {
	for _, d := range degrees {
		points = append(points, struct {
			n   int
			deg float64
		}{60, d})
		xs = append(xs, d)
	}
	return xs, points
}

// extract pulls one metric out of every sweep point for one scheme.
func extract(rs []sweepResult, scheme string, f func(*core.Result) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r[scheme])
	}
	return out
}

func iterationsOf(r *core.Result) float64 { return float64(r.Iterations) }
func accuracyOf(r *core.Result) float64   { return r.FinalAccuracy }
func costOf(r *core.Result) float64       { return r.TotalCost }

// Fig6 reproduces the convergence-rate simulations (paper Fig. 6):
// iterations to convergence (a) vs network scale and (b) vs average node
// degree, for SNAP, SNAP-0, TernGrad and PS.
func Fig6(opt Options) (*FigResult, error) {
	xsA, ptsA := scaleAxis(opt)
	rsA, err := sweep(ptsA, opt, 0)
	if err != nil {
		return nil, err
	}
	xsB, ptsB := degreeAxis(opt, sparseDegrees(opt))
	rsB, err := sweep(ptsB, opt, 0)
	if err != nil {
		return nil, err
	}
	mk := func(title, xlabel string, xs []float64, rs []sweepResult) *metrics.Table {
		tab := &metrics.Table{Title: title, XLabel: xlabel, YLabel: "iterations to converge", X: xs}
		for _, s := range []string{"snap", "snap-0", "terngrad", "ps"} {
			mustAdd(tab, s, extract(rs, s, iterationsOf))
		}
		return tab
	}
	return &FigResult{
		ID: "fig6",
		Tables: []*metrics.Table{
			mk("Fig 6(a): iterations to converge vs network scale (avg degree 3)", "edge servers", xsA, rsA),
			mk("Fig 6(b): iterations to converge vs average node degree (60 servers)", "average node degree", xsB, rsB),
		},
		Notes: []string{
			"runs that hit the iteration cap are reported at the cap;",
			"PS and TernGrad iteration counts do not depend on the topology, only on the data split (the paper notes the same for Fig. 6(b)).",
		},
	}, nil
}

// Fig7 reproduces the accuracy simulations (paper Fig. 7): final model
// accuracy (a) vs network scale and (b) vs average node degree.
func Fig7(opt Options) (*FigResult, error) {
	xsA, ptsA := scaleAxis(opt)
	rsA, err := sweep(ptsA, opt, 0)
	if err != nil {
		return nil, err
	}
	xsB, ptsB := degreeAxis(opt, sparseDegrees(opt))
	rsB, err := sweep(ptsB, opt, 0)
	if err != nil {
		return nil, err
	}
	mk := func(title, xlabel string, xs []float64, rs []sweepResult) *metrics.Table {
		tab := &metrics.Table{Title: title, XLabel: xlabel, YLabel: "test accuracy", X: xs}
		for _, s := range []string{"centralized", "snap", "snap-0", "ps", "terngrad"} {
			mustAdd(tab, s, extract(rs, s, accuracyOf))
		}
		return tab
	}
	return &FigResult{
		ID: "fig7",
		Tables: []*metrics.Table{
			mk("Fig 7(a): model accuracy vs network scale (avg degree 3)", "edge servers", xsA, rsA),
			mk("Fig 7(b): model accuracy vs average node degree (60 servers)", "average node degree", xsB, rsB),
		},
		Notes: []string{
			"the paper's strong TernGrad accuracy degradation at large N is not reproducible under unbiased gradient aggregation — quantization noise averages across workers; we observe the same ordering (TernGrad lowest) but a weaker trend (see EXPERIMENTS.md).",
		},
	}, nil
}

// Fig8 reproduces the communication-cost simulations (paper Fig. 8):
// total hop-weighted traffic to convergence (a) vs network scale,
// (b) vs degree in sparse networks and (c) vs degree in dense networks.
func Fig8(opt Options) (*FigResult, error) {
	xsA, ptsA := scaleAxis(opt)
	rsA, err := sweep(ptsA, opt, 0)
	if err != nil {
		return nil, err
	}
	xsB, ptsB := degreeAxis(opt, sparseDegrees(opt))
	rsB, err := sweep(ptsB, opt, 0)
	if err != nil {
		return nil, err
	}
	xsC, ptsC := degreeAxis(opt, denseDegrees(opt))
	rsC, err := sweep(ptsC, opt, 0)
	if err != nil {
		return nil, err
	}
	mk := func(title, xlabel string, xs []float64, rs []sweepResult) *metrics.Table {
		tab := &metrics.Table{Title: title, XLabel: xlabel, YLabel: "total cost (hop-weighted bytes)", X: xs}
		for _, s := range []string{"snap", "snap-0", "sno", "ps", "terngrad"} {
			mustAdd(tab, s, extract(rs, s, costOf))
		}
		return tab
	}
	return &FigResult{
		ID: "fig8",
		Tables: []*metrics.Table{
			mk("Fig 8(a): total communication cost vs network scale (avg degree 3)", "edge servers", xsA, rsA),
			mk("Fig 8(b): total cost vs degree, sparse networks (60 servers)", "average node degree", xsB, rsB),
			mk("Fig 8(c): total cost vs degree, dense networks (60 servers)", "average node degree", xsC, rsC),
		},
	}, nil
}
