package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMetrics hammers one counter, gauge and histogram from many
// goroutines; run under -race this gates the atomic implementations the
// transport and engine hot paths rely on.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("c_total")
			g := r.Gauge("g")
			h := r.Histogram("h_seconds", TimeBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(0.001 * float64(i%10))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("h_seconds", TimeBuckets)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Sum under concurrent CAS must be exact: each worker observes
	// 100 repetitions of 0+0.001+...+0.009 = 0.045 per 10 observations.
	want := float64(workers) * float64(perWorker/10) * 0.045
	if got := h.Sum(); got < want*0.999999 || got > want*1.000001 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}

// TestNilRegistrySafe verifies the nil-safety contract: detached metrics
// work, exposition is empty.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(2)
	r.Histogram("z", []float64{1}).Observe(0.5)
	if got := r.Text(); got != "" {
		t.Errorf("nil registry text = %q, want empty", got)
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Errorf("nil registry snapshot has %d entries", len(got))
	}

	var o *Observer
	o.Counter("x").Inc()
	o.Emit(0, EvRoundStart, 0, -1, nil)
}

// TestTextGolden pins the exact Prometheus text exposition for a small
// registry: TYPE comments once per family, sorted series, labeled
// histogram buckets with cumulative counts and a +Inf terminal bucket.
func TestTextGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label(MLinkBytesSent, "peer", "1")).Add(300)
	r.Counter(Label(MLinkBytesSent, "peer", "2")).Add(50)
	r.Gauge(Label(MAPEStage, "node", "0")).Set(3)
	h := r.Histogram(MGatherWait, []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	const want = `# TYPE snap_ape_stage gauge
snap_ape_stage{node="0"} 3
# TYPE snap_gather_wait_seconds histogram
snap_gather_wait_seconds_bucket{le="0.01"} 2
snap_gather_wait_seconds_bucket{le="0.1"} 3
snap_gather_wait_seconds_bucket{le="1"} 3
snap_gather_wait_seconds_bucket{le="+Inf"} 4
snap_gather_wait_seconds_sum 5.06
snap_gather_wait_seconds_count 4
# TYPE snap_link_bytes_sent_total counter
snap_link_bytes_sent_total{peer="1"} 300
snap_link_bytes_sent_total{peer="2"} 50
`
	if got := r.Text(); got != want {
		t.Errorf("text exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLabeledHistogramText checks the label block merges with le.
func TestLabeledHistogramText(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label(MPhaseSeconds, "phase", "build"), []float64{1})
	h.Observe(0.5)
	got := r.Text()
	for _, want := range []string{
		`snap_round_phase_seconds_bucket{phase="build",le="1"} 1`,
		`snap_round_phase_seconds_bucket{phase="build",le="+Inf"} 1`,
		`snap_round_phase_seconds_sum{phase="build"} 0.5`,
		`snap_round_phase_seconds_count{phase="build"} 1`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}
}

// TestFamilyTypeConflictPanics documents that reusing one family across
// metric types is a programming error.
func TestFamilyTypeConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on family type conflict")
		}
	}()
	r := NewRegistry()
	r.Counter("dual")
	r.Gauge(Label("dual", "a", "b"))
}
