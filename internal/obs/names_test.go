package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// exportedStringConsts parses the package sources on disk and returns
// every exported string constant, in declaration order.
func exportedStringConsts(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, 0)
	if err != nil {
		t.Fatalf("parsing package sources: %v", err)
	}
	out := make(map[string]string)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if !name.IsExported() || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						v, err := strconv.Unquote(lit.Value)
						if err != nil {
							t.Fatalf("constant %s: %v", name.Name, err)
						}
						out[name.Name] = v
					}
				}
			}
		}
	}
	return out
}

// TestNameConstantsUnique enforces the registry contract behind the
// obsname analyzer: no two exported name constants (metric families,
// event types, label keys) may share a string, or two call sites would
// silently write into one series.
func TestNameConstantsUnique(t *testing.T) {
	consts := exportedStringConsts(t)
	if len(consts) == 0 {
		t.Fatal("no exported string constants found; parser looking at the wrong directory?")
	}
	byValue := make(map[string]string)
	for name, v := range consts {
		if prev, ok := byValue[v]; ok {
			t.Errorf("constants %s and %s both equal %q", prev, name, v)
			continue
		}
		byValue[v] = name
	}
	for name, v := range consts {
		if strings.HasPrefix(name, "M") && !strings.HasPrefix(v, "snap_") {
			t.Errorf("metric constant %s = %q does not use the snap_ family prefix", name, v)
		}
	}
}

// assertAllMethodsCovered fails when v's method set gained a method the
// covered set does not exercise — so every future exported method must
// add a nil-receiver case below.
func assertAllMethodsCovered(t *testing.T, v any, covered map[string]bool) {
	t.Helper()
	typ := reflect.TypeOf(v)
	for i := 0; i < typ.NumMethod(); i++ {
		if name := typ.Method(i).Name; !covered[name] {
			t.Errorf("%v method %s has no nil-receiver test; add one here", typ, name)
		}
	}
}

// TestNilObserverSafety checks the package contract that instrumented
// hot paths need no nil conditionals: every exported method works on a
// nil *Observer and hands back usable detached handles.
func TestNilObserverSafety(t *testing.T) {
	var o *Observer
	c := o.Counter(MSendFailures)
	if c == nil {
		t.Fatal("nil Observer returned nil Counter")
	}
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("detached counter = %d after Inc, want 1", c.Value())
	}
	g := o.Gauge(MRound)
	if g == nil {
		t.Fatal("nil Observer returned nil Gauge")
	}
	g.Set(4)
	if g.Value() != 4 {
		t.Errorf("detached gauge = %v after Set(4)", g.Value())
	}
	h := o.Histogram(MRoundSeconds, TimeBuckets)
	if h == nil {
		t.Fatal("nil Observer returned nil Histogram")
	}
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Errorf("detached histogram count = %d after one Observe", h.Count())
	}
	o.Emit(0, EvRoundStart, 1, -1, map[string]any{"k": "v"}) // must not panic
	if o.LogEnabled() {
		t.Error("nil Observer reports an enabled log")
	}

	assertAllMethodsCovered(t, o, map[string]bool{
		"Counter": true, "Gauge": true, "Histogram": true, "Emit": true,
		"LogEnabled": true,
	})
}

// TestNilRegistrySafety mirrors the same contract one layer down.
func TestNilRegistrySafety(t *testing.T) {
	var r *Registry
	r.Counter(MJoins).Inc()
	r.Gauge(MMembers).Set(2)
	r.Histogram(MGatherWait, TimeBuckets).Observe(1)
	if got := r.Text(); got != "" {
		t.Errorf("nil registry Text() = %q, want empty", got)
	}
	var b strings.Builder
	r.WriteText(&b)
	if b.Len() != 0 {
		t.Errorf("nil registry WriteText wrote %q", b.String())
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry Snapshot() = %v, want empty", snap)
	}

	assertAllMethodsCovered(t, r, map[string]bool{
		"Counter": true, "Gauge": true, "Histogram": true,
		"Text": true, "WriteText": true, "Snapshot": true,
	})
}

// TestNilEventLogSafety: a nil *EventLog discards without panicking.
func TestNilEventLogSafety(t *testing.T) {
	var l *EventLog
	l.Emit(1, EvRoundEnd, 3, -1, nil)
	if l.Emitted() != 0 || l.Errors() != 0 {
		t.Errorf("nil event log counts = (%d, %d), want (0, 0)", l.Emitted(), l.Errors())
	}
	if l.Enabled() {
		t.Error("nil event log reports enabled")
	}

	assertAllMethodsCovered(t, l, map[string]bool{
		"Emit": true, "Emitted": true, "Errors": true, "Enabled": true,
	})
}
