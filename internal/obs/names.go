package obs

// Metric families exported by the instrumented SNAP components. Each maps
// to a quantity the paper measures (see DESIGN.md §Observability):
// per-link bytes are the raw material of the hop-weighted cost (§II-B),
// selected-vs-withheld parameter counts are the APE savings (Fig. 4b),
// the APE stage/threshold gauges expose Algorithm 1's schedule, and the
// gather-wait histogram is the straggler behavior of Fig. 9.
const (
	// Transport (per neighbor link, labeled peer="<id>").
	MLinkFramesSent   = "snap_link_frames_sent_total"
	MLinkBytesSent    = "snap_link_bytes_sent_total"
	MLinkFramesRecv   = "snap_link_frames_recv_total"
	MLinkBytesRecv    = "snap_link_bytes_recv_total"
	MLinkConnects     = "snap_link_connects_total"
	MLinkDisconnects  = "snap_link_disconnects_total"
	MLinkReconnects   = "snap_link_reconnects_total"
	MReconnectSeconds = "snap_link_reconnect_seconds" // down -> up latency
	MGatherWait       = "snap_gather_wait_seconds"
	MGatherIncomplete = "snap_gather_incomplete_total" // rounds short of frames

	// Engine (labeled node="<id>"; the simulator shares one registry
	// across engines, so the label keeps per-node series distinct).
	MComputeSeconds   = "snap_compute_seconds" // one EXTRA step (gradient + mix)
	MParamsSent       = "snap_params_sent_total"
	MParamsWithheld   = "snap_params_withheld_total"
	MModelParams      = "snap_model_params"
	MRoundSelected    = "snap_round_params_selected"
	MFullSends        = "snap_full_sends_total"
	MAPEStage         = "snap_ape_stage"
	MAPEThreshold     = "snap_ape_threshold"
	MAPESendThreshold = "snap_ape_send_threshold"
	MExtraRestarts    = "snap_extra_restarts_total"

	// Round driver (PeerNode / Cluster). Phase histograms are labeled
	// phase="build|encode|broadcast|gather|decode|integrate" and
	// deliberately unlabeled by node: a testbed process is one node, and
	// the simulator's useful view is the cross-node aggregate.
	MRound        = "snap_round"
	MRoundSeconds = "snap_round_seconds"
	MPhaseSeconds = "snap_round_phase_seconds"
	// MRoundBytes is the communication of the last finished round: raw
	// socket bytes on the testbed, hop-weighted cost in the simulator.
	MRoundBytes    = "snap_round_bytes_sent"
	MSendFailures  = "snap_send_failures_total"
	MCorruptFrames = "snap_corrupt_frames_total"
	MRefreshes     = "snap_reconnect_refreshes_total"
	MLocalLoss     = "snap_local_loss"
	// Pipelined rounds (DESIGN.md §14). Overlap seconds is how much of
	// the broadcast+gather window ran while the gradient was also
	// running — the comms time the pipeline hid; round wall-clock ≈
	// max(compute, comms) instead of their sum when it is high.
	MOverlapSeconds = "snap_round_overlap_seconds"
	// MStreamDepth gauges how many of the last round's frames were
	// decoded+integrated inside the overlap window (before the local
	// gradient finished); MStreamFrames counts streamed frames overall.
	MStreamDepth  = "snap_gather_stream_depth"
	MStreamFrames = "snap_gather_stream_frames_total"

	// Control plane. The epoch gauge and reconfiguration histogram live on
	// nodes; member counts and join/leave/broadcast counters live on the
	// coordinator.
	MEpoch            = "snap_epoch"                  // current epoch id (node + coordinator)
	MEpochsApplied    = "snap_epochs_applied_total"   // reconfigurations a node performed
	MReconfigSeconds  = "snap_reconfig_seconds"       // epoch-application latency (drop+connect+swap)
	MMembers          = "snap_members"                // coordinator's current member count
	MJoins            = "snap_member_joins_total"     // admitted joins
	MLeaves           = "snap_member_leaves_total"    // graceful leaves
	MEvictions        = "snap_member_evictions_total" // heartbeat-timeout evictions
	MEpochsBroadcast  = "snap_epochs_broadcast_total" // epochs the coordinator published
	MLambdaBarMax     = "snap_w_lambda_bar_max"       // λ̄max(W) of the current epoch's matrix
	MWeightOptSeconds = "snap_weight_opt_seconds"     // central W re-optimization time

	// Distributed tracing (coordinator-side aggregation). Bytes-saved is
	// the cluster-wide form of the paper's communication reduction:
	// full-send baseline bytes minus selective-send bytes, summed over
	// every traced frame.
	MTraceDigests      = "snap_trace_digests_total"         // round digests ingested from members
	MTraceCompleteness = "snap_trace_completeness"          // fraction of members reporting the latest merged round
	MTraceStraggler    = "snap_trace_straggler_node"        // straggler verdict for the latest merged round (-1 unknown)
	MTraceStragglerLag = "snap_trace_straggler_lag_seconds" // how much the straggler lengthened the round
	MTraceBytesSaved   = "snap_trace_bytes_saved_total"     // cumulative bytes saved vs full-parameter sends
	MClockOffset       = "snap_clock_offset_seconds"        // per-member clock offset estimate (labeled node="<id>")
)

// Label keys used with Label(...). Dashboards and the trace tooling
// join series on these strings, so call sites must use the constants
// (the obsname analyzer rejects inline literals).
const (
	LPeer  = "peer"  // neighbor id on per-link transport series
	LNode  = "node"  // node id on engine series (simulator shares one registry)
	LPhase = "phase" // round phase on MPhaseSeconds
)
