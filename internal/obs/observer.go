package obs

// Observer bundles a metrics registry and an event log so instrumented
// code threads a single handle. Either field (or the whole Observer) may
// be nil: metrics come back detached and events are discarded, so hot
// paths are instrumented unconditionally.
type Observer struct {
	Reg *Registry
	Log *EventLog
}

func (o *Observer) registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Counter returns the named counter (detached when unobserved).
func (o *Observer) Counter(name string) *Counter { return o.registry().Counter(name) }

// Gauge returns the named gauge (detached when unobserved).
func (o *Observer) Gauge(name string) *Gauge { return o.registry().Gauge(name) }

// Histogram returns the named histogram (detached when unobserved).
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	return o.registry().Histogram(name, bounds)
}

// Emit forwards to the event log; a nil observer or log discards.
func (o *Observer) Emit(node int, typ string, round, peer int, fields map[string]any) {
	if o == nil {
		return
	}
	o.Log.Emit(node, typ, round, peer, fields)
}

// LogEnabled reports whether emitted events reach a real log. Hot paths
// check it before building field maps (see GetFields/PutFields) so a
// metrics-only or unobserved deployment pays zero allocations per event
// site.
func (o *Observer) LogEnabled() bool { return o != nil && o.Log.Enabled() }
