package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label(MLinkBytesSent, "peer", "3")).Add(1234)

	srv := httptest.NewServer(Handler(0, r, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if want := `snap_link_bytes_sent_total{peer="3"} 1234`; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q:\n%s", want, body)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Gauge("g").Set(2.5)
	r.Histogram("h_seconds", []float64{1}).Observe(0.25)
	log := NewEventLog(io.Discard)
	log.Emit(4, EvLinkDown, -1, 2, nil)

	srv := httptest.NewServer(Handler(4, r, log))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var snap struct {
		Node          int            `json:"node"`
		EventsEmitted int64          `json:"events_emitted"`
		Metrics       map[string]any `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Node != 4 {
		t.Errorf("node = %d, want 4", snap.Node)
	}
	if snap.EventsEmitted != 1 {
		t.Errorf("events_emitted = %d, want 1", snap.EventsEmitted)
	}
	if got := snap.Metrics["c_total"]; got != float64(7) {
		t.Errorf("c_total = %v, want 7", got)
	}
	if got := snap.Metrics["g"]; got != 2.5 {
		t.Errorf("g = %v, want 2.5", got)
	}
	hist, ok := snap.Metrics["h_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("h_seconds = %#v, want histogram object", snap.Metrics["h_seconds"])
	}
	if got := hist["count"]; got != float64(1) {
		t.Errorf("histogram count = %v, want 1", got)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(0, NewRegistry(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/goroutine status %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof goroutine dump looks empty")
	}
}

// TestPprofOptOut: a ServeConfig without PprofEnabled must not mount the
// profiler (heap dumps leak memory contents; see README, "Securing the
// metrics address") while /metrics keeps working.
func TestPprofOptOut(t *testing.T) {
	srv := httptest.NewServer(NewHandler(ServeConfig{Node: 0, Reg: NewRegistry()}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/debug/pprof with PprofEnabled=false: status %d, want 404", resp.StatusCode)
	}
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/metrics status %d with pprof disabled", resp.StatusCode)
	}
}

// TestTraceEndpointMount: ServeConfig.Trace is mounted at /trace; absent,
// the path 404s.
func TestTraceEndpointMount(t *testing.T) {
	marker := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "trace-handler")
	})
	srv := httptest.NewServer(NewHandler(ServeConfig{Reg: NewRegistry(), Trace: marker}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "trace-handler" {
		t.Errorf("/trace: status %d body %q", resp.StatusCode, body)
	}

	bare := httptest.NewServer(NewHandler(ServeConfig{Reg: NewRegistry()}))
	defer bare.Close()
	resp, err = bare.Client().Get(bare.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("/trace without a handler: status %d, want 404", resp.StatusCode)
	}
}

func TestEventLogJSONL(t *testing.T) {
	var sb strings.Builder
	log := NewEventLog(&sb)
	log.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }
	log.Emit(1, EvLinkDown, -1, 0, nil)
	log.Emit(1, EvRoundEnd, 7, -1, map[string]any{"seconds": 0.25, "loss": 1.5})

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	const want0 = `{"t":"2026-01-02T03:04:05Z","node":1,"type":"link_down","round":-1,"peer":0}`
	if lines[0] != want0 {
		t.Errorf("line 0 = %s\nwant     %s", lines[0], want0)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Type != EvRoundEnd || ev.Round != 7 || ev.F["loss"] != 1.5 {
		t.Errorf("round_end event mismatch: %+v", ev)
	}
	if log.Emitted() != 2 || log.Errors() != 0 {
		t.Errorf("emitted=%d errors=%d", log.Emitted(), log.Errors())
	}
}
