package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeConfig configures one node's observability surface.
type ServeConfig struct {
	// Node is echoed into /snapshot for multi-node scrape aggregation.
	Node int
	// Reg backs /metrics and /snapshot.
	Reg *Registry
	// Log, when set, contributes its emitted/dropped counters to /snapshot.
	Log *EventLog
	// PprofEnabled mounts the /debug/pprof/* handlers. Leave it off on any
	// address reachable beyond the operator: pprof exposes heap contents
	// and can burn CPU on demand (see README, "Securing the metrics
	// address").
	PprofEnabled bool
	// Trace, when set, is mounted at /trace — a node serves its own round
	// digests (trace.DigestHandler), the coordinator serves the merged
	// cluster view (trace.ClusterHandler).
	Trace http.Handler
	// Params, when set, is mounted at /params — a training node serves
	// its current model snapshot as a checkpoint stream
	// (serve.ParamsHandler) so inference gateways can follow it live.
	Params http.Handler
}

// NewHandler builds the observability handler described by cfg:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot       JSON snapshot of every metric (expvar-style)
//	/trace          round trace digests (when cfg.Trace is set)
//	/params         current model snapshot checkpoint (when cfg.Params is set)
//	/debug/pprof/*  the standard pprof handlers (when cfg.PprofEnabled)
func NewHandler(cfg ServeConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, cfg.Reg.Text())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := map[string]any{
			"node":    cfg.Node,
			"metrics": cfg.Reg.Snapshot(),
		}
		if cfg.Log != nil {
			snap["events_emitted"] = cfg.Log.Emitted()
			snap["events_dropped"] = cfg.Log.Errors()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	if cfg.Trace != nil {
		mux.Handle("/trace", cfg.Trace)
	}
	if cfg.Params != nil {
		mux.Handle("/params", cfg.Params)
	}
	if cfg.PprofEnabled {
		// Explicit pprof wiring: importing net/http/pprof only registers on
		// http.DefaultServeMux, which we deliberately do not serve.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Handler is the original fixed-shape surface (pprof always on, no trace
// endpoint), kept for callers that predate ServeConfig.
func Handler(node int, reg *Registry, log *EventLog) http.Handler {
	return NewHandler(ServeConfig{Node: node, Reg: reg, Log: log, PprofEnabled: true})
}

// ServeWith starts an HTTP server for NewHandler(cfg) on addr in a
// background goroutine and returns the server (for Close/Shutdown) and
// the bound address (useful with ":0"). The server's lifetime is the
// caller's responsibility; serve errors after Close are discarded.
func ServeWith(addr string, cfg ServeConfig) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewHandler(cfg)}
	//snaplint:ignore golife the returned *http.Server is the cancellation handle: Close/Shutdown ends Serve
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Serve is ServeWith with the legacy Handler shape (pprof always on).
func Serve(addr string, node int, reg *Registry, log *EventLog) (*http.Server, string, error) {
	return ServeWith(addr, ServeConfig{Node: node, Reg: reg, Log: log, PprofEnabled: true})
}
