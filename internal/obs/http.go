package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the observability surface for one node:
//
//	/metrics        Prometheus text exposition of the registry
//	/snapshot       JSON snapshot of every metric (expvar-style)
//	/debug/pprof/*  the standard pprof handlers (CPU, heap, goroutine, …)
//
// so a running edge cluster can be scraped and profiled mid-training.
// node is echoed into the snapshot for multi-node scrape aggregation.
func Handler(node int, reg *Registry, log *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, reg.Text())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := map[string]any{
			"node":    node,
			"metrics": reg.Snapshot(),
		}
		if log != nil {
			snap["events_emitted"] = log.Emitted()
			snap["events_dropped"] = log.Errors()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	// Explicit pprof wiring: importing net/http/pprof only registers on
	// http.DefaultServeMux, which we deliberately do not serve.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts an HTTP server for Handler on addr in a background
// goroutine and returns the server (for Close/Shutdown) and the bound
// address (useful with ":0"). The server's lifetime is the caller's
// responsibility; serve errors after Close are discarded.
func Serve(addr string, node int, reg *Registry, log *EventLog) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(node, reg, log)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
