package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event types emitted by the instrumented training path. The set mirrors
// the round lifecycle of the paper's RIP-like synchronization model plus
// the fault-tolerance machinery from the transport.
const (
	EvRoundStart = "round_start" // a node begins a training round
	EvRoundEnd   = "round_end"   // a node finished a round (f: seconds, loss)
	EvBroadcast  = "broadcast"   // update broadcast (f: bytes, selected)
	EvGatherWait = "gather_wait" // gather finished (f: seconds, got, want)
	EvIntegrate  = "integrate"   // neighbor updates applied (f: updates)
	EvAPEStage   = "ape_stage"   // APE stage transition (f: stage, threshold, send_threshold)
	EvLinkUp     = "link_up"     // connection to peer established
	EvLinkDown   = "link_down"   // connection to peer died
	EvReconnect  = "reconnect"   // link healed after a failure (f: down_seconds)
	EvRefresh    = "refresh"     // full-parameter broadcast (f: reason)
	EvFault      = "fault"       // tolerated fault (f: kind, error)

	// Control plane: elastic membership and epoch reconfiguration.
	EvLinkDrop       = "link_drop"       // neighbor removed by reconfiguration
	EvMemberJoin     = "member_join"     // coordinator admitted a member (f: addr)
	EvMemberLeave    = "member_leave"    // coordinator removed a member (f: reason)
	EvEpochBroadcast = "epoch_broadcast" // coordinator published an epoch (f: epoch, members, apply_at_round, lambda_bar_max, objective)
	EvEpochApplied   = "epoch_applied"   // node switched to an epoch (f: epoch, neighbors, seconds)

	// Distributed tracing.
	EvClockSync = "clock_sync" // coordinator refreshed a member's clock offset (f: offset_seconds, delay_seconds)

	// Serving plane.
	EvModelSwap = "model_swap" // a new model snapshot was published (f: seq, epoch, params)
)

// Event is one JSONL record. Round and Peer are -1 when not applicable
// (e.g. link events carry no round; round events carry no peer).
type Event struct {
	Time  string         `json:"t"`
	Node  int            `json:"node"`
	Type  string         `json:"type"`
	Round int            `json:"round"`
	Peer  int            `json:"peer"`
	F     map[string]any `json:"f,omitempty"`
}

// EventLog writes structured round-lifecycle events as JSON lines to an
// io.Writer. It is safe for concurrent use; write errors are counted, not
// propagated (observability must never fail training). A nil *EventLog
// discards everything.
type EventLog struct {
	mu      sync.Mutex
	w       io.Writer // guarded by mu
	emitted int64     // guarded by mu
	errs    int64     // guarded by mu

	// now is stubbed in tests for deterministic timestamps.
	now func() time.Time
}

// NewEventLog wraps w (e.g. a file or os.Stderr) in an event log.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w, now: time.Now}
}

// Enabled reports whether events are actually recorded. Hot paths use it
// to skip building field maps entirely when the log is nil — the original
// Emit contract allocated a map[string]any per call even when every event
// was discarded.
func (l *EventLog) Enabled() bool { return l != nil }

// fieldsPool recycles event field maps so enabled hot-path emits reuse
// storage instead of allocating a fresh map per event.
var fieldsPool = sync.Pool{
	New: func() any { return make(map[string]any, 8) },
}

// GetFields returns an empty field map from the pool. Pass it to Emit and
// return it with PutFields afterwards — Emit marshals synchronously, so
// the map is free for reuse as soon as Emit returns.
func GetFields() map[string]any { return fieldsPool.Get().(map[string]any) }

// PutFields clears f and returns it to the pool.
func PutFields(f map[string]any) {
	clear(f)
	fieldsPool.Put(f)
}

// Emit writes one event. Use round/peer = -1 for "not applicable"; fields
// may be nil. Safe on a nil receiver.
func (l *EventLog) Emit(node int, typ string, round, peer int, fields map[string]any) {
	if l == nil {
		return
	}
	ev := Event{
		Node:  node,
		Type:  typ,
		Round: round,
		Peer:  peer,
		F:     fields,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Time = l.now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(ev)
	if err != nil {
		l.errs++
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err != nil {
		l.errs++
		return
	}
	l.emitted++
}

// Emitted returns the number of successfully written events.
func (l *EventLog) Emitted() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.emitted
}

// Errors returns the number of events dropped due to write/marshal
// failures.
func (l *EventLog) Errors() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errs
}
