// Package obs is the observability substrate for SNAP nodes: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, all safe for concurrent use), a structured
// JSONL round-lifecycle event log, and HTTP exposition in Prometheus text
// format plus a JSON snapshot.
//
// The paper's argument is quantitative — communication cost versus
// convergence — so every quantity it plots (hop-weighted bytes, selected
// parameter counts, APE stage, straggler waits) has a live counterpart
// here that a running testbed cluster can be scraped for mid-training.
//
// All entry points are nil-safe: a nil *Registry hands out detached
// (unregistered but fully functional) metrics and a nil *EventLog
// discards events, so instrumented code needs no conditionals.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//snap:alloc-free
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for Prometheus semantics; this is
// not enforced, but exposition assumes it).
//
//snap:alloc-free
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
//
//snap:alloc-free
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//snap:alloc-free
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
//
//snap:alloc-free
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. Cumulative bucket counts, sum and count are
// produced at exposition time, matching Prometheus histogram semantics.
type Histogram struct {
	bounds  []float64 // sorted upper bounds (exclusive of the implicit +Inf)
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum (CAS loop)
	count   atomic.Int64
}

// newHistogram copies bounds (which must be sorted ascending).
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
//
//snap:alloc-free
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
//
//snap:alloc-free
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
//
//snap:alloc-free
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (the final entry is the +Inf bucket, equal to Count). Both slices are
// fresh copies the caller owns: exposition runs concurrently with
// registration, and handing out the live bounds slice would let one
// scraper's caller mutate every other reader's view.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var c int64
	for i := range h.counts {
		c += h.counts[i].Load()
		cumulative[i] = c
	}
	return bounds, cumulative
}

// Default bucket layouts. TimeBuckets spans 100µs to ~30s exponentially —
// wide enough for both an in-process EXTRA step and a full straggler
// timeout wait. SizeBuckets spans 64 B to 16 MB for frame sizes.
var (
	TimeBuckets = []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
	SizeBuckets = []float64{
		64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
	}
)

// Registry holds named metrics. Names may carry Prometheus-style labels
// (see Label); the family (the part before '{') determines the metric
// type, and registering one family under two types panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu
	families map[string]string     // guarded by mu; family -> "counter" | "gauge" | "histogram"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		families: make(map[string]string),
	}
}

// Label renders a metric name with label pairs: Label("x", "a", "1",
// "b", "2") == `x{a="1",b="2"}`. Pairs must come in key,value order.
func Label(name string, pairs ...string) string {
	if len(pairs) == 0 {
		return name
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: Label(%q) needs key,value pairs, got %d strings", name, len(pairs)))
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], pairs[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// family strips the label block from a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// checkFamily panics when one family is registered under two metric
// types. Caller holds r.mu.
func (r *Registry) checkFamily(name, typ string) {
	f := family(name)
	if have, ok := r.families[f]; ok && have != typ {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", f, have, typ))
	}
	r.families[f] = typ
}

// Counter returns the counter registered under name, creating it on first
// use. A nil registry returns a detached counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.checkFamily(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. A nil registry returns a detached gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.checkFamily(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (later calls ignore bounds).
// A nil registry returns a detached histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.checkFamily(name, "histogram")
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// seriesLabels splits a series name into family and the inner label block
// ("" when unlabeled): `x{a="1"}` -> ("x", `a="1"`).
func seriesLabels(name string) (fam, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// WriteText renders the registry in Prometheus text exposition format,
// with series sorted by name and one TYPE comment per family.
func (r *Registry) WriteText(w *strings.Builder) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)

	typed := make(map[string]bool) // family -> TYPE comment emitted
	for _, name := range names {
		fam, labels := seriesLabels(name)
		if !typed[fam] {
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, r.families[fam])
			typed[fam] = true
		}
		switch {
		case r.counters[name] != nil:
			fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value())
		case r.gauges[name] != nil:
			fmt.Fprintf(w, "%s %s\n", name, formatFloat(r.gauges[name].Value()))
		default:
			h := r.hists[name]
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", fam, joinLabels(labels), formatFloat(b), cum[i])
			}
			fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", fam, joinLabels(labels), cum[len(cum)-1])
			suffix := ""
			if labels != "" {
				suffix = "{" + labels + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.Count())
		}
	}
}

// Text returns the Prometheus text exposition as a string.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// joinLabels returns the label block followed by a comma when non-empty,
// ready to be prefixed to the le label.
func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// formatFloat renders a float compactly ("0.25", "1", "1e+06").
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []int64   `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      int64     `json:"count"`
}

// Snapshot returns all metrics as a JSON-marshalable map: counters as
// int64, gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	for n, g := range r.gauges {
		out[n] = g.Value()
	}
	for n, h := range r.hists {
		bounds, cum := h.Buckets()
		out[n] = HistogramSnapshot{Bounds: bounds, Cumulative: cum, Sum: h.Sum(), Count: h.Count()}
	}
	return out
}
