package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
)

// SendPolicy selects what an engine transmits each round.
type SendPolicy int

const (
	// SendSelected is full SNAP: withhold parameters whose accumulated
	// change is below the APE controller's threshold.
	SendSelected SendPolicy = iota
	// SendChanged is SNAP-0: send every parameter that changed at all
	// (APE threshold pinned to zero).
	SendChanged
	// SendAll is SNO (select-neighbors-only): transmit the entire
	// parameter vector every round.
	SendAll
)

// String implements fmt.Stringer.
func (p SendPolicy) String() string {
	switch p {
	case SendSelected:
		return "snap"
	case SendChanged:
		return "snap-0"
	case SendAll:
		return "sno"
	default:
		return fmt.Sprintf("SendPolicy(%d)", int(p))
	}
}

// EngineConfig configures one node's EXTRA engine.
type EngineConfig struct {
	// ID is this node's index.
	ID int
	// Model is the shared model architecture.
	Model model.Model
	// Data is this node's local training partition.
	Data *dataset.Dataset
	// Alpha is the EXTRA step size α.
	Alpha float64
	// WRow is row ID of the weight matrix W: WRow[j] is w_{ID,j}. Only the
	// diagonal and neighbor entries may be nonzero.
	WRow linalg.Vector
	// Neighbors lists the node ids with nonzero off-diagonal weight.
	Neighbors []int
	// BatchSize limits the per-iteration gradient batch (0 = full local
	// data, the deterministic EXTRA setting).
	BatchSize int
	// GradWorkers caps the goroutines used for the sharded gradient
	// (≤1 = serial). The result is bitwise-identical for every value:
	// shard boundaries and the reduction tree depend only on the batch
	// length (see model.GradientTo).
	GradWorkers int
	// Policy selects the transmission scheme.
	Policy SendPolicy
	// APE configures the threshold schedule (used when Policy ==
	// SendSelected).
	APE APEConfig
	// RefreshEvery, when positive, makes the node broadcast its complete
	// parameter vector every RefreshEvery rounds regardless of Policy.
	// This is the RIP-style periodic full advertisement the paper's
	// synchronization model alludes to, and it is what makes selective
	// transmission safe over lossy links: a dropped frame leaves the
	// receiver with stale values that the sender (which cannot observe
	// the drop) would otherwise never retransmit, freezing the cluster
	// into a permanently disagreeing fixed point.
	RefreshEvery int
	// FullSendRound0 forces a complete parameter broadcast in round 0.
	// Required whenever nodes do not share identical initial parameters:
	// the selective-diff protocol reconstructs neighbor state against a
	// baseline, and the only baseline a fresh receiver has is its own
	// init.
	FullSendRound0 bool
	// RestartEvery, when positive, restarts the EXTRA two-term recursion
	// every that many rounds. Needed alongside RefreshEvery on lossy
	// links: EXTRA's optimality is carried by its accumulated correction
	// term Σ(W̃−W)x^t, and rounds computed on stale neighbor views
	// corrupt that history permanently — the iteration then converges to
	// a consensual but non-optimal point. A restart discards the
	// corrupted history and re-converges from the current iterate (EXTRA
	// converges from any initial point), bounding the staleness bias.
	RestartEvery int
	// Float32Wire declares that this node's updates travel as float32
	// (codec.EncodeLossy). The engine then records the float32-rounded
	// value — what the receiver actually reconstructs — in its sent
	// baseline, so the selective diff is computed against the true remote
	// view rather than a full-precision value the neighbor never saw.
	Float32Wire bool
	// Init is the node's initial parameter vector (shared by all nodes in
	// the paper's setup). It is cloned, not aliased.
	Init linalg.Vector
	// Obs, when set, receives engine metrics (compute time, selected
	// parameter counts, APE stage gauges) and APE/refresh lifecycle
	// events. Engine series are labeled node="<ID>" so a simulator
	// sharing one registry across engines keeps them distinct. Nil
	// disables observation at negligible cost.
	Obs *obs.Observer
	// Trace, when set, records the engine's gradient and mixing sub-spans
	// inside each round's trace. Nil disables them at zero cost.
	Trace *trace.Tracer
}

// Engine is one edge server's training state: the EXTRA two-term recursion
// over its own parameters plus its view of each neighbor's parameters,
// fed by selective updates.
//
// Buffer ownership: the engine preallocates every vector the round loop
// touches at construction and recycles them across rounds (see DESIGN.md
// "Hot path & buffer ownership"). Everything a method returns without a
// documented copy — Step's iterate, BuildUpdate's *codec.Update — is
// engine-owned scratch, valid only until the next call of the same
// method.
type Engine struct {
	cfg  EngineConfig
	wRow linalg.Vector

	x     linalg.Vector // x^{k+1}, the current iterate
	xPrev linalg.Vector // x^k
	grad  linalg.Vector // ∇f_i(x^{k+1}) scratch for the current step
	gPrev linalg.Vector // ∇f_i(x^k)
	mix   linalg.Vector // Σ_j w_ij·x_j scratch
	next  linalg.Vector // x^{k+2} under construction
	k     int           // EXTRA iteration counter (reset on APE restart)

	// Neighbor views are stored in slot arrays indexed by the position of
	// the neighbor id in the sorted nbrIDs slice; nbrIdx maps id → slot
	// (lookups only — iteration always walks the slices, in id order, so
	// float summation is deterministic).
	nbrIDs  []int
	nbrIdx  map[int]int
	nbrW    []float64       // w_{ID,j} per slot
	nbrCur  []linalg.Vector // view of x_j^{k+1} per slot
	nbrPrev []linalg.Vector // view of x_j^k per slot

	lastSent linalg.Vector // values the neighbors currently hold for us
	ape      *APEController

	upd      codec.Update     // reusable BuildUpdate output
	batchBuf []dataset.Sample // reusable mini-batch buffer
	gradSc   model.GradScratch
	gradSecs float64 // last ComputeGradient duration, folded into MComputeSeconds by StepMix

	// forceFull makes the next BuildUpdate transmit the complete
	// parameter vector regardless of policy — set after a neighbor
	// reconnects, whose view of us is stale in ways the selective-diff
	// protocol cannot observe.
	forceFull bool

	restarts int

	met engineMetrics
}

// engineMetrics caches this engine's metric handles (detached when
// unobserved), bound once at construction.
type engineMetrics struct {
	compute        *obs.Histogram
	paramsSent     *obs.Counter
	paramsWithheld *obs.Counter
	fullSends      *obs.Counter
	restarts       *obs.Counter
	roundSelected  *obs.Gauge
	modelParams    *obs.Gauge
	apeStage       *obs.Gauge
	apeThreshold   *obs.Gauge
	apeSendThresh  *obs.Gauge
}

func newEngineMetrics(o *obs.Observer, nodeID int) engineMetrics {
	node := strconv.Itoa(nodeID)
	return engineMetrics{
		compute:        o.Histogram(obs.Label(obs.MComputeSeconds, obs.LNode, node), obs.TimeBuckets),
		paramsSent:     o.Counter(obs.Label(obs.MParamsSent, obs.LNode, node)),
		paramsWithheld: o.Counter(obs.Label(obs.MParamsWithheld, obs.LNode, node)),
		fullSends:      o.Counter(obs.Label(obs.MFullSends, obs.LNode, node)),
		restarts:       o.Counter(obs.Label(obs.MExtraRestarts, obs.LNode, node)),
		roundSelected:  o.Gauge(obs.Label(obs.MRoundSelected, obs.LNode, node)),
		modelParams:    o.Gauge(obs.Label(obs.MModelParams, obs.LNode, node)),
		apeStage:       o.Gauge(obs.Label(obs.MAPEStage, obs.LNode, node)),
		apeThreshold:   o.Gauge(obs.Label(obs.MAPEThreshold, obs.LNode, node)),
		apeSendThresh:  o.Gauge(obs.Label(obs.MAPESendThreshold, obs.LNode, node)),
	}
}

// validateTopology checks a weight row and neighbor set for node id:
// the row must cover the node and every neighbor, neighbors must be
// distinct ids other than the node itself, and the row must sum to 1.
func validateTopology(id int, wRow linalg.Vector, neighbors []int) error {
	if len(wRow) <= id {
		return fmt.Errorf("core: node %d weight row has length %d", id, len(wRow))
	}
	var rowSum float64
	for _, w := range wRow {
		rowSum += w
	}
	if math.Abs(rowSum-1) > 1e-6 {
		return fmt.Errorf("core: node %d weight row sums to %g, want 1", id, rowSum)
	}
	for _, j := range neighbors {
		if j < 0 || j >= len(wRow) {
			return fmt.Errorf("core: node %d neighbor %d outside weight row of length %d", id, j, len(wRow))
		}
		if j == id {
			return fmt.Errorf("core: node %d lists itself as a neighbor", id)
		}
	}
	return nil
}

// NewEngine validates cfg and builds the engine, preallocating all
// per-round scratch.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	p := cfg.Model.NumParams()
	if len(cfg.Init) != p {
		return nil, fmt.Errorf("core: node %d init has %d params, model needs %d", cfg.ID, len(cfg.Init), p)
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("core: node %d requires positive Alpha", cfg.ID)
	}
	if err := validateTopology(cfg.ID, cfg.WRow, cfg.Neighbors); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:      cfg,
		wRow:     cfg.WRow.Clone(),
		x:        cfg.Init.Clone(),
		xPrev:    linalg.NewVector(p),
		grad:     linalg.NewVector(p),
		gPrev:    linalg.NewVector(p),
		mix:      linalg.NewVector(p),
		next:     linalg.NewVector(p),
		lastSent: cfg.Init.Clone(),
	}
	e.upd.Indices = make([]int, 0, p)
	e.upd.Values = make([]float64, 0, p)
	e.setNeighbors(cfg.Neighbors, func(int) (linalg.Vector, linalg.Vector) {
		// All nodes share the same initial parameters, so the initial
		// neighbor view is exact without any round-0 full exchange.
		return cfg.Init.Clone(), cfg.Init.Clone()
	})
	if cfg.Policy == SendSelected {
		apeCfg := cfg.APE
		apeCfg.Alpha = cfg.Alpha
		ctrl, err := NewAPEController(apeCfg, meanAbs(cfg.Init))
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", cfg.ID, err)
		}
		e.ape = ctrl
	}
	e.met = newEngineMetrics(cfg.Obs, cfg.ID)
	e.met.modelParams.Set(float64(p))
	if e.ape != nil {
		e.publishAPE()
	}
	return e, nil
}

// setNeighbors rebuilds the slot arrays for the given neighbor set
// (sorted copy) using seed to produce each slot's (cur, prev) views.
// e.wRow must already hold the row the slots index into.
func (e *Engine) setNeighbors(neighbors []int, seed func(j int) (cur, prev linalg.Vector)) {
	ids := append([]int(nil), neighbors...)
	sort.Ints(ids)
	e.nbrIDs = ids
	e.nbrIdx = make(map[int]int, len(ids))
	e.nbrW = make([]float64, len(ids))
	e.nbrCur = make([]linalg.Vector, len(ids))
	e.nbrPrev = make([]linalg.Vector, len(ids))
	for s, j := range ids {
		e.nbrIdx[j] = s
		e.nbrW[s] = e.wRow[j]
		e.nbrCur[s], e.nbrPrev[s] = seed(j)
	}
	e.cfg.Neighbors = ids
}

// Reconfigure swaps the engine's mixing row and neighbor set in place —
// the node-side half of an epoch switch. Views of retained neighbors
// survive (their parameters did not change just because the topology
// did); views of new neighbors are seeded with the node's own iterate and
// corrected by the full-parameter exchange the switch forces: Reconfigure
// restarts the EXTRA recursion (stale correction history must not span a
// topology change) and schedules a full send, and every reconfiguring
// peer does the same, so the first post-switch Integrate replaces the
// seeded views with exact ones before they are ever mixed.
//
// The parameter dimensionality is fixed by the model, so lastSent, the
// APE controller, and every scratch vector keep their size across a
// reconfiguration; only the neighbor slots are rebuilt.
//
// Like the rest of the engine it must be called from the training-loop
// goroutine, between rounds.
func (e *Engine) Reconfigure(wRow linalg.Vector, neighbors []int) error {
	if err := validateTopology(e.cfg.ID, wRow, neighbors); err != nil {
		return fmt.Errorf("core: node %d reconfigure: %w", e.cfg.ID, err)
	}
	oldIdx, oldCur, oldPrev := e.nbrIdx, e.nbrCur, e.nbrPrev
	e.wRow = wRow.Clone()
	e.setNeighbors(neighbors, func(j int) (linalg.Vector, linalg.Vector) {
		if s, ok := oldIdx[j]; ok {
			return oldCur[s], oldPrev[s]
		}
		return e.x.Clone(), e.x.Clone()
	})
	e.RestartNow()
	e.forceFull = true
	return nil
}

// Neighbors returns a copy of the current neighbor id set.
func (e *Engine) Neighbors() []int {
	return append([]int(nil), e.nbrIDs...)
}

// RestartNow restarts the EXTRA two-term recursion immediately: the next
// Step applies the k=0 equation from the current iterate, discarding the
// accumulated correction history. RestartEvery is this, on a timer;
// explicit callers use it when the history is known to be invalid (e.g.
// the topology or weight matrix just changed).
func (e *Engine) RestartNow() { e.restartRecursion() }

// publishAPE mirrors the APE controller's state into the gauges.
//
//snap:alloc-free
func (e *Engine) publishAPE() {
	e.met.apeStage.Set(float64(e.ape.Stage()))
	e.met.apeThreshold.Set(e.ape.Threshold())
	e.met.apeSendThresh.Set(e.ape.SendThreshold())
}

// ID returns the node id.
//
//snap:alloc-free
func (e *Engine) ID() int { return e.cfg.ID }

// Params returns a copy of the current iterate. The engine recycles its
// internal buffers every Step, so handing out the live vector would let
// a caller's snapshot silently mutate; callers on the hot path that can
// honor the read-only contract use the iterate Step returns instead.
func (e *Engine) Params() linalg.Vector { return e.x.Clone() }

// ParamsInto copies the current iterate into dst, which must already have
// NumParams entries, and returns dst. It is the allocation-free companion
// to Params for callers that snapshot the model every round (the serving
// feed, periodic checkpoints): the caller owns dst outright, so later
// Steps never mutate it. Like the linalg kernels it panics on a length
// mismatch rather than resizing.
//
//snap:alloc-free
func (e *Engine) ParamsInto(dst linalg.Vector) linalg.Vector {
	if len(dst) != len(e.x) {
		panic(fmt.Sprintf("core: ParamsInto dst has %d entries, want %d", len(dst), len(e.x)))
	}
	copy(dst, e.x)
	return dst
}

// Restarts returns how many APE stage transitions have restarted the
// EXTRA recursion.
//
//snap:alloc-free
func (e *Engine) Restarts() int { return e.restarts }

// LocalLoss evaluates the node's objective f_i at its current iterate over
// the full local partition.
func (e *Engine) LocalLoss() float64 {
	return e.cfg.Model.Loss(e.x, e.cfg.Data.Samples)
}

// BuildUpdate produces the frame this node broadcasts for the given round,
// returning the update (before encoding) so callers can account sizes.
// Per SendPolicy it contains all parameters, all changed parameters, or
// only those whose accumulated change exceeds the APE threshold.
//
// The returned *codec.Update is engine-owned scratch: it is valid until
// the next BuildUpdate call and must not be retained or mutated.
//
//snap:alloc-free
//snap:returns-borrowed
func (e *Engine) BuildUpdate(round int) (*codec.Update, error) {
	if len(e.lastSent) != len(e.x) {
		return nil, fmt.Errorf("core: node %d sent-baseline has %d params, iterate has %d",
			e.cfg.ID, len(e.lastSent), len(e.x))
	}
	policy := e.cfg.Policy
	fullReason := "" // why the policy was elevated to SendAll, if it was
	if e.cfg.RefreshEvery > 0 && round > 0 && round%e.cfg.RefreshEvery == 0 {
		policy, fullReason = SendAll, "refresh_every"
	}
	if e.cfg.FullSendRound0 && round == 0 {
		policy, fullReason = SendAll, "round0"
	}
	if e.forceFull {
		policy, fullReason = SendAll, "reconnect"
		e.forceFull = false
	}
	u := &e.upd
	switch policy {
	case SendAll:
		u.Sender, u.Round, u.NumParams = e.cfg.ID, round, len(e.x)
		u.Indices = u.Indices[:0]
		u.Values = u.Values[:0]
		for i, v := range e.x {
			u.Indices = append(u.Indices, i)
			u.Values = append(u.Values, v)
		}
	case SendChanged:
		if err := codec.DiffInto(u, e.cfg.ID, round, e.lastSent, e.x, 0); err != nil {
			return nil, err
		}
	case SendSelected:
		if err := codec.DiffInto(u, e.cfg.ID, round, e.lastSent, e.x, e.ape.SendThreshold()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: node %d has unknown send policy %d", e.cfg.ID, int(e.cfg.Policy))
	}
	e.markSent(u)

	// Selected-vs-withheld accounting: the per-round selection gauge and
	// cumulative counters are the live form of the paper's Fig. 4b
	// (bytes-per-iteration savings).
	e.met.roundSelected.Set(float64(len(u.Indices)))
	e.met.paramsSent.Add(int64(len(u.Indices)))
	e.met.paramsWithheld.Add(int64(len(e.x) - len(u.Indices)))
	if fullReason != "" && e.cfg.Policy != SendAll {
		e.met.fullSends.Inc()
		//snaplint:ignore allocfree full-send lifecycle event; fires once per RefreshEvery rounds, not per round
		e.emitRefresh(round, fullReason)
	}
	return u, nil
}

// emitRefresh records a policy-elevation lifecycle event. It allocates
// (event fields ride a map), which is why BuildUpdate only calls it on
// the rare full-send rounds.
func (e *Engine) emitRefresh(round int, reason string) {
	if e.cfg.Obs != nil {
		e.cfg.Obs.Emit(e.cfg.ID, obs.EvRefresh, round, -1, map[string]any{"reason": reason})
	}
}

// RequestFullSend forces the next BuildUpdate to transmit the complete
// parameter vector regardless of policy. PeerNode calls this after a
// neighbor link reconnects: a dropped or reset connection leaves the
// neighbor holding stale values the selective-diff protocol would never
// retransmit, and EXTRA's accumulated correction term turns that silent
// staleness into a permanent bias. Not safe for concurrent use with
// BuildUpdate (call from the training-loop goroutine).
//
//snap:alloc-free
func (e *Engine) RequestFullSend() { e.forceFull = true }

// markSent records what the receivers will hold for us after applying u.
// On a float32 wire the receivers reconstruct the rounded value, so
// that — not the full-precision local value — is the baseline future
// selective diffs must be computed against; recording the unrounded
// value would leave a permanent sub-rounding discrepancy the diff
// protocol could never see or repair.
//
//snap:alloc-free
func (e *Engine) markSent(u *codec.Update) {
	if e.cfg.Float32Wire {
		for i, idx := range u.Indices {
			e.lastSent[idx] = float64(float32(u.Values[i]))
		}
		return
	}
	for i, idx := range u.Indices {
		e.lastSent[idx] = u.Values[i]
	}
}

// BeginIntegrate opens a round's ingest window: every neighbor slot's
// current view is rotated down into its x^k view, after which
// IngestFrame may be called once per arriving neighbor update. It is
// the first half of Integrate, split out so a pipelined round can
// rotate the views before the streaming gather starts delivering
// frames. Must precede the round's first IngestFrame.
//
//snap:alloc-free
func (e *Engine) BeginIntegrate() {
	for s := range e.nbrIDs {
		copy(e.nbrPrev[s], e.nbrCur[s])
	}
}

// IngestFrame applies one neighbor's decoded update to that neighbor's
// current view, decoding into the slot as the frame lands rather than
// waiting for the whole round's batch. Each sender owns a dedicated
// slot and StepMix walks the slots in sorted-id order, so the iterate
// is bitwise-independent of frame arrival order. Call between
// BeginIntegrate and StepMix; u is borrowed for the duration of the
// call only.
//
// Missing neighbors (withheld parameters, stragglers, failed links)
// simply keep their last values — the paper's staleness semantics.
//
//snap:alloc-free
func (e *Engine) IngestFrame(u *codec.Update) error {
	slot, ok := e.nbrIdx[u.Sender]
	if !ok {
		return fmt.Errorf("core: node %d received update from non-neighbor %d", e.cfg.ID, u.Sender)
	}
	if err := codec.Apply(e.nbrCur[slot], u); err != nil {
		return fmt.Errorf("core: node %d integrating from %d: %w", e.cfg.ID, u.Sender, err)
	}
	return nil
}

// Integrate applies the updates received from neighbors this round: the
// batch form of BeginIntegrate + IngestFrame, kept for sequential
// callers.
//
//snap:alloc-free
func (e *Engine) Integrate(updates []*codec.Update) error {
	e.BeginIntegrate()
	for _, u := range updates {
		if err := e.IngestFrame(u); err != nil {
			return err
		}
	}
	return nil
}

// ComputeGradient evaluates ∇f_i(x^{k+1}) into the engine's gradient
// scratch for round (which selects the mini-batch when BatchSize > 0).
// It reads only the iterate and the local partition and writes only the
// gradient scratch — state disjoint from BeginIntegrate/IngestFrame and
// from BuildUpdate (which read/write the neighbor views and the sent
// baseline) — so a pipelined round may run it on another goroutine
// concurrently with build, broadcast, and the streaming gather. That
// disjointness is the whole overlap invariant: see DESIGN.md §14. It
// must still be ordered (happens-before, e.g. via a channel) with
// StepMix and with the next round's ComputeGradient.
//
//snap:alloc-free
func (e *Engine) ComputeGradient(round int) {
	start := time.Now()
	batch := e.cfg.Data.Samples
	if bs := e.cfg.BatchSize; bs > 0 && bs < len(batch) {
		e.batchBuf = e.cfg.Data.BatchInto(e.batchBuf, round, bs)
		batch = e.batchBuf
	}
	model.GradientTo(e.cfg.Model, e.grad, e.x, batch, &e.gradSc, e.cfg.GradWorkers)
	end := time.Now()
	e.gradSecs = end.Sub(start).Seconds()
	e.cfg.Trace.Span(round, trace.SpanGrad, start, end)
}

// StepMix completes the EXTRA iteration from the gradient ComputeGradient
// left in scratch and the current neighbor views, returning the new
// iterate. It is the barrier side of the pipelined round: call it only
// after both the round's ComputeGradient and its last IngestFrame.
//
// The returned vector is the engine's live iterate: read-only, valid
// until the next StepMix. Use Params for a stable copy.
//
//snap:alloc-free
//snap:returns-borrowed
func (e *Engine) StepMix(round int) linalg.Vector {
	start := time.Now()
	// mix = Σ_j w_ij·x_j^{k+1} (including the self term). The fused kernel
	// accumulates neighbors in slot (= sorted id) order, bitwise-matching
	// the sequential Scale-then-AXPY loop it replaced.
	linalg.MixTo(e.mix, e.wRow[e.cfg.ID], e.x, e.nbrW, e.nbrCur)

	if e.k == 0 {
		// x^1 = W·x^0 − α∇f(x^0).
		linalg.AXPYTo(e.next, e.mix, -e.cfg.Alpha, e.grad)
	} else {
		// x^{k+2} = x^{k+1} + W·x^{k+1} − W̃·x^k − α(∇f(x^{k+1}) − ∇f(x^k))
		// with W̃ = (W+I)/2, so the W̃ row is w_ij/2 off-diagonal and
		// (w_ii+1)/2 on the diagonal.
		linalg.AddTo(e.next, e.x, e.mix)
		e.next.AXPYInPlace(-(e.wRow[e.cfg.ID]+1)/2, e.xPrev)
		for s := range e.nbrIDs {
			e.next.AXPYInPlace(-e.nbrW[s]/2, e.nbrPrev[s])
		}
		e.next.AXPYInPlace(-e.cfg.Alpha, e.grad)
		e.next.AXPYInPlace(e.cfg.Alpha, e.gPrev)
	}

	e.cfg.Trace.Span(round, trace.SpanMix, start, time.Now())

	// Rotate the scratch vectors instead of allocating: the old x becomes
	// x^k, the freshly built iterate becomes x^{k+1}, and the old x^k
	// buffer is recycled as the next round's construction space. The
	// gradient pair swaps the same way.
	e.xPrev, e.x, e.next = e.x, e.next, e.xPrev
	e.grad, e.gPrev = e.gPrev, e.grad
	e.k++
	// Compute seconds stay CPU time (gradient + mixing), not wall time:
	// under pipelining the two halves are separated by the gather window,
	// and counting that wait would double-book it against MGatherWait.
	e.met.compute.Observe(e.gradSecs + time.Since(start).Seconds())

	if e.ape != nil && e.ape.AfterIteration() {
		// Stage transition: publish the new schedule point and, when the
		// literal Algorithm-1 reading is requested, restart the recursion
		// from the current solution.
		e.publishAPE()
		//snaplint:ignore allocfree APE stage-transition event; fires once per stage, not per round
		e.emitAPEStage(round)
		if e.cfg.APE.RestartRecursion {
			e.restartRecursion()
		}
	}
	if e.cfg.RestartEvery > 0 && round > 0 && round%e.cfg.RestartEvery == 0 {
		e.restartRecursion()
	}
	return e.x
}

// Step advances the EXTRA recursion one iteration: the sequential form
// of ComputeGradient + StepMix, kept for callers without a pipelined
// loop. round selects the gradient mini-batch when BatchSize > 0.
//
// The returned vector is the engine's live iterate: read-only, valid
// until the next Step. Use Params for a stable copy.
//
//snap:alloc-free
//snap:returns-borrowed
func (e *Engine) Step(round int) linalg.Vector {
	e.ComputeGradient(round)
	return e.StepMix(round)
}

// emitAPEStage records a stage-transition lifecycle event. It allocates
// (event fields ride a map), which is why Step only calls it on the
// rare stage boundaries.
func (e *Engine) emitAPEStage(round int) {
	if e.cfg.Obs != nil {
		e.cfg.Obs.Emit(e.cfg.ID, obs.EvAPEStage, round, -1, map[string]any{
			"stage":          e.ape.Stage(),
			"threshold":      e.ape.Threshold(),
			"send_threshold": e.ape.SendThreshold(),
		})
	}
}

// restartRecursion resets the EXTRA two-term recursion so the next Step
// applies the k=0 equation from the current iterate. The xPrev/gPrev
// buffers keep their storage (the k=0 step never reads them and
// overwrites both via rotation).
//
//snap:alloc-free
func (e *Engine) restartRecursion() {
	e.k = 0
	e.restarts++
	e.met.restarts.Inc()
}

// APEStage returns the APE controller's stage, threshold and send
// threshold for observability; it returns zeros when the policy has no
// controller.
//
//snap:alloc-free
func (e *Engine) APEStage() (stage int, threshold, sendThreshold float64) {
	if e.ape == nil {
		return 0, 0, 0
	}
	return e.ape.Stage(), e.ape.Threshold(), e.ape.SendThreshold()
}

func meanAbs(v linalg.Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s / float64(len(v))
}
