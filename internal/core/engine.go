package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
)

// SendPolicy selects what an engine transmits each round.
type SendPolicy int

const (
	// SendSelected is full SNAP: withhold parameters whose accumulated
	// change is below the APE controller's threshold.
	SendSelected SendPolicy = iota
	// SendChanged is SNAP-0: send every parameter that changed at all
	// (APE threshold pinned to zero).
	SendChanged
	// SendAll is SNO (select-neighbors-only): transmit the entire
	// parameter vector every round.
	SendAll
)

// String implements fmt.Stringer.
func (p SendPolicy) String() string {
	switch p {
	case SendSelected:
		return "snap"
	case SendChanged:
		return "snap-0"
	case SendAll:
		return "sno"
	default:
		return fmt.Sprintf("SendPolicy(%d)", int(p))
	}
}

// EngineConfig configures one node's EXTRA engine.
type EngineConfig struct {
	// ID is this node's index.
	ID int
	// Model is the shared model architecture.
	Model model.Model
	// Data is this node's local training partition.
	Data *dataset.Dataset
	// Alpha is the EXTRA step size α.
	Alpha float64
	// WRow is row ID of the weight matrix W: WRow[j] is w_{ID,j}. Only the
	// diagonal and neighbor entries may be nonzero.
	WRow linalg.Vector
	// Neighbors lists the node ids with nonzero off-diagonal weight.
	Neighbors []int
	// BatchSize limits the per-iteration gradient batch (0 = full local
	// data, the deterministic EXTRA setting).
	BatchSize int
	// Policy selects the transmission scheme.
	Policy SendPolicy
	// APE configures the threshold schedule (used when Policy ==
	// SendSelected).
	APE APEConfig
	// RefreshEvery, when positive, makes the node broadcast its complete
	// parameter vector every RefreshEvery rounds regardless of Policy.
	// This is the RIP-style periodic full advertisement the paper's
	// synchronization model alludes to, and it is what makes selective
	// transmission safe over lossy links: a dropped frame leaves the
	// receiver with stale values that the sender (which cannot observe
	// the drop) would otherwise never retransmit, freezing the cluster
	// into a permanently disagreeing fixed point.
	RefreshEvery int
	// FullSendRound0 forces a complete parameter broadcast in round 0.
	// Required whenever nodes do not share identical initial parameters:
	// the selective-diff protocol reconstructs neighbor state against a
	// baseline, and the only baseline a fresh receiver has is its own
	// init.
	FullSendRound0 bool
	// RestartEvery, when positive, restarts the EXTRA two-term recursion
	// every that many rounds. Needed alongside RefreshEvery on lossy
	// links: EXTRA's optimality is carried by its accumulated correction
	// term Σ(W̃−W)x^t, and rounds computed on stale neighbor views
	// corrupt that history permanently — the iteration then converges to
	// a consensual but non-optimal point. A restart discards the
	// corrupted history and re-converges from the current iterate (EXTRA
	// converges from any initial point), bounding the staleness bias.
	RestartEvery int
	// Init is the node's initial parameter vector (shared by all nodes in
	// the paper's setup). It is cloned, not aliased.
	Init linalg.Vector
	// Obs, when set, receives engine metrics (compute time, selected
	// parameter counts, APE stage gauges) and APE/refresh lifecycle
	// events. Engine series are labeled node="<ID>" so a simulator
	// sharing one registry across engines keeps them distinct. Nil
	// disables observation at negligible cost.
	Obs *obs.Observer
}

// Engine is one edge server's training state: the EXTRA two-term recursion
// over its own parameters plus its view of each neighbor's parameters,
// fed by selective updates.
type Engine struct {
	cfg  EngineConfig
	wRow linalg.Vector

	x     linalg.Vector // x^{k+1}, the current iterate
	xPrev linalg.Vector // x^k
	gPrev linalg.Vector // ∇f_i(x^k)
	k     int           // EXTRA iteration counter (reset on APE restart)

	neighborCur  map[int]linalg.Vector // view of x_j^{k+1}
	neighborPrev map[int]linalg.Vector // view of x_j^k

	lastSent linalg.Vector // values the neighbors currently hold for us
	ape      *APEController

	// forceFull makes the next BuildUpdate transmit the complete
	// parameter vector regardless of policy — set after a neighbor
	// reconnects, whose view of us is stale in ways the selective-diff
	// protocol cannot observe.
	forceFull bool

	restarts int

	met engineMetrics
}

// engineMetrics caches this engine's metric handles (detached when
// unobserved), bound once at construction.
type engineMetrics struct {
	compute        *obs.Histogram
	paramsSent     *obs.Counter
	paramsWithheld *obs.Counter
	fullSends      *obs.Counter
	restarts       *obs.Counter
	roundSelected  *obs.Gauge
	modelParams    *obs.Gauge
	apeStage       *obs.Gauge
	apeThreshold   *obs.Gauge
	apeSendThresh  *obs.Gauge
}

func newEngineMetrics(o *obs.Observer, nodeID int) engineMetrics {
	node := strconv.Itoa(nodeID)
	return engineMetrics{
		compute:        o.Histogram(obs.Label(obs.MComputeSeconds, obs.LNode, node), obs.TimeBuckets),
		paramsSent:     o.Counter(obs.Label(obs.MParamsSent, obs.LNode, node)),
		paramsWithheld: o.Counter(obs.Label(obs.MParamsWithheld, obs.LNode, node)),
		fullSends:      o.Counter(obs.Label(obs.MFullSends, obs.LNode, node)),
		restarts:       o.Counter(obs.Label(obs.MExtraRestarts, obs.LNode, node)),
		roundSelected:  o.Gauge(obs.Label(obs.MRoundSelected, obs.LNode, node)),
		modelParams:    o.Gauge(obs.Label(obs.MModelParams, obs.LNode, node)),
		apeStage:       o.Gauge(obs.Label(obs.MAPEStage, obs.LNode, node)),
		apeThreshold:   o.Gauge(obs.Label(obs.MAPEThreshold, obs.LNode, node)),
		apeSendThresh:  o.Gauge(obs.Label(obs.MAPESendThreshold, obs.LNode, node)),
	}
}

// NewEngine validates cfg and builds the engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	p := cfg.Model.NumParams()
	if len(cfg.Init) != p {
		return nil, fmt.Errorf("core: node %d init has %d params, model needs %d", cfg.ID, len(cfg.Init), p)
	}
	if len(cfg.WRow) <= cfg.ID {
		return nil, fmt.Errorf("core: node %d weight row has length %d", cfg.ID, len(cfg.WRow))
	}
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("core: node %d requires positive Alpha", cfg.ID)
	}
	var rowSum float64
	for _, w := range cfg.WRow {
		rowSum += w
	}
	if math.Abs(rowSum-1) > 1e-6 {
		return nil, fmt.Errorf("core: node %d weight row sums to %g, want 1", cfg.ID, rowSum)
	}
	e := &Engine{
		cfg:          cfg,
		wRow:         cfg.WRow.Clone(),
		x:            cfg.Init.Clone(),
		lastSent:     cfg.Init.Clone(),
		neighborCur:  make(map[int]linalg.Vector, len(cfg.Neighbors)),
		neighborPrev: make(map[int]linalg.Vector, len(cfg.Neighbors)),
	}
	for _, j := range cfg.Neighbors {
		// All nodes share the same initial parameters, so the initial
		// neighbor view is exact without any round-0 full exchange.
		e.neighborCur[j] = cfg.Init.Clone()
		e.neighborPrev[j] = cfg.Init.Clone()
	}
	if cfg.Policy == SendSelected {
		apeCfg := cfg.APE
		apeCfg.Alpha = cfg.Alpha
		ctrl, err := NewAPEController(apeCfg, meanAbs(cfg.Init))
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", cfg.ID, err)
		}
		e.ape = ctrl
	}
	e.met = newEngineMetrics(cfg.Obs, cfg.ID)
	e.met.modelParams.Set(float64(p))
	if e.ape != nil {
		e.publishAPE()
	}
	return e, nil
}

// Reconfigure swaps the engine's mixing row and neighbor set in place —
// the node-side half of an epoch switch. Views of retained neighbors
// survive (their parameters did not change just because the topology
// did); views of new neighbors are seeded with the node's own iterate and
// corrected by the full-parameter exchange the switch forces: Reconfigure
// restarts the EXTRA recursion (stale correction history must not span a
// topology change) and schedules a full send, and every reconfiguring
// peer does the same, so the first post-switch Integrate replaces the
// seeded views with exact ones before they are ever mixed.
//
// Like the rest of the engine it must be called from the training-loop
// goroutine, between rounds.
func (e *Engine) Reconfigure(wRow linalg.Vector, neighbors []int) error {
	if len(wRow) <= e.cfg.ID {
		return fmt.Errorf("core: node %d reconfigure: weight row has length %d", e.cfg.ID, len(wRow))
	}
	var rowSum float64
	for _, w := range wRow {
		rowSum += w
	}
	if math.Abs(rowSum-1) > 1e-6 {
		return fmt.Errorf("core: node %d reconfigure: weight row sums to %g, want 1", e.cfg.ID, rowSum)
	}
	nbrs := append([]int(nil), neighbors...)
	sort.Ints(nbrs)
	cur := make(map[int]linalg.Vector, len(nbrs))
	prev := make(map[int]linalg.Vector, len(nbrs))
	for _, j := range nbrs {
		if old, ok := e.neighborCur[j]; ok {
			cur[j] = old
			prev[j] = e.neighborPrev[j]
		} else {
			cur[j] = e.x.Clone()
			prev[j] = e.x.Clone()
		}
	}
	e.neighborCur, e.neighborPrev = cur, prev
	e.wRow = wRow.Clone()
	e.cfg.Neighbors = nbrs
	e.RestartNow()
	e.forceFull = true
	return nil
}

// Neighbors returns a copy of the current neighbor id set.
func (e *Engine) Neighbors() []int {
	return append([]int(nil), e.cfg.Neighbors...)
}

// RestartNow restarts the EXTRA two-term recursion immediately: the next
// Step applies the k=0 equation from the current iterate, discarding the
// accumulated correction history. RestartEvery is this, on a timer;
// explicit callers use it when the history is known to be invalid (e.g.
// the topology or weight matrix just changed).
func (e *Engine) RestartNow() { e.restartRecursion() }

// publishAPE mirrors the APE controller's state into the gauges.
func (e *Engine) publishAPE() {
	e.met.apeStage.Set(float64(e.ape.Stage()))
	e.met.apeThreshold.Set(e.ape.Threshold())
	e.met.apeSendThresh.Set(e.ape.SendThreshold())
}

// ID returns the node id.
func (e *Engine) ID() int { return e.cfg.ID }

// Params returns the current iterate (not a copy; callers must not
// modify it).
func (e *Engine) Params() linalg.Vector { return e.x }

// Restarts returns how many APE stage transitions have restarted the
// EXTRA recursion.
func (e *Engine) Restarts() int { return e.restarts }

// LocalLoss evaluates the node's objective f_i at its current iterate over
// the full local partition.
func (e *Engine) LocalLoss() float64 {
	return e.cfg.Model.Loss(e.x, e.cfg.Data.Samples)
}

// BuildUpdate produces the frame this node broadcasts for the given round,
// returning the update (before encoding) so callers can account sizes.
// Per SendPolicy it contains all parameters, all changed parameters, or
// only those whose accumulated change exceeds the APE threshold.
func (e *Engine) BuildUpdate(round int) (*codec.Update, error) {
	policy := e.cfg.Policy
	fullReason := "" // why the policy was elevated to SendAll, if it was
	if e.cfg.RefreshEvery > 0 && round > 0 && round%e.cfg.RefreshEvery == 0 {
		policy, fullReason = SendAll, "refresh_every"
	}
	if e.cfg.FullSendRound0 && round == 0 {
		policy, fullReason = SendAll, "round0"
	}
	if e.forceFull {
		policy, fullReason = SendAll, "reconnect"
		e.forceFull = false
	}
	var u *codec.Update
	var err error
	switch policy {
	case SendAll:
		u = &codec.Update{Sender: e.cfg.ID, Round: round, NumParams: len(e.x)}
		u.Indices = make([]int, len(e.x))
		u.Values = make([]float64, len(e.x))
		for i, v := range e.x {
			u.Indices[i] = i
			u.Values[i] = v
		}
		copy(e.lastSent, e.x)
	case SendChanged:
		u, err = codec.Diff(e.cfg.ID, round, e.lastSent, e.x, 0)
		if err != nil {
			return nil, err
		}
		e.markSent(u)
	case SendSelected:
		u, err = codec.Diff(e.cfg.ID, round, e.lastSent, e.x, e.ape.SendThreshold())
		if err != nil {
			return nil, err
		}
		e.markSent(u)
	default:
		return nil, fmt.Errorf("core: node %d has unknown send policy %d", e.cfg.ID, int(e.cfg.Policy))
	}

	// Selected-vs-withheld accounting: the per-round selection gauge and
	// cumulative counters are the live form of the paper's Fig. 4b
	// (bytes-per-iteration savings).
	e.met.roundSelected.Set(float64(len(u.Indices)))
	e.met.paramsSent.Add(int64(len(u.Indices)))
	e.met.paramsWithheld.Add(int64(len(e.x) - len(u.Indices)))
	if fullReason != "" && e.cfg.Policy != SendAll {
		e.met.fullSends.Inc()
		e.cfg.Obs.Emit(e.cfg.ID, obs.EvRefresh, round, -1, map[string]any{"reason": fullReason})
	}
	return u, nil
}

// RequestFullSend forces the next BuildUpdate to transmit the complete
// parameter vector regardless of policy. PeerNode calls this after a
// neighbor link reconnects: a dropped or reset connection leaves the
// neighbor holding stale values the selective-diff protocol would never
// retransmit, and EXTRA's accumulated correction term turns that silent
// staleness into a permanent bias. Not safe for concurrent use with
// BuildUpdate (call from the training-loop goroutine).
func (e *Engine) RequestFullSend() { e.forceFull = true }

func (e *Engine) markSent(u *codec.Update) {
	for i, idx := range u.Indices {
		e.lastSent[idx] = u.Values[i]
	}
}

// Integrate applies the updates received from neighbors this round. The
// previous neighbor view becomes the x^k view; missing neighbors (withheld
// parameters, stragglers, failed links) simply keep their last values —
// the paper's staleness semantics.
func (e *Engine) Integrate(updates []*codec.Update) error {
	for j, cur := range e.neighborCur {
		copy(e.neighborPrev[j], cur)
	}
	for _, u := range updates {
		view, ok := e.neighborCur[u.Sender]
		if !ok {
			return fmt.Errorf("core: node %d received update from non-neighbor %d", e.cfg.ID, u.Sender)
		}
		if err := codec.Apply(view, u); err != nil {
			return fmt.Errorf("core: node %d integrating from %d: %w", e.cfg.ID, u.Sender, err)
		}
	}
	return nil
}

// Step advances the EXTRA recursion one iteration using the current
// neighbor views, returning the new iterate. round selects the gradient
// mini-batch when BatchSize > 0.
func (e *Engine) Step(round int) linalg.Vector {
	start := time.Now()
	batch := e.cfg.Data.Samples
	if e.cfg.BatchSize > 0 {
		batch = e.cfg.Data.Batch(round, e.cfg.BatchSize)
	}
	grad := e.cfg.Model.Gradient(e.x, batch)

	// mix = Σ_j w_ij·x_j^{k+1} (including the self term). Neighbors are
	// visited in sorted order so float summation is deterministic.
	mix := e.x.Scale(e.wRow[e.cfg.ID])
	for _, j := range e.cfg.Neighbors {
		mix.AXPYInPlace(e.wRow[j], e.neighborCur[j])
	}

	var next linalg.Vector
	if e.k == 0 {
		// x^1 = W·x^0 − α∇f(x^0).
		next = mix.AXPYInPlace(-e.cfg.Alpha, grad)
	} else {
		// x^{k+2} = x^{k+1} + W·x^{k+1} − W̃·x^k − α(∇f(x^{k+1}) − ∇f(x^k))
		// with W̃ = (W+I)/2, so the W̃ row is w_ij/2 off-diagonal and
		// (w_ii+1)/2 on the diagonal.
		next = e.x.Add(mix)
		next.AXPYInPlace(-(e.wRow[e.cfg.ID]+1)/2, e.xPrev)
		for _, j := range e.cfg.Neighbors {
			next.AXPYInPlace(-e.wRow[j]/2, e.neighborPrev[j])
		}
		next.AXPYInPlace(-e.cfg.Alpha, grad)
		next.AXPYInPlace(e.cfg.Alpha, e.gPrev)
	}

	e.xPrev = e.x
	e.gPrev = grad
	e.x = next
	e.k++
	e.met.compute.Observe(time.Since(start).Seconds())

	if e.ape != nil && e.ape.AfterIteration() {
		// Stage transition: publish the new schedule point and, when the
		// literal Algorithm-1 reading is requested, restart the recursion
		// from the current solution.
		e.publishAPE()
		e.cfg.Obs.Emit(e.cfg.ID, obs.EvAPEStage, round, -1, map[string]any{
			"stage":          e.ape.Stage(),
			"threshold":      e.ape.Threshold(),
			"send_threshold": e.ape.SendThreshold(),
		})
		if e.cfg.APE.RestartRecursion {
			e.restartRecursion()
		}
	}
	if e.cfg.RestartEvery > 0 && round > 0 && round%e.cfg.RestartEvery == 0 {
		e.restartRecursion()
	}
	return e.x
}

// restartRecursion resets the EXTRA two-term recursion so the next Step
// applies the k=0 equation from the current iterate.
func (e *Engine) restartRecursion() {
	e.k = 0
	e.xPrev = nil
	e.gPrev = nil
	e.restarts++
	e.met.restarts.Inc()
}

// APEStage returns the APE controller's stage, threshold and send
// threshold for observability; it returns zeros when the policy has no
// controller.
func (e *Engine) APEStage() (stage int, threshold, sendThreshold float64) {
	if e.ape == nil {
		return 0, 0, 0
	}
	return e.ape.Stage(), e.ape.Threshold(), e.ape.SendThreshold()
}

func meanAbs(v linalg.Vector) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s / float64(len(v))
}
