package core

import (
	"math"
	"testing"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

// TestParamsReturnsClone guards the snapshot contract: Params must hand
// back a copy, because the engine recycles its iterate buffer every Step.
// The original bug returned the live vector, so a caller's "snapshot"
// silently tracked (and could corrupt) the optimization state.
func TestParamsReturnsClone(t *testing.T) {
	eng := newTestEngine(t, SendChanged)
	eng.Step(0)

	snap := eng.Params()
	for i := range snap {
		if math.Float64bits(snap[i]) != math.Float64bits(eng.x[i]) {
			t.Fatalf("Params()[%d] = %v, want iterate value %v", i, snap[i], eng.x[i])
		}
	}

	// Mutating the snapshot must not reach the engine.
	before := eng.x.Clone()
	for i := range snap {
		snap[i] = 1e9
	}
	for i := range before {
		if math.Float64bits(eng.x[i]) != math.Float64bits(before[i]) {
			t.Fatalf("mutating Params() result changed engine iterate at %d", i)
		}
	}

	// Stepping the engine must not move an earlier snapshot.
	snap2 := eng.Params()
	want := snap2.Clone()
	eng.Step(1)
	for i := range want {
		if math.Float64bits(snap2[i]) != math.Float64bits(want[i]) {
			t.Fatalf("Step mutated an earlier Params() snapshot at %d", i)
		}
	}
}

// TestParamsIntoNeverAliases guards the copy-into accessor the same way:
// the buffer ParamsInto fills must never alias live engine state, so
// mutating it cannot corrupt the iterate and stepping the engine cannot
// move an earlier snapshot.
func TestParamsIntoNeverAliases(t *testing.T) {
	eng := newTestEngine(t, SendChanged)
	eng.Step(0)

	dst := make([]float64, eng.cfg.Model.NumParams())
	got := eng.ParamsInto(dst)
	if &got[0] != &dst[0] {
		t.Fatal("ParamsInto must return the caller's buffer")
	}
	for i := range dst {
		if math.Float64bits(dst[i]) != math.Float64bits(eng.x[i]) {
			t.Fatalf("ParamsInto[%d] = %v, want iterate value %v", i, dst[i], eng.x[i])
		}
	}

	// Mutating the filled buffer must not reach the engine.
	before := eng.x.Clone()
	for i := range dst {
		dst[i] = 1e9
	}
	for i := range before {
		if math.Float64bits(eng.x[i]) != math.Float64bits(before[i]) {
			t.Fatalf("mutating ParamsInto buffer changed engine iterate at %d", i)
		}
	}

	// Stepping the engine must not move an earlier snapshot: the filled
	// buffer must not alias the recycled scratch either.
	snap := eng.ParamsInto(make([]float64, eng.cfg.Model.NumParams()))
	want := snap.Clone()
	for r := 1; r <= 3; r++ {
		eng.Step(r)
	}
	for i := range want {
		if math.Float64bits(snap[i]) != math.Float64bits(want[i]) {
			t.Fatalf("Step mutated an earlier ParamsInto snapshot at %d", i)
		}
	}

	// Wrong-size buffers panic like the linalg kernels do.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ParamsInto with short dst must panic")
			}
		}()
		eng.ParamsInto(make([]float64, 1))
	}()
}

// TestParamsSnapshotSafeDuringSteps is the race-gated half of the Params
// regression: a snapshot taken before a burst of training steps must be
// readable while the training goroutine runs. With the old live-vector
// Params the reads below race with Step's buffer rotation and the race
// detector fails the test.
func TestParamsSnapshotSafeDuringSteps(t *testing.T) {
	eng := newTestEngine(t, SendChanged)
	snap := eng.Params()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < 50; r++ {
			eng.Step(r)
		}
	}()
	var sum float64
	for i := 0; i < 50; i++ {
		for _, v := range snap {
			sum += v
		}
	}
	<-done
	if math.IsNaN(sum) {
		t.Fatal("snapshot contained NaN")
	}
}

// TestBuildUpdateBaselineLengthGuard covers the SendAll baseline refresh:
// a sent-baseline whose length disagrees with the iterate must be an
// explicit error, not a silent partial copy that desynchronizes every
// future selective diff.
func TestBuildUpdateBaselineLengthGuard(t *testing.T) {
	eng := newTestEngine(t, SendAll)
	eng.lastSent = eng.lastSent[:len(eng.lastSent)-1]
	if _, err := eng.BuildUpdate(0); err == nil {
		t.Fatal("BuildUpdate accepted a sent-baseline shorter than the iterate")
	}

	eng = newTestEngine(t, SendSelected)
	eng.lastSent = append(eng.lastSent, 0)
	if _, err := eng.BuildUpdate(0); err == nil {
		t.Fatal("BuildUpdate accepted a sent-baseline longer than the iterate")
	}
}

// TestFloat32WireBaselineMatchesReceiver regression-tests the float32
// staleness bug: with Float32Wire on, markSent must record the
// float32-rounded values the receiver actually reconstructs. Recording
// full-precision values leaves a permanent sub-rounding gap between the
// sender's baseline and the receiver's view — one the selective diff can
// never observe, so it is never repaired.
func TestFloat32WireBaselineMatchesReceiver(t *testing.T) {
	_, parts := smallPartitions(t, 3, 30, 1)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID:          0,
		Model:       m,
		Data:        parts[0],
		Alpha:       0.05,
		WRow:        w.Row(0),
		Neighbors:   g.Neighbors(0),
		Policy:      SendChanged,
		Float32Wire: true,
		Init:        m.InitParams(7),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The receiver starts from the shared init and applies every decoded
	// lossy frame, exactly as a neighbor engine would.
	receiver := m.InitParams(7)
	for round := 0; round < 5; round++ {
		eng.Step(round)
		u, err := eng.BuildUpdate(round + 1)
		if err != nil {
			t.Fatal(err)
		}
		frame, _, err := codec.EncodeLossy(u)
		if err != nil {
			t.Fatal(err)
		}
		got, err := codec.Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := codec.Apply(receiver, got); err != nil {
			t.Fatal(err)
		}
	}

	// The sender's baseline must be bitwise what the receiver holds.
	for i := range receiver {
		if math.Float64bits(receiver[i]) != math.Float64bits(eng.lastSent[i]) {
			t.Fatalf("param %d: receiver holds %v, sender baseline says %v",
				i, receiver[i], eng.lastSent[i])
		}
	}

	// With threshold 0 the sub-rounding residual |x − float32(x)| keeps
	// those parameters selected, but retransmission must be idempotent: an
	// idle engine's next frame cannot move the receiver at all.
	u, err := eng.BuildUpdate(6)
	if err != nil {
		t.Fatal(err)
	}
	frame, _, err := codec.EncodeLossy(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := codec.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	before := receiver.Clone()
	if err := codec.Apply(receiver, got); err != nil {
		t.Fatal(err)
	}
	for i := range receiver {
		if math.Float64bits(receiver[i]) != math.Float64bits(before[i]) {
			t.Fatalf("idle retransmission moved receiver param %d: %v -> %v", i, before[i], receiver[i])
		}
	}
}

// TestReconfigureKeepsHotPathState checks that an epoch switch leaves the
// preallocated hot-path state coherent: the sent baseline keeps the model
// dimensionality and both BuildUpdate and Step keep working against the
// new topology.
func TestReconfigureKeepsHotPathState(t *testing.T) {
	eng := newTestEngine(t, SendSelected)
	for r := 0; r < 3; r++ {
		eng.Step(r)
		if _, err := eng.BuildUpdate(r); err != nil {
			t.Fatal(err)
		}
	}

	// Shrink the 3-clique to a single edge 0–1.
	if err := eng.Reconfigure([]float64{0.5, 0.5, 0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if got, want := len(eng.lastSent), eng.cfg.Model.NumParams(); got != want {
		t.Fatalf("sent baseline has %d params after reconfigure, want %d", got, want)
	}
	u, err := eng.BuildUpdate(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != eng.cfg.Model.NumParams() {
		t.Fatalf("post-reconfigure send carries %d params, want full vector %d",
			len(u.Indices), eng.cfg.Model.NumParams())
	}
	eng.Step(4)
}

// TestEngineRoundAllocFree is the tier-1 alloc budget for the per-round
// hot path: once warm, Step + BuildUpdate must not allocate at all.
func TestEngineRoundAllocFree(t *testing.T) {
	for _, policy := range []SendPolicy{SendSelected, SendChanged, SendAll} {
		t.Run(policy.String(), func(t *testing.T) {
			eng := newTestEngine(t, policy)
			round := 0
			iterate := func() {
				eng.Step(round)
				if _, err := eng.BuildUpdate(round); err != nil {
					t.Fatal(err)
				}
				round++
			}
			for i := 0; i < 5; i++ {
				iterate() // warm the scratch buffers
			}
			if avg := testing.AllocsPerRun(100, iterate); avg != 0 {
				t.Errorf("steady-state round allocated %v times per run, want 0", avg)
			}
		})
	}
}

// TestClusterDeterministicAcrossGradWorkers checks the parallel gradient
// end to end: a full simulated run must be bitwise-identical for every
// GradWorkers setting, because shard boundaries and the pairwise reduction
// tree depend only on the batch length, never on the worker count.
func TestClusterDeterministicAcrossGradWorkers(t *testing.T) {
	m, parts, test := creditSetup(t, 4, 800, 5)
	topo := graph.Ring(4)
	run := func(workers int) (*Result, []float64) {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, Policy: SendSelected, MaxIterations: 40,
			GradWorkers: workers, Seed: 23, EvalEvery: 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, c.AverageParams()
	}
	serialRes, serialParams := run(1)
	for _, workers := range []int{2, 8} {
		res, params := run(workers)
		if res.Iterations != serialRes.Iterations {
			t.Fatalf("GradWorkers=%d ran %d iterations, serial ran %d",
				workers, res.Iterations, serialRes.Iterations)
		}
		if math.Float64bits(res.TotalCost) != math.Float64bits(serialRes.TotalCost) {
			t.Fatalf("GradWorkers=%d total cost %v, serial %v", workers, res.TotalCost, serialRes.TotalCost)
		}
		for i := range serialParams {
			if math.Float64bits(params[i]) != math.Float64bits(serialParams[i]) {
				t.Fatalf("GradWorkers=%d param %d = %v, serial = %v",
					workers, i, params[i], serialParams[i])
			}
		}
	}
}
