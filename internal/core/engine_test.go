package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/weights"
)

func smallPartitions(t *testing.T, n, samplesPer int, seed int64) (*dataset.Dataset, []*dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: n * samplesPer, Features: 8}, rng)
	parts, err := ds.Partition(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return ds, parts
}

func newTestEngine(t *testing.T, policy SendPolicy) *Engine {
	t.Helper()
	_, parts := smallPartitions(t, 3, 30, 1)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID:        0,
		Model:     m,
		Data:      parts[0],
		Alpha:     0.05,
		WRow:      w.Row(0),
		Neighbors: g.Neighbors(0),
		Policy:    policy,
		Init:      m.InitParams(7),
		// Tracing stays on in every engine test so the alloc budget below
		// proves the instrumented hot path, not an idealized one.
		Trace: trace.New(trace.Config{Node: 0}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNewEngineValidation(t *testing.T) {
	_, parts := smallPartitions(t, 3, 10, 2)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	base := EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.05,
		WRow: w.Row(0), Neighbors: g.Neighbors(0), Init: m.InitParams(1),
	}

	bad := base
	bad.Init = linalg.NewVector(3)
	if _, err := NewEngine(bad); err == nil {
		t.Error("wrong init length accepted")
	}

	bad = base
	bad.Alpha = 0
	if _, err := NewEngine(bad); err == nil {
		t.Error("zero alpha accepted")
	}

	bad = base
	bad.WRow = linalg.Vector{0.3, 0.3, 0.3} // sums to 0.9
	if _, err := NewEngine(bad); err == nil {
		t.Error("non-stochastic weight row accepted")
	}

	bad = base
	bad.WRow = linalg.NewVector(0)
	if _, err := NewEngine(bad); err == nil {
		t.Error("short weight row accepted")
	}
}

func TestBuildUpdatePolicies(t *testing.T) {
	// With shared init and no steps yet, SNAP-0 and SNAP send nothing,
	// SNO sends everything.
	all := newTestEngine(t, SendAll)
	u, err := all.BuildUpdate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != all.cfg.Model.NumParams() {
		t.Errorf("SNO sent %d params, want all %d", len(u.Indices), all.cfg.Model.NumParams())
	}

	changed := newTestEngine(t, SendChanged)
	u, err = changed.BuildUpdate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != 0 {
		t.Errorf("SNAP-0 sent %d params before any step, want 0", len(u.Indices))
	}

	selected := newTestEngine(t, SendSelected)
	u, err = selected.BuildUpdate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != 0 {
		t.Errorf("SNAP sent %d params before any step, want 0", len(u.Indices))
	}
}

func TestBuildUpdateAfterStepRespectsThreshold(t *testing.T) {
	eng := newTestEngine(t, SendSelected)
	eng.Step(0)
	u, err := eng.BuildUpdate(1)
	if err != nil {
		t.Fatal(err)
	}
	// Every transmitted parameter moved more than the send threshold; no
	// untransmitted parameter accumulated beyond it.
	_, _, sendThreshold := eng.APEStage()
	sent := make(map[int]bool)
	for _, idx := range u.Indices {
		sent[idx] = true
	}
	for idx := range eng.x {
		delta := math.Abs(eng.x[idx] - eng.lastSent[idx])
		if sent[idx] && delta != 0 {
			t.Errorf("param %d transmitted but lastSent not updated", idx)
		}
		if !sent[idx] && delta > sendThreshold {
			t.Errorf("param %d withheld with delta %v > threshold %v", idx, delta, sendThreshold)
		}
	}
}

func TestIntegrateRejectsNonNeighbor(t *testing.T) {
	eng := newTestEngine(t, SendAll)
	u := &codec.Update{Sender: 99, NumParams: eng.cfg.Model.NumParams()}
	if err := eng.Integrate([]*codec.Update{u}); err == nil {
		t.Error("update from non-neighbor accepted")
	}
}

func TestIntegrateShiftsPrevView(t *testing.T) {
	eng := newTestEngine(t, SendAll)
	p := eng.cfg.Model.NumParams()
	u := &codec.Update{Sender: 1, NumParams: p, Indices: []int{0}, Values: []float64{42}}
	if err := eng.Integrate([]*codec.Update{u}); err != nil {
		t.Fatal(err)
	}
	slot := eng.nbrIdx[1]
	if eng.nbrCur[slot][0] != 42 {
		t.Errorf("neighbor cur view not updated: %v", eng.nbrCur[slot][0])
	}
	if eng.nbrPrev[slot][0] == 42 {
		t.Error("neighbor prev view advanced to the new value too early")
	}
	// Second integrate: prev must now see 42.
	if err := eng.Integrate(nil); err != nil {
		t.Fatal(err)
	}
	if eng.nbrPrev[slot][0] != 42 {
		t.Errorf("neighbor prev view = %v after shift, want 42", eng.nbrPrev[slot][0])
	}
}

// TestEngineMatchesMatrixEXTRA verifies the distributed per-node recursion
// (paper eq. 8) against the centralized matrix form (paper eq. 6), running
// a 4-node ring with full information exchange.
func TestEngineMatchesMatrixEXTRA(t *testing.T) {
	const (
		n     = 4
		alpha = 0.05
		iters = 12
	)
	_, parts := smallPartitions(t, n, 25, 3)
	g := graph.Ring(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	p := m.NumParams()
	init := m.InitParams(11)

	// Distributed engines with SendAll (full exchange).
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		eng, err := NewEngine(EngineConfig{
			ID: i, Model: m, Data: parts[i], Alpha: alpha,
			WRow: w.Row(i), Neighbors: g.Neighbors(i),
			Policy: SendAll, Init: init,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}

	// Matrix reference: rows of x are per-node iterates.
	grad := func(x *linalg.Matrix) *linalg.Matrix {
		out := linalg.NewMatrix(n, p)
		for i := 0; i < n; i++ {
			gi := m.Gradient(x.Row(i), parts[i].Samples)
			for j := 0; j < p; j++ {
				out.Set(i, j, gi[j])
			}
		}
		return out
	}
	xPrev := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			xPrev.Set(i, j, init[j])
		}
	}
	wTilde := w.Add(linalg.Identity(n)).Scale(0.5)
	gPrev := grad(xPrev)
	xCur := w.Mul(xPrev).Sub(gPrev.Scale(alpha)) // x¹

	runRound := func(round int) {
		// Broadcast full params, then integrate and step.
		frames := make([]*codec.Update, n)
		for i, e := range engines {
			u, err := e.BuildUpdate(round)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = u
		}
		for i, e := range engines {
			var inbox []*codec.Update
			for _, j := range g.Neighbors(i) {
				inbox = append(inbox, frames[j])
			}
			if err := e.Integrate(inbox); err != nil {
				t.Fatal(err)
			}
			e.Step(round)
		}
	}

	runRound(0) // engines now hold x¹
	for i := 0; i < n; i++ {
		if !engines[i].Params().Equal(xCur.Row(i), 1e-10) {
			t.Fatalf("x¹ mismatch at node %d", i)
		}
	}

	for k := 1; k < iters; k++ {
		runRound(k)
		gCur := grad(xCur)
		xNext := xCur.Add(w.Mul(xCur)).Sub(wTilde.Mul(xPrev)).
			Sub(gCur.Sub(gPrev).Scale(alpha))
		xPrev, xCur, gPrev = xCur, xNext, gCur
		for i := 0; i < n; i++ {
			if !engines[i].Params().Equal(xCur.Row(i), 1e-8) {
				t.Fatalf("iteration %d: node %d diverged from matrix EXTRA (max diff %v)",
					k+1, i, engines[i].Params().Sub(xCur.Row(i)).NormInf())
			}
		}
	}
}

func TestSendPolicyString(t *testing.T) {
	if SendSelected.String() != "snap" || SendChanged.String() != "snap-0" || SendAll.String() != "sno" {
		t.Error("policy names wrong")
	}
	if SendPolicy(42).String() != "SendPolicy(42)" {
		t.Errorf("unknown policy = %q", SendPolicy(42).String())
	}
}

func TestEngineAPEStageAdvances(t *testing.T) {
	eng := newTestEngine(t, SendSelected)
	// Drive enough iterations to cross at least one APE stage; with the
	// default (no recursion restart) the stage advances but the recursion
	// keeps running.
	for round := 0; round < 40; round++ {
		eng.Step(round)
	}
	if stage, _, _ := eng.APEStage(); stage == 0 {
		t.Error("APE schedule never advanced in 40 iterations")
	}
	if eng.Restarts() != 0 {
		t.Errorf("recursion restarted %d times with RestartRecursion off", eng.Restarts())
	}
}

func TestEngineRestartsWhenRequested(t *testing.T) {
	_, parts := smallPartitions(t, 3, 30, 1)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.05,
		WRow: w.Row(0), Neighbors: g.Neighbors(0),
		Policy: SendSelected,
		APE:    APEConfig{RestartRecursion: true},
		Init:   m.InitParams(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		eng.Step(round)
	}
	if eng.Restarts() == 0 {
		t.Error("no EXTRA restart after 40 iterations with RestartRecursion on")
	}
}

func TestEngineReconfigure(t *testing.T) {
	eng := newTestEngine(t, SendSelected)
	for round := 0; round < 5; round++ {
		eng.Step(round)
	}
	restartsBefore := eng.Restarts()

	// New cluster: neighbor 2 left, neighbor 3 joined (sparse row in
	// node-id space).
	row := linalg.Vector{0.4, 0.3, 0, 0.3}
	if err := eng.Reconfigure(row, []int{3, 1}); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := eng.Neighbors(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Neighbors() = %v, want [1 3]", got)
	}
	if eng.Restarts() != restartsBefore+1 {
		t.Errorf("Reconfigure did not restart the recursion (restarts %d -> %d)",
			restartsBefore, eng.Restarts())
	}
	if eng.k != 0 {
		t.Errorf("k = %d after Reconfigure, want 0", eng.k)
	}
	// The view of the new neighbor is seeded with our own iterate.
	if got := eng.nbrCur[eng.nbrIdx[3]]; math.Abs(got[0]-eng.x[0]) > 1e-15 {
		t.Errorf("new neighbor view[0] = %g, want own x[0] = %g", got[0], eng.x[0])
	}
	if _, ok := eng.nbrIdx[2]; ok {
		t.Error("removed neighbor 2 still has a view")
	}
	// The switch forces a full send regardless of policy.
	u, err := eng.BuildUpdate(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != eng.cfg.Model.NumParams() {
		t.Errorf("post-reconfigure update carries %d params, want all %d",
			len(u.Indices), eng.cfg.Model.NumParams())
	}
	// A further step runs the k=0 recursion without touching the old
	// neighbor-prev state.
	eng.Step(7)

	if err := eng.Reconfigure(linalg.Vector{1}, nil); err != nil {
		t.Fatalf("Reconfigure to solo: %v", err)
	}
	eng.Step(8)

	if err := eng.Reconfigure(linalg.Vector{0.5, 0.4}, []int{1}); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if err := eng.Reconfigure(linalg.Vector{}, nil); err == nil {
		t.Error("short row accepted")
	}
}

func TestEngineRestartNow(t *testing.T) {
	eng := newTestEngine(t, SendAll)
	for round := 0; round < 3; round++ {
		eng.Step(round)
	}
	if eng.k == 0 {
		t.Fatal("k did not advance")
	}
	before := eng.Restarts()
	eng.RestartNow()
	if eng.k != 0 || eng.Restarts() != before+1 {
		t.Errorf("RestartNow: k = %d, restarts %d -> %d", eng.k, before, eng.Restarts())
	}
	eng.Step(3)
	if eng.k != 1 {
		t.Errorf("k = %d after post-restart step, want 1", eng.k)
	}
}
