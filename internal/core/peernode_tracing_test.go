package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/transport"
)

// TestClusterTraceIdentifiesStraggler is the tracing end-to-end check: a
// 5-node TCP cluster with one artificially slow node must produce an
// aggregated cluster view that (a) blames that node for the critical
// path, and (b) reports bytes-saved within 1% of the ground truth
// reconstructed from the transport's own counters.
func TestClusterTraceIdentifiesStraggler(t *testing.T) {
	const (
		n         = 5
		rounds    = 12
		slow      = 4 // the straggler
		delay     = 40 * time.Millisecond
		firstSlow = 2
		lastSlow  = 9
	)

	// Delay every frame the slow node sends during the slow window. The
	// delays are injected on the sender, so receivers see genuinely late
	// arrivals — exactly what the gather-wait attribution must explain.
	faults := transport.NewFaultSet()
	for r := firstSlow; r <= lastSlow; r++ {
		for p := 0; p < n; p++ {
			if p != slow {
				faults.Add(transport.FaultRule{Peer: p, Round: r, Action: transport.FaultDelay, Delay: delay})
			}
		}
	}

	tracers := make([]*trace.Tracer, n)
	nodes := startPeerNodes(t, n, 5*time.Second, func(i int, cfg *PeerNodeConfig) {
		tracers[i] = trace.New(trace.Config{Node: i})
		cfg.Tracer = tracers[i]
		if i == slow {
			cfg.Faults = faults
		}
	})

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			_, errs[i] = pn.Run(rounds)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	// Merge every node's digests, as the coordinator would from heartbeat
	// pushes (all nodes share one host clock, so no offsets are needed).
	agg := trace.NewAggregator(rounds)
	agg.SetMembers([]int{0, 1, 2, 3, 4})
	for _, tr := range tracers {
		for _, d := range tr.DigestsSince(0, rounds) {
			agg.Add(d)
		}
	}

	// Every round must be complete: all 5 nodes reported.
	for r := 0; r < rounds; r++ {
		cr, ok := agg.Round(r)
		if !ok {
			t.Fatalf("round %d missing from the aggregate", r)
		}
		if cr.Completeness != 1.0 {
			t.Fatalf("round %d completeness = %v (missing %v)", r, cr.Completeness, cr.Missing)
		}
	}

	// During the slow window the aggregate must blame the delayed node
	// and route the critical path through it.
	for r := firstSlow; r <= lastSlow; r++ {
		cr, _ := agg.Round(r)
		if cr.Straggler != slow {
			t.Errorf("round %d: straggler = %d (lag %v), want %d",
				r, cr.Straggler, time.Duration(cr.StragglerLagNanos), slow)
			continue
		}
		if cr.StragglerLagNanos < int64(delay)/2 {
			t.Errorf("round %d: straggler lag %v implausibly small for a %v injected delay",
				r, time.Duration(cr.StragglerLagNanos), delay)
		}
		foundSlow := false
		for _, step := range cr.CriticalPath {
			if step.Node == slow {
				foundSlow = true
			}
		}
		if !foundSlow {
			t.Errorf("round %d: critical path %+v never visits the straggler", r, cr.CriticalPath)
		}
	}

	// Bytes-saved must agree with the transport counters: every frame
	// actually written, had it been a full send, would have cost exactly
	// FullFrameBytes (the policy here is float64 selective sends).
	var sentTruth, fullTruth int64
	for _, pn := range nodes {
		numParams := pn.cfg.Engine.Model.NumParams()
		sentTruth += pn.BytesSent()
		fullTruth += pn.FramesSent() * int64(codec.FullFrameBytes(numParams, false))
	}
	aggSent, aggFull := agg.CumulativeBytes()
	if relDiff(float64(aggSent), float64(sentTruth)) > 0.01 {
		t.Errorf("aggregated bytes sent %d vs counter ground truth %d (>1%% off)", aggSent, sentTruth)
	}
	if relDiff(float64(aggFull), float64(fullTruth)) > 0.01 {
		t.Errorf("aggregated full-send bytes %d vs counter ground truth %d (>1%% off)", aggFull, fullTruth)
	}
	savedTruth := fullTruth - sentTruth
	if saved := aggFull - aggSent; relDiff(float64(saved), float64(savedTruth)) > 0.01 {
		t.Errorf("bytes saved %d vs ground truth %d (>1%% off)", saved, savedTruth)
	}
	if aggSent <= 0 || aggFull <= aggSent {
		t.Errorf("bytes accounting degenerate: sent %d, full %d (selective sends must save bytes)",
			aggSent, aggFull)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
