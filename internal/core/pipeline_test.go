package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/weights"
)

// runPipelineCluster trains a 5-node complete-graph TCP cluster for the
// given number of rounds with the pipelined loop on or off and returns
// every node's final iterate. Loopback with no faults means every frame
// lands inside the (generous) round timeout, so the run is a pure
// function of the fixed data/init seeds in startPeerNodes.
func runPipelineCluster(t *testing.T, sequential bool, rounds int) [][]float64 {
	t.Helper()
	nodes := startPeerNodes(t, 5, 30*time.Second, func(i int, cfg *PeerNodeConfig) {
		cfg.Sequential = sequential
	})
	var wg sync.WaitGroup
	errs := make([]error, len(nodes))
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			_, errs[i] = pn.Run(rounds)
		}(i, pn)
	}
	wg.Wait()
	params := make([][]float64, len(nodes))
	for i, pn := range nodes {
		if errs[i] != nil {
			t.Fatalf("node %d (sequential=%v): %v", i, sequential, errs[i])
		}
		params[i] = pn.Engine().Params()
	}
	return params
}

// TestPipelinedMatchesSequentialTCP is the determinism contract of
// DESIGN.md §14: overlapping the gradient with broadcast+gather and
// decoding frames as they arrive must not change a single bit of any
// iterate. The gradient reads e.x, which ingestion never touches; frames
// land in per-sender slots and MixTo walks slots in sorted-id order, so
// arrival order is irrelevant. Run under -race this also exercises the
// gradient-worker handoff on every round of every node.
func TestPipelinedMatchesSequentialTCP(t *testing.T) {
	const rounds = 8
	seq := runPipelineCluster(t, true, rounds)
	pip := runPipelineCluster(t, false, rounds)

	for i := range seq {
		if len(seq[i]) != len(pip[i]) {
			t.Fatalf("node %d: param length %d vs %d", i, len(seq[i]), len(pip[i]))
		}
		for j := range seq[i] {
			if math.Float64bits(seq[i][j]) != math.Float64bits(pip[i][j]) {
				t.Fatalf("node %d param %d: sequential %v, pipelined %v — iterates must be bitwise identical",
					i, j, seq[i][j], pip[i][j])
			}
		}
	}
}

// TestPipelinedRoundAllocFree is the alloc budget for the split round
// primitives the pipelined loop is made of. A full serialized pipelined
// round — BeginIntegrate, ComputeGradient, BuildUpdate, per-neighbor
// IngestFrame, StepMix — must allocate nothing in steady state, for all
// three engines of a complete graph feeding each other, exactly like the
// batch-path budget in TestEngineRoundAllocFree.
func TestPipelinedRoundAllocFree(t *testing.T) {
	for _, policy := range []SendPolicy{SendSelected, SendChanged, SendAll} {
		t.Run(policy.String(), func(t *testing.T) {
			engines := newTestEngines(t, 3, policy)
			round := 0
			iterate := func() {
				// Phase 1 of the pipelined loop: rotate neighbor views
				// and kick the gradient before any frame arrives.
				for _, e := range engines {
					e.BeginIntegrate()
					e.ComputeGradient(round)
				}
				for _, e := range engines {
					upd, err := e.BuildUpdate(round)
					if err != nil {
						t.Fatal(err)
					}
					// Deliver the borrowed update to every other engine
					// immediately: IngestFrame only reads it, and the
					// sender's buffer lives until its next BuildUpdate.
					for _, other := range engines {
						if other == e {
							continue
						}
						if err := other.IngestFrame(upd); err != nil {
							t.Fatal(err)
						}
					}
				}
				for _, e := range engines {
					e.StepMix(round)
				}
				round++
			}
			for i := 0; i < 5; i++ {
				iterate() // warm the scratch buffers
			}
			if avg := testing.AllocsPerRun(100, iterate); avg != 0 {
				t.Errorf("steady-state pipelined round allocated %v times per run, want 0", avg)
			}
		})
	}
}

// TestPipelineSplitMatchesStep checks the refactoring seam directly:
// BeginIntegrate plus per-frame IngestFrame is Integrate, and
// ComputeGradient followed by StepMix is Step, bit for bit. Two engine
// sets run the same schedule through the old and new entry points —
// the split set even computes the gradient *before* building/ingesting
// (the pipelined ordering), which must not matter because neither
// BuildUpdate nor ingestion moves e.x.
func TestPipelineSplitMatchesStep(t *testing.T) {
	batch := newTestEngines(t, 3, SendSelected)
	split := newTestEngines(t, 3, SendSelected)
	const n = 3

	for round := 0; round < 6; round++ {
		// Batch path: build all, Integrate each node's neighbor set at
		// once, then Step. Borrowed update buffers stay valid until the
		// owner's next BuildUpdate, which is next round.
		upds := make([]*codec.Update, n)
		for i, e := range batch {
			u, err := e.BuildUpdate(round)
			if err != nil {
				t.Fatal(err)
			}
			upds[i] = u
		}
		nbr := make([]*codec.Update, 0, n-1)
		for i, e := range batch {
			nbr = nbr[:0]
			for j := 0; j < n; j++ {
				if j != i {
					nbr = append(nbr, upds[j])
				}
			}
			if err := e.Integrate(nbr); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range batch {
			e.Step(round)
		}

		// Split path: the pipelined primitive sequence.
		for _, e := range split {
			e.BeginIntegrate()
			e.ComputeGradient(round)
		}
		for i, e := range split {
			u, err := e.BuildUpdate(round)
			if err != nil {
				t.Fatal(err)
			}
			for j, other := range split {
				if i == j {
					continue
				}
				if err := other.IngestFrame(u); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, e := range split {
			e.StepMix(round)
		}

		for i := range batch {
			bp, sp := batch[i].Params(), split[i].Params()
			for j := range bp {
				if math.Float64bits(bp[j]) != math.Float64bits(sp[j]) {
					t.Fatalf("round %d node %d param %d: batch %v, split %v",
						round, i, j, bp[j], sp[j])
				}
			}
		}
	}
}

// newTestEngines builds n engines over a complete graph that can feed
// each other updates directly — the in-process skeleton of a cluster,
// with the same data/seed recipe as newTestEngine.
func newTestEngines(t *testing.T, n int, policy SendPolicy) []*Engine {
	t.Helper()
	_, parts := smallPartitions(t, n, 30, 1)
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	init := m.InitParams(7)
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		eng, err := NewEngine(EngineConfig{
			ID:        i,
			Model:     m,
			Data:      parts[i],
			Alpha:     0.05,
			WRow:      w.Row(i),
			Neighbors: g.Neighbors(i),
			Policy:    policy,
			Init:      init,
			Trace:     trace.New(trace.Config{Node: i}),
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	return engines
}
