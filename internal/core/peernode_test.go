package core

import (
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

// TestPeerNodesMatchSimulatedCluster trains the paper's 3-server testbed
// setup over real TCP sockets and checks that the result matches the
// in-memory simulated cluster bit-for-bit (both are deterministic EXTRA
// with full exchange, so parameters must agree).
func TestPeerNodesMatchSimulatedCluster(t *testing.T) {
	const (
		n      = 3
		rounds = 25
		alpha  = 0.1
	)
	_, parts := smallPartitions(t, n, 60, 21)
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLinearSVM(8)
	init := m.InitParams(31)

	engineCfg := func(i int) EngineConfig {
		return EngineConfig{
			ID: i, Model: m, Data: parts[i], Alpha: alpha,
			WRow: w.Row(i), Neighbors: g.Neighbors(i),
			Policy: SendChanged, Init: init,
		}
	}

	// Reference: engines exchanged in-process with full delivery.
	ref := make([]*Engine, n)
	for i := 0; i < n; i++ {
		eng, err := NewEngine(engineCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		ref[i] = eng
	}
	for round := 0; round < rounds; round++ {
		frames := make([][]byte, n)
		for i, e := range ref {
			u, err := e.BuildUpdate(round)
			if err != nil {
				t.Fatal(err)
			}
			frame, _, err := encodeForTest(u)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = frame
		}
		for i, e := range ref {
			updates, err := decodeAllForTest(frames, i, g)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Integrate(updates); err != nil {
				t.Fatal(err)
			}
			e.Step(round)
		}
	}

	// TCP nodes.
	nodes := make([]*PeerNode, n)
	for i := 0; i < n; i++ {
		pn, err := NewPeerNode(PeerNodeConfig{
			Engine:       engineCfg(i),
			ListenAddr:   "127.0.0.1:0",
			RoundTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = pn
		defer pn.Close()
	}
	addrs := make(map[int]string, n)
	for i, pn := range nodes {
		addrs[i] = pn.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range g.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			if err := pn.Connect(neighbors); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = pn.Run(rounds)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}

	for i := 0; i < n; i++ {
		got := nodes[i].Engine().Params()
		want := ref[i].Params()
		if !got.Equal(want, 1e-12) {
			t.Errorf("node %d: TCP run diverged from in-process run (max diff %v)",
				i, got.Sub(want).NormInf())
		}
	}
	// Bytes were really written to sockets.
	for i, pn := range nodes {
		if pn.BytesSent() == 0 {
			t.Errorf("node %d reported zero bytes sent", i)
		}
	}
}

// encodeForTest and decodeAllForTest route reference-engine frames through
// the same codec the TCP path uses, so both runs see identical bytes.
func encodeForTest(u *codec.Update) ([]byte, codec.Format, error) {
	return codec.Encode(u)
}

func decodeAllForTest(frames [][]byte, self int, g *graph.Graph) ([]*codec.Update, error) {
	var out []*codec.Update
	for _, j := range g.Neighbors(self) {
		u, err := codec.Decode(frames[j])
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}
