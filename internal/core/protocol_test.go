package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

func TestFullSendRound0(t *testing.T) {
	_, parts := smallPartitions(t, 3, 20, 51)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.05,
		WRow: w.Row(0), Neighbors: g.Neighbors(0),
		Policy: SendChanged, FullSendRound0: true,
		Init: m.InitParams(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	u, err := eng.BuildUpdate(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != m.NumParams() {
		t.Errorf("round 0 sent %d params, want full %d", len(u.Indices), m.NumParams())
	}
	// Round 1 falls back to the configured policy (nothing changed since
	// round 0's full send and no Step ran, so nothing to transmit).
	u, err = eng.BuildUpdate(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Indices) != 0 {
		t.Errorf("round 1 sent %d params without any step", len(u.Indices))
	}
}

func TestRefreshEveryForcesFullSend(t *testing.T) {
	_, parts := smallPartitions(t, 3, 20, 52)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.05,
		WRow: w.Row(0), Neighbors: g.Neighbors(0),
		Policy: SendSelected, RefreshEvery: 4,
		Init: m.InitParams(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		u, err := eng.BuildUpdate(round)
		if err != nil {
			t.Fatal(err)
		}
		wantFull := round > 0 && round%4 == 0
		if wantFull && len(u.Indices) != m.NumParams() {
			t.Errorf("round %d: refresh sent %d params, want full", round, len(u.Indices))
		}
		if round == 0 && len(u.Indices) != 0 {
			t.Errorf("round 0 sent %d params (shared init, no refresh)", len(u.Indices))
		}
		eng.Step(round)
	}
}

func TestRestartEveryResetsRecursion(t *testing.T) {
	_, parts := smallPartitions(t, 3, 20, 53)
	g := graph.Complete(3)
	w := weights.Metropolis(g, 0)
	m := model.NewLogisticRegression(8)
	eng, err := NewEngine(EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.05,
		WRow: w.Row(0), Neighbors: g.Neighbors(0),
		Policy: SendChanged, RestartEvery: 5,
		Init: m.InitParams(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 11; round++ {
		eng.Step(round)
	}
	if eng.Restarts() != 2 {
		t.Errorf("restarts = %d after 11 rounds with RestartEvery=5, want 2", eng.Restarts())
	}
}

// TestPerNodeInitConvergesToCentralized verifies that with independent
// initial parameters (and the round-0 full exchange) the cluster still
// reaches the pooled-data optimum — EXTRA converges from arbitrary x⁰.
func TestPerNodeInitConvergesToCentralized(t *testing.T) {
	m, parts, test := creditSetup(t, 5, 2000, 54)
	c, err := NewCluster(ClusterConfig{
		Topology:      graph.RandomConnected(5, 3, rand.New(rand.NewSource(55))),
		Model:         m,
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        SendSelected,
		PerNodeInit:   true,
		MaxIterations: 400,
		Convergence:   metrics.ConvergenceDetector{RelTol: 1e-4, Patience: 3, ConsensusTol: 0.01},
		Seed:          56,
		EvalEvery:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("per-node-init run did not converge in %d iterations", res.Iterations)
	}
	central := centralizedAggregateLoss(m, parts, 4000, 0.05, 56)
	if res.FinalLoss > central*1.05+1e-6 {
		t.Errorf("per-node-init loss %v vs centralized %v", res.FinalLoss, central)
	}
	// Engines truly started apart: round 0 of the trace shows nonzero
	// consensus residual.
	if res.Trace.Stats[0].Consensus < 1e-3 {
		t.Errorf("initial consensus residual %v suspiciously small for per-node init",
			res.Trace.Stats[0].Consensus)
	}
}

// TestLossyLinksWithRefreshRecoverOptimum reproduces the failure mode that
// motivated RefreshEvery/RestartEvery: without them, silently dropped
// frames freeze the cluster at a non-optimal fixed point; with them
// (enabled automatically when FailureRate > 0) the run reaches the same
// loss as a clean run.
func TestLossyLinksWithRefreshRecoverOptimum(t *testing.T) {
	m, parts, _ := creditSetup(t, 6, 2400, 57)
	topo := graph.RandomConnected(6, 3, rand.New(rand.NewSource(58)))
	run := func(failureRate float64) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts,
			Alpha: 0.1, Policy: SendSelected, MaxIterations: 300,
			Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 1 << 30},
			Seed:        59, FailureRate: failureRate,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	lossy := run(0.05)
	if rel := math.Abs(lossy.FinalLoss-clean.FinalLoss) / clean.FinalLoss; rel > 0.02 {
		t.Errorf("lossy-link final loss %v vs clean %v (rel gap %v) — refresh/restart failed to repair staleness",
			lossy.FinalLoss, clean.FinalLoss, rel)
	}
}

// TestFloat32WireMatchesFloat64 verifies the float32 wire extension:
// same convergence and accuracy, fewer bytes.
func TestFloat32WireMatchesFloat64(t *testing.T) {
	m, parts, test := creditSetup(t, 5, 2000, 61)
	topo := graph.RandomConnected(5, 3, rand.New(rand.NewSource(62)))
	run := func(f32 bool) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, Policy: SendSelected, Float32Wire: f32,
			MaxIterations: 300, Convergence: paperDetector(),
			Seed: 63, EvalEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(false)
	lossy := run(true)
	if !lossy.Converged {
		t.Errorf("float32 run did not converge in %d iterations", lossy.Iterations)
	}
	if math.Abs(lossy.FinalAccuracy-full.FinalAccuracy) > 0.02 {
		t.Errorf("float32 accuracy %v vs float64 %v", lossy.FinalAccuracy, full.FinalAccuracy)
	}
	if lossy.TotalCost >= full.TotalCost {
		t.Errorf("float32 cost %v not below float64 %v", lossy.TotalCost, full.TotalCost)
	}
}
