package core

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/weights"
)

// runSmallPeerCluster trains a tiny TCP cluster and returns the per-node
// traces. Each node optionally gets its own Observer from mkObs.
func runSmallPeerCluster(t *testing.T, n, rounds int, mkObs func(i int) *obs.Observer) []*metrics.Trace {
	t.Helper()
	_, parts := smallPartitions(t, n, 40, 17)
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLinearSVM(8)
	init := m.InitParams(5)

	nodes := make([]*PeerNode, n)
	for i := 0; i < n; i++ {
		var o *obs.Observer
		if mkObs != nil {
			o = mkObs(i)
		}
		pn, err := NewPeerNode(PeerNodeConfig{
			Engine: EngineConfig{
				ID: i, Model: m, Data: parts[i], Alpha: 0.1,
				WRow: w.Row(i), Neighbors: g.Neighbors(i),
				Policy: SendChanged, Init: init,
			},
			ListenAddr:   "127.0.0.1:0",
			RoundTimeout: 5 * time.Second,
			Obs:          o,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = pn
		defer pn.Close()
	}
	addrs := make(map[int]string, n)
	for i, pn := range nodes {
		addrs[i] = pn.Addr()
	}
	traces := make([]*metrics.Trace, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range g.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			if err := pn.Connect(neighbors); err != nil {
				errs[i] = err
				return
			}
			traces[i], errs[i] = pn.Run(rounds)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	return traces
}

// TestPeerNodeTraceStats pins two trace invariants of PeerNode.Run:
// Accuracy must be NaN (peer nodes never evaluate a held-out set, and a
// zero would read as a real 0% measurement to IterationsToAccuracy), and
// RoundCost must carry the real per-round socket bytes so CostToAccuracy
// works on testbed traces.
func TestPeerNodeTraceStats(t *testing.T) {
	traces := runSmallPeerCluster(t, 3, 6, nil)
	for i, tr := range traces {
		if tr.Len() == 0 {
			t.Fatalf("node %d: empty trace", i)
		}
		total := 0.0
		for r, s := range tr.Stats {
			if !math.IsNaN(s.Accuracy) {
				t.Errorf("node %d round %d: Accuracy = %v, want NaN (not evaluated)", i, r, s.Accuracy)
			}
			if s.RoundCost < 0 {
				t.Errorf("node %d round %d: negative RoundCost %v", i, r, s.RoundCost)
			}
			total += s.RoundCost
		}
		if total <= 0 {
			t.Errorf("node %d: total RoundCost %v, want > 0 (real bytes were sent)", i, total)
		}
	}
}

// TestPeerNodeObserverMetrics wires an Observer into every node of a real
// TCP cluster and checks the headline series land in the registry:
// per-link byte counters, the gather-wait histogram, and per-round phase
// timings.
func TestPeerNodeObserverMetrics(t *testing.T) {
	regs := make([]*obs.Registry, 3)
	runSmallPeerCluster(t, 3, 6, func(i int) *obs.Observer {
		regs[i] = obs.NewRegistry()
		return &obs.Observer{Reg: regs[i]}
	})
	for i, reg := range regs {
		text := reg.Text()
		for _, want := range []string{
			obs.MLinkBytesSent, obs.MLinkBytesRecv,
			obs.MGatherWait + "_count", obs.MRoundSeconds,
		} {
			if !strings.Contains(text, want) {
				t.Errorf("node %d: exposition missing %q", i, want)
			}
		}
		snap := reg.Snapshot()
		sent, ok := snap[obs.Label(obs.MLinkBytesSent, "peer", "0")]
		if i != 0 {
			if !ok {
				t.Errorf("node %d: no %s series for peer 0", i, obs.MLinkBytesSent)
			} else if v, _ := sent.(int64); v <= 0 {
				t.Errorf("node %d: bytes sent to peer 0 = %v, want > 0", i, sent)
			}
		}
	}
}
