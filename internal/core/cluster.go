package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/transport"
	"github.com/snapml/snap/internal/weights"
)

// ClusterConfig configures a simulated SNAP training run.
type ClusterConfig struct {
	// Topology is the edge-server neighbor graph; it must be connected.
	Topology *graph.Graph
	// Model is the shared architecture.
	Model model.Model
	// Partitions holds each node's local data (len == Topology.N()).
	Partitions []*dataset.Dataset
	// Test is the evaluation set (may be nil to skip accuracy).
	Test *dataset.Dataset
	// Alpha is the EXTRA step size.
	Alpha float64
	// Policy selects SNAP / SNAP-0 / SNO transmission.
	Policy SendPolicy
	// APE configures Algorithm 1 (Policy == SendSelected).
	APE APEConfig
	// OptimizeWeights enables the paper's weight-matrix optimization; when
	// false the Metropolis matrix (eq. 24) is used directly.
	OptimizeWeights bool
	// Weights, when non-nil, supplies a precomputed weight matrix and
	// bypasses both Metropolis construction and optimization (callers that
	// run several schemes on one topology reuse one optimized matrix).
	Weights *linalg.Matrix
	// WeightOpt tunes the optimizer (ignored unless OptimizeWeights).
	WeightOpt weights.Options
	// BatchSize limits per-iteration gradients (0 = full batch).
	BatchSize int
	// GradWorkers caps the goroutines each engine uses for its sharded
	// gradient (≤1 = serial; results are bitwise-identical either way,
	// see model.GradientTo).
	GradWorkers int
	// MaxIterations bounds the run. Default 500.
	MaxIterations int
	// Convergence configures the stopping rule; zero values use defaults.
	Convergence metrics.ConvergenceDetector
	// EvalEvery computes test accuracy every this many rounds (default 1;
	// set larger for expensive models).
	EvalEvery int
	// Seed derives the initial parameters.
	Seed int64
	// PerNodeInit gives every node its own random initial parameter
	// vector (derived from Seed and the node id) instead of a shared one,
	// as in a real uncoordinated deployment. Round 0 then performs a full
	// parameter exchange so the selective-diff protocol has a correct
	// baseline. EXTRA converges from arbitrary initial points, but the
	// initial disagreement makes network mixing a genuine bottleneck —
	// the regime the paper's topology-dependent results live in.
	PerNodeInit bool
	// FailureRate drops each link per round with this probability
	// (the Fig. 9 straggler experiments).
	FailureRate float64
	// RefreshEvery forces a full-parameter broadcast every that many
	// rounds (see EngineConfig.RefreshEvery). When zero and FailureRate
	// is positive it defaults to 10 — selective transmission over lossy
	// links requires periodic refresh to repair silently dropped frames.
	RefreshEvery int
	// Float32Wire transmits parameter values as float32 on the wire
	// (codec formats 3/4), halving value bytes at ~1e-7 relative rounding
	// — far below any APE threshold. An extension beyond the paper;
	// compare with BenchmarkAblationFloat32Wire.
	Float32Wire bool
	// RestartEvery restarts the EXTRA recursion every that many rounds
	// (see EngineConfig.RestartEvery). When zero and FailureRate is
	// positive it defaults to RefreshEvery, purging the staleness bias
	// that dropped frames leave in EXTRA's correction history.
	RestartEvery int
	// OnIteration, when set, is invoked after every round's compute phase
	// (before convergence is evaluated) with the just-finished round
	// index. The experiment harness uses it to record parameter-evolution
	// statistics (paper Fig. 2). It runs on the driver goroutine; engines
	// may be inspected but not mutated.
	OnIteration func(round int, c *Cluster)
	// Obs, when set, is shared by the driver and every engine: engine
	// series carry a node="<id>" label, while the round/phase histograms
	// aggregate across nodes (the useful simulator view). Round lifecycle
	// events are emitted with node -1 (cluster level).
	Obs *obs.Observer
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 500
	}
	if c.RefreshEvery == 0 && c.FailureRate > 0 {
		c.RefreshEvery = 10
	}
	if c.RestartEvery == 0 && c.FailureRate > 0 {
		// Four refresh periods: long enough for consensus to re-settle
		// after the restart kick (each restart perturbs node i by
		// α·∇f_i, which differs across nodes), short enough to bound the
		// staleness bias accumulating in the correction history.
		c.RestartEvery = 4 * c.RefreshEvery
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 1
	}
	return c
}

// Result summarizes a training run.
type Result struct {
	// Scheme names the scheme that produced this result.
	Scheme string
	// Iterations is the number of rounds executed (to convergence or the
	// iteration cap).
	Iterations int
	// Converged reports whether the stopping rule fired before the cap.
	Converged bool
	// FinalAccuracy is the test accuracy of the average model after the
	// last round (NaN if no test set).
	FinalAccuracy float64
	// FinalLoss is the aggregate objective Σ_i f_i(x_i) after the last
	// round.
	FinalLoss float64
	// TotalCost is the hop-weighted communication cost Σ hops×bytes.
	TotalCost float64
	// Trace holds the per-iteration history.
	Trace metrics.Trace
	// PerRoundCost is the hop-weighted cost of each round.
	PerRoundCost []float64
}

// Cluster drives N EXTRA engines over a simulated network in lockstep
// rounds, reproducing the paper's simulation setup.
type Cluster struct {
	cfg     ClusterConfig
	net     *transport.Sim
	engines []*Engine
	w       *linalg.Matrix
	met     roundMetrics

	// runners are the persistent per-engine worker goroutines: one
	// long-lived goroutine per node driven over a command channel, so a
	// round costs two channel round-trips per node instead of 2N
	// goroutine spawns. Each runner also owns the node's encode buffer
	// and decoded-update scratch.
	runners    []*engineRunner
	avgScratch linalg.Vector // reusable mean-parameter buffer for eval
}

// roundCmd tells a runner which phase of which round to execute.
type roundCmd struct {
	phase int // 1 = build/encode/broadcast, 2 = collect/integrate/step
	round int
}

// engineRunner is one node's persistent worker state.
type engineRunner struct {
	eng *Engine
	// nbrs caches the node's neighbor ids (ascending) for the broadcast
	// loop: Sim.Neighbors returns a fresh copy per call, and querying it
	// every round was the simulator hot path's dominant allocation.
	nbrs []int
	enc  []byte // reusable wire-frame buffer
	// decoded backs the per-frame decode targets, sized to the node's
	// degree up front; slot i holds the round's i-th arrived frame.
	decoded []codec.Update
	cmd     chan roundCmd
	done    chan error
}

// startRunners launches the per-engine worker goroutines (idempotent).
func (c *Cluster) startRunners() {
	if c.runners != nil {
		return
	}
	c.runners = make([]*engineRunner, len(c.engines))
	for i, e := range c.engines {
		nbrs := c.net.Neighbors(e.ID())
		sort.Ints(nbrs)
		r := &engineRunner{
			eng:     e,
			nbrs:    nbrs,
			decoded: make([]codec.Update, len(nbrs)),
			cmd:     make(chan roundCmd),
			done:    make(chan error),
		}
		c.runners[i] = r
		go func() {
			for cmd := range r.cmd {
				switch cmd.phase {
				case 1:
					r.done <- c.sendPhase(r, cmd.round)
				default:
					r.done <- c.stepPhase(r, cmd.round)
				}
			}
		}()
	}
}

// stopRunners terminates the worker goroutines.
func (c *Cluster) stopRunners() {
	for _, r := range c.runners {
		close(r.cmd)
	}
	c.runners = nil
}

// runPhase executes one phase on every runner concurrently and returns
// the first error (the remaining runners still finish the phase — the
// barrier always drains).
func (c *Cluster) runPhase(phase, round int) error {
	for _, r := range c.runners {
		r.cmd <- roundCmd{phase: phase, round: round}
	}
	var firstErr error
	for _, r := range c.runners {
		if err := <-r.done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// sendPhase is phase 1 of a round: build the selective update, encode it
// into the runner's reusable buffer, and broadcast it.
func (c *Cluster) sendPhase(r *engineRunner, round int) error {
	e := r.eng
	t := time.Now()
	u, err := e.BuildUpdate(round)
	if err != nil {
		return err
	}
	c.met.build.Observe(time.Since(t).Seconds())
	t = time.Now()
	if c.cfg.Float32Wire {
		r.enc, _, err = codec.EncodeLossyTo(r.enc, u)
	} else {
		r.enc, _, err = codec.EncodeTo(r.enc, u)
	}
	if err != nil {
		return err
	}
	c.met.encode.Observe(time.Since(t).Seconds())
	t = time.Now()
	for _, j := range r.nbrs {
		if err := c.net.Send(e.ID(), j, r.enc); err != nil {
			return err
		}
	}
	c.met.broadcast.Observe(time.Since(t).Seconds())
	// Pipelined split (DESIGN.md §14): open the ingest window and compute
	// the round's gradient now, in the phase slot where a real transport
	// overlaps it with the in-flight gather. The gradient reads only the
	// iterate, which phase 2's ingest never touches, so the iterates are
	// bitwise identical to the old integrate-then-Step ordering.
	e.BeginIntegrate()
	e.ComputeGradient(round)
	return nil
}

// stepPhase is phase 2 of a round: stream the inbox in ascending sender
// order, decoding and ingesting frame by frame, then complete the EXTRA
// iteration from the gradient sendPhase left in scratch.
func (c *Cluster) stepPhase(r *engineRunner, round int) error {
	e := r.eng
	t := time.Now()
	var decSecs, intSecs float64
	var streamErr error
	n := 0
	c.net.CollectStream(e.ID(), func(from int, frame []byte) bool {
		if n == len(r.decoded) {
			streamErr = fmt.Errorf("core: node %d received more than its degree %d frames", e.ID(), len(r.decoded))
			return false
		}
		d0 := time.Now()
		u := &r.decoded[n]
		if err := codec.DecodeInto(u, frame); err != nil {
			streamErr = err
			return false
		}
		d1 := time.Now()
		if err := e.IngestFrame(u); err != nil {
			streamErr = err
			return false
		}
		decSecs += d1.Sub(d0).Seconds()
		intSecs += time.Since(d1).Seconds()
		n++
		return true
	})
	c.met.gather.Observe(time.Since(t).Seconds())
	if streamErr != nil {
		return streamErr
	}
	c.met.decode.Observe(decSecs)
	c.met.integrate.Observe(intSecs)
	e.StepMix(round)
	return nil
}

// NewCluster validates the configuration, builds (and optionally
// optimizes) the weight matrix, and constructs all node engines.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Topology == nil || cfg.Topology.N() == 0 {
		return nil, errors.New("core: cluster requires a non-empty topology")
	}
	if !cfg.Topology.IsConnected() {
		return nil, errors.New("core: cluster topology must be connected")
	}
	n := cfg.Topology.N()
	if len(cfg.Partitions) != n {
		return nil, fmt.Errorf("core: %d partitions for %d nodes", len(cfg.Partitions), n)
	}
	if cfg.Model == nil {
		return nil, errors.New("core: cluster requires a model")
	}
	if cfg.Alpha <= 0 {
		return nil, errors.New("core: cluster requires positive Alpha")
	}

	var w *linalg.Matrix
	if cfg.Weights != nil {
		if cfg.Weights.Rows != n || cfg.Weights.Cols != n {
			return nil, fmt.Errorf("core: supplied weight matrix is %dx%d for %d nodes", cfg.Weights.Rows, cfg.Weights.Cols, n)
		}
		if !cfg.Weights.IsSymmetric(1e-9) || !cfg.Weights.IsDoublyStochastic(1e-6) {
			return nil, errors.New("core: supplied weight matrix must be symmetric doubly stochastic")
		}
		w = cfg.Weights
	} else if cfg.OptimizeWeights {
		res, err := weights.OptimizeBest(cfg.Topology, weights.BoundParams{Alpha: cfg.Alpha}, cfg.WeightOpt)
		if err != nil {
			return nil, fmt.Errorf("core: optimizing weight matrix: %w", err)
		}
		w = res.W
	} else {
		w = weights.Metropolis(cfg.Topology, 0)
	}

	net := transport.NewSim(cfg.Topology, nil)
	if cfg.FailureRate > 0 {
		net.SetFailures(cfg.FailureRate, cfg.Seed+1)
	}

	sharedInit := cfg.Model.InitParams(cfg.Seed)
	engines := make([]*Engine, n)
	for i := 0; i < n; i++ {
		init := sharedInit
		if cfg.PerNodeInit {
			init = cfg.Model.InitParams(cfg.Seed + int64(i+1)*1_000_003)
		}
		eng, err := NewEngine(EngineConfig{
			ID:             i,
			Model:          cfg.Model,
			Data:           cfg.Partitions[i],
			Alpha:          cfg.Alpha,
			WRow:           w.Row(i),
			Neighbors:      cfg.Topology.Neighbors(i),
			BatchSize:      cfg.BatchSize,
			GradWorkers:    cfg.GradWorkers,
			Policy:         cfg.Policy,
			APE:            cfg.APE,
			RefreshEvery:   cfg.RefreshEvery,
			RestartEvery:   cfg.RestartEvery,
			FullSendRound0: cfg.PerNodeInit,
			Float32Wire:    cfg.Float32Wire,
			Init:           init,
			Obs:            cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		engines[i] = eng
	}
	return &Cluster{cfg: cfg, net: net, engines: engines, w: w, met: newRoundMetrics(cfg.Obs)}, nil
}

// WeightMatrix returns the weight matrix in use (for inspection/tests).
func (c *Cluster) WeightMatrix() *linalg.Matrix { return c.w }

// Network returns the simulated network (for inspection/tests).
func (c *Cluster) Network() *transport.Sim { return c.net }

// Run executes rounds until convergence or the iteration cap and returns
// the result. It is not safe to call Run twice on the same Cluster.
func (c *Cluster) Run() (*Result, error) {
	cfg := c.cfg
	detector := cfg.Convergence

	res := &Result{Scheme: cfg.Policy.String()}
	lastAcc := math.NaN()

	c.startRunners()
	defer c.stopRunners()

	for round := 0; round < cfg.MaxIterations; round++ {
		roundStart := time.Now()
		c.met.round.Set(float64(round))
		cfg.Obs.Emit(-1, obs.EvRoundStart, round, -1, nil)
		c.net.BeginRound(round)

		// Phase 1: every node builds and broadcasts its update. Each
		// runner reports its own phase durations; the shared histograms
		// aggregate them across nodes.
		if err := c.runPhase(1, round); err != nil {
			return nil, err
		}

		// Phase 2: every node integrates what arrived and steps.
		if err := c.runPhase(2, round); err != nil {
			return nil, err
		}

		if cfg.OnIteration != nil {
			cfg.OnIteration(round, c)
		}

		// Phase 3: evaluate.
		loss := c.aggregateLoss()
		consensus := c.consensusResidual()
		acc := math.NaN()
		if cfg.Test != nil && (round%cfg.EvalEvery == 0 || round == cfg.MaxIterations-1) {
			acc = model.Accuracy(cfg.Model, c.meanParamsInto(), cfg.Test)
			lastAcc = acc
		}
		roundCost := c.net.Ledger().RoundCost(round)
		res.Trace.Append(metrics.IterationStat{
			Round:     round,
			Loss:      loss,
			Accuracy:  acc,
			Consensus: consensus,
			RoundCost: roundCost,
		})
		res.Iterations = round + 1

		roundSec := time.Since(roundStart).Seconds()
		c.met.localLoss.Set(loss)
		c.met.roundBytes.Set(roundCost)
		c.met.roundSeconds.Observe(roundSec)
		if cfg.Obs != nil {
			cfg.Obs.Emit(-1, obs.EvRoundEnd, round, -1, map[string]any{
				"seconds": roundSec, "loss": loss, "consensus": consensus, "cost": roundCost,
			})
		}

		if detector.Observe(loss, consensus) {
			res.Converged = true
			break
		}
	}

	if cfg.Test != nil {
		lastAcc = model.Accuracy(cfg.Model, c.AverageParams(), cfg.Test)
	}
	res.FinalAccuracy = lastAcc
	res.FinalLoss = c.aggregateLoss()
	res.TotalCost = c.net.Ledger().Total()
	res.PerRoundCost = c.net.Ledger().PerRound()
	return res, nil
}

// aggregateLoss returns Σ_i f_i(x_i), the paper's objective (1).
func (c *Cluster) aggregateLoss() float64 {
	var total float64
	for _, e := range c.engines {
		total += e.LocalLoss()
	}
	return total
}

// meanParamsInto computes the across-node mean parameter vector into the
// cluster's reusable eval buffer (engines' live iterates are read, not
// copied — safe between phases on the driver goroutine).
func (c *Cluster) meanParamsInto() linalg.Vector {
	if c.avgScratch == nil {
		c.avgScratch = linalg.NewVector(c.cfg.Model.NumParams())
	}
	avg := c.avgScratch
	avg.Fill(0)
	for _, e := range c.engines {
		avg.AddInPlace(e.x)
	}
	return linalg.ScaleTo(avg, 1/float64(len(c.engines)), avg)
}

// consensusResidual returns max_i ||x_i − x̄||∞, the disagreement metric
// used for the consensus constraint (3).
func (c *Cluster) consensusResidual() float64 {
	avg := c.meanParamsInto()
	var worst float64
	for _, e := range c.engines {
		if d := linalg.DistInf(e.x, avg); d > worst {
			worst = d
		}
	}
	return worst
}

// AverageParams returns the across-node mean parameter vector — the model
// the experiments evaluate accuracy on. The returned vector is a fresh
// copy the caller owns.
func (c *Cluster) AverageParams() linalg.Vector {
	return c.meanParamsInto().Clone()
}

// Engines exposes the node engines (read-only use in tests/experiments).
func (c *Cluster) Engines() []*Engine { return c.engines }
