// Package core implements the paper's primary contribution: the SNAP
// training loop. It contains the per-node EXTRA consensus engine
// (paper eq. 6/8), the Accumulated-Parameter-Error threshold controller
// (paper eq. 27 and Algorithm 1) that decides which parameters are worth
// transmitting, and the round-synchronized cluster driver that runs N
// engines over a transport.
package core

import (
	"fmt"
	"math"
)

// APEConfig parameterizes Algorithm 1 (communication cost reduction).
// The defaults follow the paper's evaluation section: the threshold starts
// at 10% of the mean absolute parameter value, must remain in effect for
// at least 10 iterations, and decays by 10% per stage until it falls
// below Epsilon.
type APEConfig struct {
	// Alpha is the EXTRA step size α.
	Alpha float64
	// G bounds the second-order gradient, |∇²f| ≤ G (paper's Algorithm 1
	// input). When zero it defaults to 0.02/Alpha, following the paper's
	// coupling "choose α, e.g. α = 1/(100G)" so that (1+αG) stays near 1
	// and the per-stage send threshold T/(I·(1+αG)^I) remains meaningful.
	G float64
	// InitialFraction sets T_0 = InitialFraction × mean|x⁰|. Default 0.1.
	InitialFraction float64
	// StageIterations is I_k, the minimum iterations per stage. Default 10.
	StageIterations int
	// Decay multiplies T_k at each stage transition. Default 0.9.
	Decay float64
	// Epsilon ends the schedule: once T_k < Epsilon the thresholds stop
	// decaying and the final small threshold is kept forever. The paper
	// keeps this residual threshold deliberately, "to avoid the
	// communication incurred by the iteration collision (parameters still
	// have some slight changes when the iteration converges)". Default
	// 1e-4.
	Epsilon float64
	// RestartRecursion resets the EXTRA two-term recursion at each stage
	// transition, the literal reading of Algorithm 1's "restart the
	// iteration from the solution derived by the first I_k iterations".
	// Off by default: at EXTRA's fixed point each node's *local* gradient
	// is nonzero (only the sum vanishes), so a recursion reset kicks the
	// iterate by α·∇f_i every stage and the per-round parameter changes
	// never decay — defeating the late-stage communication savings the
	// paper reports (Fig. 4b). With the default interpretation the
	// iteration simply continues from the current solution with the new,
	// smaller threshold. The ablation bench compares both readings.
	RestartRecursion bool
}

func (c APEConfig) withDefaults() APEConfig {
	if c.G <= 0 && c.Alpha > 0 {
		c.G = 0.02 / c.Alpha
	}
	if c.InitialFraction <= 0 {
		c.InitialFraction = 0.1
	}
	if c.StageIterations <= 0 {
		c.StageIterations = 10
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.9
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-4
	}
	return c
}

// APEController runs Algorithm 1 for one edge server, in a distributed
// manner (each node owns its controller; no coordination is needed).
//
// Stage k keeps an APE threshold T_k and allows per-parameter accumulated
// changes up to maxDelta = T_k / (I_k·(1+αG)^{I_k}) to be withheld. The
// controller tracks the worst-case APE estimate
// S_t = Σ_{l=1..t} (1+αG)^l·maxDelta via the recurrence
// S_t = (1+αG)(S_{t-1} + maxDelta); when S exceeds T_k the stage ends:
// T_{k+1} = Decay·T_k, the estimate resets, and (per the paper) the EXTRA
// recursion restarts from the current iterate.
type APEController struct {
	cfg       APEConfig
	threshold float64 // T_k
	maxDelta  float64
	apeEst    float64
	stage     int
	exhausted bool // T_k fell below Epsilon: final threshold frozen
}

// NewAPEController creates the controller given the node's initial mean
// absolute parameter value (used for T_0). cfg.Alpha must be positive.
func NewAPEController(cfg APEConfig, meanAbsParam float64) (*APEController, error) {
	cfg = cfg.withDefaults()
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("core: APE controller requires positive Alpha, got %g", cfg.Alpha)
	}
	c := &APEController{cfg: cfg}
	c.threshold = cfg.InitialFraction * math.Abs(meanAbsParam)
	if c.threshold < cfg.Epsilon {
		c.exhausted = true
	}
	c.recomputeMaxDelta()
	return c, nil
}

//snap:alloc-free
func (c *APEController) recomputeMaxDelta() {
	growth := math.Pow(1+c.cfg.Alpha*c.cfg.G, float64(c.cfg.StageIterations))
	c.maxDelta = c.threshold / (float64(c.cfg.StageIterations) * growth)
}

// SendThreshold returns the per-parameter change threshold below which a
// parameter may be withheld this iteration. Once the schedule is
// exhausted this is frozen at the final (sub-ε) stage's value.
//
//snap:alloc-free
func (c *APEController) SendThreshold() float64 { return c.maxDelta }

// Stage returns the current stage index k.
//
//snap:alloc-free
func (c *APEController) Stage() int { return c.stage }

// Threshold returns the current APE threshold T_k (frozen at its final
// value once the schedule is exhausted).
//
//snap:alloc-free
func (c *APEController) Threshold() float64 { return c.threshold }

// Exhausted reports whether the schedule has ended (T_k < ε, thresholds
// frozen).
//
//snap:alloc-free
func (c *APEController) Exhausted() bool { return c.exhausted }

// AfterIteration advances the worst-case APE estimate by one iteration and
// reports whether the stage ended (in which case the caller should restart
// its EXTRA recursion from the current iterate, per Algorithm 1).
//
//snap:alloc-free
func (c *APEController) AfterIteration() (stageEnded bool) {
	if c.exhausted {
		return false
	}
	c.apeEst = (1 + c.cfg.Alpha*c.cfg.G) * (c.apeEst + c.maxDelta)
	if c.apeEst <= c.threshold {
		return false
	}
	c.stage++
	c.threshold *= c.cfg.Decay
	c.apeEst = 0
	if c.threshold < c.cfg.Epsilon {
		c.exhausted = true
	}
	c.recomputeMaxDelta()
	return true
}
