package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/controlplane"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/transport"
)

// joinElasticPeerNode performs the coordinator-managed join that the
// public facade does for elastic nodes: bind a listener, join, configure
// the engine from the current epoch's plan, and connect to the epoch's
// neighbors.
func joinElasticPeerNode(t *testing.T, coord *controlplane.Coordinator, m model.Model,
	dataFor func(id int) *EngineConfig, mutate func(cfg *PeerNodeConfig)) *PeerNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := controlplane.Join(controlplane.ClientConfig{
		Coordinator: coord.Addr(),
		Advertise:   ln.Addr().String(),
		JoinWait:    30 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		ln.Close()
		t.Fatalf("join: %v", err)
	}
	plan, err := client.Latest().PlanFor(client.ID())
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	client.ReportRound(plan.StartRound)
	client.ReportEpoch(plan.Epoch)

	ecfg := dataFor(client.ID())
	ecfg.ID = client.ID()
	ecfg.Model = m
	ecfg.WRow = plan.WRow
	ecfg.Neighbors = plan.Neighbors
	cfg := PeerNodeConfig{
		Engine:       *ecfg,
		Listener:     ln,
		Control:      client,
		Epoch:        plan.Epoch,
		StartRound:   plan.StartRound,
		RoundTimeout: 2 * time.Second,
		Logf:         t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pn, err := NewPeerNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pn.Close() })
	// A mid-training joiner holds the shared seed init while the cluster
	// moved on; its first broadcast must be the full vector.
	pn.Engine().RequestFullSend()
	if err := pn.Connect(plan.Addrs); err != nil {
		t.Logf("node %d: connect to epoch neighbors: %v (continuing)", client.ID(), err)
	}
	return pn
}

// TestElasticJoinSurvivesFaultyLink exercises the control plane and the
// fault machinery together: a fourth node joins mid-training while an
// existing link is deterministically dropping frames. The epoch must
// still reach and be applied by every member, and training must still
// converge — dropped data-plane frames degrade a round to straggler
// timeouts but never block a reconfiguration, which travels over the
// separate control connection.
func TestElasticJoinSurvivesFaultyLink(t *testing.T) {
	const (
		founders = 3
		total    = 4
		// Generous horizon: the join applies whenever the epoch reaches the
		// members (heartbeat lag can put the nominal boundary in the past),
		// and the cluster needs joint rounds after it to re-settle.
		rounds = 100
	)
	ds, parts := smallPartitions(t, total, 60, 21)
	m := model.NewLinearSVM(8)
	init := m.InitParams(31)
	dataFor := func(id int) *EngineConfig {
		return &EngineConfig{
			Data: parts[id%total], Alpha: 0.1,
			Policy: SendSelected, Init: init,
		}
	}

	coord, err := controlplane.NewCoordinator(controlplane.CoordinatorConfig{
		MinMembers:   founders,
		AttachDegree: 2,
		ApplyMargin:  3,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Node 0 drops its frames to node 1 for three consecutive rounds,
	// overlapping the join window below.
	faults := transport.NewFaultSet().
		Add(transport.FaultRule{Peer: 1, Round: 8, Action: transport.FaultDrop}).
		Add(transport.FaultRule{Peer: 1, Round: 9, Action: transport.FaultDrop}).
		Add(transport.FaultRule{Peer: 1, Round: 10, Action: transport.FaultDrop})
	reg := obs.NewRegistry()

	var (
		mu    sync.Mutex
		nodes = make(map[int]*PeerNode, total)
		wg    sync.WaitGroup
		errs  = make([]error, total)
	)
	runNode := func(slot int, mutate func(cfg *PeerNodeConfig)) {
		defer wg.Done()
		pn := joinElasticPeerNode(t, coord, m, dataFor, mutate)
		mu.Lock()
		nodes[pn.Engine().ID()] = pn
		mu.Unlock()
		_, errs[slot] = pn.Run(rounds)
	}
	for i := 0; i < founders; i++ {
		wg.Add(1)
		// Coordinator ids are assigned by join order, not goroutine index,
		// so pick the faulty member by its assigned id: member 0 is
		// adjacent to member 1 on the founders' triangle, and it also
		// carries the registry the main goroutine watches.
		go runNode(i, func(cfg *PeerNodeConfig) {
			if cfg.Engine.ID == 0 {
				cfg.Faults = faults
				cfg.Obs = &obs.Observer{Reg: reg}
			}
		})
	}

	// Join the fourth node while the fault window is open.
	deadline := time.Now().Add(30 * time.Second)
	for reg.Gauge(obs.MRound).Value() < 8 {
		if time.Now().After(deadline) {
			t.Fatal("founders never reached round 8")
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Add(1)
	go runNode(founders, nil)
	wg.Wait()

	for slot, err := range errs {
		if err != nil {
			t.Fatalf("node in slot %d aborted: %v", slot, err)
		}
	}
	if len(nodes) != total {
		t.Fatalf("%d distinct member ids, want %d", len(nodes), total)
	}

	// The join produced epoch 2 and every member — including the one
	// behind the faulty link — applied it.
	for id, pn := range nodes {
		if pn.Epoch() != 2 {
			t.Errorf("node %d finished on epoch %d, want 2", id, pn.Epoch())
		}
	}
	if coord.Epoch() != 2 {
		t.Errorf("coordinator epoch = %d, want 2", coord.Epoch())
	}

	// All three drops fired: the 0–1 link exists from the founders'
	// triangle onward, and member 0 broadcasts on it every round.
	if faults.Fired() != 3 {
		t.Fatalf("injected faults fired %d times, want 3", faults.Fired())
	}

	// Training converged: consensus across all four members, and the
	// aggregate objective improved on the shared initialization.
	ref := nodes[0].Engine().Params()
	for id, pn := range nodes {
		if d := pn.Engine().Params().Sub(ref).NormInf(); d > 2e-2 {
			t.Errorf("node %d disagrees with node 0 by %v after %d rounds", id, d, rounds)
		}
	}
	var finalLoss float64
	for _, pn := range nodes {
		finalLoss += pn.Engine().LocalLoss()
	}
	initLoss := float64(total) * model.MeanLoss(m, init, ds)
	if finalLoss >= initLoss {
		t.Errorf("aggregate loss %v did not improve on initial %v", finalLoss, initLoss)
	}
}
