package core

import (
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/transport"
	"github.com/snapml/snap/internal/weights"
)

// startPeerNodes builds a complete-graph TCP cluster of n PeerNodes with a
// shared config, leaving per-node tweaks to the mutate callback.
func startPeerNodes(t *testing.T, n int, roundTimeout time.Duration,
	mutate func(i int, cfg *PeerNodeConfig)) []*PeerNode {
	t.Helper()
	_, parts := smallPartitions(t, n, 60, 21)
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLinearSVM(8)
	init := m.InitParams(31)

	nodes := make([]*PeerNode, n)
	for i := 0; i < n; i++ {
		cfg := PeerNodeConfig{
			Engine: EngineConfig{
				ID: i, Model: m, Data: parts[i], Alpha: 0.1,
				WRow: w.Row(i), Neighbors: g.Neighbors(i),
				Policy: SendSelected, Init: init,
			},
			ListenAddr:   "127.0.0.1:0",
			RoundTimeout: roundTimeout,
			Logf:         t.Logf,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		pn, err := NewPeerNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = pn
		t.Cleanup(func() { pn.Close() })
	}
	addrs := make(map[int]string, n)
	for i, pn := range nodes {
		addrs[i] = pn.Addr()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range g.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			errs[i] = pn.Connect(neighbors)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("connect node %d: %v", i, err)
		}
	}
	return nodes
}

// TestPeerNodeSurvivesKilledNeighbor kills one node a few rounds into
// training and checks the survivors neither abort nor pay more than
// bounded straggler timeouts: the dead link is evicted, so the remaining
// rounds run at live-cluster speed.
func TestPeerNodeSurvivesKilledNeighbor(t *testing.T) {
	const (
		roundTimeout   = 1 * time.Second
		victimRounds   = 5
		survivorRounds = 40
	)
	nodes := startPeerNodes(t, 3, roundTimeout, nil)

	var wg sync.WaitGroup
	errs := make([]error, 3)
	// The victim trains a few rounds, then dies abruptly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[2] = nodes[2].Run(victimRounds)
		nodes[2].Close()
	}()

	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = nodes[i].Run(survivorRounds)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d aborted: %v", i, err)
		}
	}
	// Without eviction every post-kill round would block the full
	// RoundTimeout: ≥ 35s here. With eviction the kill costs at most a
	// couple of timeouts (the in-flight round on each survivor).
	if limit := time.Duration(survivorRounds-victimRounds)*roundTimeout - 5*time.Second; elapsed >= limit {
		t.Errorf("survivors took %v; dead neighbor should cost at most ~one RoundTimeout, not every round (limit %v)", elapsed, limit)
	}
	for i := 0; i < 2; i++ {
		if nodes[i].Healthy(2) {
			t.Errorf("node %d still reports dead neighbor 2 as healthy", i)
		}
		if st := nodes[i].LinkStats()[2]; st.Disconnects < 1 {
			t.Errorf("node %d link stats to victim = %+v, want a recorded disconnect", i, st)
		}
	}
}

// TestPeerNodeReconnectTriggersRefreshAndConverges resets one link
// mid-training via deterministic fault injection and checks the full
// repair path: the link reconnects with backoff, both ends broadcast a
// full-parameter refresh (healing the stale views EXTRA's correction
// history cannot tolerate), and the cluster still reaches consensus.
func TestPeerNodeReconnectTriggersRefreshAndConverges(t *testing.T) {
	const rounds = 60
	faults := transport.NewFaultSet().Add(
		transport.FaultRule{Peer: 1, Round: 10, Action: transport.FaultReset})
	nodes := startPeerNodes(t, 3, 2*time.Second, func(i int, cfg *PeerNodeConfig) {
		if i == 0 {
			cfg.Faults = faults
		}
	})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			_, errs[i] = pn.Run(rounds)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("node %d aborted: %v", i, err)
		}
	}

	if faults.Fired() != 1 {
		t.Fatalf("fault fired %d times, want 1", faults.Fired())
	}
	// The reset must have healed: link up again, reconnect recorded, and
	// both ends of it performed a reconnect-triggered full refresh.
	if !nodes[0].Healthy(1) || !nodes[1].Healthy(0) {
		t.Error("reset link did not reconnect")
	}
	if st := nodes[0].LinkStats()[1]; st.Reconnects < 1 {
		t.Errorf("node 0 link stats to 1 = %+v, want a reconnect", st)
	}
	if nodes[0].Refreshes() < 1 {
		t.Error("node 0 never sent a reconnect-triggered full refresh")
	}
	if nodes[1].Refreshes() < 1 {
		t.Error("node 1 never sent a reconnect-triggered full refresh")
	}
	// One broadcast failed (the injected reset) but was tolerated.
	if nodes[0].SendFailures() < 1 {
		t.Error("node 0 recorded no tolerated send failure")
	}

	// Consensus: the refresh heals the stale views, so the cluster
	// converges essentially as if the reset never happened.
	ref := nodes[0].Engine().Params()
	for i := 1; i < 3; i++ {
		if d := nodes[i].Engine().Params().Sub(ref).NormInf(); d > 1e-2 {
			t.Errorf("node %d disagrees with node 0 by %v after %d rounds; stale views were not healed", i, d, rounds)
		}
	}
}
