package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

// paperDetector mirrors the stopping rule the experiment harness uses.
func paperDetector() metrics.ConvergenceDetector {
	return metrics.ConvergenceDetector{RelTol: 1e-3, Patience: 3, ConsensusTol: 0.05}
}

// creditSetup builds a shared credit-data workload split across n nodes.
func creditSetup(t *testing.T, n, total int, seed int64) (m model.Model, parts []*dataset.Dataset, test *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := dataset.SyntheticCredit(dataset.CreditConfig{Samples: total, Features: 24}, rng)
	train, test := ds.Split(0.85, rng)
	parts, err := train.Partition(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	return model.NewLinearSVM(24), parts, test
}

// centralizedAggregateLoss trains on the pooled data with plain gradient
// descent and returns the aggregate objective Σ_i f_i(x) at the solution.
func centralizedAggregateLoss(m model.Model, parts []*dataset.Dataset, steps int, lr float64, seed int64) float64 {
	var all []dataset.Sample
	for _, p := range parts {
		all = append(all, p.Samples...)
	}
	x := m.InitParams(seed)
	for s := 0; s < steps; s++ {
		g := m.Gradient(x, all)
		x.AXPYInPlace(-lr, g)
	}
	var total float64
	for _, p := range parts {
		total += m.Loss(x, p.Samples)
	}
	return total
}

func TestClusterValidation(t *testing.T) {
	m, parts, test := creditSetup(t, 3, 600, 1)
	base := ClusterConfig{
		Topology: graph.Complete(3), Model: m, Partitions: parts, Test: test, Alpha: 0.1,
	}

	bad := base
	bad.Topology = nil
	if _, err := NewCluster(bad); err == nil {
		t.Error("nil topology accepted")
	}

	bad = base
	disconnected := graph.New(3)
	disconnected.AddEdge(0, 1)
	bad.Topology = disconnected
	if _, err := NewCluster(bad); err == nil {
		t.Error("disconnected topology accepted")
	}

	bad = base
	bad.Partitions = parts[:2]
	if _, err := NewCluster(bad); err == nil {
		t.Error("partition count mismatch accepted")
	}

	bad = base
	bad.Model = nil
	if _, err := NewCluster(bad); err == nil {
		t.Error("nil model accepted")
	}

	bad = base
	bad.Alpha = -1
	if _, err := NewCluster(bad); err == nil {
		t.Error("negative alpha accepted")
	}
}

func TestClusterSNAP0MatchesCentralized(t *testing.T) {
	m, parts, test := creditSetup(t, 4, 2400, 2)
	c, err := NewCluster(ClusterConfig{
		Topology:      graph.RandomConnected(4, 3, rand.New(rand.NewSource(5))),
		Model:         m,
		Partitions:    parts,
		Test:          test,
		Alpha:         0.1,
		Policy:        SendChanged,
		MaxIterations: 500,
		Convergence:   metrics.ConvergenceDetector{RelTol: 1e-6, Patience: 5, ConsensusTol: 0.01},
		Seed:          7,
		EvalEvery:     100,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("SNAP-0 did not converge in %d iterations", res.Iterations)
	}
	central := centralizedAggregateLoss(m, parts, 4000, 0.05, 7)
	if res.FinalLoss > central*1.03+1e-6 {
		t.Errorf("SNAP-0 aggregate loss %v, centralized %v — should match within 3%%", res.FinalLoss, central)
	}
	if last, _ := res.Trace.Last(); last.Consensus > 0.02 {
		t.Errorf("consensus residual = %v, want small", last.Consensus)
	}
}

func TestClusterCostOrderingOverFixedHorizon(t *testing.T) {
	// Over an identical fixed horizon SNAP sends a subset of what SNAP-0
	// sends, which sends a subset of what SNO sends — per-message frames
	// are monotone in the withheld count, so total costs must be ordered.
	m, parts, _ := creditSetup(t, 4, 1600, 3)
	topo := graph.Complete(4)
	run := func(policy SendPolicy) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts,
			Alpha: 0.1, Policy: policy, MaxIterations: 250,
			Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 10000},
			Seed:        11,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	snap := run(SendSelected)
	snap0 := run(SendChanged)
	sno := run(SendAll)
	if !(snap.TotalCost < snap0.TotalCost && snap0.TotalCost <= sno.TotalCost) {
		t.Errorf("cost ordering violated: snap=%v snap0=%v sno=%v",
			snap.TotalCost, snap0.TotalCost, sno.TotalCost)
	}
}

func TestClusterSNAPConvergesLikeSNAP0(t *testing.T) {
	m, parts, test := creditSetup(t, 5, 2000, 3)
	topo := graph.RandomConnected(5, 3, rand.New(rand.NewSource(9)))
	run := func(policy SendPolicy) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, Policy: policy, MaxIterations: 400,
			Convergence: paperDetector(),
			Seed:        11, EvalEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	snap := run(SendSelected)
	snap0 := run(SendChanged)

	if !snap.Converged {
		t.Errorf("SNAP did not converge in %d iterations", snap.Iterations)
	}
	if !snap0.Converged {
		t.Errorf("SNAP-0 did not converge in %d iterations", snap0.Iterations)
	}
	// Accuracy parity within 2 points (paper: SNAP matches SNAP-0/centralized).
	if math.Abs(snap.FinalAccuracy-snap0.FinalAccuracy) > 0.02 {
		t.Errorf("SNAP accuracy %v vs SNAP-0 %v", snap.FinalAccuracy, snap0.FinalAccuracy)
	}
	// SNAP should not need drastically more iterations (paper: 3-4 more).
	if snap.Iterations > snap0.Iterations+20 {
		t.Errorf("SNAP took %d iterations vs SNAP-0 %d", snap.Iterations, snap0.Iterations)
	}
}

func TestClusterStragglersStillConverge(t *testing.T) {
	m, parts, test := creditSetup(t, 6, 1800, 4)
	topo := graph.RandomConnected(6, 3, rand.New(rand.NewSource(13)))
	run := func(failureRate float64) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, Policy: SendChanged, MaxIterations: 500,
			Convergence: paperDetector(),
			Seed:        17, FailureRate: failureRate, EvalEvery: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	faulty := run(0.05)
	if !clean.Converged || !faulty.Converged {
		t.Fatalf("convergence: clean=%v faulty=%v", clean.Converged, faulty.Converged)
	}
	if math.Abs(faulty.FinalAccuracy-clean.FinalAccuracy) > 0.03 {
		t.Errorf("straggler accuracy %v vs clean %v", faulty.FinalAccuracy, clean.FinalAccuracy)
	}
}

func TestClusterDeterministic(t *testing.T) {
	m, parts, test := creditSetup(t, 4, 800, 5)
	topo := graph.Ring(4)
	run := func() *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts, Test: test,
			Alpha: 0.1, Policy: SendSelected, MaxIterations: 60,
			Seed: 23, EvalEvery: 30,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Iterations != b.Iterations || a.TotalCost != b.TotalCost {
		t.Fatalf("runs differ: iters %d/%d cost %v/%v", a.Iterations, b.Iterations, a.TotalCost, b.TotalCost)
	}
	for i := range a.Trace.Stats {
		if a.Trace.Stats[i].Loss != b.Trace.Stats[i].Loss {
			t.Fatalf("loss differs at round %d: %v vs %v", i, a.Trace.Stats[i].Loss, b.Trace.Stats[i].Loss)
		}
	}
}

func TestClusterWeightOptimizationDoesNotSlowConvergence(t *testing.T) {
	m, parts, _ := creditSetup(t, 20, 4000, 6)
	topo := graph.RandomConnected(20, 4, rand.New(rand.NewSource(31)))
	run := func(opt bool) *Result {
		c, err := NewCluster(ClusterConfig{
			Topology: topo, Model: m, Partitions: parts,
			Alpha: 0.1, Policy: SendChanged, MaxIterations: 400,
			Convergence:     paperDetector(),
			Seed:            37,
			OptimizeWeights: opt,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	optimized := run(true)
	if !plain.Converged || !optimized.Converged {
		t.Fatalf("convergence: plain=%v optimized=%v", plain.Converged, optimized.Converged)
	}
	// Paper Fig. 5: the optimized matrix needs no more iterations, and
	// usually fewer. Allow a tiny slack for detector quantization.
	if optimized.Iterations > plain.Iterations+3 {
		t.Errorf("weight optimization slowed convergence: %d vs %d iterations",
			optimized.Iterations, plain.Iterations)
	}
}

func TestClusterSNAPCostDecays(t *testing.T) {
	m, parts, _ := creditSetup(t, 4, 1200, 8)
	c, err := NewCluster(ClusterConfig{
		Topology: graph.Complete(4), Model: m, Partitions: parts,
		Alpha: 0.1, Policy: SendSelected, MaxIterations: 420,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-12, Patience: 10000}, // run all rounds
		Seed:        41,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	early := avg(res.PerRoundCost[1:11])
	late := avg(res.PerRoundCost[len(res.PerRoundCost)-10:])
	if late > 0.7*early {
		t.Errorf("per-round cost did not decay: early %v late %v", early, late)
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestClusterSuppliedWeightsValidation(t *testing.T) {
	m, parts, _ := creditSetup(t, 3, 300, 9)
	base := ClusterConfig{
		Topology: graph.Complete(3), Model: m, Partitions: parts, Alpha: 0.1,
	}

	bad := base
	bad.Weights = linalg.NewMatrix(2, 2)
	if _, err := NewCluster(bad); err == nil {
		t.Error("wrong-size weight matrix accepted")
	}

	bad = base
	notStochastic := linalg.Identity(3)
	notStochastic.Set(0, 0, 0.5) // rows no longer sum to 1
	bad.Weights = notStochastic
	if _, err := NewCluster(bad); err == nil {
		t.Error("non-stochastic weight matrix accepted")
	}

	good := base
	good.Weights = weights.Metropolis(graph.Complete(3), 0)
	c, err := NewCluster(good)
	if err != nil {
		t.Fatal(err)
	}
	if c.WeightMatrix() != good.Weights {
		t.Error("supplied weight matrix not used")
	}
}

func TestClusterEvalEvery(t *testing.T) {
	m, parts, test := creditSetup(t, 3, 300, 10)
	c, err := NewCluster(ClusterConfig{
		Topology: graph.Complete(3), Model: m, Partitions: parts, Test: test,
		Alpha: 0.1, MaxIterations: 10, EvalEvery: 4, Seed: 11,
		Convergence: metrics.ConvergenceDetector{RelTol: 1e-15, Patience: 1 << 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, stat := range res.Trace.Stats {
		evaluated := !math.IsNaN(stat.Accuracy)
		wantEval := i%4 == 0 || i == 9
		if evaluated != wantEval {
			t.Errorf("round %d: accuracy evaluated=%v, want %v", i, evaluated, wantEval)
		}
	}
	if math.IsNaN(res.FinalAccuracy) {
		t.Error("final accuracy missing")
	}
}

func TestEngineUnknownPolicy(t *testing.T) {
	m, parts, _ := creditSetup(t, 3, 300, 12)
	w := weights.Metropolis(graph.Complete(3), 0)
	eng, err := NewEngine(EngineConfig{
		ID: 0, Model: m, Data: parts[0], Alpha: 0.1,
		WRow: w.Row(0), Neighbors: graph.Complete(3).Neighbors(0),
		Policy: SendPolicy(99), Init: m.InitParams(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.BuildUpdate(0); err == nil {
		t.Error("unknown policy accepted by BuildUpdate")
	}
}
