package core

import "github.com/snapml/snap/internal/linalg"

// ParamSink receives end-of-round model snapshots from a training node.
// It is the narrow seam between training and serving: internal/serve's
// Feed implements it, but core deliberately depends only on this
// interface so the serving plane stays optional.
//
// Publish is called from the round loop's goroutine with the node's live
// iterate; implementations must copy the vector during the call and must
// not retain it — the engine recycles the buffer on the next Step.
type ParamSink interface {
	Publish(round, epoch int, params linalg.Vector)
}
