package core

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/controlplane"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
	"github.com/snapml/snap/internal/transport"
)

// PeerNodeConfig configures one real TCP edge server (the paper's testbed
// mode: each node is a process exchanging frames over sockets).
type PeerNodeConfig struct {
	// Engine configures the local EXTRA engine. Engine.Neighbors must
	// match the keys of NeighborAddrs. The engine's repair knobs
	// (RefreshEvery, FullSendRound0, RestartEvery) apply to the TCP path
	// exactly as to the simulator and are what make selective
	// transmission safe on flaky links.
	Engine EngineConfig
	// ListenAddr is this node's TCP listen address (e.g. "127.0.0.1:0").
	ListenAddr string
	// Listener, when set, supplies an already-bound data-plane listener and
	// ListenAddr is ignored. Elastic nodes need it: the coordinator join
	// handshake advertises the data-plane address, so the socket must be
	// bound before the node id (and hence the engine) exists.
	Listener net.Listener
	// Control, when set, attaches the node to a cluster coordinator: each
	// round is reported via heartbeat, and newer epochs are applied at the
	// next round boundary (links dropped/dialed, weight row swapped, EXTRA
	// restarted, full-parameter refresh forced).
	Control *controlplane.Client
	// Epoch is the id of the epoch the initial Engine configuration was
	// derived from (0 for a static cluster); only strictly newer epochs are
	// applied.
	Epoch int
	// StartRound is the first round Run executes. Founders start at 0;
	// a node joining mid-training starts at its admission epoch's
	// ApplyAtRound, aligning its round counter with the cluster.
	StartRound int
	// RoundTimeout bounds how long a round waits for straggler neighbors
	// before proceeding with whatever arrived (default 5s).
	RoundTimeout time.Duration
	// Sequential disables the pipelined round loop: frames are gathered
	// in a batch and the gradient is computed after integration instead
	// of concurrently with broadcast+gather. The iterates are bitwise
	// identical either way (DESIGN.md §14); the knob exists for A/B
	// measurement and as a diagnostic fallback, not as a tuning option.
	Sequential bool
	// EvalEvery computes the local loss every this many rounds (default 1;
	// set larger for expensive models — a full-partition objective pass
	// costs about half a gradient and runs on the round's critical path).
	// Skipped rounds report the last evaluated value, mirroring
	// ClusterConfig.EvalEvery.
	EvalEvery int
	// ConnectTimeout bounds cluster formation (default 10s).
	ConnectTimeout time.Duration
	// Logf, when set, receives diagnostic messages about tolerated faults
	// (failed sends, reconnects). Nil discards them.
	Logf func(format string, args ...any)
	// Faults, when set, injects deterministic transport failures (drop,
	// delay, reset at a given round) — for testing fault tolerance
	// without real network flakiness.
	Faults *transport.FaultSet
	// Obs, when set, receives the node's metrics (per-link byte/frame
	// counters, gather-wait and round-phase histograms, APE gauges) and
	// its JSONL round-lifecycle event stream. Serve it with obs.Handler
	// to scrape the node mid-training. Nil disables observation.
	Obs *obs.Observer
	// Tracer, when set, records per-round spans (build/encode/broadcast/
	// gather/decode/integrate plus the engine's grad/mix sub-spans), stamps
	// a trace context onto every outgoing frame, links received frames back
	// to the senders' timelines, and — in elastic mode — pushes completed
	// round digests to the coordinator on heartbeats. Nil disables tracing
	// at zero cost.
	Tracer *trace.Tracer
	// Feed, when set, receives a snapshot of the model parameters at the
	// end of every round (stamped with the round and current epoch) —
	// the publication hook the serving plane's hot-swap feed hangs off.
	// Publish runs synchronously in the round loop and copies the
	// iterate, so implementations must be cheap (serve.Feed is one
	// memcpy plus a pointer swap). Nil disables publication.
	Feed ParamSink
}

// PeerNode runs a SNAP engine over a real TCP transport. Synchronization
// follows the paper's RIP-like model: every round the node broadcasts its
// selected parameters, then waits (bounded by RoundTimeout) for the
// round's frame from each currently connected neighbor; missing neighbors
// are treated as stragglers and their last-known parameters are reused.
//
// The node is fault tolerant end to end: a single failed send is logged
// and tolerated (the receiver already handles the missing frame as a
// straggler), dead links are evicted so later rounds do not wait for
// them, the transport reconnects with backoff, and after a reconnect the
// node broadcasts its complete parameter vector once — EXTRA's
// accumulated correction history makes a silently stale neighbor view
// poisonous, so the refresh is required for re-convergence, not merely
// nice to have.
type PeerNode struct {
	cfg    PeerNodeConfig
	engine *Engine
	peer   *transport.Peer

	// epoch is the id of the last applied cluster epoch (elastic mode).
	// Written by the round loop in maybeReconfigure and read by Epoch()
	// from any goroutine, so it is atomic.
	epoch atomic.Int64

	// needRefresh is set by the transport's reconnect callback and
	// consumed at the top of the next round: the node sends its full
	// parameter vector so the reconnected neighbor's stale view heals.
	needRefresh  atomic.Bool
	sendFailures atomic.Int64
	refreshes    atomic.Int64

	// encBuf and updates are the round loop's reusable encode buffer and
	// decoded-update slice (Peer.Send writes synchronously, so the frame
	// buffer is free for reuse as soon as Broadcast returns).
	encBuf  []byte
	updates []*codec.Update

	// Pipelined-round state (DESIGN.md §14). gradCmd/gradDone drive the
	// persistent gradient worker: persistent because a `go func` closure
	// per round would allocate on the hot path. The round loop sends the
	// round number, the worker runs Engine.ComputeGradient and signals
	// gradDone; sends and receives are strictly paired, which is the
	// happens-before edge that makes the engine's gradient scratch safe.
	// gradDone is buffered so the worker can always deposit its signal
	// and exit on shutdown. gradRunning lets the streaming-gather
	// callback attribute frames to the overlap window without touching
	// the channel; gradFinished is written by the worker before the done
	// signal, so reading it after <-gradDone is ordered.
	gradCmd      chan int
	gradDone     chan struct{}
	gradStop     sync.Once
	gradRunning  atomic.Bool
	gradFinished time.Time
	// decUpd is the pipelined path's reusable decode target: frames are
	// decoded and ingested one at a time, so one Update suffices where
	// the batch path needs a pooled slice.
	decUpd codec.Update

	met roundMetrics
}

// roundMetrics caches the round-driver metric handles: one histogram per
// pipeline phase (the round latency breakdown), whole-round latency, and
// the fault/refresh counters mirrored into the registry.
type roundMetrics struct {
	build, encode, broadcast         *obs.Histogram
	gather, decode, integrate        *obs.Histogram
	roundSeconds, overlapSeconds     *obs.Histogram
	round, roundBytes, localLoss     *obs.Gauge
	streamDepth                      *obs.Gauge
	streamFrames                     *obs.Counter
	sendFailures, corrupt, refreshes *obs.Counter
	epoch                            *obs.Gauge
	epochsApplied                    *obs.Counter
	reconfigSeconds                  *obs.Histogram
}

func newRoundMetrics(o *obs.Observer) roundMetrics {
	phase := func(name string) *obs.Histogram {
		return o.Histogram(obs.Label(obs.MPhaseSeconds, obs.LPhase, name), obs.TimeBuckets)
	}
	return roundMetrics{
		build:          phase("build"),
		encode:         phase("encode"),
		broadcast:      phase("broadcast"),
		gather:         phase("gather"),
		decode:         phase("decode"),
		integrate:      phase("integrate"),
		roundSeconds:   o.Histogram(obs.MRoundSeconds, obs.TimeBuckets),
		overlapSeconds: o.Histogram(obs.MOverlapSeconds, obs.TimeBuckets),
		streamDepth:    o.Gauge(obs.MStreamDepth),
		streamFrames:   o.Counter(obs.MStreamFrames),
		round:          o.Gauge(obs.MRound),
		roundBytes:     o.Gauge(obs.MRoundBytes),
		localLoss:      o.Gauge(obs.MLocalLoss),
		sendFailures:   o.Counter(obs.MSendFailures),
		corrupt:        o.Counter(obs.MCorruptFrames),
		refreshes:      o.Counter(obs.MRefreshes),

		epoch:           o.Gauge(obs.MEpoch),
		epochsApplied:   o.Counter(obs.MEpochsApplied),
		reconfigSeconds: o.Histogram(obs.MReconfigSeconds, obs.TimeBuckets),
	}
}

// NewPeerNode builds the engine and starts listening. Call Connect before
// Run.
func NewPeerNode(cfg PeerNodeConfig) (*PeerNode, error) {
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 10 * time.Second
	}
	cfg.Engine.Obs = cfg.Obs
	cfg.Engine.Trace = cfg.Tracer
	eng, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	var peer *transport.Peer
	if cfg.Listener != nil {
		peer = transport.NewPeerFromListener(cfg.Engine.ID, cfg.Listener)
	} else {
		peer, err = transport.NewPeer(cfg.Engine.ID, cfg.ListenAddr)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Obs != nil {
		peer.SetObserver(cfg.Obs)
	}
	if cfg.Tracer != nil {
		peer.SetTracer(cfg.Tracer)
		if cfg.Control != nil {
			cfg.Control.SetTracer(cfg.Tracer)
		}
	}
	pn := &PeerNode{cfg: cfg, engine: eng, peer: peer, met: newRoundMetrics(cfg.Obs)}
	pn.epoch.Store(int64(cfg.Epoch))
	pn.met.epoch.Set(float64(cfg.Epoch))
	peer.SetReconnectHandler(func(nid int) {
		pn.needRefresh.Store(true)
		pn.logf("node %d: link to %d reconnected; scheduling full-parameter refresh", cfg.Engine.ID, nid)
	})
	if cfg.Faults != nil {
		peer.SetFaults(cfg.Faults)
	}
	pn.gradCmd = make(chan int)
	pn.gradDone = make(chan struct{}, 1)
	go pn.gradWorker()
	return pn, nil
}

// gradWorker is the persistent gradient goroutine behind the pipelined
// round loop: it runs Engine.ComputeGradient for each round the loop
// hands it, concurrently with that round's broadcast and gather. It
// exits when Close closes gradCmd (ranging over the channel is the
// cancellation).
func (pn *PeerNode) gradWorker() {
	for round := range pn.gradCmd {
		pn.engine.ComputeGradient(round)
		pn.gradFinished = time.Now()
		pn.gradRunning.Store(false)
		pn.gradDone <- struct{}{}
	}
}

func (pn *PeerNode) logf(format string, args ...any) {
	if pn.cfg.Logf != nil {
		pn.cfg.Logf(format, args...)
	}
}

// Addr returns the node's actual listen address (useful with port 0).
func (pn *PeerNode) Addr() string { return pn.peer.Addr() }

// Engine exposes the local engine (for evaluation after training).
func (pn *PeerNode) Engine() *Engine { return pn.engine }

// BytesSent reports the payload bytes this node wrote to its sockets —
// the testbed measurement the paper reports in Fig. 4.
func (pn *PeerNode) BytesSent() int64 { return pn.peer.BytesSent() }

// FramesSent reports how many data-plane frames this node has written.
func (pn *PeerNode) FramesSent() int64 { return pn.peer.FramesSent() }

// Tracer returns the node's round tracer (nil when tracing is off).
func (pn *PeerNode) Tracer() *trace.Tracer { return pn.cfg.Tracer }

// SendFailures reports how many broadcasts hit at least one failed
// neighbor link (each was tolerated, not fatal).
func (pn *PeerNode) SendFailures() int64 { return pn.sendFailures.Load() }

// Refreshes reports how many reconnect-triggered full-parameter
// broadcasts this node has performed.
func (pn *PeerNode) Refreshes() int64 { return pn.refreshes.Load() }

// LinkStats returns per-neighbor connect/disconnect/reconnect counters
// from the transport.
func (pn *PeerNode) LinkStats() map[int]transport.LinkStats { return pn.peer.Stats() }

// Healthy reports whether the link to neighbor nid is currently up.
func (pn *PeerNode) Healthy(nid int) bool { return pn.peer.Healthy(nid) }

// Connect establishes connections to the given neighbors (node id →
// listen address). It is a separate step from construction so clusters on
// ephemeral ports can start all listeners first and exchange addresses
// afterwards.
func (pn *PeerNode) Connect(neighborAddrs map[int]string) error {
	return pn.peer.Connect(neighborAddrs, pn.cfg.ConnectTimeout)
}

// Run executes rounds [StartRound, rounds) and returns the per-iteration
// trace (loss is this node's local objective; global metrics are the
// caller's concern since no single node sees the whole cluster). rounds
// is the cluster-wide round horizon, not a count: a node that joined at
// StartRound 20 with rounds = 40 executes 20 rounds.
//
// Per the paper's straggler semantics a failed neighbor link never aborts
// the node: the send error is recorded and the round proceeds; the
// receiver reuses the neighbor's last-known parameters. Only local errors
// (engine, codec) are fatal.
//
// In elastic mode (Control set) each round boundary first applies any
// newer epoch, then reports the round to the coordinator.
func (pn *PeerNode) Run(rounds int) (*metrics.Trace, error) {
	id := pn.engine.ID()
	result := &metrics.Trace{}
	tr := pn.cfg.Tracer
	fullFrame := int64(codec.FullFrameBytes(pn.cfg.Engine.Model.NumParams(), pn.cfg.Engine.Float32Wire))
	evalEvery := pn.cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 1
	}
	lastLoss := math.NaN() // reported on rounds that skip the eval
	startRound := pn.cfg.StartRound
	if pn.cfg.Control != nil {
		// A joiner that was slow between admission and Run may find the
		// cluster already past its epoch's ApplyAtRound; round-tagged
		// frames buffered by the transport reveal how far, and skipping
		// straight there avoids draining the backlog one round at a time.
		if lr := pn.peer.LatestRound(); lr > startRound {
			pn.logf("node %d: fast-forwarding from round %d to %d (cluster is ahead)", id, startRound, lr)
			startRound = lr
		}
	}
	for round := startRound; round < rounds; round++ {
		if err := pn.maybeReconfigure(round); err != nil {
			return result, err
		}
		if pn.cfg.Control != nil {
			pn.cfg.Control.ReportRound(round)
		}
		roundStart := time.Now()
		bytesBefore := pn.peer.BytesSent()
		framesBefore := pn.peer.FramesSent()
		pn.met.round.Set(float64(round))
		tr.StartRound(round, roundStart)
		pn.cfg.Obs.Emit(id, obs.EvRoundStart, round, -1, nil)

		if pn.needRefresh.Swap(false) {
			pn.engine.RequestFullSend()
			pn.refreshes.Add(1)
			pn.met.refreshes.Inc()
		}

		pipelined := !pn.cfg.Sequential
		if pipelined {
			// Open the ingest window and kick the gradient worker before
			// even building the outgoing update: ComputeGradient reads
			// only the iterate and local data, state disjoint from
			// everything build/encode/broadcast/ingest touch (DESIGN.md
			// §14), so the whole comms window can hide behind it. Every
			// kick is paired with exactly one gradDone receive below —
			// including on the error returns — before StepMix or the next
			// round's kick.
			pn.engine.BeginIntegrate()
			pn.gradRunning.Store(true)
			pn.gradCmd <- round
		}
		t := time.Now()
		u, err := pn.engine.BuildUpdate(round)
		if err != nil {
			if pipelined {
				<-pn.gradDone
			}
			return result, err
		}
		end := time.Now()
		pn.met.build.Observe(end.Sub(t).Seconds())
		tr.Phase(round, trace.PhaseBuild, t, end)

		t = end
		if pn.cfg.Engine.Float32Wire {
			pn.encBuf, _, err = codec.EncodeLossyTo(pn.encBuf, u)
		} else {
			pn.encBuf, _, err = codec.EncodeTo(pn.encBuf, u)
		}
		if err != nil {
			if pipelined {
				<-pn.gradDone
			}
			return result, err
		}
		frame := pn.encBuf
		end = time.Now()
		pn.met.encode.Observe(end.Sub(t).Seconds())
		tr.Phase(round, trace.PhaseEncode, t, end)

		t = end
		bcastStart := t
		if err := pn.peer.Broadcast(round, frame); err != nil {
			// A dead link mid-broadcast is a straggler, not a node
			// failure: the receiver reuses our last parameters and the
			// transport reconnects in the background.
			pn.sendFailures.Add(1)
			pn.met.sendFailures.Inc()
			if pn.cfg.Obs.LogEnabled() {
				f := obs.GetFields()
				f["kind"] = "send_failure"
				f["error"] = err.Error()
				pn.cfg.Obs.Emit(id, obs.EvFault, round, -1, f)
				obs.PutFields(f)
			}
			pn.logf("node %d: broadcast round %d: %v (continuing; link treated as straggler)",
				id, round, err)
		}
		end = time.Now()
		pn.met.broadcast.Observe(end.Sub(t).Seconds())
		tr.Phase(round, trace.PhaseBroadcast, t, end)
		// A full send would have cost one maximal frame per neighbor
		// actually written to: the counter-derived ground truth for the
		// aggregator's bytes-saved accounting.
		frames := pn.peer.FramesSent() - framesBefore
		tr.Sent(round, int(frames), pn.peer.BytesSent()-bytesBefore,
			frames*fullFrame, len(u.Indices), u.NumParams)
		if pn.cfg.Obs.LogEnabled() {
			f := obs.GetFields()
			f["bytes"] = len(frame)
			f["selected"] = len(u.Indices)
			pn.cfg.Obs.Emit(id, obs.EvBroadcast, round, -1, f)
			obs.PutFields(f)
		}

		var iter linalg.Vector
		if pipelined {
			iter, err = pn.roundTailPipelined(round, tr, bcastStart)
		} else {
			iter, err = pn.roundTailSequential(round, tr)
		}
		if err != nil {
			return result, err
		}
		if pn.cfg.Feed != nil {
			// Same-goroutine read of the live iterate is safe here: the
			// engine does not touch it again until the next Step, and
			// Publish copies before returning.
			pn.cfg.Feed.Publish(round, int(pn.epoch.Load()), iter)
		}
		pn.peer.ForgetRound(round)

		// The full-partition objective pass is the priciest non-training
		// work on the round path; honor the eval cadence and carry the
		// last value forward between evaluations.
		if round%evalEvery == 0 || math.IsNaN(lastLoss) {
			lastLoss = pn.engine.LocalLoss()
		}
		loss := lastLoss
		roundBytes := pn.peer.BytesSent() - bytesBefore
		roundEnd := time.Now()
		roundSec := roundEnd.Sub(roundStart).Seconds()
		pn.met.localLoss.Set(loss)
		pn.met.roundBytes.Set(float64(roundBytes))
		pn.met.roundSeconds.Observe(roundSec)
		tr.EndRound(round, roundEnd)
		if pn.cfg.Obs.LogEnabled() {
			f := obs.GetFields()
			f["seconds"] = roundSec
			f["loss"] = loss
			f["bytes"] = roundBytes
			pn.cfg.Obs.Emit(id, obs.EvRoundEnd, round, -1, f)
			obs.PutFields(f)
		}

		result.Append(metrics.IterationStat{
			Round: round,
			Loss:  loss,
			// No test set is evaluated on the testbed path; NaN is the
			// documented "not evaluated" marker, keeping these rounds out
			// of IterationsToAccuracy / CostToAccuracy.
			Accuracy: math.NaN(),
			// The socket-byte delta of this round, so testbed traces
			// support the simulator's cost-to-accuracy analysis. (Raw
			// bytes: a real deployment does not know physical hop counts.)
			RoundCost: float64(roundBytes),
		})
	}
	return result, nil
}

// roundTailPipelined finishes a round on the streaming path: frames are
// decoded and ingested one by one as GatherStream delivers them, while
// the gradient worker (kicked before build) is still running; StepMix
// joins the two at the barrier. bcastStart anchors the overlap
// accounting — the gradient was kicked before build, so the hidden
// comms time is [bcastStart, min(gradient end, gather end)].
//
//snap:returns-borrowed
func (pn *PeerNode) roundTailPipelined(round int, tr *trace.Tracer, bcastStart time.Time) (linalg.Vector, error) {
	gatherStart := time.Now()
	var (
		ingestErr        error
		got, overlapped  int
		decSecs, intSecs float64
		firstDecode      time.Time
		lastDecode       time.Time
		lastIngest       time.Time
	)
	pn.peer.GatherStream(round, pn.cfg.RoundTimeout, func(from int, f []byte) bool {
		d0 := time.Now()
		dec := &pn.decUpd
		if err := codec.DecodeInto(dec, f); err != nil {
			// A corrupt frame from one neighbor is that neighbor's
			// problem, not ours: drop it and reuse their last view.
			transport.RecycleFrame(f)
			pn.noteCorruptFrame(round, from, err)
			return true
		}
		// DecodeInto never aliases the wire bytes, so the frame buffer
		// can rejoin the transport's receive pool immediately.
		transport.RecycleFrame(f)
		d1 := time.Now()
		tr.Span(round, trace.SpanFrameDecode, d0, d1)
		if err := pn.engine.IngestFrame(dec); err != nil {
			ingestErr = err
			return false // abort the stream; the error is fatal
		}
		i1 := time.Now()
		decSecs += d1.Sub(d0).Seconds()
		intSecs += i1.Sub(d1).Seconds()
		if firstDecode.IsZero() {
			firstDecode = d0
		}
		lastDecode, lastIngest = d1, i1
		got++
		if pn.gradRunning.Load() {
			overlapped++
		}
		return true
	})
	gatherEnd := time.Now()
	// The gather phase is the whole stream window; the decode and
	// integrate phases are the slices of it spent off the wire. Their
	// windows overlap the gather window — that is the pipeline, not a
	// bookkeeping bug (DESIGN.md §14).
	pn.met.gather.Observe(gatherEnd.Sub(gatherStart).Seconds())
	tr.Phase(round, trace.PhaseGather, gatherStart, gatherEnd)
	if firstDecode.IsZero() {
		firstDecode, lastDecode, lastIngest = gatherEnd, gatherEnd, gatherEnd
	}
	pn.met.decode.Observe(decSecs)
	tr.Phase(round, trace.PhaseDecode, firstDecode, lastDecode)
	pn.met.integrate.Observe(intSecs)
	tr.Phase(round, trace.PhaseIntegrate, firstDecode, lastIngest)

	// Barrier: the round's gradient must be in scratch before StepMix
	// reads it (and before a fatal return hands the loop back).
	<-pn.gradDone
	if ingestErr != nil {
		return nil, ingestErr
	}
	overlapEnd := pn.gradFinished
	if gatherEnd.Before(overlapEnd) {
		overlapEnd = gatherEnd
	}
	if overlapEnd.After(bcastStart) {
		pn.met.overlapSeconds.Observe(overlapEnd.Sub(bcastStart).Seconds())
		tr.Span(round, trace.SpanOverlap, bcastStart, overlapEnd)
	} else {
		pn.met.overlapSeconds.Observe(0)
	}
	pn.met.streamDepth.Set(float64(overlapped))
	pn.met.streamFrames.Add(int64(got))
	pn.emitIntegrate(round, got)
	return pn.engine.StepMix(round), nil
}

// roundTailSequential is the historical batch tail — gather, decode
// all, integrate all, then compute the gradient and step. Kept for A/B
// measurement against the pipelined tail: the two produce bitwise-
// identical iterates (TestPipelinedMatchesSequentialTCP).
//
//snap:returns-borrowed
func (pn *PeerNode) roundTailSequential(round int, tr *trace.Tracer) (linalg.Vector, error) {
	t := time.Now()
	inbox := pn.peer.Gather(round, pn.cfg.RoundTimeout)
	end := time.Now()
	pn.met.gather.Observe(end.Sub(t).Seconds())
	tr.Phase(round, trace.PhaseGather, t, end)

	t = end
	pn.updates = pn.updates[:0]
	for from, f := range inbox {
		dec := codec.GetUpdate()
		if err := codec.DecodeInto(dec, f); err != nil {
			codec.PutUpdate(dec)
			pn.noteCorruptFrame(round, from, err)
			continue
		}
		pn.updates = append(pn.updates, dec)
		// DecodeInto never aliases the wire bytes, so the frame buffer
		// can rejoin the transport's receive pool immediately.
		transport.RecycleFrame(f)
	}
	end = time.Now()
	pn.met.decode.Observe(end.Sub(t).Seconds())
	tr.Phase(round, trace.PhaseDecode, t, end)

	t = end
	err := pn.engine.Integrate(pn.updates)
	for i, dec := range pn.updates {
		codec.PutUpdate(dec)
		pn.updates[i] = nil
	}
	if err != nil {
		return nil, err
	}
	end = time.Now()
	pn.met.integrate.Observe(end.Sub(t).Seconds())
	tr.Phase(round, trace.PhaseIntegrate, t, end)
	pn.emitIntegrate(round, len(inbox))
	return pn.engine.Step(round), nil
}

// noteCorruptFrame records a dropped undecodable frame (counter, fault
// event, log line); the sender's last-known view is simply reused.
func (pn *PeerNode) noteCorruptFrame(round, from int, err error) {
	id := pn.engine.ID()
	pn.met.corrupt.Inc()
	if pn.cfg.Obs.LogEnabled() {
		fields := obs.GetFields()
		fields["kind"] = "corrupt_frame"
		fields["error"] = err.Error()
		pn.cfg.Obs.Emit(id, obs.EvFault, round, from, fields)
		obs.PutFields(fields)
	}
	pn.logf("node %d: dropping corrupt round-%d frame from %d: %v",
		id, round, from, err)
}

// emitIntegrate records the end-of-ingest round event with the number
// of neighbor updates applied.
func (pn *PeerNode) emitIntegrate(round, updates int) {
	if pn.cfg.Obs.LogEnabled() {
		f := obs.GetFields()
		f["updates"] = updates
		pn.cfg.Obs.Emit(pn.engine.ID(), obs.EvIntegrate, round, -1, f)
		obs.PutFields(f)
	}
}

// Epoch returns the id of the cluster epoch this node last applied (its
// initial epoch until a reconfiguration happens).
func (pn *PeerNode) Epoch() int { return int(pn.epoch.Load()) }

// maybeReconfigure applies the newest coordinator epoch if the node has
// reached its ApplyAtRound boundary: removed links are dropped, added
// links dialed, the engine's weight row and neighbor set swapped, the
// EXTRA recursion restarted, and a full-parameter refresh forced. Within
// an epoch the node is indistinguishable from a static-cluster one.
func (pn *PeerNode) maybeReconfigure(round int) error {
	if pn.cfg.Control == nil {
		return nil
	}
	plan, err := pn.cfg.Control.PlanNewerThan(int(pn.epoch.Load()))
	if err != nil {
		// The newest epoch excludes this node (evicted after a control-
		// plane outage) or is malformed. Keep training on the current
		// configuration: former neighbors have dropped us, so gathers run
		// on straggler semantics until the caller notices and exits.
		pn.logf("node %d: ignoring epoch: %v", pn.engine.ID(), err)
		return nil
	}
	if plan == nil || round < plan.StartRound {
		return nil
	}
	id := pn.engine.ID()
	start := time.Now()
	oldSet := make(map[int]bool)
	for _, nid := range pn.engine.Neighbors() {
		oldSet[nid] = true
	}
	newSet := make(map[int]bool, len(plan.Neighbors))
	dial := make(map[int]string)
	for _, nid := range plan.Neighbors {
		newSet[nid] = true
		if !oldSet[nid] {
			dial[nid] = plan.Addrs[nid]
		}
	}
	for nid := range oldSet {
		if !newSet[nid] {
			pn.peer.Drop(nid)
		}
	}
	if len(dial) > 0 {
		if err := pn.peer.Connect(dial, pn.cfg.ConnectTimeout); err != nil {
			// A peer that cannot be reached yet is a straggler, not a
			// fatal error: its address is registered, so the transport
			// keeps reconnecting in the background.
			if pn.cfg.Obs != nil {
				pn.cfg.Obs.Emit(id, obs.EvFault, round, -1,
					map[string]any{"kind": "reconfig_connect", "error": err.Error()})
			}
			pn.logf("node %d: epoch %d: connecting new links: %v (continuing)", id, plan.Epoch, err)
		}
	}
	if err := pn.engine.Reconfigure(plan.WRow, plan.Neighbors); err != nil {
		return err
	}
	pn.epoch.Store(int64(plan.Epoch))
	pn.cfg.Control.ReportEpoch(plan.Epoch)
	sec := time.Since(start).Seconds()
	pn.met.epoch.Set(float64(plan.Epoch))
	pn.met.epochsApplied.Inc()
	pn.met.reconfigSeconds.Observe(sec)
	if pn.cfg.Obs != nil {
		pn.cfg.Obs.Emit(id, obs.EvEpochApplied, round, -1, map[string]any{
			"epoch":     plan.Epoch,
			"neighbors": len(plan.Neighbors),
			"seconds":   sec,
		})
	}
	pn.logf("node %d: applied epoch %d at round %d (%d neighbors, %.1fms)",
		id, plan.Epoch, round, len(plan.Neighbors), sec*1000)
	return nil
}

// Leave gracefully leaves an elastic cluster: the coordinator removes the
// node and publishes a shrunk epoch — unless the departure would
// disconnect the remaining topology, in which case an error is returned
// and the node remains a member.
func (pn *PeerNode) Leave(timeout time.Duration) error {
	if pn.cfg.Control == nil {
		return fmt.Errorf("core: node %d is not attached to a coordinator", pn.engine.ID())
	}
	return pn.cfg.Control.Leave(timeout)
}

// Close shuts down the control-plane client (if any), the gradient
// worker, and the transport, returning the first error from the former
// two. Close must not race the node's own Run: finish (or abandon) the
// round loop first, as every test and the snappeer binary do.
func (pn *PeerNode) Close() error {
	pn.gradStop.Do(func() { close(pn.gradCmd) })
	var cerr error
	if pn.cfg.Control != nil {
		cerr = pn.cfg.Control.Close()
	}
	perr := pn.peer.Close()
	if cerr != nil {
		return cerr
	}
	return perr
}
