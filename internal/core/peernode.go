package core

import (
	"sync/atomic"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/transport"
)

// PeerNodeConfig configures one real TCP edge server (the paper's testbed
// mode: each node is a process exchanging frames over sockets).
type PeerNodeConfig struct {
	// Engine configures the local EXTRA engine. Engine.Neighbors must
	// match the keys of NeighborAddrs. The engine's repair knobs
	// (RefreshEvery, FullSendRound0, RestartEvery) apply to the TCP path
	// exactly as to the simulator and are what make selective
	// transmission safe on flaky links.
	Engine EngineConfig
	// ListenAddr is this node's TCP listen address (e.g. "127.0.0.1:0").
	ListenAddr string
	// RoundTimeout bounds how long a round waits for straggler neighbors
	// before proceeding with whatever arrived (default 5s).
	RoundTimeout time.Duration
	// ConnectTimeout bounds cluster formation (default 10s).
	ConnectTimeout time.Duration
	// Logf, when set, receives diagnostic messages about tolerated faults
	// (failed sends, reconnects). Nil discards them.
	Logf func(format string, args ...any)
	// Faults, when set, injects deterministic transport failures (drop,
	// delay, reset at a given round) — for testing fault tolerance
	// without real network flakiness.
	Faults *transport.FaultSet
}

// PeerNode runs a SNAP engine over a real TCP transport. Synchronization
// follows the paper's RIP-like model: every round the node broadcasts its
// selected parameters, then waits (bounded by RoundTimeout) for the
// round's frame from each currently connected neighbor; missing neighbors
// are treated as stragglers and their last-known parameters are reused.
//
// The node is fault tolerant end to end: a single failed send is logged
// and tolerated (the receiver already handles the missing frame as a
// straggler), dead links are evicted so later rounds do not wait for
// them, the transport reconnects with backoff, and after a reconnect the
// node broadcasts its complete parameter vector once — EXTRA's
// accumulated correction history makes a silently stale neighbor view
// poisonous, so the refresh is required for re-convergence, not merely
// nice to have.
type PeerNode struct {
	cfg    PeerNodeConfig
	engine *Engine
	peer   *transport.Peer

	// needRefresh is set by the transport's reconnect callback and
	// consumed at the top of the next round: the node sends its full
	// parameter vector so the reconnected neighbor's stale view heals.
	needRefresh  atomic.Bool
	sendFailures atomic.Int64
	refreshes    atomic.Int64
}

// NewPeerNode builds the engine and starts listening. Call Connect before
// Run.
func NewPeerNode(cfg PeerNodeConfig) (*PeerNode, error) {
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 10 * time.Second
	}
	eng, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	peer, err := transport.NewPeer(cfg.Engine.ID, cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	pn := &PeerNode{cfg: cfg, engine: eng, peer: peer}
	peer.SetReconnectHandler(func(nid int) {
		pn.needRefresh.Store(true)
		pn.logf("node %d: link to %d reconnected; scheduling full-parameter refresh", cfg.Engine.ID, nid)
	})
	if cfg.Faults != nil {
		peer.SetFaults(cfg.Faults)
	}
	return pn, nil
}

func (pn *PeerNode) logf(format string, args ...any) {
	if pn.cfg.Logf != nil {
		pn.cfg.Logf(format, args...)
	}
}

// Addr returns the node's actual listen address (useful with port 0).
func (pn *PeerNode) Addr() string { return pn.peer.Addr() }

// Engine exposes the local engine (for evaluation after training).
func (pn *PeerNode) Engine() *Engine { return pn.engine }

// BytesSent reports the payload bytes this node wrote to its sockets —
// the testbed measurement the paper reports in Fig. 4.
func (pn *PeerNode) BytesSent() int64 { return pn.peer.BytesSent() }

// SendFailures reports how many broadcasts hit at least one failed
// neighbor link (each was tolerated, not fatal).
func (pn *PeerNode) SendFailures() int64 { return pn.sendFailures.Load() }

// Refreshes reports how many reconnect-triggered full-parameter
// broadcasts this node has performed.
func (pn *PeerNode) Refreshes() int64 { return pn.refreshes.Load() }

// LinkStats returns per-neighbor connect/disconnect/reconnect counters
// from the transport.
func (pn *PeerNode) LinkStats() map[int]transport.LinkStats { return pn.peer.Stats() }

// Healthy reports whether the link to neighbor nid is currently up.
func (pn *PeerNode) Healthy(nid int) bool { return pn.peer.Healthy(nid) }

// Connect establishes connections to the given neighbors (node id →
// listen address). It is a separate step from construction so clusters on
// ephemeral ports can start all listeners first and exchange addresses
// afterwards.
func (pn *PeerNode) Connect(neighborAddrs map[int]string) error {
	return pn.peer.Connect(neighborAddrs, pn.cfg.ConnectTimeout)
}

// Run executes the given number of rounds and returns the per-iteration
// trace (loss is this node's local objective; global metrics are the
// caller's concern since no single node sees the whole cluster).
//
// Per the paper's straggler semantics a failed neighbor link never aborts
// the node: the send error is recorded and the round proceeds; the
// receiver reuses the neighbor's last-known parameters. Only local errors
// (engine, codec) are fatal.
func (pn *PeerNode) Run(rounds int) (*metrics.Trace, error) {
	trace := &metrics.Trace{}
	for round := 0; round < rounds; round++ {
		if pn.needRefresh.Swap(false) {
			pn.engine.RequestFullSend()
			pn.refreshes.Add(1)
		}
		u, err := pn.engine.BuildUpdate(round)
		if err != nil {
			return trace, err
		}
		frame, _, err := codec.Encode(u)
		if err != nil {
			return trace, err
		}
		if err := pn.peer.Broadcast(round, frame); err != nil {
			// A dead link mid-broadcast is a straggler, not a node
			// failure: the receiver reuses our last parameters and the
			// transport reconnects in the background.
			pn.sendFailures.Add(1)
			pn.logf("node %d: broadcast round %d: %v (continuing; link treated as straggler)",
				pn.engine.ID(), round, err)
		}

		inbox := pn.peer.Gather(round, pn.cfg.RoundTimeout)
		updates := make([]*codec.Update, 0, len(inbox))
		for from, f := range inbox {
			dec, err := codec.Decode(f)
			if err != nil {
				// A corrupt frame from one neighbor is that neighbor's
				// problem, not ours: drop it and reuse their last view.
				pn.logf("node %d: dropping corrupt round-%d frame from %d: %v",
					pn.engine.ID(), round, from, err)
				continue
			}
			updates = append(updates, dec)
		}
		if err := pn.engine.Integrate(updates); err != nil {
			return trace, err
		}
		pn.engine.Step(round)
		pn.peer.ForgetRound(round)

		trace.Append(metrics.IterationStat{
			Round: round,
			Loss:  pn.engine.LocalLoss(),
		})
	}
	return trace, nil
}

// Close shuts down the transport.
func (pn *PeerNode) Close() error { return pn.peer.Close() }
