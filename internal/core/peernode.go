package core

import (
	"fmt"
	"time"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/metrics"
	"github.com/snapml/snap/internal/transport"
)

// PeerNodeConfig configures one real TCP edge server (the paper's testbed
// mode: each node is a process exchanging frames over sockets).
type PeerNodeConfig struct {
	// Engine configures the local EXTRA engine. Engine.Neighbors must
	// match the keys of NeighborAddrs.
	Engine EngineConfig
	// ListenAddr is this node's TCP listen address (e.g. "127.0.0.1:0").
	ListenAddr string
	// RoundTimeout bounds how long a round waits for straggler neighbors
	// before proceeding with whatever arrived (default 5s).
	RoundTimeout time.Duration
	// ConnectTimeout bounds cluster formation (default 10s).
	ConnectTimeout time.Duration
}

// PeerNode runs a SNAP engine over a real TCP transport. Synchronization
// follows the paper's RIP-like model: every round the node broadcasts its
// selected parameters, then waits (bounded by RoundTimeout) for the
// round's frame from each neighbor; missing neighbors are treated as
// stragglers and their last-known parameters are reused.
type PeerNode struct {
	cfg    PeerNodeConfig
	engine *Engine
	peer   *transport.Peer
}

// NewPeerNode builds the engine and starts listening. Call Connect before
// Run.
func NewPeerNode(cfg PeerNodeConfig) (*PeerNode, error) {
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 5 * time.Second
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 10 * time.Second
	}
	eng, err := NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	peer, err := transport.NewPeer(cfg.Engine.ID, cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	return &PeerNode{cfg: cfg, engine: eng, peer: peer}, nil
}

// Addr returns the node's actual listen address (useful with port 0).
func (pn *PeerNode) Addr() string { return pn.peer.Addr() }

// Engine exposes the local engine (for evaluation after training).
func (pn *PeerNode) Engine() *Engine { return pn.engine }

// BytesSent reports the payload bytes this node wrote to its sockets —
// the testbed measurement the paper reports in Fig. 4.
func (pn *PeerNode) BytesSent() int64 { return pn.peer.BytesSent() }

// Connect establishes connections to the given neighbors (node id →
// listen address). It is a separate step from construction so clusters on
// ephemeral ports can start all listeners first and exchange addresses
// afterwards.
func (pn *PeerNode) Connect(neighborAddrs map[int]string) error {
	return pn.peer.Connect(neighborAddrs, pn.cfg.ConnectTimeout)
}

// Run executes the given number of rounds and returns the per-iteration
// trace (loss is this node's local objective; global metrics are the
// caller's concern since no single node sees the whole cluster).
func (pn *PeerNode) Run(rounds int) (*metrics.Trace, error) {
	trace := &metrics.Trace{}
	for round := 0; round < rounds; round++ {
		u, err := pn.engine.BuildUpdate(round)
		if err != nil {
			return trace, err
		}
		frame, _, err := codec.Encode(u)
		if err != nil {
			return trace, err
		}
		if err := pn.peer.Broadcast(round, frame); err != nil {
			return trace, fmt.Errorf("core: node %d broadcast round %d: %w", pn.engine.ID(), round, err)
		}

		inbox := pn.peer.Gather(round, pn.cfg.RoundTimeout)
		updates := make([]*codec.Update, 0, len(inbox))
		for _, f := range inbox {
			dec, err := codec.Decode(f)
			if err != nil {
				return trace, fmt.Errorf("core: node %d decoding round %d: %w", pn.engine.ID(), round, err)
			}
			updates = append(updates, dec)
		}
		if err := pn.engine.Integrate(updates); err != nil {
			return trace, err
		}
		pn.engine.Step(round)
		pn.peer.ForgetRound(round)

		trace.Append(metrics.IterationStat{
			Round: round,
			Loss:  pn.engine.LocalLoss(),
		})
	}
	return trace, nil
}

// Close shuts down the transport.
func (pn *PeerNode) Close() error { return pn.peer.Close() }
