package core

import (
	"bytes"
	"math"
	"testing"

	"github.com/snapml/snap/internal/codec"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/weights"
)

func TestAPEControllerRequiresAlpha(t *testing.T) {
	if _, err := NewAPEController(APEConfig{}, 1.0); err == nil {
		t.Error("alpha=0 accepted")
	}
}

func TestAPEControllerInitialThreshold(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.01}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// T_0 = 0.1 × 2.0 (defaults: fraction 0.1).
	if got := c.Threshold(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("T_0 = %v, want 0.2", got)
	}
	// maxDelta = T / (I·(1+αG)^I) with I=10 and the default coupling
	// G = 0.02/α, i.e. αG = 0.02.
	want := 0.2 / (10 * math.Pow(1.02, 10))
	if got := c.SendThreshold(); math.Abs(got-want) > 1e-12 {
		t.Errorf("maxDelta = %v, want %v", got, want)
	}
}

func TestAPEControllerStageLastsAtLeastConfiguredIterations(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.01, StageIterations: 10}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	iters := 0
	for !c.AfterIteration() {
		iters++
		if iters > 1000 {
			t.Fatal("stage never ended")
		}
	}
	iters++ // count the ending iteration
	if iters < 10 {
		t.Errorf("stage lasted %d iterations, want ≥ 10", iters)
	}
	// With αG = 0.01 the estimate only slightly outpaces the bound; the
	// stage should end within a few extra iterations, not hundreds.
	if iters > 30 {
		t.Errorf("stage lasted %d iterations, expected ≈ 10–15", iters)
	}
}

func TestAPEControllerDecaysAndExhausts(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.01, Epsilon: 1e-3, Decay: 0.5}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// T_0 = 0.1; halving reaches < 1e-3 after 7 stage ends.
	prevT := c.Threshold()
	stages := 0
	for !c.Exhausted() {
		if c.AfterIteration() {
			stages++
			if !c.Exhausted() {
				if got := c.Threshold(); got >= prevT {
					t.Fatalf("threshold did not decay: %v -> %v", prevT, got)
				}
				prevT = c.Threshold()
			}
		}
		if stages > 100 {
			t.Fatal("controller never exhausted")
		}
	}
	if got := c.Threshold(); got <= 0 || got >= 1e-3 {
		t.Errorf("exhausted controller threshold = %v, want small positive (< ε)", got)
	}
	if got := c.SendThreshold(); got <= 0 || got >= c.Threshold() {
		t.Errorf("exhausted controller send threshold = %v, want in (0, T)", got)
	}
	// Once exhausted, AfterIteration never reports a stage end.
	if c.AfterIteration() {
		t.Error("exhausted controller reported stage end")
	}
	if stages != 7 {
		t.Errorf("stages = %d, want 7 (0.1 × 0.5^7 < 1e-3)", stages)
	}
}

func TestAPEControllerTinyInitExhaustsImmediately(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.01}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exhausted() {
		t.Error("near-zero initial params should exhaust the schedule immediately")
	}
	if c.SendThreshold() > 1e-9 {
		t.Errorf("exhausted controller send threshold = %v, want tiny", c.SendThreshold())
	}
}

func TestAPEControllerStageCounter(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.1, G: 1, StageIterations: 2, Epsilon: 1e-12}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stage() != 0 {
		t.Errorf("initial stage = %d", c.Stage())
	}
	for i := 0; i < 500 && c.Stage() < 3; i++ {
		c.AfterIteration()
	}
	if c.Stage() != 3 {
		t.Errorf("stage = %d after many iterations, want 3", c.Stage())
	}
}

// TestAPEZeroInitDegradesToSnapZero pins the zero-init edge case: with a
// zero (or sub-Epsilon) initial parameter vector, T₀ = InitialFraction ×
// mean|x⁰| starts below Epsilon, so the schedule must exhaust immediately
// with a zero send threshold — SNAP degrades to SNAP-0 (send every
// changed parameter) rather than silently withholding updates against a
// meaningless threshold. The engine-level check runs a SNAP cluster and a
// SNAP-0 cluster from the same zero init in lockstep and requires
// bit-identical updates and iterates.
func TestAPEZeroInitDegradesToSnapZero(t *testing.T) {
	c, err := NewAPEController(APEConfig{Alpha: 0.1}, 0)
	if err != nil {
		t.Fatalf("zero-init controller must construct gracefully, got %v", err)
	}
	if !c.Exhausted() {
		t.Error("zero-init schedule not exhausted immediately")
	}
	if got := c.SendThreshold(); got != 0 {
		t.Errorf("zero-init send threshold = %v, want 0 (exact SNAP-0 behavior)", got)
	}

	const (
		n      = 3
		rounds = 15
	)
	_, parts := smallPartitions(t, n, 40, 5)
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLinearSVM(8)
	zeroInit := make(linalg.Vector, m.NumParams())

	build := func(policy SendPolicy) []*Engine {
		engines := make([]*Engine, n)
		for i := 0; i < n; i++ {
			eng, err := NewEngine(EngineConfig{
				ID: i, Model: m, Data: parts[i], Alpha: 0.1,
				WRow: w.Row(i), Neighbors: g.Neighbors(i),
				Policy: policy, Init: zeroInit,
			})
			if err != nil {
				t.Fatalf("policy %v node %d: %v", policy, i, err)
			}
			engines[i] = eng
		}
		return engines
	}
	snap := build(SendSelected)
	snap0 := build(SendChanged)

	step := func(engines []*Engine, round int) [][]byte {
		frames := make([][]byte, n)
		for i, e := range engines {
			u, err := e.BuildUpdate(round)
			if err != nil {
				t.Fatal(err)
			}
			frame, _, err := codec.Encode(u)
			if err != nil {
				t.Fatal(err)
			}
			frames[i] = frame
		}
		for i, e := range engines {
			var updates []*codec.Update
			for _, j := range g.Neighbors(i) {
				u, err := codec.Decode(frames[j])
				if err != nil {
					t.Fatal(err)
				}
				updates = append(updates, u)
			}
			if err := e.Integrate(updates); err != nil {
				t.Fatal(err)
			}
			e.Step(round)
		}
		return frames
	}

	for round := 0; round < rounds; round++ {
		fa := step(snap, round)
		fb := step(snap0, round)
		for i := range fa {
			if !bytes.Equal(fa[i], fb[i]) {
				t.Fatalf("round %d node %d: zero-init SNAP frame differs from SNAP-0", round, i)
			}
		}
	}
	for i := 0; i < n; i++ {
		if !snap[i].Params().Equal(snap0[i].Params(), 0) {
			t.Errorf("node %d: zero-init SNAP iterate diverged from SNAP-0", i)
		}
	}
}
