package core

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"
	"time"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/transport"
	"github.com/snapml/snap/internal/weights"
)

// BenchmarkExtraRoundDelayed measures the pipelined round loop where it
// matters: on links with real latency. Every link of a 5-node complete
// TCP graph gets a FaultDelay on every round, so the broadcast+gather
// window costs degree×delay; node 0's local gradient is sized to take
// about as long. The sequential loop pays compute + comms per round, the
// pipelined loop pays ~max(compute, comms) — the recorded gap is the
// overlap gain (see DESIGN.md §14; BENCH_PR10.json pins the numbers).
//
// Only node 0 carries a real partition; its four neighbors hold a few
// samples each. That asymmetry is deliberate: the benchmark isolates one
// node's compute-vs-comms overlap. With every node crunching an equal
// gradient the run is CPU-bound on small CI machines (the OS already
// overlaps node A's link sleeps with node B's compute), and the loop
// structure under test stops being the thing measured.
func BenchmarkExtraRoundDelayed(b *testing.B) {
	for _, mode := range []struct {
		name       string
		sequential bool
	}{
		{"sequential", true},
		{"pipelined", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			benchDelayedRounds(b, mode.sequential)
		})
	}
}

func benchDelayedRounds(b *testing.B, sequential bool) {
	const (
		n          = 5
		features   = 256
		hotSamples = 72000 // node 0's gradient ≈ the comms window below
		linkDelay  = 8 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(11))
	parts := make([]*dataset.Dataset, n)
	parts[0] = dataset.SyntheticCredit(dataset.CreditConfig{Samples: hotSamples, Features: features}, rng)
	for i := 1; i < n; i++ {
		parts[i] = dataset.SyntheticCredit(dataset.CreditConfig{Samples: 16, Features: features}, rng)
	}
	g := graph.Complete(n)
	w := weights.Metropolis(g, 0)
	m := model.NewLinearSVM(features)
	init := m.InitParams(3)

	nodes := make([]*PeerNode, n)
	for i := 0; i < n; i++ {
		// One delay rule per (neighbor, round): every frame of every
		// benchmarked round crosses a slow link.
		faults := transport.NewFaultSet()
		for _, j := range g.Neighbors(i) {
			for r := 0; r < b.N; r++ {
				faults.Add(transport.FaultRule{
					Peer: j, Round: r,
					Action: transport.FaultDelay, Delay: linkDelay,
				})
			}
		}
		pn, err := NewPeerNode(PeerNodeConfig{
			Engine: EngineConfig{
				ID: i, Model: m, Data: parts[i], Alpha: 0.1,
				WRow: w.Row(i), Neighbors: g.Neighbors(i),
				Policy: SendSelected, Init: init,
			},
			ListenAddr:   "127.0.0.1:0",
			RoundTimeout: 30 * time.Second,
			Sequential:   sequential,
			// The benchmark measures the round loop, not the objective
			// telemetry; push the loss eval off the critical path.
			EvalEvery: 1 << 30,
			Faults:    faults,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = pn
		defer pn.Close()
	}
	addrs := make(map[int]string, n)
	for i, pn := range nodes {
		addrs[i] = pn.Addr()
	}
	var wg sync.WaitGroup
	connErrs := make([]error, n)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			neighbors := make(map[int]string)
			for _, j := range g.Neighbors(i) {
				neighbors[j] = addrs[j]
			}
			connErrs[i] = pn.Connect(neighbors)
		}(i, pn)
	}
	wg.Wait()
	for i, err := range connErrs {
		if err != nil {
			b.Fatalf("connect node %d: %v", i, err)
		}
	}

	// The hot partition keeps ~150MB live while the measured rounds are
	// alloc-free, so any GC cycle that lands mid-run is pure setup debt
	// being collected on the 1-core critical path — worth whole
	// milliseconds per round of noise. Collect the setup garbage now and
	// push the next cycle far past anything the rounds can allocate.
	old := debug.SetGCPercent(800)
	defer debug.SetGCPercent(old)
	runtime.GC()
	// Two runtime Ps even on a single-core box: with GOMAXPROCS=1 the
	// gradient goroutine holds the only P for multi-millisecond stretches
	// and every broadcast sleep pays its wake latency on the critical
	// path — measuring scheduler starvation, not the round structure.
	// A second P lets the OS interleave comms wakes with compute the way
	// a real edge device's kernel does.
	oldProcs := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(oldProcs)

	b.ResetTimer()
	runErrs := make([]error, n)
	for i, pn := range nodes {
		wg.Add(1)
		go func(i int, pn *PeerNode) {
			defer wg.Done()
			_, runErrs[i] = pn.Run(b.N)
		}(i, pn)
	}
	wg.Wait()
	b.StopTimer()
	for i, err := range runErrs {
		if err != nil {
			b.Fatalf("node %d: %v", i, err)
		}
	}
}
