package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"github.com/snapml/snap/internal/model"
)

// maxBodyBytes bounds request bodies: a predict payload or a checkpoint
// upload beyond this is refused before decoding.
const maxBodyBytes = 16 << 20

// maxInstances bounds rows per predict request, keeping one request from
// monopolizing the batch pipeline.
const maxInstances = 1024

// predictRequest is the POST /v1/predict body. Exactly one of Features
// (single row) or Instances (batch) must be set.
type predictRequest struct {
	Features  []float64   `json:"features,omitempty"`
	Instances [][]float64 `json:"instances,omitempty"`
}

// predictResponse reports labels plus the snapshot version that produced
// them, so clients can correlate predictions with training progress.
type predictResponse struct {
	Predictions []int `json:"predictions"`
	ModelRound  int   `json:"model_round"`
	ModelEpoch  int   `json:"model_epoch"`
}

// modelInfo is the GET /v1/model body.
type modelInfo struct {
	Model    string `json:"model"`
	Params   int    `json:"params"`
	Features int    `json:"features"`
	Loaded   bool   `json:"loaded"`
	Round    int    `json:"round"`
	Epoch    int    `json:"epoch"`
	Seq      uint64 `json:"seq"`
}

// errorResponse is the JSON error envelope for every non-2xx status.
type errorResponse struct {
	Error string `json:"error"`
}

// Header names on the /params checkpoint endpoint: the served snapshot's
// version stamps, and the client's cheap change-detection probe.
const (
	HeaderRound   = "X-Snap-Round"
	HeaderEpoch   = "X-Snap-Epoch"
	HeaderSeq     = "X-Snap-Seq"
	HeaderHaveSeq = "X-Snap-Have-Seq"
)

// NewHTTPHandler returns the gateway's public API:
//
//	POST /v1/predict  — predict one row ("features") or many ("instances")
//	GET  /v1/model    — model architecture and served version
//	PUT  /v1/model    — hot-load a model.SaveParams checkpoint body
//	                    (optional ?round= and ?epoch= version stamps)
//	GET  /healthz     — process liveness (always 200)
//	GET  /readyz      — 200 once a model snapshot is loaded, else 503
func NewHTTPHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		handlePredict(g, w, r)
	})
	mux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			handleModelInfo(g, w)
		case http.MethodPut:
			handleModelLoad(g, w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, "GET or PUT only")
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !g.Ready() {
			writeError(w, http.StatusServiceUnavailable, ErrNoModel.Error())
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func handlePredict(g *Gateway, w http.ResponseWriter, r *http.Request) {
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	rows, err := requestRows(&req, g.Features())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx := r.Context()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, g.cfg.Deadline)
		defer cancel()
	}
	labels := make([]int, len(rows))
	v, err := g.PredictManyInto(ctx, labels, rows)
	if err != nil {
		status, retry := errStatus(err)
		if retry {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, predictResponse{
		Predictions: labels,
		ModelRound:  v.Round,
		ModelEpoch:  v.Epoch,
	})
}

// requestRows validates the payload shape: exactly one input form, every
// row of the expected dimensionality, every value finite.
func requestRows(req *predictRequest, features int) ([][]float64, error) {
	var rows [][]float64
	switch {
	case req.Features != nil && req.Instances != nil:
		return nil, errors.New(`set "features" or "instances", not both`)
	case req.Features != nil:
		rows = [][]float64{req.Features}
	case req.Instances != nil:
		rows = req.Instances
	default:
		return nil, errors.New(`missing "features" or "instances"`)
	}
	if len(rows) == 0 {
		return nil, errors.New("no rows to predict")
	}
	if len(rows) > maxInstances {
		return nil, fmt.Errorf("%d instances exceeds the limit of %d", len(rows), maxInstances)
	}
	for i, row := range rows {
		if len(row) != features {
			return nil, fmt.Errorf("row %d has %d features, want %d", i, len(row), features)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("row %d feature %d is not finite", i, j)
			}
		}
	}
	return rows, nil
}

func handleModelInfo(g *Gateway, w http.ResponseWriter) {
	round, epoch, seq, ok := g.Feed().Version()
	writeJSON(w, http.StatusOK, modelInfo{
		Model:    g.Model().Name(),
		Params:   g.Model().NumParams(),
		Features: g.Features(),
		Loaded:   ok,
		Round:    round,
		Epoch:    epoch,
		Seq:      seq,
	})
}

func handleModelLoad(g *Gateway, w http.ResponseWriter, r *http.Request) {
	round, err := queryInt(r, "round")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	epoch, err := queryInt(r, "epoch")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := g.LoadCheckpoint(http.MaxBytesReader(w, r.Body, maxBodyBytes), round, epoch); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	_, _, seq, _ := g.Feed().Version()
	writeJSON(w, http.StatusOK, modelInfo{
		Model:    g.Model().Name(),
		Params:   g.Model().NumParams(),
		Features: g.Features(),
		Loaded:   true,
		Round:    round,
		Epoch:    epoch,
		Seq:      seq,
	})
}

func queryInt(r *http.Request, key string) (int, error) {
	s := r.URL.Query().Get(key)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %q", key, s)
	}
	return v, nil
}

// errStatus maps gateway errors to HTTP statuses; retry reports whether
// a Retry-After header is appropriate.
func errStatus(err error) (status int, retry bool) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, false
	case errors.Is(err, ErrNoModel), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, true
	default:
		return http.StatusInternalServerError, false
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// ParamsHandler exposes a feed's current snapshot as a model.SaveParams
// checkpoint stream — the wire format followers poll. Version stamps ride
// in headers; a client that sends its last-seen sequence number in
// X-Snap-Have-Seq gets 304 when nothing changed, so idle polling costs a
// header exchange, not a parameter download.
func ParamsHandler(f *Feed) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			writeError(w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		snap := f.Acquire()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable, ErrNoModel.Error())
			return
		}
		defer snap.Release()
		w.Header().Set(HeaderRound, strconv.Itoa(snap.Round()))
		w.Header().Set(HeaderEpoch, strconv.Itoa(snap.Epoch()))
		w.Header().Set(HeaderSeq, strconv.FormatUint(snap.Seq(), 10))
		if have := r.Header.Get(HeaderHaveSeq); have != "" {
			if seq, err := strconv.ParseUint(have, 10, 64); err == nil && seq == snap.Seq() {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusOK)
			return
		}
		_ = model.SaveParams(w, snap.Params())
	})
}
