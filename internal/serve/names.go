// Package serve is the inference plane: it turns a trained (or training)
// SNAP model into an HTTP prediction service. A Feed holds the current
// model snapshot and hot-swaps it atomically as new versions arrive from
// the training cluster; a Gateway coalesces incoming requests into
// micro-batches over a bounded queue with admission control and runs them
// through the alloc-free model.PredictBatchInto path.
//
// The package deliberately does not import internal/core: the training
// side publishes into a Feed through the narrow core.ParamSink interface,
// so serving can also run standalone from a checkpoint file or follow a
// remote node over its observability endpoint.
package serve

// Metric names exported by the serving plane. Like internal/obs/names.go
// these are the closed namespace the obsname analyzer enforces: every
// registry call site must use these constants, and no two may collide.
const (
	// MServeRequests counts prediction requests admitted to the gateway
	// (before queueing; rejected requests are counted too).
	MServeRequests = "snap_serve_requests_total"

	// MServeRejects counts requests the gateway refused, labeled by
	// LReason (queue_full, deadline, no_model, closed).
	MServeRejects = "snap_serve_rejected_total"

	// MServePredictions counts individual rows predicted (a batched
	// request contributes one per row).
	MServePredictions = "snap_serve_predictions_total"

	// MServeLatency is the end-to-end request latency histogram in
	// seconds, from enqueue to completion.
	MServeLatency = "snap_serve_request_seconds"

	// MServeBatchRows is the histogram of rows per executed micro-batch —
	// the direct view of how well coalescing is working.
	MServeBatchRows = "snap_serve_batch_rows"

	// MServeBatches counts executed micro-batches.
	MServeBatches = "snap_serve_batches_total"

	// MServeQueueDepth gauges the number of requests waiting in the
	// admission queue.
	MServeQueueDepth = "snap_serve_queue_depth"

	// MServeSwaps counts model snapshot publications (hot swaps).
	MServeSwaps = "snap_serve_model_swaps_total"

	// MServeSwapRejects counts refused model loads, labeled by LReason
	// (decode, dim_mismatch).
	MServeSwapRejects = "snap_serve_swap_rejected_total"

	// MServeModelRound and MServeModelEpoch gauge the training round and
	// control-plane epoch of the currently served snapshot.
	MServeModelRound = "snap_serve_model_round"
	MServeModelEpoch = "snap_serve_model_epoch"

	// MServePollErrors counts failed poll attempts by a Follower.
	MServePollErrors = "snap_serve_poll_errors_total"
)

// LReason is the label key distinguishing reject causes.
const LReason = "reason"

// Reject and swap-reject reasons used with LReason.
const (
	ReasonQueueFull   = "queue_full"
	ReasonDeadline    = "deadline"
	ReasonNoModel     = "no_model"
	ReasonClosed      = "closed"
	ReasonDecode      = "decode"
	ReasonDimMismatch = "dim_mismatch"
)

// SpanServeBatch is the tracer span recorded around each executed
// micro-batch (the span's round is the served model's training round).
const SpanServeBatch = "serve_batch"

// RowBuckets is the bucket layout for MServeBatchRows: powers of two up
// to a generous batch ceiling.
var RowBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
