package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
)

// Gateway errors, mapped to HTTP statuses by the handler (429, 503, 504).
var (
	// ErrOverloaded means the admission queue is full; retry later.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrNoModel means no snapshot has been published yet.
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrClosed means the gateway has shut down.
	ErrClosed = errors.New("serve: gateway closed")
	// ErrDeadline means the request expired before a worker reached it.
	// It unwraps to context.DeadlineExceeded.
	ErrDeadline = fmt.Errorf("serve: request expired in queue: %w", context.DeadlineExceeded)
)

// Config parameterizes a Gateway.
type Config struct {
	// Model is the architecture predictions run through (required).
	Model model.Model
	// Features is the expected per-row feature dimensionality (required;
	// the HTTP layer rejects rows of any other length before they reach
	// the compute path).
	Features int
	// Feed supplies model snapshots. Nil means the gateway owns a fresh
	// empty feed (standalone mode: load checkpoints into it).
	Feed *Feed
	// MaxBatch is the row budget per micro-batch (default 32). A single
	// multi-row request always stays whole, so an oversized request may
	// exceed it.
	MaxBatch int
	// MaxWait bounds how long a worker holds an underfull batch open
	// waiting for more rows (default 2ms; 0 disables coalescing waits).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue (default 1024). A full queue
	// rejects with ErrOverloaded instead of queueing unboundedly.
	QueueDepth int
	// Workers is the number of batch-executing goroutines (default 2).
	Workers int
	// Deadline is the per-request time budget (default 1s). Requests
	// still queued past it are failed with ErrDeadline, shedding load
	// that nobody is waiting for anymore.
	Deadline time.Duration
	// Obs receives gateway metrics and events (nil-safe).
	Obs *obs.Observer
	// Tracer records a span per executed micro-batch (nil-safe).
	Tracer *trace.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxBatch <= 0 {
		out.MaxBatch = 32
	}
	if out.MaxWait < 0 {
		out.MaxWait = 0
	} else if out.MaxWait == 0 {
		out.MaxWait = 2 * time.Millisecond
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 1024
	}
	if out.Workers <= 0 {
		out.Workers = 2
	}
	if out.Deadline <= 0 {
		out.Deadline = time.Second
	}
	return out
}

// Version identifies the model snapshot a prediction was served from.
type Version struct {
	Round int
	Epoch int
}

// request is one queued prediction unit. Requests are pooled; the done
// channel has capacity 1 so a worker's completion send never blocks even
// if the caller already gave up on its context.
type request struct {
	xs       [][]float64
	x1       [1][]float64 // backing array for single-row requests
	labels   []int
	deadline time.Time
	enq      time.Time
	version  Version
	err      error
	done     chan struct{}
}

var reqPool = sync.Pool{
	New: func() any { return &request{done: make(chan struct{}, 1)} },
}

// gwMetrics caches metric handles so the per-request path does no
// registry lookups.
type gwMetrics struct {
	requests    *obs.Counter
	rejQueue    *obs.Counter
	rejDeadline *obs.Counter
	rejNoModel  *obs.Counter
	rejClosed   *obs.Counter
	predictions *obs.Counter
	batches     *obs.Counter
	latency     *obs.Histogram
	batchRows   *obs.Histogram
	queueDepth  *obs.Gauge
}

func newGwMetrics(o *obs.Observer) gwMetrics {
	return gwMetrics{
		requests:    o.Counter(MServeRequests),
		rejQueue:    o.Counter(obs.Label(MServeRejects, LReason, ReasonQueueFull)),
		rejDeadline: o.Counter(obs.Label(MServeRejects, LReason, ReasonDeadline)),
		rejNoModel:  o.Counter(obs.Label(MServeRejects, LReason, ReasonNoModel)),
		rejClosed:   o.Counter(obs.Label(MServeRejects, LReason, ReasonClosed)),
		predictions: o.Counter(MServePredictions),
		batches:     o.Counter(MServeBatches),
		latency:     o.Histogram(MServeLatency, obs.TimeBuckets),
		batchRows:   o.Histogram(MServeBatchRows, RowBuckets),
		queueDepth:  o.Gauge(MServeQueueDepth),
	}
}

// Gateway coalesces prediction requests into micro-batches and runs them
// against the feed's current snapshot on a small worker pool.
type Gateway struct {
	cfg   Config
	feed  *Feed
	queue chan *request
	quit  chan struct{}
	wg    sync.WaitGroup
	depth atomic.Int64
	met   gwMetrics

	closeMu sync.RWMutex
	closed  bool // guarded by closeMu
}

// NewGateway validates cfg, applies defaults, and starts the worker
// pool. Callers must Close it.
func NewGateway(cfg Config) (*Gateway, error) {
	if cfg.Model == nil {
		return nil, errors.New("serve: Config.Model is required")
	}
	if cfg.Features <= 0 {
		return nil, errors.New("serve: Config.Features must be positive")
	}
	c := cfg.withDefaults()
	g := &Gateway{
		cfg:   c,
		feed:  c.Feed,
		queue: make(chan *request, c.QueueDepth),
		quit:  make(chan struct{}),
		met:   newGwMetrics(c.Obs),
	}
	if g.feed == nil {
		g.feed = NewFeed()
		g.feed.SetObserver(c.Obs, -1)
	}
	g.wg.Add(c.Workers)
	for i := 0; i < c.Workers; i++ {
		go g.worker()
	}
	return g, nil
}

// Feed returns the feed the gateway serves from.
func (g *Gateway) Feed() *Feed { return g.feed }

// Model returns the configured model architecture.
func (g *Gateway) Model() model.Model { return g.cfg.Model }

// Features returns the expected feature dimensionality.
func (g *Gateway) Features() int { return g.cfg.Features }

// Ready reports whether a model snapshot is available to serve.
func (g *Gateway) Ready() bool { return g.feed.Loaded() }

// Close stops the workers and fails everything still queued with
// ErrClosed. Safe to call more than once.
func (g *Gateway) Close() {
	g.closeMu.Lock()
	if g.closed {
		g.closeMu.Unlock()
		return
	}
	g.closed = true
	close(g.quit)
	g.closeMu.Unlock()

	g.wg.Wait()
	for {
		select {
		case r := <-g.queue:
			g.depth.Add(-1)
			g.met.rejClosed.Inc()
			g.finish(r, ErrClosed)
		default:
			g.met.queueDepth.Set(float64(g.depth.Load()))
			return
		}
	}
}

// Predict runs one feature row through the current model and returns its
// class label and the snapshot version that produced it. The row is read
// until the call returns; the gateway never retains it.
func (g *Gateway) Predict(ctx context.Context, x []float64) (int, Version, error) {
	r := reqPool.Get().(*request)
	r.x1[0] = x
	r.xs = r.x1[:1]
	if cap(r.labels) < 1 {
		r.labels = make([]int, 1, 8)
	}
	r.labels = r.labels[:1]
	if err := g.submit(ctx, r); err != nil {
		return 0, Version{}, err
	}
	label, v := r.labels[0], r.version
	putRequest(r)
	return label, v, nil
}

// PredictManyInto predicts every row of xs into dst (len(dst) must be at
// least len(xs)) as one atomic unit: the whole request runs against a
// single snapshot. Returns the snapshot version.
func (g *Gateway) PredictManyInto(ctx context.Context, dst []int, xs [][]float64) (Version, error) {
	if len(xs) == 0 {
		return Version{}, nil
	}
	if len(dst) < len(xs) {
		return Version{}, fmt.Errorf("serve: dst has %d slots for %d rows", len(dst), len(xs))
	}
	r := reqPool.Get().(*request)
	r.xs = append(r.xs[:0], xs...)
	if cap(r.labels) < len(xs) {
		r.labels = make([]int, len(xs))
	}
	r.labels = r.labels[:len(xs)]
	if err := g.submit(ctx, r); err != nil {
		return Version{}, err
	}
	copy(dst, r.labels)
	v := r.version
	putRequest(r)
	return v, nil
}

// putRequest drops row references (they are caller memory) and repools.
func putRequest(r *request) {
	r.x1[0] = nil
	for i := range r.xs {
		r.xs[i] = nil
	}
	r.xs = r.xs[:0]
	r.err = nil
	reqPool.Put(r)
}

// submit enqueues r and blocks until a worker completes it or ctx ends.
// On success the caller owns r again (and must repool it); on error r is
// either repooled here or abandoned to the worker.
func (g *Gateway) submit(ctx context.Context, r *request) error {
	g.met.requests.Inc()
	now := time.Now()
	r.enq = now
	r.deadline = now.Add(g.cfg.Deadline)
	if cd, ok := ctx.Deadline(); ok && cd.Before(r.deadline) {
		r.deadline = cd
	}

	g.closeMu.RLock()
	if g.closed {
		g.closeMu.RUnlock()
		g.met.rejClosed.Inc()
		putRequest(r)
		return ErrClosed
	}
	select {
	case g.queue <- r:
		g.closeMu.RUnlock()
		g.met.queueDepth.Set(float64(g.depth.Add(1)))
	default:
		g.closeMu.RUnlock()
		g.met.rejQueue.Inc()
		putRequest(r)
		return ErrOverloaded
	}

	select {
	case <-r.done:
		if err := r.err; err != nil {
			putRequest(r)
			return err
		}
		return nil
	case <-ctx.Done():
		// A worker may still be filling r: abandon it to the pool's GC
		// instead of repooling a request someone else writes to.
		return ctx.Err()
	}
}

// finish hands a completed (or failed) request back to its waiter.
func (g *Gateway) finish(r *request, err error) {
	r.err = err
	r.done <- struct{}{}
}

// worker executes micro-batches until the gateway closes. All batch
// scratch (request list, row list, label buffer, model scratch) is
// worker-local and reused, so the steady-state compute path allocates
// nothing.
func (g *Gateway) worker() {
	defer g.wg.Done()
	var (
		reqs   = make([]*request, 0, g.cfg.MaxBatch)
		rows   = make([][]float64, 0, g.cfg.MaxBatch)
		labels = make([]int, g.cfg.MaxBatch)
		sc     model.PredictScratch
	)
	timer := time.NewTimer(time.Hour)
	drainTimer(timer)
	for {
		var first *request
		select {
		case first = <-g.queue:
		case <-g.quit:
			return
		}
		g.met.queueDepth.Set(float64(g.depth.Add(-1)))
		reqs, rows = g.collect(reqs[:0], rows[:0], first, timer)
		if len(labels) < len(rows) {
			labels = make([]int, len(rows))
		}
		g.runBatch(reqs, rows, labels, &sc)
	}
}

// collect assembles a micro-batch: the first request, then whatever is
// already queued, then — if still under MaxBatch rows — anything that
// arrives within MaxWait of the first dequeue.
func (g *Gateway) collect(reqs []*request, rows [][]float64, first *request, timer *time.Timer) ([]*request, [][]float64) {
	start := time.Now()
	reqs, rows = g.admit(reqs, rows, first, start)
	for len(rows) < g.cfg.MaxBatch {
		select {
		case r := <-g.queue:
			g.met.queueDepth.Set(float64(g.depth.Add(-1)))
			reqs, rows = g.admit(reqs, rows, r, time.Now())
			continue
		default:
		}
		break
	}
	if len(rows) == 0 || len(rows) >= g.cfg.MaxBatch || g.cfg.MaxWait <= 0 {
		return reqs, rows
	}
	limit := start.Add(g.cfg.MaxWait)
	for len(rows) < g.cfg.MaxBatch {
		wait := time.Until(limit)
		if wait <= 0 {
			break
		}
		timer.Reset(wait)
		select {
		case r := <-g.queue:
			drainTimer(timer)
			g.met.queueDepth.Set(float64(g.depth.Add(-1)))
			reqs, rows = g.admit(reqs, rows, r, time.Now())
		case <-timer.C:
			return reqs, rows
		case <-g.quit:
			// Serve what we already hold; the worker loop exits next.
			return reqs, rows
		}
	}
	return reqs, rows
}

// admit appends r's rows to the batch, or fails it immediately when its
// deadline already passed (shedding work nobody is waiting for).
func (g *Gateway) admit(reqs []*request, rows [][]float64, r *request, now time.Time) ([]*request, [][]float64) {
	if now.After(r.deadline) {
		g.met.rejDeadline.Inc()
		g.finish(r, ErrDeadline)
		return reqs, rows
	}
	return append(reqs, r), append(rows, r.xs...)
}

// runBatch predicts all rows against one acquired snapshot and fans the
// labels back out to their requests.
func (g *Gateway) runBatch(reqs []*request, rows [][]float64, labels []int, sc *model.PredictScratch) {
	if len(reqs) == 0 {
		return
	}
	start := time.Now()
	snap := g.feed.Acquire()
	if snap == nil {
		for _, r := range reqs {
			g.met.rejNoModel.Inc()
			g.finish(r, ErrNoModel)
		}
		return
	}
	out := labels[:len(rows)]
	model.PredictBatchInto(g.cfg.Model, out, snap.Params(), rows, sc)
	v := Version{Round: snap.Round(), Epoch: snap.Epoch()}
	snap.Release()

	end := time.Now()
	i := 0
	for _, r := range reqs {
		n := len(r.xs)
		copy(r.labels, out[i:i+n])
		i += n
		r.version = v
		g.met.latency.Observe(end.Sub(r.enq).Seconds())
		g.finish(r, nil)
	}
	g.met.batches.Inc()
	g.met.batchRows.Observe(float64(len(rows)))
	g.met.predictions.Add(int64(len(rows)))
	g.cfg.Tracer.Span(v.Round, SpanServeBatch, start, end)
}

// drainTimer stops a timer and clears any pending fire.
func drainTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}
