package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/snapml/snap/internal/linalg"
)

// coherentModel is the torn-read detector: it predicts 1 only when every
// parameter holds the same value. Publishers only ever install uniform
// vectors, so any prediction of 0 means a reader saw a half-swapped
// snapshot.
type coherentModel struct{ signModel }

func (m *coherentModel) Predict(p linalg.Vector, _ []float64) int {
	v := p[0]
	for _, pv := range p {
		if pv != v {
			return 0
		}
	}
	return 1
}

// TestHotSwapNoTornReads hammers the gateway with concurrent predicts
// while a publisher hot-swaps the model as fast as it can. Every served
// prediction must come from a complete, uniform snapshot. Run under
// -race this also proves the swap protocol is data-race free end to end
// (CI runs internal/serve in the race-detector step).
func TestHotSwapNoTornReads(t *testing.T) {
	const (
		dim        = 512
		predictors = 8
		swaps      = 400
	)
	g := newTestGateway(t, Config{
		Model:    &coherentModel{signModel{params: dim}},
		Features: 4,
		Workers:  4,
		MaxBatch: 8,
	})
	feed := g.Feed()
	publishN(feed, 0, 0, dim, 1)

	var (
		stop atomic.Bool
		torn atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(predictors)
	for i := 0; i < predictors; i++ {
		go func() {
			defer wg.Done()
			x := []float64{1, 0, 0, 0}
			for !stop.Load() {
				label, v, err := g.Predict(context.Background(), x)
				if err != nil {
					continue // overload/deadline shedding is fine here
				}
				if label != 1 {
					torn.Add(1)
				}
				if v.Round < 0 || v.Round > swaps {
					torn.Add(1)
				}
			}
		}()
	}

	// Publish uniform vectors with distinct fill values as fast as
	// possible, reusing one source buffer — Publish must copy it.
	src := linalg.NewVector(dim)
	for k := 1; k <= swaps; k++ {
		src.Fill(float64(k))
		feed.Publish(k, k%5, src)
	}
	stop.Store(true)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("%d predictions saw a torn or out-of-range snapshot", n)
	}
	if round, _, seq, ok := feed.Version(); !ok || round != swaps || seq != swaps+1 {
		t.Fatalf("final version = round %d seq %d ok %v, want round %d seq %d", round, seq, ok, swaps, swaps+1)
	}
}

// TestFeedSnapshotStableWhileHeld pins the refcount protocol: a snapshot
// acquired before later publishes must keep its exact contents until
// released, even though the feed recycles buffers.
func TestFeedSnapshotStableWhileHeld(t *testing.T) {
	f := NewFeed()
	publishN(f, 1, 0, 8, 1)

	held := f.Acquire()
	if held == nil {
		t.Fatal("Acquire returned nil after publish")
	}
	for k := 2; k <= 6; k++ {
		publishN(f, k, 0, 8, float64(k))
	}
	for i, v := range held.Params() {
		if v != 1 {
			t.Fatalf("held snapshot[%d] = %v after later publishes, want 1", i, v)
		}
	}
	if held.Round() != 1 {
		t.Fatalf("held round = %d, want 1", held.Round())
	}
	held.Release()

	cur := f.Acquire()
	if cur.Round() != 6 || cur.Params()[0] != 6 {
		t.Fatalf("current = round %d fill %v, want round 6 fill 6", cur.Round(), cur.Params()[0])
	}
	cur.Release()
}

// TestFeedRecyclesBuffers checks the double-buffering: in steady state
// (publish, no long-held readers) the feed cycles through a bounded set
// of parameter buffers instead of allocating one per publish.
func TestFeedRecyclesBuffers(t *testing.T) {
	f := NewFeed()
	src := linalg.NewVector(64)
	seen := make(map[*float64]bool)
	for k := 0; k < 100; k++ {
		src.Fill(float64(k))
		f.Publish(k, 0, src)
		s := f.Acquire()
		seen[&s.Params()[0]] = true
		s.Release()
	}
	// Current + one in flight: the steady state needs at most 3 distinct
	// buffers (a little slack for the first publishes).
	if len(seen) > 3 {
		t.Fatalf("feed used %d distinct buffers over 100 publishes, want <= 3", len(seen))
	}
}

// TestFeedEmpty covers the unloaded state.
func TestFeedEmpty(t *testing.T) {
	f := NewFeed()
	if f.Acquire() != nil {
		t.Fatal("Acquire on empty feed must return nil")
	}
	if f.Loaded() {
		t.Fatal("empty feed reports loaded")
	}
	if _, _, _, ok := f.Version(); ok {
		t.Fatal("empty feed reports a version")
	}
	var nilSnap *Snapshot
	nilSnap.Release() // must not panic
}
