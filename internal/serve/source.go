package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
)

// LoadCheckpoint decodes a model.SaveParams stream and publishes it as
// the current snapshot, stamped with the given round and epoch. The
// parameter count must match the configured model; a mismatch (e.g. a
// checkpoint from a different architecture) is refused and counted.
func (g *Gateway) LoadCheckpoint(r io.Reader, round, epoch int) error {
	params, err := model.LoadParams(r)
	if err != nil {
		g.cfg.Obs.Counter(obs.Label(MServeSwapRejects, LReason, ReasonDecode)).Inc()
		return fmt.Errorf("serve: decode checkpoint: %w", err)
	}
	if len(params) != g.cfg.Model.NumParams() {
		g.cfg.Obs.Counter(obs.Label(MServeSwapRejects, LReason, ReasonDimMismatch)).Inc()
		return fmt.Errorf("serve: checkpoint has %d params, model %s wants %d",
			len(params), g.cfg.Model.Name(), g.cfg.Model.NumParams())
	}
	g.feed.Publish(round, epoch, params)
	return nil
}

// LoadCheckpointFile is LoadCheckpoint from a file path.
func (g *Gateway) LoadCheckpointFile(path string, round, epoch int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("serve: open checkpoint: %w", err)
	}
	defer f.Close()
	return g.LoadCheckpoint(f, round, epoch)
}

// Follower polls a training node's /params endpoint (mounted on its
// observability server) and hot-loads every new snapshot into a gateway.
// Change detection rides the X-Snap-Have-Seq header, so an idle poll is
// a 304 with no parameter transfer.
type Follower struct {
	// URL is the node's observability base URL, e.g. "http://host:9090".
	URL string
	// Gateway receives the snapshots (required).
	Gateway *Gateway
	// Interval is the poll period (default 500ms).
	Interval time.Duration
	// Client is the HTTP client to poll with (default http.DefaultClient).
	Client *http.Client
	// Obs counts poll errors (nil-safe).
	Obs *obs.Observer

	lastSeq uint64 // accessed only by Run's goroutine
}

// Run polls until ctx is cancelled. Poll failures are counted and
// retried on the next tick — a serving gateway keeps answering from its
// last good snapshot while the trainer is away.
func (fw *Follower) Run(ctx context.Context) error {
	interval := fw.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := fw.pollOnce(ctx); err != nil && ctx.Err() == nil {
			fw.Obs.Counter(MServePollErrors).Inc()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// PollOnce fetches the node's current snapshot if it changed since the
// last successful poll. Exposed for tests and one-shot loading.
func (fw *Follower) PollOnce(ctx context.Context) error { return fw.pollOnce(ctx) }

func (fw *Follower) pollOnce(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, fw.URL+"/params", nil)
	if err != nil {
		return err
	}
	if fw.lastSeq > 0 {
		req.Header.Set(HeaderHaveSeq, fmt.Sprintf("%d", fw.lastSeq))
	}
	client := fw.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil
	case http.StatusServiceUnavailable:
		// Trainer up, nothing published yet.
		return nil
	case http.StatusOK:
	default:
		return fmt.Errorf("serve: poll %s: status %s", fw.URL, resp.Status)
	}
	round, epoch, seq := headerInt(resp, HeaderRound), headerInt(resp, HeaderEpoch), headerInt(resp, HeaderSeq)
	if err := fw.Gateway.LoadCheckpoint(resp.Body, round, epoch); err != nil {
		return err
	}
	if seq > 0 {
		fw.lastSeq = uint64(seq)
	} else {
		// No sequence header: force a re-fetch next tick rather than
		// silently pinning a stale snapshot.
		fw.lastSeq = 0
	}
	return nil
}

func headerInt(resp *http.Response, key string) int {
	var v int
	_, _ = fmt.Sscanf(resp.Header.Get(key), "%d", &v)
	return v
}
