package serve

import (
	"sync"
	"sync/atomic"

	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/obs"
)

// Snapshot is one published, immutable model version. The parameter
// vector is owned by the snapshot: Publish copies the source into a
// private buffer, so a snapshot acquired by a serving worker can never
// observe a torn or in-progress write, no matter what the training loop
// does afterwards. Snapshots are reference-counted so the feed can
// recycle parameter buffers (double-buffering in steady state) without
// pulling one out from under a reader.
type Snapshot struct {
	params linalg.Vector // immutable after Publish
	round  int
	epoch  int
	seq    uint64

	feed *Feed
	refs atomic.Int64
}

// Params returns the snapshot's parameter vector. Callers must treat it
// as read-only and must not retain it past Release.
//
//snap:returns-borrowed
//snap:alloc-free
func (s *Snapshot) Params() linalg.Vector { return s.params }

// Round returns the training round the snapshot was taken at.
func (s *Snapshot) Round() int { return s.round }

// Epoch returns the control-plane epoch the snapshot was taken at.
func (s *Snapshot) Epoch() int { return s.epoch }

// Seq returns the feed-local publication sequence number (1, 2, ...).
// Followers use it for cheap change detection.
func (s *Snapshot) Seq() uint64 { return s.seq }

// Release returns the caller's reference. When the last reference drops
// the parameter buffer goes back to the feed's free list. Safe on nil.
func (s *Snapshot) Release() {
	if s == nil {
		return
	}
	if n := s.refs.Add(-1); n == 0 {
		s.feed.recycle(s.params)
	} else if n < 0 {
		panic("serve: Snapshot released more times than acquired")
	}
}

// Feed is the hot-swap point between a model producer (the training
// loop, a checkpoint loader, a follower) and the serving gateway.
// Publish installs a new snapshot atomically; Acquire hands out the
// current one with a reference held, so a swap during a batch never
// frees parameters a worker is still reading.
type Feed struct {
	mu   sync.RWMutex
	cur  *Snapshot // guarded by mu
	seq  uint64    // guarded by mu
	o    *obs.Observer
	node int

	freeMu sync.Mutex
	free   []linalg.Vector // guarded by freeMu
}

// NewFeed returns an empty feed (no model loaded yet).
func NewFeed() *Feed { return &Feed{node: -1} }

// SetObserver wires swap metrics and events; node is the id stamped on
// emitted events (-1 when the feed is not tied to a training node). Call
// before concurrent use.
func (f *Feed) SetObserver(o *obs.Observer, node int) {
	f.mu.Lock()
	f.o = o
	f.node = node
	f.mu.Unlock()
}

// Publish installs a copy of src as the current snapshot, stamped with
// the training round and control-plane epoch it came from. src is only
// read during the call, so the producer may immediately reuse it. Safe
// for concurrent use with Acquire; concurrent publishers serialize.
func (f *Feed) Publish(round, epoch int, src linalg.Vector) {
	buf := f.getBuf(len(src))
	copy(buf, src)
	s := &Snapshot{params: buf, round: round, epoch: epoch, feed: f}
	s.refs.Store(1) // the feed's own holder reference

	f.mu.Lock()
	f.seq++
	s.seq = f.seq
	old := f.cur
	f.cur = s
	o, node := f.o, f.node
	f.mu.Unlock()

	// Drop the holder reference on the displaced snapshot; its buffer is
	// recycled once the last in-flight batch releases it.
	old.Release()

	o.Counter(MServeSwaps).Inc()
	o.Gauge(MServeModelRound).Set(float64(round))
	o.Gauge(MServeModelEpoch).Set(float64(epoch))
	if o.LogEnabled() {
		fields := obs.GetFields()
		fields["seq"] = s.seq
		fields["epoch"] = epoch
		fields["params"] = len(buf)
		o.Emit(node, obs.EvModelSwap, round, -1, fields)
		obs.PutFields(fields)
	}
}

// Acquire returns the current snapshot with a reference held, or nil
// when nothing has been published. Callers must Release it.
func (f *Feed) Acquire() *Snapshot {
	f.mu.RLock()
	s := f.cur
	if s != nil {
		s.refs.Add(1)
	}
	f.mu.RUnlock()
	return s
}

// Loaded reports whether a snapshot has been published.
func (f *Feed) Loaded() bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.cur != nil
}

// Version returns the current snapshot's round, epoch, and sequence
// number; ok is false when nothing is loaded.
func (f *Feed) Version() (round, epoch int, seq uint64, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.cur == nil {
		return 0, 0, 0, false
	}
	return f.cur.round, f.cur.epoch, f.cur.seq, true
}

// getBuf takes a recycled buffer of exactly n entries or allocates one.
func (f *Feed) getBuf(n int) linalg.Vector {
	f.freeMu.Lock()
	for i, b := range f.free {
		if len(b) == n {
			last := len(f.free) - 1
			f.free[i] = f.free[last]
			f.free = f.free[:last]
			f.freeMu.Unlock()
			return b
		}
	}
	f.freeMu.Unlock()
	return linalg.NewVector(n)
}

// recycle returns a snapshot buffer to the free list. The list is capped
// at two entries — current plus one in flight covers the steady state —
// so a dimension change (new model shape) can't pin stale buffers.
func (f *Feed) recycle(buf linalg.Vector) {
	f.freeMu.Lock()
	if len(f.free) < 2 {
		f.free = append(f.free, buf)
	}
	f.freeMu.Unlock()
}
