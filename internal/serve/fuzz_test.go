package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// FuzzPredictRequest throws arbitrary bytes at POST /v1/predict. The
// invariants: the handler never panics, never reports a 5xx for a
// malformed payload (the gateway is loaded, so the only valid statuses
// are 200 for a well-formed request and 4xx for a bad one), and every
// 200 carries a well-formed response with one label per input row.
func FuzzPredictRequest(f *testing.F) {
	// Well-formed seeds.
	f.Add(`{"features":[1,2,3,4]}`)
	f.Add(`{"instances":[[1,2,3,4],[0,0,0,0]]}`)
	f.Add(`{"features":[-1.5,2.25e10,-3e-5,0]}`)
	// Malformed seeds: wrong dims, wrong shapes, overflow, junk.
	f.Add(`{"features":[1,2,3]}`)
	f.Add(`{"features":[1,2,3,4,5]}`)
	f.Add(`{"instances":[[1,2,3,4],[1,2]]}`)
	f.Add(`{"features":[1,2,3,1e999]}`)
	f.Add(`{"features":[1,2,3,null]}`)
	f.Add(`{"features":"not an array"}`)
	f.Add(`{"instances":[[1,2,3,4]],"features":[1,2,3,4]}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(``)
	f.Add(`{"features":[`)
	f.Add("\x00\x01\x02")
	f.Add(`{"unknown":true}`)

	m := &signModel{params: 4}
	g, err := NewGateway(Config{Model: m, Features: 4})
	if err != nil {
		f.Fatal(err)
	}
	defer g.Close()
	publishN(g.Feed(), 1, 0, 4, 1)
	h := NewHTTPHandler(g)

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req) // must not panic
		switch {
		case w.Code == http.StatusOK:
			var resp predictResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 with undecodable body %q: %v", w.Body, err)
			}
			if len(resp.Predictions) == 0 {
				t.Fatalf("200 with no predictions for body %q", body)
			}
		case w.Code >= 400 && w.Code < 500:
			var resp errorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("%d with undecodable error body %q: %v", w.Code, w.Body, err)
			}
			if resp.Error == "" {
				t.Fatalf("%d with empty error message for body %q", w.Code, body)
			}
		default:
			t.Fatalf("status %d for body %q (want 200 or 4xx)", w.Code, body)
		}
	})
}
