package serve

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/snapml/snap/internal/model"
)

// benchGateway builds a gateway over the paper's 24-feature SVM with a
// published snapshot.
func benchGateway(b *testing.B, maxBatch int, maxWait time.Duration) *Gateway {
	b.Helper()
	m := model.NewLinearSVM(24)
	g, err := NewGateway(Config{
		Model:      m,
		Features:   24,
		MaxBatch:   maxBatch,
		MaxWait:    maxWait,
		QueueDepth: 4096,
		Workers:    2,
		Deadline:   10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(g.Close)
	g.Feed().Publish(1, 0, m.InitParams(1))
	return g
}

func benchRows(n int) [][]float64 {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, 24)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	return rows
}

// BenchmarkServePredict compares the per-row cost of the gateway's two
// operating points, measured under concurrent load with one op = one
// row in both modes:
//
//   - unbatched: every row is its own request and its own batch
//     (MaxBatch 1), so each row pays the full dispatch cycle — queue
//     handoff, worker wakeup, snapshot acquire/release, completion
//     signal;
//   - batched32: rows reach the worker 32 at a time and run through the
//     micro-batch path (collect → one acquire → one PredictBatchInto
//     pass → fan-out), amortizing the dispatch cycle across the batch.
//
// The acceptance floor for this PR is batched throughput >= 2x
// unbatched at batch size 32. Coalescing waits are disabled in both
// modes so the comparison is pure batching, not timer policy (and a
// closed-loop benchmark would otherwise absorb every in-flight request
// into held batches and sleep MaxWait waiting for arrivals that cannot
// come).
func BenchmarkServePredict(b *testing.B) {
	rows := benchRows(256)
	b.Run("unbatched", func(b *testing.B) {
		g := benchGateway(b, 1, -1)
		b.SetParallelism(32)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			i := 0
			for pb.Next() {
				if _, _, err := g.Predict(ctx, rows[i%len(rows)]); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
	})
	b.Run("batched32", func(b *testing.B) {
		g := benchGateway(b, 32, -1)
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			batch := make([][]float64, 0, 32)
			dst := make([]int, 32)
			i := 0
			for pb.Next() {
				batch = append(batch, rows[i%len(rows)])
				i++
				if len(batch) == 32 {
					if _, err := g.PredictManyInto(ctx, dst, batch); err != nil {
						b.Fatal(err)
					}
					batch = batch[:0]
				}
			}
		})
	})
}

// BenchmarkServePredictMany measures the multi-row entry point at the
// acceptance batch size.
func BenchmarkServePredictMany(b *testing.B) {
	g := benchGateway(b, 32, -1)
	rows := benchRows(32)
	dst := make([]int, len(rows))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PredictManyInto(ctx, dst, rows); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPredictSteadyStateAllocs pins the allocation budget of the
// serving hot path: one warmed-up single-row Predict through queue,
// worker, compute, and completion. The budget is 1 allocation per
// predict — Go allocates a sudog the first few times a goroutine parks
// on the pooled request's channel, and the pool's round-robin across
// worker wakeups keeps a small residual; everything the gateway itself
// owns (requests, rows, labels, scratch) is reused.
func TestPredictSteadyStateAllocs(t *testing.T) {
	g := newTestGateway(t, Config{
		MaxBatch: 1,
		MaxWait:  -1,
		Workers:  1,
	})
	publishN(g.Feed(), 0, 0, 4, 1)
	ctx := context.Background()
	x := []float64{1, 0, 0, 0}
	for i := 0; i < 100; i++ {
		if _, _, err := g.Predict(ctx, x); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := g.Predict(ctx, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("steady-state Predict allocates %.2f/op, budget 1", allocs)
	}
}
