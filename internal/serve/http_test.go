package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
)

func postPredict(h http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHTTPPredict(t *testing.T) {
	g := newTestGateway(t, Config{})
	publishN(g.Feed(), 5, 1, 4, 1)
	h := NewHTTPHandler(g)

	w := postPredict(h, `{"features":[2,0,0,0]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("single predict status %d: %s", w.Code, w.Body)
	}
	var resp predictResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 1 || resp.Predictions[0] != 1 {
		t.Fatalf("predictions = %v, want [1]", resp.Predictions)
	}
	if resp.ModelRound != 5 || resp.ModelEpoch != 1 {
		t.Fatalf("version = %d/%d, want 5/1", resp.ModelRound, resp.ModelEpoch)
	}

	w = postPredict(h, `{"instances":[[1,0,0,0],[-1,0,0,0]]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("batch predict status %d: %s", w.Code, w.Body)
	}
	resp = predictResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Predictions) != 2 || resp.Predictions[0] != 1 || resp.Predictions[1] != 0 {
		t.Fatalf("predictions = %v, want [1 0]", resp.Predictions)
	}
}

func TestHTTPPredictRejects(t *testing.T) {
	g := newTestGateway(t, Config{})
	publishN(g.Feed(), 0, 0, 4, 1)
	h := NewHTTPHandler(g)

	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"features":`},
		{"not json", `hello`},
		{"empty object", `{}`},
		{"both fields", `{"features":[1,2,3,4],"instances":[[1,2,3,4]]}`},
		{"wrong dim", `{"features":[1,2,3]}`},
		{"wrong dim row", `{"instances":[[1,2,3,4],[1,2]]}`},
		{"overflow literal", `{"features":[1,2,3,1e999]}`},
		{"empty instances", `{"instances":[]}`},
		{"empty row", `{"instances":[[]]}`},
	}
	for _, tc := range cases {
		if w := postPredict(h, tc.body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, w.Code, w.Body)
		}
	}

	// NaN/Inf cannot be expressed in strict JSON literals, but requestRows
	// must still reject them for direct callers.
	if _, err := requestRows(&predictRequest{Features: []float64{1, 2, 3, math.Inf(1)}}, 4); err == nil {
		t.Error("requestRows accepted +Inf")
	}
	if _, err := requestRows(&predictRequest{Features: []float64{1, 2, 3, math.NaN()}}, 4); err == nil {
		t.Error("requestRows accepted NaN")
	}
}

func TestHTTPNoModel(t *testing.T) {
	g := newTestGateway(t, Config{})
	h := NewHTTPHandler(g)
	if w := postPredict(h, `{"features":[1,2,3,4]}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("predict without model: status %d, want 503", w.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz without model: status %d, want 503", w.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", w.Code)
	}
}

func TestHTTPModelLifecycle(t *testing.T) {
	m := model.NewLinearSVM(4)
	g := newTestGateway(t, Config{Model: m, Features: 4})
	h := NewHTTPHandler(g)

	// Unloaded info.
	req := httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var info modelInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Loaded || info.Model != "linear-svm" || info.Params != 4 {
		t.Fatalf("unloaded info = %+v", info)
	}

	// Hot-load a checkpoint over PUT.
	params := m.InitParams(9)
	var buf bytes.Buffer
	if err := model.SaveParams(&buf, params); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPut, "/v1/model?round=12&epoch=3", &buf)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("PUT model: status %d: %s", w.Code, w.Body)
	}

	// readyz flips, predictions flow, info reflects the version.
	req = httptest.NewRequest(http.MethodGet, "/readyz", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("readyz after load: status %d", w.Code)
	}
	if w := postPredict(h, `{"features":[1,0,0,0]}`); w.Code != http.StatusOK {
		t.Fatalf("predict after load: status %d: %s", w.Code, w.Body)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	info = modelInfo{}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if !info.Loaded || info.Round != 12 || info.Epoch != 3 || info.Seq != 1 {
		t.Fatalf("loaded info = %+v, want round 12 epoch 3 seq 1", info)
	}

	// A checkpoint of the wrong dimensionality is refused.
	var bad bytes.Buffer
	if err := model.SaveParams(&bad, linalg.NewVector(7)); err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPut, "/v1/model", &bad)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT wrong-dim checkpoint: status %d, want 400", w.Code)
	}

	// Garbage body is refused.
	req = httptest.NewRequest(http.MethodPut, "/v1/model", strings.NewReader("not a checkpoint"))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT garbage checkpoint: status %d, want 400", w.Code)
	}

	// Bad version query is refused.
	req = httptest.NewRequest(http.MethodPut, "/v1/model?round=abc", strings.NewReader(""))
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT bad round query: status %d, want 400", w.Code)
	}
}

func TestHTTPMethods(t *testing.T) {
	g := newTestGateway(t, Config{})
	h := NewHTTPHandler(g)
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/predict"},
		{http.MethodDelete, "/v1/model"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, w.Code)
		}
	}
}

func TestParamsHandler(t *testing.T) {
	f := NewFeed()
	h := ParamsHandler(f)

	// Empty feed: not ready.
	req := httptest.NewRequest(http.MethodGet, "/params", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("empty feed: status %d, want 503", w.Code)
	}

	src := linalg.NewVector(6)
	for i := range src {
		src[i] = float64(i) * 1.5
	}
	f.Publish(42, 2, src)

	// Full fetch round-trips the exact parameters and version headers.
	req = httptest.NewRequest(http.MethodGet, "/params", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("fetch: status %d", w.Code)
	}
	if got := w.Header().Get(HeaderRound); got != "42" {
		t.Fatalf("round header = %q, want 42", got)
	}
	if got := w.Header().Get(HeaderSeq); got != "1" {
		t.Fatalf("seq header = %q, want 1", got)
	}
	got, err := model.LoadParams(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("param %d = %v, want %v", i, got[i], src[i])
		}
	}

	// Matching have-seq probe: 304, no body.
	req = httptest.NewRequest(http.MethodGet, "/params", nil)
	req.Header.Set(HeaderHaveSeq, "1")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotModified {
		t.Fatalf("have-seq probe: status %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("304 carried %d body bytes", w.Body.Len())
	}

	// Stale have-seq still downloads.
	f.Publish(43, 2, src)
	req = httptest.NewRequest(http.MethodGet, "/params", nil)
	req.Header.Set(HeaderHaveSeq, "1")
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stale have-seq: status %d, want 200", w.Code)
	}

	// POST refused.
	req = httptest.NewRequest(http.MethodPost, "/params", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /params: status %d, want 405", w.Code)
	}
}

// TestFollower exercises the poll loop against a real ParamsHandler: the
// follower must load the first snapshot, skip unchanged polls via 304,
// and pick up later publishes.
func TestFollower(t *testing.T) {
	feed := NewFeed()
	srv := httptest.NewServer(ParamsHandler(feed))
	defer srv.Close()

	g := newTestGateway(t, Config{})
	fw := &Follower{URL: srv.URL, Gateway: g}
	ctx := context.Background()

	// Trainer not ready yet: poll succeeds but loads nothing.
	if err := fw.PollOnce(ctx); err != nil {
		t.Fatalf("poll before publish: %v", err)
	}
	if g.Ready() {
		t.Fatal("gateway loaded from an empty trainer")
	}

	publishN(feed, 10, 1, 4, 2.5)
	if err := fw.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	round, epoch, _, ok := g.Feed().Version()
	if !ok || round != 10 || epoch != 1 {
		t.Fatalf("followed version = %d/%d ok=%v, want 10/1", round, epoch, ok)
	}

	// Unchanged: the 304 path must not republish.
	if err := fw.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, seq, _ := g.Feed().Version(); seq != 1 {
		t.Fatalf("unchanged poll republished: seq %d, want 1", seq)
	}

	publishN(feed, 20, 1, 4, 3.5)
	if err := fw.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if round, _, seq, _ := g.Feed().Version(); round != 20 || seq != 2 {
		t.Fatalf("after second publish: round %d seq %d, want 20/2", round, seq)
	}
}
