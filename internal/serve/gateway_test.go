package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/snapml/snap/internal/dataset"
	"github.com/snapml/snap/internal/linalg"
	"github.com/snapml/snap/internal/model"
	"github.com/snapml/snap/internal/obs"
)

// signModel is a deterministic test model: label 1 iff the first feature
// is positive, with a fixed parameter count. It keeps gateway tests
// independent of real model numerics.
type signModel struct{ params int }

func (m *signModel) Name() string                                 { return "sign" }
func (m *signModel) NumParams() int                               { return m.params }
func (m *signModel) Loss(linalg.Vector, []dataset.Sample) float64 { return 0 }
func (m *signModel) Gradient(linalg.Vector, []dataset.Sample) linalg.Vector {
	return linalg.NewVector(m.params)
}
func (m *signModel) InitParams(int64) linalg.Vector { return linalg.NewVector(m.params) }
func (m *signModel) Predict(_ linalg.Vector, x []float64) int {
	if x[0] > 0 {
		return 1
	}
	return 0
}

// gateModel blocks every Predict until the gate channel is closed,
// letting tests hold a worker busy while they fill the queue. Each entry
// into Predict is announced on entered first.
type gateModel struct {
	signModel
	gate    chan struct{}
	entered chan struct{}
}

func newGateModel() *gateModel {
	return &gateModel{
		signModel: signModel{params: 4},
		gate:      make(chan struct{}),
		entered:   make(chan struct{}, 64),
	}
}

func (m *gateModel) Predict(p linalg.Vector, x []float64) int {
	m.entered <- struct{}{}
	<-m.gate
	return m.signModel.Predict(p, x)
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	if cfg.Model == nil {
		cfg.Model = &signModel{params: 4}
	}
	if cfg.Features == 0 {
		cfg.Features = 4
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return g
}

func publishN(f *Feed, round, epoch, n int, fill float64) {
	v := linalg.NewVector(n)
	v.Fill(fill)
	f.Publish(round, epoch, v)
}

func TestGatewayPredict(t *testing.T) {
	g := newTestGateway(t, Config{})
	publishN(g.Feed(), 7, 2, 4, 1)

	label, v, err := g.Predict(context.Background(), []float64{3, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if label != 1 {
		t.Fatalf("Predict = %d, want 1", label)
	}
	if v.Round != 7 || v.Epoch != 2 {
		t.Fatalf("version = %+v, want round 7 epoch 2", v)
	}

	xs := [][]float64{{1, 0, 0, 0}, {-1, 0, 0, 0}, {5, 0, 0, 0}}
	dst := make([]int, len(xs))
	v, err = g.PredictManyInto(context.Background(), dst, xs)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("PredictManyInto[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if v.Round != 7 {
		t.Fatalf("batch version round = %d, want 7", v.Round)
	}
}

func TestGatewayRealModel(t *testing.T) {
	m := model.NewLinearSVM(4)
	g := newTestGateway(t, Config{Model: m, Features: 4})
	params := m.InitParams(42)
	g.Feed().Publish(1, 0, params)

	x := []float64{0.5, -1, 2, 0.25}
	label, _, err := g.Predict(context.Background(), x)
	if err != nil {
		t.Fatal(err)
	}
	if want := m.Predict(params, x); label != want {
		t.Fatalf("gateway label %d, direct Predict %d", label, want)
	}
}

func TestGatewayNoModel(t *testing.T) {
	g := newTestGateway(t, Config{})
	if g.Ready() {
		t.Fatal("empty gateway reports ready")
	}
	_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
	if !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v, want ErrNoModel", err)
	}
}

func TestGatewayOverload(t *testing.T) {
	gm := newGateModel()
	reg := obs.NewRegistry()
	g := newTestGateway(t, Config{
		Model:      gm,
		Features:   4,
		Workers:    1,
		QueueDepth: 1,
		MaxBatch:   1,
		MaxWait:    -1, // no coalescing wait: the worker grabs one and blocks in Predict
		Obs:        &obs.Observer{Reg: reg},
	})
	publishN(g.Feed(), 0, 0, 4, 1)

	// First request occupies the worker (blocked in the gated model),
	// second fills the queue, third must be rejected immediately.
	results := make(chan error, 2)
	go func() {
		_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
		results <- err
	}()
	<-gm.entered // worker is now inside the gated Predict
	go func() {
		_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
		results <- err
	}()
	waitUntil(t, func() bool { return g.depth.Load() >= 1 }) // second parked in queue

	_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := reg.Counter(obs.Label(MServeRejects, LReason, ReasonQueueFull)).Value(); got != 1 {
		t.Fatalf("queue_full rejects = %d, want 1", got)
	}

	close(gm.gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("blocked request %d failed: %v", i, err)
		}
	}
}

func TestGatewayDeadline(t *testing.T) {
	gm := newGateModel()
	reg := obs.NewRegistry()
	g := newTestGateway(t, Config{
		Model:    gm,
		Features: 4,
		Workers:  1,
		MaxBatch: 1,
		MaxWait:  -1,
		Deadline: 30 * time.Millisecond,
		Obs:      &obs.Observer{Reg: reg},
	})
	publishN(g.Feed(), 0, 0, 4, 1)

	// Occupy the worker, then queue a second request and let its
	// deadline lapse before the worker frees up.
	first := make(chan error, 1)
	go func() {
		_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
		first <- err
	}()
	<-gm.entered // worker is now inside the gated Predict

	second := make(chan error, 1)
	go func() {
		_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
		second <- err
	}()
	waitUntil(t, func() bool { return g.depth.Load() >= 1 }) // second parked in queue

	time.Sleep(60 * time.Millisecond) // both deadlines lapse
	close(gm.gate)

	// The first was already executing; whether it finishes depends on
	// scheduling, but the queued second must be shed with ErrDeadline.
	<-first
	if err := <-second; !errors.Is(err, ErrDeadline) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request err = %v, want deadline error", err)
	}
	if got := reg.Counter(obs.Label(MServeRejects, LReason, ReasonDeadline)).Value(); got < 1 {
		t.Fatalf("deadline rejects = %d, want >= 1", got)
	}
}

func TestGatewayClose(t *testing.T) {
	g := newTestGateway(t, Config{})
	publishN(g.Feed(), 0, 0, 4, 1)
	g.Close()
	_, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err after Close = %v, want ErrClosed", err)
	}
	g.Close() // idempotent
}

func TestGatewayMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	g := newTestGateway(t, Config{Obs: &obs.Observer{Reg: reg}})
	publishN(g.Feed(), 3, 1, 4, 1)

	for i := 0; i < 5; i++ {
		if _, _, err := g.Predict(context.Background(), []float64{1, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(MServeRequests).Value(); got != 5 {
		t.Fatalf("requests = %d, want 5", got)
	}
	if got := reg.Counter(MServePredictions).Value(); got != 5 {
		t.Fatalf("predictions = %d, want 5", got)
	}
	if got := reg.Counter(MServeBatches).Value(); got < 1 || got > 5 {
		t.Fatalf("batches = %d, want 1..5", got)
	}
	if got := reg.Histogram(MServeLatency, obs.TimeBuckets).Count(); got != 5 {
		t.Fatalf("latency observations = %d, want 5", got)
	}
	if got := reg.Counter(MServeSwaps).Value(); got != 1 {
		t.Fatalf("swaps = %d, want 1", got)
	}
	if got := reg.Gauge(MServeModelRound).Value(); got != 3 {
		t.Fatalf("model round gauge = %v, want 3", got)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	if _, err := NewGateway(Config{Features: 4}); err == nil {
		t.Fatal("NewGateway without a model must fail")
	}
	if _, err := NewGateway(Config{Model: &signModel{params: 4}}); err == nil {
		t.Fatal("NewGateway without Features must fail")
	}
}

func TestPredictManyIntoShortDst(t *testing.T) {
	g := newTestGateway(t, Config{})
	publishN(g.Feed(), 0, 0, 4, 1)
	_, err := g.PredictManyInto(context.Background(), make([]int, 1), [][]float64{{1, 0, 0, 0}, {2, 0, 0, 0}})
	if err == nil {
		t.Fatal("short dst must fail")
	}
	if _, err := g.PredictManyInto(context.Background(), nil, nil); err != nil {
		t.Fatalf("empty request should be a no-op, got %v", err)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 2s")
		}
		time.Sleep(time.Millisecond)
	}
}
