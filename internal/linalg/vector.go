// Package linalg provides the dense linear-algebra primitives SNAP needs:
// vectors, matrices, and a symmetric eigendecomposition. It is deliberately
// small — just enough to express the EXTRA consensus iteration and the
// spectral weight-matrix optimization — and uses float64 throughout.
//
// All operations panic on dimension mismatch; such a mismatch is a
// programmer error, never a data-dependent condition.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	checkLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	checkLen(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Scale returns c*v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// AddInPlace sets v = v + w and returns v.
//
//snap:alloc-free
func (v Vector) AddInPlace(w Vector) Vector {
	checkLen(v, w)
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// AXPYInPlace sets v = v + c*w and returns v.
//
//snap:alloc-free
func (v Vector) AXPYInPlace(c float64, w Vector) Vector {
	checkLen(v, w)
	for i := range v {
		v[i] += c * w[i]
	}
	return v
}

// Dot returns the inner product <v, w>.
//
//snap:alloc-free
func (v Vector) Dot(w Vector) float64 {
	checkLen(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
//
//snap:alloc-free
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the max-absolute-value norm of v.
//
//snap:alloc-free
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of the entries of v.
//
//snap:alloc-free
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of the entries of v. The mean of an
// empty vector is 0.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Fill sets every entry of v to c and returns v.
//
//snap:alloc-free
func (v Vector) Fill(c float64) Vector {
	for i := range v {
		v[i] = c
	}
	return v
}

// Equal reports whether v and w have the same length and every pair of
// entries differs by at most tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

//snap:alloc-free
func checkLen(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: vector length mismatch %d != %d", len(v), len(w)))
	}
}
