package linalg

import "math"

// closeTo reports a relative-tolerance float comparison for test
// expectations. Exact ==/!= on computed floats is rejected by the
// floatdet analyzer: results legitimately differ in the last ulps
// across evaluation orders, FMA contraction, and architectures.
func closeTo(got, want float64) bool {
	const tol = 1e-12
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}
