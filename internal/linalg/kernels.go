package linalg

import "math"

// Destination-buffer kernels: the allocation-free counterparts of the
// value-returning vector ops. Every kernel writes its result into a
// caller-owned dst of matching length (panicking on mismatch, like the
// rest of the package) so a hot loop can rotate a fixed set of scratch
// vectors instead of allocating per iteration.
//
// dst may alias v (the first operand) in every kernel — each element is
// read before it is written — but must not partially overlap any operand.

// ScaleTo sets dst = c*v and returns dst.
//
//snap:alloc-free
func ScaleTo(dst Vector, c float64, v Vector) Vector {
	checkLen(dst, v)
	for i, x := range v {
		dst[i] = c * x
	}
	return dst
}

// AddTo sets dst = v + w and returns dst.
//
//snap:alloc-free
func AddTo(dst, v, w Vector) Vector {
	checkLen(dst, v)
	checkLen(v, w)
	for i, x := range v {
		dst[i] = x + w[i]
	}
	return dst
}

// SubTo sets dst = v - w and returns dst.
//
//snap:alloc-free
func SubTo(dst, v, w Vector) Vector {
	checkLen(dst, v)
	checkLen(v, w)
	for i, x := range v {
		dst[i] = x - w[i]
	}
	return dst
}

// AXPYTo sets dst = v + c*w and returns dst.
//
//snap:alloc-free
func AXPYTo(dst Vector, v Vector, c float64, w Vector) Vector {
	checkLen(dst, v)
	checkLen(v, w)
	for i, x := range v {
		dst[i] = x + c*w[i]
	}
	return dst
}

// MixTo computes the weighted neighbor mix dst = c*v + Σ_k ws[k]*xs[k]
// — the Σ_j w_ij·x_j term of the EXTRA iteration, fused into one pass.
// Per element the additions happen in slice order k = 0, 1, ..., so the
// result is bitwise-identical to the sequential ScaleTo-then-AXPYTo
// formulation it replaces (each element's accumulation order is the
// same); xs must therefore already be in a deterministic order (the
// engine keeps neighbors sorted by id).
//
//snap:alloc-free
func MixTo(dst Vector, c float64, v Vector, ws []float64, xs []Vector) Vector {
	checkLen(dst, v)
	if len(ws) != len(xs) {
		panic("linalg: MixTo weight/vector count mismatch")
	}
	for _, x := range xs {
		checkLen(v, x)
	}
	for i, x := range v {
		s := c * x
		for k, w := range ws {
			s += w * xs[k][i]
		}
		dst[i] = s
	}
	return dst
}

// DistInf returns max_i |v[i] - w[i]| without materializing the
// difference vector (the consensus-residual inner loop).
//
//snap:alloc-free
func DistInf(v, w Vector) float64 {
	checkLen(v, w)
	var m float64
	for i, x := range v {
		if d := math.Abs(x - w[i]); d > m {
			m = d
		}
	}
	return m
}
