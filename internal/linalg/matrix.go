package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] is element (i,j)
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a Vector sharing no storage with m.
func (m *Matrix) Row(i int) Vector {
	out := make(Vector, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.checkSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.checkSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns c*m.
func (m *Matrix) Scale(c float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = c * m.Data[i]
	}
	return out
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.Data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j := range brow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MulVec returns m*v.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Trace returns the sum of the diagonal of a square matrix.
func (m *Matrix) Trace() float64 {
	m.checkSquare()
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsDoublyStochastic reports whether every entry is in [-tol, 1+tol] and
// every row and column sums to 1 within tol.
func (m *Matrix) IsDoublyStochastic(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		var rowSum float64
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			if v < -tol || v > 1+tol {
				return false
			}
			rowSum += v
		}
		if math.Abs(rowSum-1) > tol {
			return false
		}
	}
	for j := 0; j < m.Cols; j++ {
		var colSum float64
		for i := 0; i < m.Rows; i++ {
			colSum += m.At(i, j)
		}
		if math.Abs(colSum-1) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%8.4f", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func (m *Matrix) checkSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

func (m *Matrix) checkSquare() {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("linalg: matrix %dx%d is not square", m.Rows, m.Cols))
	}
}
