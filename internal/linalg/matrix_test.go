package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !closeTo(m.At(i, j), want) {
				t.Errorf("I(3)[%d][%d] = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestMatrixFromRowsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged MatrixFromRows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := MatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if got.Sub(want).MaxAbs() > 0 {
		t.Errorf("Mul =\n%v want\n%v", got, want)
	}
}

func TestMatrixMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	if got := a.Mul(Identity(4)); got.Sub(a).MaxAbs() > 1e-15 {
		t.Error("A*I != A")
	}
	if got := Identity(4).Mul(a); got.Sub(a).MaxAbs() > 1e-15 {
		t.Error("I*A != A")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec(Vector{1, 0, -1})
	if want := (Vector{-2, -2}); !got.Equal(want, 0) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestMatrixTranspose(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose shape = %dx%d, want 3x2", at.Rows, at.Cols)
	}
	if att := at.Transpose(); att.Sub(a).MaxAbs() > 0 {
		t.Error("double transpose != original")
	}
}

func TestMatrixTrace(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 9}, {9, 2}})
	if got := a.Trace(); !closeTo(got, 3) {
		t.Errorf("Trace = %v, want 3", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := MatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if !sym.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	asym := MatrixFromRows([][]float64{{1, 2}, {3, 1}})
	if asym.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	rect := NewMatrix(2, 3)
	if rect.IsSymmetric(1) {
		t.Error("rectangular matrix reported symmetric")
	}
}

func TestIsDoublyStochastic(t *testing.T) {
	w := MatrixFromRows([][]float64{
		{0.5, 0.5, 0},
		{0.5, 0.25, 0.25},
		{0, 0.25, 0.75},
	})
	if !w.IsDoublyStochastic(1e-12) {
		t.Error("valid doubly stochastic matrix rejected")
	}
	bad := MatrixFromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}})
	if bad.IsDoublyStochastic(1e-6) {
		t.Error("matrix with column sums != 1 accepted")
	}
	neg := MatrixFromRows([][]float64{{1.5, -0.5}, {-0.5, 1.5}})
	if neg.IsDoublyStochastic(1e-6) {
		t.Error("matrix with negative entries accepted")
	}
}

func TestMatrixShapePanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Add", func() { NewMatrix(2, 2).Add(NewMatrix(2, 3)) }},
		{"Mul", func() { NewMatrix(2, 2).Mul(NewMatrix(3, 2)) }},
		{"MulVec", func() { NewMatrix(2, 2).MulVec(Vector{1}) }},
		{"Trace", func() { NewMatrix(2, 3).Trace() }},
		{"NewNegative", func() { NewMatrix(-1, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad shape did not panic", tc.name)
				}
			}()
			tc.f()
		})
	}
}

// Property: (AB)ᵀ == BᵀAᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMatrix(3, 4), NewMatrix(4, 2)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		return lhs.Sub(rhs).MaxAbs() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: trace(AB) == trace(BA).
func TestTraceCyclicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewMatrix(4, 4), NewMatrix(4, 4)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		tr1 := a.Mul(b).Trace()
		tr2 := b.Mul(a).Trace()
		return math.Abs(tr1-tr2) < 1e-9*(1+math.Abs(tr1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
