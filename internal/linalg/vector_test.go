package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -1, 0.5}
	got := v.Add(w)
	want := Vector{5, 1, 3.5}
	if !got.Equal(want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if diff := got.Sub(w); !diff.Equal(v, 1e-15) {
		t.Errorf("(v+w)-w = %v, want %v", diff, v)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, -2, 0}
	got := v.Scale(-3)
	if want := (Vector{-3, 6, 0}); !got.Equal(want, 0) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); !closeTo(got, 25) {
		t.Errorf("Dot = %v, want 25", got)
	}
	if got := v.Norm2(); !closeTo(got, 5) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.NormInf(); !closeTo(got, 4) {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestVectorSumMean(t *testing.T) {
	v := Vector{1, 2, 3, 4}
	if got := v.Sum(); !closeTo(got, 10) {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := v.Mean(); !closeTo(got, 2.5) {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	var empty Vector
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean = %v, want 0", got)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if !closeTo(v[0], 1) {
		t.Errorf("Clone aliases storage: v = %v", v)
	}
}

func TestVectorInPlaceOps(t *testing.T) {
	v := Vector{1, 1}
	v.AddInPlace(Vector{2, 3})
	if want := (Vector{3, 4}); !v.Equal(want, 0) {
		t.Errorf("AddInPlace = %v, want %v", v, want)
	}
	v.AXPYInPlace(2, Vector{1, -1})
	if want := (Vector{5, 2}); !v.Equal(want, 0) {
		t.Errorf("AXPYInPlace = %v, want %v", v, want)
	}
}

func TestVectorFill(t *testing.T) {
	v := NewVector(3).Fill(7)
	if want := (Vector{7, 7, 7}); !v.Equal(want, 0) {
		t.Errorf("Fill = %v, want %v", v, want)
	}
}

func TestVectorEqualLengthMismatch(t *testing.T) {
	if (Vector{1}).Equal(Vector{1, 2}, 1) {
		t.Error("vectors of different length reported equal")
	}
}

func TestVectorMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add with mismatched lengths did not panic")
		}
	}()
	_ = Vector{1}.Add(Vector{1, 2})
}

// Property: dot product is symmetric and Cauchy-Schwarz holds.
func TestVectorDotProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		v, w := clampVec(a[:]), clampVec(b[:])
		d1, d2 := v.Dot(w), w.Dot(v)
		if math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
			return false
		}
		bound := v.Norm2() * w.Norm2()
		return math.Abs(d1) <= bound+1e-9*(1+bound)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (v + w) - w == v.
func TestVectorAddSubRoundTrip(t *testing.T) {
	f := func(a, b [6]float64) bool {
		v, w := clampVec(a[:]), clampVec(b[:])
		return v.Add(w).Sub(w).Equal(v, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampVec sanitizes quick-generated float64s (NaN/Inf/huge) into a bounded
// range so arithmetic identities are numerically meaningful.
func clampVec(xs []float64) Vector {
	out := make(Vector, len(xs))
	for i, x := range xs {
		switch {
		case math.IsNaN(x) || math.IsInf(x, 0):
			out[i] = 0
		case x > 1e6:
			out[i] = 1e6
		case x < -1e6:
			out[i] = -1e6
		default:
			out[i] = x
		}
	}
	return out
}
