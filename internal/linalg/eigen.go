package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenResult holds the eigendecomposition of a symmetric matrix:
// A·V[:,k] = Values[k]·V[:,k], with Values sorted ascending and the columns
// of Vectors the corresponding orthonormal eigenvectors.
type EigenResult struct {
	Values  []float64
	Vectors *Matrix // column k is the eigenvector for Values[k]
}

// SymEigen computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi method. It is O(n³) per sweep and converges in a handful
// of sweeps for the matrix sizes SNAP uses (network weight matrices, n ≤ a
// few hundred). The input is not modified.
//
// SymEigen returns an error if a is not square or not symmetric (within
// 1e-9 relative to its largest entry), or if Jacobi fails to converge.
func SymEigen(a *Matrix) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SymEigen: matrix is %dx%d, not square", a.Rows, a.Cols)
	}
	symTol := 1e-9 * math.Max(1, a.MaxAbs())
	if !a.IsSymmetric(symTol) {
		return nil, fmt.Errorf("linalg: SymEigen: matrix is not symmetric within %g", symTol)
	}
	n := a.Rows
	if n == 0 {
		return &EigenResult{Values: nil, Vectors: NewMatrix(0, 0)}, nil
	}

	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(w)
		if off <= 1e-14*math.Max(1, w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Classic Jacobi rotation choice (Golub & Van Loan 8.4).
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
		if sweep == maxSweeps-1 {
			return nil, fmt.Errorf("linalg: SymEigen: Jacobi did not converge in %d sweeps (off-diagonal norm %g)", maxSweeps, offDiagonalNorm(w))
		}
	}

	res := &EigenResult{
		Values:  make([]float64, n),
		Vectors: NewMatrix(n, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = w.At(i, i)
	}
	sort.Slice(idx, func(x, y int) bool { return diag[idx[x]] < diag[idx[y]] })
	for k, src := range idx {
		res.Values[k] = diag[src]
		for i := 0; i < n; i++ {
			res.Vectors.Set(i, k, v.At(i, src))
		}
	}
	return res, nil
}

// applyJacobiRotation applies the rotation J(p,q,θ) with cos=c, sin=s to w
// (two-sided: w ← JᵀwJ) and accumulates it into the eigenvector matrix v
// (one-sided: v ← vJ).
func applyJacobiRotation(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagonalNorm(m *Matrix) float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// Vector returns eigenvector k as a fresh Vector.
func (e *EigenResult) Vector(k int) Vector {
	out := make(Vector, e.Vectors.Rows)
	for i := range out {
		out[i] = e.Vectors.At(i, k)
	}
	return out
}

// Min returns the smallest eigenvalue.
func (e *EigenResult) Min() float64 { return e.Values[0] }

// Max returns the largest eigenvalue.
func (e *EigenResult) Max() float64 { return e.Values[len(e.Values)-1] }

// Spectrum summarizes the eigenvalues of a symmetric doubly stochastic
// matrix in the terms the SNAP paper uses.
type Spectrum struct {
	All []float64 // ascending

	// LambdaMin is λmin(W), the smallest eigenvalue.
	LambdaMin float64
	// LambdaBarMax is λ̄max(W): the paper defines it as the largest
	// eigenvalue strictly smaller than 1. For a connected graph's
	// stochastic matrix that is exactly the second-largest eigenvalue,
	// which is what we report — robustly: when the unit eigenvalue has
	// multiplicity ≥ 2 (a disconnected mixing matrix) LambdaBarMax is 1,
	// correctly signalling "no spectral gap" instead of silently skipping
	// the extra unit eigenvalues.
	LambdaBarMax float64
	// SLEM is the second-largest eigenvalue modulus,
	// max(λ̄max, -λmin) — the quantity that governs mixing speed.
	SLEM float64
}

// AnalyzeSpectrum eigendecomposes w (which must be symmetric) and returns
// the spectral summary. The tolerance for "equal to 1" is 1e-9.
func AnalyzeSpectrum(w *Matrix) (*Spectrum, error) {
	eig, err := SymEigen(w)
	if err != nil {
		return nil, err
	}
	return SpectrumFromEigen(eig), nil
}

// SpectrumFromEigen summarizes an already-computed eigendecomposition.
func SpectrumFromEigen(eig *EigenResult) *Spectrum {
	return spectrumFromValues(eig.Values)
}

func spectrumFromValues(vals []float64) *Spectrum {
	sp := &Spectrum{All: vals}
	if len(vals) == 0 {
		return sp
	}
	sp.LambdaMin = vals[0]
	// Second-largest eigenvalue; n = 1 has no second mode, so report 0
	// (consensus over a single node is trivial).
	if len(vals) == 1 {
		sp.LambdaBarMax = 0
	} else {
		sp.LambdaBarMax = vals[len(vals)-2]
	}
	sp.SLEM = math.Max(sp.LambdaBarMax, -sp.LambdaMin)
	return sp
}
