package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{3, 0, 0},
		{0, -1, 0},
		{0, 0, 2},
	})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i, v := range want {
		if math.Abs(eig.Values[i]-v) > 1e-12 {
			t.Errorf("Values[%d] = %v, want %v", i, eig.Values[i], v)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-1) > 1e-12 || math.Abs(eig.Values[1]-3) > 1e-12 {
		t.Errorf("Values = %v, want [1 3]", eig.Values)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	a := randomSymmetric(rng, n)
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check A v_k = λ_k v_k for every k.
	for k := 0; k < n; k++ {
		v := eig.Vector(k)
		av := a.MulVec(v)
		lv := v.Scale(eig.Values[k])
		if !av.Equal(lv, 1e-8) {
			t.Errorf("eigenpair %d: ||Av - λv||inf = %v", k, av.Sub(lv).NormInf())
		}
	}
	// Trace == sum of eigenvalues.
	var sum float64
	for _, v := range eig.Values {
		sum += v
	}
	if math.Abs(a.Trace()-sum) > 1e-9 {
		t.Errorf("trace %v != Σλ %v", a.Trace(), sum)
	}
}

func TestSymEigenOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSymmetric(rng, 6)
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	vt := eig.Vectors.Transpose()
	shouldBeI := vt.Mul(eig.Vectors)
	if diff := shouldBeI.Sub(Identity(6)).MaxAbs(); diff > 1e-10 {
		t.Errorf("VᵀV deviates from identity by %v", diff)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, err := SymEigen(a); err == nil {
		t.Error("asymmetric matrix accepted")
	}
}

func TestSymEigenEmpty(t *testing.T) {
	eig, err := SymEigen(NewMatrix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(eig.Values) != 0 {
		t.Errorf("empty matrix produced %d eigenvalues", len(eig.Values))
	}
}

func TestSymEigenSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	eig, err := SymEigen(randomSymmetric(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(eig.Values); i++ {
		if eig.Values[i] < eig.Values[i-1] {
			t.Fatalf("eigenvalues not ascending: %v", eig.Values)
		}
	}
	if !closeTo(eig.Min(), eig.Values[0]) || !closeTo(eig.Max(), eig.Values[len(eig.Values)-1]) {
		t.Error("Min/Max disagree with sorted Values")
	}
}

// Property test: for random symmetric matrices, eigen reconstruction
// holds: ||A - VΛVᵀ||max small.
func TestSymEigenReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		a := randomSymmetric(rng, n)
		eig, err := SymEigen(a)
		if err != nil {
			return false
		}
		lam := NewMatrix(n, n)
		for i, v := range eig.Values {
			lam.Set(i, i, v)
		}
		recon := eig.Vectors.Mul(lam).Mul(eig.Vectors.Transpose())
		return recon.Sub(a).MaxAbs() < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeSpectrumStochastic(t *testing.T) {
	// Complete-graph averaging matrix J/n has eigenvalues {1, 0, ..., 0}.
	n := 4
	w := NewMatrix(n, n)
	for i := range w.Data {
		w.Data[i] = 1.0 / float64(n)
	}
	sp, err := AnalyzeSpectrum(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.LambdaBarMax) > 1e-9 {
		t.Errorf("LambdaBarMax = %v, want 0", sp.LambdaBarMax)
	}
	if math.Abs(sp.LambdaMin) > 1e-9 {
		t.Errorf("LambdaMin = %v, want 0", sp.LambdaMin)
	}
	if math.Abs(sp.SLEM) > 1e-9 {
		t.Errorf("SLEM = %v, want 0", sp.SLEM)
	}
}

func TestAnalyzeSpectrumRingLike(t *testing.T) {
	// Lazy random walk on a 3-cycle: W = (1/2)I + (1/4)A. Eigenvalues of the
	// cycle adjacency are {2, -1, -1}, so W has {1, 1/4, 1/4}.
	w := MatrixFromRows([][]float64{
		{0.5, 0.25, 0.25},
		{0.25, 0.5, 0.25},
		{0.25, 0.25, 0.5},
	})
	sp, err := AnalyzeSpectrum(w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.LambdaBarMax-0.25) > 1e-9 {
		t.Errorf("LambdaBarMax = %v, want 0.25", sp.LambdaBarMax)
	}
	if math.Abs(sp.SLEM-0.25) > 1e-9 {
		t.Errorf("SLEM = %v, want 0.25", sp.SLEM)
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}
