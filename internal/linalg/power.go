package linalg

import (
	"fmt"
	"math"
)

// PowerOptions tunes the power-iteration eigenpair solvers. Zero values
// select the defaults.
type PowerOptions struct {
	// MaxIterations bounds the iteration count (default 1000). Clustered
	// eigenvalues slow power iteration; the default gives ~1e-5 accuracy
	// even for relative gaps of order 1e-2.
	MaxIterations int
	// Tolerance is the convergence threshold on the eigenvector update,
	// ‖v_{k+1} − v_k‖∞ (default 1e-10).
	Tolerance float64
}

func (o PowerOptions) withDefaults() PowerOptions {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// StochasticExtremes computes the two extreme non-unit eigenpairs of a
// symmetric doubly stochastic matrix W by power iteration — the exact
// quantities SNAP's weight-matrix optimizer needs, in O(n²) per iteration
// instead of the Jacobi solver's O(n³) per sweep:
//
//   - (λ₂, v₂): the second-largest eigenvalue and its eigenvector,
//     obtained by iterating on W + I with the known top eigenvector
//     (the all-ones direction) deflated away;
//   - (λmin, vmin): the smallest eigenvalue and its eigenvector, obtained
//     by iterating on 2I − W (eigenvalues 2−λ ∈ (1, 3], dominated by
//     2−λmin).
//
// W must be square with rows summing to 1 (checked); symmetry is assumed.
func StochasticExtremes(w *Matrix, opts PowerOptions) (lambda2 float64, v2 Vector, lambdaMin float64, vMin Vector, err error) {
	opts = opts.withDefaults()
	n := w.Rows
	if n != w.Cols {
		return 0, nil, 0, nil, fmt.Errorf("linalg: StochasticExtremes: matrix is %dx%d", w.Rows, w.Cols)
	}
	if n == 0 {
		return 0, nil, 0, nil, fmt.Errorf("linalg: StochasticExtremes: empty matrix")
	}
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += w.At(i, j)
		}
		if math.Abs(sum-1) > 1e-6 {
			return 0, nil, 0, nil, fmt.Errorf("linalg: StochasticExtremes: row %d sums to %g", i, sum)
		}
	}
	if n == 1 {
		return 0, Vector{0}, 1, Vector{1}, nil
	}

	// λ₂: iterate x ← (W+I)x with the all-ones direction projected out.
	// Eigenvalues of W+I on the deflated space are λ+1 ∈ [0, 2), all
	// non-negative, so the dominant one is λ₂+1 and plain power iteration
	// converges to it.
	v2 = powerIterate(n, opts, func(dst, src Vector) {
		tmp := w.MulVec(src)
		tmp.AddInPlace(src)
		copy(dst, tmp)
	}, true)
	lambda2 = rayleigh(w, v2)

	// λmin: iterate x ← (2I − W)x. Eigenvalues 2−λ ∈ (1, 3]; dominant is
	// 2−λmin with eigenvector vmin. The unit eigenvalue maps to 1, never
	// dominant, so no deflation is needed — unless W = I-like degeneracies
	// make everything equal, which the tolerance handles.
	vMin = powerIterate(n, opts, func(dst, src Vector) {
		tmp := w.MulVec(src)
		for i := range dst {
			dst[i] = 2*src[i] - tmp[i]
		}
	}, false)
	lambdaMin = rayleigh(w, vMin)
	return lambda2, v2, lambdaMin, vMin, nil
}

// powerIterate runs power iteration with the given matrix-vector product,
// optionally deflating the all-ones direction each step.
func powerIterate(n int, opts PowerOptions, mulInto func(dst, src Vector), deflateOnes bool) Vector {
	// Deterministic pseudo-random start, orthogonal-ish to 1.
	v := NewVector(n)
	for i := range v {
		v[i] = math.Sin(float64(3*i + 1))
	}
	if deflateOnes {
		projectOutOnes(v)
	}
	normalize(v)
	next := NewVector(n)
	for it := 0; it < opts.MaxIterations; it++ {
		mulInto(next, v)
		if deflateOnes {
			projectOutOnes(next)
		}
		if norm := next.Norm2(); norm < 1e-300 {
			// Degenerate operator (e.g. deflated space is null): restart
			// from a different direction.
			for i := range next {
				next[i] = math.Cos(float64(2*i + it + 1))
			}
			if deflateOnes {
				projectOutOnes(next)
			}
		}
		normalize(next)
		// Sign-align to measure the true update size.
		if next.Dot(v) < 0 {
			for i := range next {
				next[i] = -next[i]
			}
		}
		delta := 0.0
		for i := range v {
			if d := math.Abs(next[i] - v[i]); d > delta {
				delta = d
			}
		}
		copy(v, next)
		if delta < opts.Tolerance {
			break
		}
	}
	return v
}

// rayleigh returns vᵀWv / vᵀv.
func rayleigh(w *Matrix, v Vector) float64 {
	wv := w.MulVec(v)
	return v.Dot(wv) / v.Dot(v)
}

func projectOutOnes(v Vector) {
	mean := v.Mean()
	for i := range v {
		v[i] -= mean
	}
}

func normalize(v Vector) {
	norm := v.Norm2()
	if norm == 0 {
		return
	}
	for i := range v {
		v[i] /= norm
	}
}
