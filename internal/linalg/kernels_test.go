package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func randVec(n int, rng *rand.Rand) Vector {
	v := NewVector(n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// bitsEqual reports bitwise equality of two vectors (the determinism
// contract of the kernels; plain float == is banned in this package).
func bitsEqual(v, w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Float64bits(v[i]) != math.Float64bits(w[i]) {
			return false
		}
	}
	return true
}

func TestScaleTo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := randVec(9, rng)
	dst := NewVector(9)
	if got := ScaleTo(dst, 2.5, v); !bitsEqual(got, v.Scale(2.5)) {
		t.Errorf("ScaleTo = %v, want %v", got, v.Scale(2.5))
	}
	// Aliasing dst = v is allowed.
	want := v.Scale(-3)
	ScaleTo(v, -3, v)
	if !bitsEqual(v, want) {
		t.Error("ScaleTo with dst aliasing v diverged")
	}
}

func TestAddSubTo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v, w := randVec(7, rng), randVec(7, rng)
	dst := NewVector(7)
	if got := AddTo(dst, v, w); !bitsEqual(got, v.Add(w)) {
		t.Error("AddTo mismatch")
	}
	if got := SubTo(dst, v, w); !bitsEqual(got, v.Sub(w)) {
		t.Error("SubTo mismatch")
	}
}

func TestAXPYTo(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v, w := randVec(11, rng), randVec(11, rng)
	want := v.Clone().AXPYInPlace(0.7, w)
	dst := NewVector(11)
	if got := AXPYTo(dst, v, 0.7, w); !bitsEqual(got, want) {
		t.Error("AXPYTo mismatch")
	}
	// dst aliasing v.
	vc := v.Clone()
	AXPYTo(vc, vc, 0.7, w)
	if !bitsEqual(vc, want) {
		t.Error("AXPYTo with dst aliasing v diverged")
	}
}

// TestMixToMatchesSequential pins the determinism contract: MixTo must be
// bitwise-identical to the ScaleTo-then-AXPYInPlace formulation it fuses,
// since Engine.Step's recursion depends on reproducible float order.
func TestMixToMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, k = 13, 5
	v := randVec(n, rng)
	ws := make([]float64, k)
	xs := make([]Vector, k)
	for j := range xs {
		ws[j] = rng.Float64()
		xs[j] = randVec(n, rng)
	}
	want := v.Scale(0.31)
	for j := range xs {
		want.AXPYInPlace(ws[j], xs[j])
	}
	dst := NewVector(n)
	if got := MixTo(dst, 0.31, v, ws, xs); !bitsEqual(got, want) {
		t.Errorf("MixTo = %v, want sequential result %v", got, want)
	}
	// Zero neighbors degenerates to ScaleTo.
	if got := MixTo(dst, 2, v, nil, nil); !bitsEqual(got, v.Scale(2)) {
		t.Error("MixTo with no neighbors != ScaleTo")
	}
}

func TestDistInf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v, w := randVec(17, rng), randVec(17, rng)
	if got, want := DistInf(v, w), v.Sub(w).NormInf(); !closeTo(got, want) {
		t.Errorf("DistInf = %v, want %v", got, want)
	}
	if got := DistInf(v, v); got != 0 {
		t.Errorf("DistInf(v, v) = %v, want 0", got)
	}
}

func TestKernelsPanicOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	AddTo(NewVector(3), NewVector(3), NewVector(4))
}

func TestKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v, w := randVec(64, rng), randVec(64, rng)
	dst := NewVector(64)
	ws := []float64{0.2, 0.3}
	xs := []Vector{randVec(64, rng), randVec(64, rng)}
	if n := testing.AllocsPerRun(100, func() {
		ScaleTo(dst, 2, v)
		AddTo(dst, v, w)
		SubTo(dst, v, w)
		AXPYTo(dst, v, 3, w)
		MixTo(dst, 0.5, v, ws, xs)
		DistInf(v, w)
	}); n != 0 {
		t.Errorf("kernels allocated %v times per run, want 0", n)
	}
}
