package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomStochastic builds a random symmetric doubly stochastic matrix via
// the edge parameterization over a random support.
func randomStochastic(rng *rand.Rand, n int) *Matrix {
	m := Identity(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				// Move weight from the diagonals to the pair, keeping
				// symmetry and row sums.
				w := rng.Float64() * math.Min(m.At(i, i), m.At(j, j)) * 0.5
				m.Set(i, j, m.At(i, j)+w)
				m.Set(j, i, m.At(j, i)+w)
				m.Set(i, i, m.At(i, i)-w)
				m.Set(j, j, m.At(j, j)-w)
			}
		}
	}
	return m
}

func TestStochasticExtremesMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(20)
		w := randomStochastic(rng, n)
		lam2, v2, lamMin, vMin, err := StochasticExtremes(w, PowerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		eig, err := SymEigen(w)
		if err != nil {
			t.Fatal(err)
		}
		sp := SpectrumFromEigen(eig)
		if math.Abs(lam2-sp.LambdaBarMax) > 1e-6 {
			t.Errorf("trial %d: λ₂ = %v, Jacobi %v", trial, lam2, sp.LambdaBarMax)
		}
		if math.Abs(lamMin-sp.LambdaMin) > 1e-6 {
			t.Errorf("trial %d: λmin = %v, Jacobi %v", trial, lamMin, sp.LambdaMin)
		}
		// Eigenvector residuals ‖Wv − λv‖∞ small.
		if r := w.MulVec(v2).Sub(v2.Scale(lam2)).NormInf(); r > 1e-5 {
			t.Errorf("trial %d: v₂ residual %v", trial, r)
		}
		if r := w.MulVec(vMin).Sub(vMin.Scale(lamMin)).NormInf(); r > 1e-5 {
			t.Errorf("trial %d: vmin residual %v", trial, r)
		}
	}
}

func TestStochasticExtremesUniformMatrix(t *testing.T) {
	// J/n: spectrum {1, 0, ..., 0} — λ₂ = 0, λmin = 0.
	n := 6
	w := NewMatrix(n, n)
	for i := range w.Data {
		w.Data[i] = 1.0 / float64(n)
	}
	lam2, _, lamMin, _, err := StochasticExtremes(w, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam2) > 1e-8 || math.Abs(lamMin) > 1e-8 {
		t.Errorf("J/n extremes = (%v, %v), want (0, 0)", lam2, lamMin)
	}
}

func TestStochasticExtremesIdentity(t *testing.T) {
	// W = I: every eigenvalue is 1 — no gap; λ₂ must come out as 1.
	lam2, _, lamMin, _, err := StochasticExtremes(Identity(5), PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam2-1) > 1e-8 {
		t.Errorf("identity λ₂ = %v, want 1", lam2)
	}
	if math.Abs(lamMin-1) > 1e-8 {
		t.Errorf("identity λmin = %v, want 1", lamMin)
	}
}

func TestStochasticExtremesValidation(t *testing.T) {
	if _, _, _, _, err := StochasticExtremes(NewMatrix(2, 3), PowerOptions{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, _, _, _, err := StochasticExtremes(NewMatrix(0, 0), PowerOptions{}); err == nil {
		t.Error("empty matrix accepted")
	}
	bad := MatrixFromRows([][]float64{{0.5, 0.1}, {0.1, 0.5}})
	if _, _, _, _, err := StochasticExtremes(bad, PowerOptions{}); err == nil {
		t.Error("non-stochastic rows accepted")
	}
}

func TestStochasticExtremesSingleNode(t *testing.T) {
	w := MatrixFromRows([][]float64{{1}})
	lam2, _, lamMin, _, err := StochasticExtremes(w, PowerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lam2 != 0 || !closeTo(lamMin, 1) {
		t.Errorf("n=1 extremes = (%v, %v), want (0, 1)", lam2, lamMin)
	}
}

// Property: power-iteration eigenvalues agree with Jacobi on random
// stochastic matrices.
func TestStochasticExtremesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw)%15
		w := randomStochastic(rng, n)
		lam2, _, lamMin, _, err := StochasticExtremes(w, PowerOptions{})
		if err != nil {
			return false
		}
		eig, err := SymEigen(w)
		if err != nil {
			return false
		}
		sp := SpectrumFromEigen(eig)
		// When the extreme eigenvalue nearly ties its neighbor, power
		// iteration converges to a vector in the tied subspace whose
		// Rayleigh quotient lies anywhere between the two — so the
		// mathematically guaranteed error bound is the spacing to the
		// next eigenvalue (plus numerical slack). That is also all the
		// weight optimizer needs: a subgradient from the tied subspace is
		// a valid subgradient.
		vals := eig.Values
		gapTop := vals[len(vals)-2] - vals[len(vals)-3]
		gapBot := vals[1] - vals[0]
		return math.Abs(lam2-sp.LambdaBarMax) < 1e-4+gapTop &&
			math.Abs(lamMin-sp.LambdaMin) < 1e-4+gapBot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
