package weights

import (
	"fmt"
	"math"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
)

// BoundParams are the problem constants that appear in the paper's
// simplified linear-rate bound, eq. (17). The zero value selects the
// defaults below.
type BoundParams struct {
	// Alpha is the EXTRA step size α (default 0.01).
	Alpha float64
	// Lf is the gradient Lipschitz constant L_f (default 1).
	Lf float64
	// MuG is the strong-convexity constant μ_g of g(x) (default 1).
	MuG float64
	// Theta is the free parameter θ > 1 (default 2).
	Theta float64
	// Eta is the free parameter η ∈ (0, 2μ_g) (default μ_g).
	Eta float64
}

func (p BoundParams) withDefaults() BoundParams {
	if p.Alpha <= 0 {
		p.Alpha = 0.01
	}
	if p.Lf <= 0 {
		p.Lf = 1
	}
	if p.MuG <= 0 {
		p.MuG = 1
	}
	if p.Theta <= 1 {
		p.Theta = 2
	}
	if p.Eta <= 0 || p.Eta >= 2*p.MuG {
		p.Eta = p.MuG
	}
	return p
}

// DeltaBound evaluates the paper's simplified convergence-rate bound,
// eq. (17): the EXTRA iterates contract at rate O((1+δ)^−k) where
//
//	δ ≤ min( α(2μ_g−η)·λ̄min(I−W) / (2θα²L_f² + λ̄min(I−W)),
//	         (θ−1)(η+ηλ_min(W)−2αL_f²)·λ̄min(I−W) / (4θη(1+αL_f)²) )
//
// with λ̄min(I−W) = 1 − λ̄max(W). A larger δ means faster convergence, so
// the weight matrix with the larger bound is preferred.
func DeltaBound(sp *linalg.Spectrum, p BoundParams) float64 {
	p = p.withDefaults()
	lamBarMinIW := 1 - sp.LambdaBarMax // λ̄min(I−W)
	term1 := p.Alpha * (2*p.MuG - p.Eta) * lamBarMinIW /
		(2*p.Theta*p.Alpha*p.Alpha*p.Lf*p.Lf + lamBarMinIW)
	term2 := (p.Theta - 1) * (p.Eta + p.Eta*sp.LambdaMin - 2*p.Alpha*p.Lf*p.Lf) * lamBarMinIW /
		(4 * p.Theta * p.Eta * (1 + p.Alpha*p.Lf) * (1 + p.Alpha*p.Lf))
	return math.Min(term1, term2)
}

// OptimizeBest implements the paper's Section IV-B policy: solve problem
// (21)/(23) (minimize λ̄max) and problem (22) (maximize λmin) separately,
// evaluate the candidates with the convergence bound eq. (17), and keep
// the matrix with the larger bound.
//
// Two pragmatic additions beyond the paper's text: the SLEM-minimizing
// matrix is considered as a third candidate (it balances both ends of the
// spectrum, which eq. 17 rewards but neither subproblem optimizes
// jointly), and the Metropolis starting matrix is kept as a floor so the
// "optimized" matrix can never be worse than the unoptimized baseline
// under the bound. Note that problem (22) alone is degenerate — W = I is
// feasible and maximal but does not mix at all — which the bound handles:
// a gapless matrix has λ̄min(I−W) = 0 and therefore a zero bound.
func OptimizeBest(g *graph.Graph, p BoundParams, opts Options) (*Result, error) {
	metro := Metropolis(g, opts.Eps)
	metroSpec, err := linalg.AnalyzeSpectrum(metro)
	if err != nil {
		return nil, fmt.Errorf("weights: analyzing Metropolis baseline: %w", err)
	}
	best := &Result{W: metro, Spectrum: metroSpec, Objective: MetropolisBaseline, Value: metroSpec.LambdaBarMax}
	bestBound := DeltaBound(metroSpec, p)

	for _, obj := range []Objective{MinimizeLambdaBarMax, MaximizeLambdaMin, MinimizeSLEM, JointSpectral} {
		r, err := Optimize(g, obj, opts)
		if err != nil {
			return nil, fmt.Errorf("weights: solving %v: %w", obj, err)
		}
		if b := DeltaBound(r.Spectrum, p); b > bestBound {
			best, bestBound = r, b
		}
	}
	return best, nil
}
