// Package weights constructs and optimizes the symmetric doubly stochastic
// weight matrix W that drives SNAP's EXTRA consensus iteration.
//
// Two constructions are provided:
//
//   - Metropolis: the predefined initialization of paper eq. (24),
//     w_ij = 1/(max(deg i, deg j)+ε) on edges — the baseline the paper
//     compares its optimization against, and the interior starting point
//     for the optimizer.
//
//   - Optimize: the paper's weight-matrix optimization (Section IV-B).
//     Problems (21)/(23) (minimize λ̄max(W)) and (22) (maximize λmin(W))
//     are convex over the set of symmetric doubly stochastic matrices with
//     a fixed sparsity pattern. The paper solves them with an interior-point
//     method; we solve them with projected subgradient on the edge
//     parameterization W = I − Σ_e w_e·L_e (L_e the edge Laplacian), which
//     keeps W symmetric with unit row sums by construction and needs only
//     the box/degree constraints w_e ≥ 0, Σ_{e∋i} w_e ≤ 1. The exact
//     eigen-subgradient ∂λ/∂w_e = −(v_i − v_j)² is available from the
//     Jacobi eigensolver, so the method converges to the same optimum.
package weights

import (
	"fmt"
	"math"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
)

// Metropolis builds the paper's eq. (24) weight matrix for topology g:
//
//	w_ij = 1/(max(deg(i),deg(j))+ε)  if {i,j} is an edge
//	w_ii = 1 − Σ_{j≠i} w_ij
//
// The result is symmetric and doubly stochastic for any ε > 0, and strictly
// diagonally positive, so it is a valid interior starting point for the
// optimizer. ε ≤ 0 is replaced by a small default.
func Metropolis(g *graph.Graph, eps float64) *linalg.Matrix {
	if eps <= 0 {
		eps = 1e-3
	}
	n := g.N()
	w := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for _, j := range g.Neighbors(i) {
			v := 1 / (math.Max(float64(g.Degree(i)), float64(g.Degree(j))) + eps)
			w.Set(i, j, v)
			rowSum += v
		}
		w.Set(i, i, 1-rowSum)
	}
	return w
}

// Objective selects which spectral quantity the optimizer targets.
type Objective int

const (
	// MetropolisBaseline marks a Result whose matrix is the unoptimized
	// eq. (24) matrix (returned by OptimizeBest when no optimized
	// candidate beats it under the rate bound).
	MetropolisBaseline Objective = -1

	// MinimizeLambdaBarMax solves paper problem (21)/(23): minimize the
	// largest eigenvalue of W strictly below 1.
	MinimizeLambdaBarMax Objective = iota
	// MaximizeLambdaMin solves paper problem (22): maximize the smallest
	// eigenvalue of W.
	MaximizeLambdaMin
	// MinimizeSLEM minimizes max(λ̄max, −λmin), the second-largest
	// eigenvalue modulus — the fastest-mixing-Markov-chain objective.
	// Offered as an ablation; not one of the paper's two subproblems.
	MinimizeSLEM
	// JointSpectral solves the paper's joint problem (20) directly:
	// minimize λ̄max while not letting λmin fall below its Metropolis
	// starting value (a penalty scalarization). The separately solved
	// problem (21) freely trades λmin down for λ̄max, which the rate
	// bound (17) punishes; the joint form improves λ̄max without that
	// trade and is the candidate that usually wins the bound comparison.
	JointSpectral
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MetropolisBaseline:
		return "metropolis"
	case MinimizeLambdaBarMax:
		return "min-lambda-bar-max"
	case MaximizeLambdaMin:
		return "max-lambda-min"
	case MinimizeSLEM:
		return "min-slem"
	case JointSpectral:
		return "joint-spectral"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// Options tunes the projected-subgradient optimizer. The zero value selects
// sensible defaults.
type Options struct {
	// Iterations is the number of subgradient steps (default 300).
	Iterations int
	// Step is the initial step size (default 1.0); steps decay as
	// Step/sqrt(k+1).
	Step float64
	// Eps is the Metropolis ε used for the starting point (default 1e-3).
	Eps float64
	// FastEigen computes the two extreme eigenpairs by power iteration
	// (O(n²) per step) instead of a full Jacobi decomposition (O(n³)).
	// Recommended for networks beyond ~80 nodes; accuracy ~1e-5 — far
	// below what the subgradient method needs.
	FastEigen bool
}

func (o Options) withDefaults() Options {
	if o.Iterations <= 0 {
		o.Iterations = 300
	}
	if o.Step <= 0 {
		o.Step = 1.0
	}
	if o.Eps <= 0 {
		o.Eps = 1e-3
	}
	return o
}

// Result is an optimized weight matrix together with its spectral summary
// and the objective value reached.
type Result struct {
	W         *linalg.Matrix
	Spectrum  *linalg.Spectrum
	Objective Objective
	Value     float64 // the objective value of W (λ̄max, λmin, or SLEM)
}

// Optimize solves the selected spectral problem over symmetric doubly
// stochastic matrices supported on g's edges, starting from the Metropolis
// matrix. It returns the best iterate found.
func Optimize(g *graph.Graph, obj Objective, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("weights: cannot optimize over an empty graph")
	}
	edges := g.Edges()

	// Start from Metropolis edge weights.
	w := make([]float64, len(edges))
	init := Metropolis(g, opts.Eps)
	for k, e := range edges {
		w[k] = init.At(e.U, e.V)
	}
	initSpec, err := linalg.AnalyzeSpectrum(init)
	if err != nil {
		return nil, fmt.Errorf("weights: analyzing start point: %w", err)
	}
	// λmin floor for the JointSpectral scalarization.
	floor := initSpec.LambdaMin

	best := append([]float64(nil), w...)
	startView, err := spectralViewOf(buildMatrix(n, edges, w), opts.FastEigen)
	if err != nil {
		return nil, fmt.Errorf("weights: evaluating start point: %w", err)
	}
	bestVal := startView.objectiveValue(obj, floor)

	grad := make([]float64, len(edges))
	for it := 0; it < opts.Iterations; it++ {
		view, err := spectralViewOf(buildMatrix(n, edges, w), opts.FastEigen)
		if err != nil {
			return nil, fmt.Errorf("weights: eigendecomposition at iteration %d: %w", it, err)
		}
		fillSubgradient(grad, edges, view, obj, floor)

		step := opts.Step / math.Sqrt(float64(it+1))
		for k := range w {
			// All objectives are phrased as minimization in
			// fillSubgradient, so step against the subgradient.
			w[k] -= step * grad[k]
		}
		projectFeasible(n, edges, w)

		view, err = spectralViewOf(buildMatrix(n, edges, w), opts.FastEigen)
		if err != nil {
			return nil, err
		}
		val := view.objectiveValue(obj, floor)
		if better(obj, val, bestVal) {
			bestVal = val
			copy(best, w)
		}
	}

	mat := buildMatrix(n, edges, best)
	sp, err := linalg.AnalyzeSpectrum(mat)
	if err != nil {
		return nil, fmt.Errorf("weights: analyzing result: %w", err)
	}
	return &Result{W: mat, Spectrum: sp, Objective: obj, Value: bestVal}, nil
}

// buildMatrix assembles W from edge weights: W_ij = w_e on edges, diagonal
// fills each row to sum 1.
func buildMatrix(n int, edges []graph.Edge, w []float64) *linalg.Matrix {
	m := linalg.NewMatrix(n, n)
	diag := make([]float64, n)
	for i := range diag {
		diag[i] = 1
	}
	for k, e := range edges {
		m.Set(e.U, e.V, w[k])
		m.Set(e.V, e.U, w[k])
		diag[e.U] -= w[k]
		diag[e.V] -= w[k]
	}
	for i, d := range diag {
		m.Set(i, i, d)
	}
	return m
}

// jointPenalty weights the λmin-floor violation in the JointSpectral
// scalarization.
const jointPenalty = 10.0

// spectralView is the backend-neutral spectral information one subgradient
// step needs: the two extreme non-unit eigenpairs.
type spectralView struct {
	lambda2   float64 // λ̄max, the second-largest eigenvalue
	v2        linalg.Vector
	lambdaMin float64
	vMin      linalg.Vector
}

// spectralViewOf computes the view with either the exact Jacobi solver or
// the O(n²) power-iteration fast path. Using the second-largest
// eigen*vector* (rather than matching eigenvalues against 1) stays correct
// when the unit eigenvalue has multiplicity ≥ 2 — the disconnected case,
// where that eigenvector differs across components and its subgradient
// raises the cut-edge weights, reconnecting the matrix.
func spectralViewOf(m *linalg.Matrix, fast bool) (*spectralView, error) {
	if fast {
		lam2, v2, lamMin, vMin, err := linalg.StochasticExtremes(m, linalg.PowerOptions{})
		if err != nil {
			return nil, err
		}
		return &spectralView{lambda2: lam2, v2: v2, lambdaMin: lamMin, vMin: vMin}, nil
	}
	eig, err := linalg.SymEigen(m)
	if err != nil {
		return nil, err
	}
	second := len(eig.Values) - 2
	if second < 0 {
		second = 0
	}
	return &spectralView{
		lambda2:   eig.Values[second],
		v2:        eig.Vector(second),
		lambdaMin: eig.Values[0],
		vMin:      eig.Vector(0),
	}, nil
}

// objectiveValue evaluates the minimization form of obj on the view.
func (view *spectralView) objectiveValue(obj Objective, floor float64) float64 {
	switch obj {
	case MinimizeLambdaBarMax:
		return view.lambda2
	case MaximizeLambdaMin:
		return view.lambdaMin
	case MinimizeSLEM:
		return math.Max(view.lambda2, -view.lambdaMin)
	case JointSpectral:
		return view.lambda2 + jointPenalty*math.Max(0, floor-view.lambdaMin)
	default:
		panic(fmt.Sprintf("weights: unknown objective %v", obj))
	}
}

// fillSubgradient writes a subgradient of the minimization form of obj into
// grad. For an eigenvalue λ of W with unit eigenvector v,
// ∂λ/∂w_e = −(v_i − v_j)², since ∂W/∂w_e = −L_e. floor is the λmin floor
// used by JointSpectral.
func fillSubgradient(grad []float64, edges []graph.Edge, view *spectralView, obj Objective, floor float64) {
	v := view.v2
	sign := 1.0 // multiplier converting to minimization form
	switch obj {
	case MinimizeLambdaBarMax:
		// v already v2.
	case MaximizeLambdaMin:
		v = view.vMin
		sign = -1 // maximize λmin == minimize −λmin
	case MinimizeSLEM:
		if view.lambda2 < -view.lambdaMin {
			v = view.vMin
			sign = -1
		}
	case JointSpectral:
		// ∂(λ̄max + P·max(0, floor−λmin))/∂w_e.
		var vmin linalg.Vector
		if view.lambdaMin < floor {
			vmin = view.vMin
		}
		for k, e := range edges {
			d := v[e.U] - v[e.V]
			grad[k] = -(d * d)
			if vmin != nil {
				dm := vmin[e.U] - vmin[e.V]
				// −λmin has subgradient +(dm)², scaled by the penalty.
				grad[k] += jointPenalty * dm * dm
			}
		}
		return
	}
	for k, e := range edges {
		d := v[e.U] - v[e.V]
		grad[k] = sign * -(d * d)
	}
}

// projectFeasible maps edge weights onto the feasible set
// {w_e ≥ 0, Σ_{e∋i} w_e ≤ 1 ∀i}: clamp negatives, then scale each edge by
// the harsher of its endpoints' overflow factors. A single clamp+scale pass
// is feasible because scaling only ever decreases node sums.
func projectFeasible(n int, edges []graph.Edge, w []float64) {
	for k := range w {
		if w[k] < 0 {
			w[k] = 0
		}
	}
	sums := make([]float64, n)
	for k, e := range edges {
		sums[e.U] += w[k]
		sums[e.V] += w[k]
	}
	for k, e := range edges {
		f := 1.0
		if sums[e.U] > 1 {
			f = math.Min(f, 1/sums[e.U])
		}
		if sums[e.V] > 1 {
			f = math.Min(f, 1/sums[e.V])
		}
		w[k] *= f
	}
}

func better(obj Objective, candidate, incumbent float64) bool {
	if obj == MaximizeLambdaMin {
		return candidate > incumbent
	}
	return candidate < incumbent
}
