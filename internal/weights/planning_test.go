package weights

import (
	"testing"
)

func TestPlanNeighborsBasics(t *testing.T) {
	plan, err := PlanNeighbors(8, 0.05, BoundParams{}, Options{Iterations: 80})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Topology.N() != 8 {
		t.Fatalf("planned topology has %d nodes", plan.Topology.N())
	}
	if !plan.Topology.IsConnected() {
		t.Error("planning disconnected the network")
	}
	if !plan.Weights.W.IsDoublyStochastic(1e-8) {
		t.Error("planned weight matrix not doubly stochastic")
	}
	// The planned weights must live on the planned topology.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && !plan.Topology.HasEdge(i, j) && plan.Weights.W.At(i, j) != 0 {
				t.Errorf("weight %v on dropped edge {%d,%d}", plan.Weights.W.At(i, j), i, j)
			}
		}
	}
}

func TestPlanNeighborsZeroThresholdKeepsCompleteGraph(t *testing.T) {
	plan, err := PlanNeighbors(5, 0, BoundParams{}, Options{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	// With a zero threshold only exactly-zero weights could drop; on K5
	// the optimizer keeps all edges useful, so nothing is pruned.
	if plan.Dropped != 0 && plan.Topology.NumEdges()+plan.Dropped != 10 {
		t.Errorf("edge bookkeeping off: %d edges + %d dropped", plan.Topology.NumEdges(), plan.Dropped)
	}
	if !plan.Topology.IsConnected() {
		t.Error("disconnected")
	}
}

func TestPlanNeighborsHighThresholdStaysConnected(t *testing.T) {
	// Even an absurd threshold must not disconnect the network.
	plan, err := PlanNeighbors(10, 10, BoundParams{}, Options{Iterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Topology.IsConnected() {
		t.Fatal("planning disconnected the network under a high threshold")
	}
	// A spanning structure must survive: at least n-1 edges.
	if plan.Topology.NumEdges() < 9 {
		t.Errorf("only %d edges survived", plan.Topology.NumEdges())
	}
	// And it should have pruned down close to a tree.
	if plan.Topology.NumEdges() > 20 {
		t.Errorf("high threshold kept %d edges; expected aggressive pruning", plan.Topology.NumEdges())
	}
}

func TestPlanNeighborsValidation(t *testing.T) {
	if _, err := PlanNeighbors(0, 0.1, BoundParams{}, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PlanNeighbors(4, -1, BoundParams{}, Options{}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestPlanNeighborsReducesDegreeVsComplete(t *testing.T) {
	plan, err := PlanNeighbors(12, 0.06, BoundParams{}, Options{Iterations: 80})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Topology.NumEdges() >= 12*11/2 {
		t.Skip("optimizer kept the complete graph at this threshold — acceptable but nothing to assert")
	}
	if plan.Dropped == 0 {
		t.Error("Dropped = 0 despite missing edges")
	}
}
