package weights

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/snapml/snap/internal/graph"
	"github.com/snapml/snap/internal/linalg"
)

func TestMetropolisDoublyStochastic(t *testing.T) {
	topologies := map[string]*graph.Graph{
		"ring10":    graph.Ring(10),
		"star6":     graph.Star(6),
		"complete5": graph.Complete(5),
		"random":    graph.RandomConnected(20, 3, rand.New(rand.NewSource(1))),
	}
	for name, g := range topologies {
		t.Run(name, func(t *testing.T) {
			w := Metropolis(g, 1e-3)
			if !w.IsSymmetric(1e-12) {
				t.Error("Metropolis matrix not symmetric")
			}
			if !w.IsDoublyStochastic(1e-9) {
				t.Error("Metropolis matrix not doubly stochastic")
			}
			// Sparsity: w_ij nonzero only on edges (or diagonal).
			for i := 0; i < g.N(); i++ {
				for j := 0; j < g.N(); j++ {
					if i != j && !g.HasEdge(i, j) && w.At(i, j) != 0 {
						t.Errorf("w[%d][%d] = %v off the support", i, j, w.At(i, j))
					}
				}
			}
		})
	}
}

func TestMetropolisDefaultEps(t *testing.T) {
	g := graph.Ring(4)
	w := Metropolis(g, 0) // eps <= 0 replaced by default
	if !w.IsDoublyStochastic(1e-9) {
		t.Error("default-eps matrix not doubly stochastic")
	}
	// Diagonal strictly positive thanks to eps.
	for i := 0; i < 4; i++ {
		if w.At(i, i) <= 0 {
			t.Errorf("diagonal entry %d = %v not positive", i, w.At(i, i))
		}
	}
}

func TestMetropolisKnownValuesRing(t *testing.T) {
	// On a ring all degrees are 2, so each edge weight is 1/(2+eps).
	g := graph.Ring(5)
	eps := 0.5
	w := Metropolis(g, eps)
	want := 1 / (2 + eps)
	if got := w.At(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("edge weight = %v, want %v", got, want)
	}
	if got := w.At(0, 0); math.Abs(got-(1-2*want)) > 1e-12 {
		t.Errorf("diagonal = %v, want %v", got, 1-2*want)
	}
}

func TestOptimizeImprovesSpectralGap(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		// strict: the graph is irregular enough that Metropolis is
		// suboptimal and the optimizer must strictly improve λ̄max. On
		// regular degree-2 graphs (rings) uniform weights are already
		// optimal — the paper observes the same in Fig. 5(b).
		strict bool
	}{
		{"ring12", graph.Ring(12), false},
		{"random30deg3", graph.RandomConnected(30, 3, rand.New(rand.NewSource(7))), true},
		{"random20deg4", graph.RandomConnected(20, 4, rand.New(rand.NewSource(9))), true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base, err := linalg.AnalyzeSpectrum(Metropolis(tc.g, 1e-3))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Optimize(tc.g, MinimizeLambdaBarMax, Options{Iterations: 150})
			if err != nil {
				t.Fatal(err)
			}
			if tc.strict && res.Spectrum.LambdaBarMax >= base.LambdaBarMax {
				t.Errorf("optimizer did not reduce λ̄max: %v >= %v",
					res.Spectrum.LambdaBarMax, base.LambdaBarMax)
			}
			if res.Spectrum.LambdaBarMax > base.LambdaBarMax+1e-12 {
				t.Errorf("optimizer worsened λ̄max: %v > %v",
					res.Spectrum.LambdaBarMax, base.LambdaBarMax)
			}
			if !res.W.IsDoublyStochastic(1e-8) {
				t.Error("optimized matrix not doubly stochastic")
			}
			if !res.W.IsSymmetric(1e-12) {
				t.Error("optimized matrix not symmetric")
			}
		})
	}
}

func TestOptimizeMaxLambdaMin(t *testing.T) {
	g := graph.Ring(10)
	base, err := linalg.AnalyzeSpectrum(Metropolis(g, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, MaximizeLambdaMin, Options{Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum.LambdaMin < base.LambdaMin-1e-12 {
		t.Errorf("optimizer decreased λmin: %v < %v", res.Spectrum.LambdaMin, base.LambdaMin)
	}
	if !res.W.IsDoublyStochastic(1e-8) {
		t.Error("optimized matrix not doubly stochastic")
	}
}

func TestOptimizeSLEM(t *testing.T) {
	g := graph.RandomConnected(25, 3, rand.New(rand.NewSource(21)))
	base, err := linalg.AnalyzeSpectrum(Metropolis(g, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(g, MinimizeSLEM, Options{Iterations: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum.SLEM > base.SLEM+1e-12 {
		t.Errorf("optimizer increased SLEM: %v > %v", res.Spectrum.SLEM, base.SLEM)
	}
}

func TestOptimizePreservesSupport(t *testing.T) {
	g := graph.RandomConnected(15, 3, rand.New(rand.NewSource(4)))
	res, err := Optimize(g, MinimizeLambdaBarMax, Options{Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if i != j && !g.HasEdge(i, j) && res.W.At(i, j) != 0 {
				t.Fatalf("optimized W[%d][%d] = %v outside support", i, j, res.W.At(i, j))
			}
		}
	}
}

func TestOptimizeEmptyGraph(t *testing.T) {
	if _, err := Optimize(graph.New(0), MinimizeLambdaBarMax, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestOptimizeCompleteGraphNearIdealMixing(t *testing.T) {
	// On K_n the optimum of problem (21) is W = J/n with λ̄max = 0 (within
	// subgradient accuracy).
	g := graph.Complete(6)
	res, err := Optimize(g, MinimizeLambdaBarMax, Options{Iterations: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spectrum.LambdaBarMax > 0.12 {
		t.Errorf("K6 optimized λ̄max = %v, want near 0", res.Spectrum.LambdaBarMax)
	}
}

func TestObjectiveString(t *testing.T) {
	for _, tc := range []struct {
		o    Objective
		want string
	}{
		{MinimizeLambdaBarMax, "min-lambda-bar-max"},
		{MaximizeLambdaMin, "max-lambda-min"},
		{MinimizeSLEM, "min-slem"},
		{Objective(99), "Objective(99)"},
	} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.o), got, tc.want)
		}
	}
}

// Property: projection always yields a doubly stochastic matrix regardless
// of the raw edge weights.
func TestProjectionProperty(t *testing.T) {
	g := graph.RandomConnected(12, 3, rand.New(rand.NewSource(2)))
	edges := g.Edges()
	f := func(raw []float64) bool {
		w := make([]float64, len(edges))
		for k := range w {
			if k < len(raw) && !math.IsNaN(raw[k]) && !math.IsInf(raw[k], 0) {
				w[k] = math.Mod(raw[k], 3) // keep magnitudes sane
			}
		}
		projectFeasible(g.N(), edges, w)
		return buildMatrix(g.N(), edges, w).IsDoublyStochastic(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeltaBoundMonotoneInGap(t *testing.T) {
	// A smaller λ̄max (bigger spectral gap) must not decrease the bound.
	fast := &linalg.Spectrum{LambdaBarMax: 0.2, LambdaMin: 0.1}
	slow := &linalg.Spectrum{LambdaBarMax: 0.9, LambdaMin: 0.1}
	p := BoundParams{}
	if DeltaBound(fast, p) <= DeltaBound(slow, p) {
		t.Errorf("DeltaBound(fast)=%v <= DeltaBound(slow)=%v",
			DeltaBound(fast, p), DeltaBound(slow, p))
	}
}

func TestDeltaBoundDefaults(t *testing.T) {
	sp := &linalg.Spectrum{LambdaBarMax: 0.5, LambdaMin: -0.2}
	if d := DeltaBound(sp, BoundParams{}); d <= 0 {
		t.Errorf("default-parameter bound = %v, want positive", d)
	}
	// Invalid parameters are replaced, not propagated.
	if d := DeltaBound(sp, BoundParams{Theta: 0.5, Eta: -1}); d <= 0 {
		t.Errorf("bound with invalid params = %v, want positive", d)
	}
}

func TestOptimizeBestReturnsValidMatrix(t *testing.T) {
	g := graph.RandomConnected(20, 3, rand.New(rand.NewSource(13)))
	res, err := OptimizeBest(g, BoundParams{}, Options{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.W.IsDoublyStochastic(1e-8) {
		t.Error("OptimizeBest matrix not doubly stochastic")
	}
	// It should be at least as good as Metropolis under the bound.
	base, err := linalg.AnalyzeSpectrum(Metropolis(g, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if DeltaBound(res.Spectrum, BoundParams{}) < DeltaBound(base, BoundParams{})-1e-12 {
		t.Error("OptimizeBest selected a matrix worse than the Metropolis baseline")
	}
}

// TestFastEigenMatchesJacobiPath verifies the power-iteration fast path
// lands on a matrix of the same quality as the exact path.
func TestFastEigenMatchesJacobiPath(t *testing.T) {
	g := graph.RandomConnected(40, 3, rand.New(rand.NewSource(71)))
	exact, err := Optimize(g, JointSpectral, Options{Iterations: 120, Step: 3})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Optimize(g, JointSpectral, Options{Iterations: 120, Step: 3, FastEigen: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.W.IsDoublyStochastic(1e-8) {
		t.Error("fast-path matrix not doubly stochastic")
	}
	if math.Abs(fast.Spectrum.LambdaBarMax-exact.Spectrum.LambdaBarMax) > 0.02 {
		t.Errorf("fast λ̄max %v vs exact %v", fast.Spectrum.LambdaBarMax, exact.Spectrum.LambdaBarMax)
	}
}
