package weights

import (
	"fmt"

	"github.com/snapml/snap/internal/graph"
)

// Plan is the outcome of neighbor-set planning: the derived topology and
// the weight matrix over it.
type Plan struct {
	Topology *graph.Graph
	Weights  *Result
	// Dropped counts the complete-graph edges eliminated because their
	// optimized weight fell below the threshold.
	Dropped int
}

// PlanNeighbors implements the paper's §IV-D neighbor-set planning: when
// no physical neighbor information is available, assume every edge server
// can talk to every other, optimize the weight matrix over the complete
// graph, and then dismiss neighbor relations whose optimized weight is
// below threshold — they contribute little mixing but would cost
// bandwidth every round. The weight matrix is then re-optimized over the
// pruned topology.
//
// Pruning never disconnects the network: edges are considered in
// ascending weight order and an edge is kept, regardless of weight, if
// removing it would disconnect the current topology.
func PlanNeighbors(n int, threshold float64, p BoundParams, opts Options) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("weights: cannot plan neighbors for %d nodes", n)
	}
	if threshold < 0 {
		return nil, fmt.Errorf("weights: negative threshold %g", threshold)
	}
	full := graph.Complete(n)
	res, err := OptimizeBest(full, p, opts)
	if err != nil {
		return nil, fmt.Errorf("weights: optimizing over the complete graph: %w", err)
	}

	pruned := full.Clone()
	dropped := 0
	// Ascending-weight order: drop the least useful relations first.
	edges := full.Edges()
	for swept := true; swept; {
		swept = false
		var weakest *graph.Edge
		weakestW := threshold
		for i := range edges {
			e := edges[i]
			if !pruned.HasEdge(e.U, e.V) {
				continue
			}
			if w := res.W.At(e.U, e.V); w < weakestW {
				weakest = &edges[i]
				weakestW = w
			}
		}
		if weakest == nil {
			break
		}
		pruned.RemoveEdge(weakest.U, weakest.V)
		if pruned.IsConnected() {
			dropped++
			swept = true
		} else {
			pruned.AddEdge(weakest.U, weakest.V)
			// Mark as untouchable by pretending its weight is above
			// threshold: simplest is to remove it from consideration.
			for i := range edges {
				if edges[i] == *weakest {
					edges[i] = edges[len(edges)-1]
					edges = edges[:len(edges)-1]
					break
				}
			}
			swept = true
		}
	}

	final, err := OptimizeBest(pruned, p, opts)
	if err != nil {
		return nil, fmt.Errorf("weights: re-optimizing over the pruned topology: %w", err)
	}
	return &Plan{Topology: pruned, Weights: final, Dropped: dropped}, nil
}
