package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCostLedgerBasics(t *testing.T) {
	l := NewCostLedger()
	l.Record(0, 2, 100) // 200 weighted
	l.Record(0, 1, 50)  // 50 weighted
	l.Record(1, 3, 10)  // 30 weighted
	if got := l.Total(); got != 280 {
		t.Errorf("Total = %v, want 280", got)
	}
	if got := l.Bytes(); got != 160 {
		t.Errorf("Bytes = %v, want 160", got)
	}
	if got := l.Messages(); got != 3 {
		t.Errorf("Messages = %v, want 3", got)
	}
	if got := l.RoundCost(0); got != 250 {
		t.Errorf("RoundCost(0) = %v, want 250", got)
	}
	per := l.PerRound()
	if len(per) != 2 || per[0] != 250 || per[1] != 30 {
		t.Errorf("PerRound = %v, want [250 30]", per)
	}
}

func TestCostLedgerReset(t *testing.T) {
	l := NewCostLedger()
	l.Record(0, 1, 1)
	l.Reset()
	if l.Total() != 0 || l.Bytes() != 0 || l.Messages() != 0 || len(l.PerRound()) != 0 {
		t.Error("Reset did not clear the ledger")
	}
}

func TestCostLedgerConcurrent(t *testing.T) {
	l := NewCostLedger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Record(i%10, 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 8000 {
		t.Errorf("concurrent Total = %v, want 8000", got)
	}
}

func TestCostLedgerPanicsOnNegative(t *testing.T) {
	l := NewCostLedger()
	defer func() {
		if recover() == nil {
			t.Error("negative hops did not panic")
		}
	}()
	l.Record(0, -1, 5)
}

func TestTraceLast(t *testing.T) {
	var tr Trace
	if _, ok := tr.Last(); ok {
		t.Error("empty trace reported a last row")
	}
	tr.Append(IterationStat{Round: 0, Loss: 1})
	tr.Append(IterationStat{Round: 1, Loss: 0.5})
	last, ok := tr.Last()
	if !ok || last.Round != 1 || last.Loss != 0.5 {
		t.Errorf("Last = %+v, ok=%v", last, ok)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestConvergenceDetector(t *testing.T) {
	d := &ConvergenceDetector{RelTol: 1e-3, Patience: 2}
	losses := []float64{1.0, 0.5, 0.25, 0.2499, 0.24989, 0.249889}
	var convergedAt = -1
	for i, loss := range losses {
		if d.Observe(loss, 0) {
			convergedAt = i
			break
		}
	}
	// Rounds 3,4 are small changes; patience 2 reached at index 4.
	if convergedAt != 4 {
		t.Errorf("converged at %d, want 4", convergedAt)
	}
}

func TestConvergenceDetectorStreakResets(t *testing.T) {
	d := &ConvergenceDetector{RelTol: 1e-3, Patience: 2}
	seq := []float64{1, 1, 0.5, 0.5, 0.5}
	results := make([]bool, len(seq))
	for i, loss := range seq {
		results[i] = d.Observe(loss, 0)
	}
	// After 1,1 streak=1; drop to 0.5 resets; then 0.5,0.5 builds to 2.
	want := []bool{false, false, false, false, true}
	for i := range want {
		if results[i] != want[i] {
			t.Errorf("Observe #%d = %v, want %v (results %v)", i, results[i], want[i], results)
		}
	}
}

func TestConvergenceDetectorConsensusGate(t *testing.T) {
	d := &ConvergenceDetector{RelTol: 1e-2, Patience: 1, ConsensusTol: 0.1}
	d.Observe(1.0, 1.0)
	if d.Observe(1.0, 0.5) {
		t.Error("converged despite consensus above tolerance")
	}
	if !d.Observe(1.0, 0.05) {
		t.Error("did not converge with flat loss and small consensus gap")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:  "Fig X",
		XLabel: "servers",
		YLabel: "iterations",
		X:      []float64{20, 60, 100},
	}
	if err := tab.AddSeries("snap", []float64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddSeries("ps", []float64{11, 22, math.NaN()}); err != nil {
		t.Fatal(err)
	}
	out := tab.Render()
	for _, want := range []string{"# Fig X", "servers", "snap", "ps", "20", "30"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "servers,snap,ps\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "20,10,11") {
		t.Errorf("CSV row missing:\n%s", csv)
	}
}

func TestTableAddSeriesLengthMismatch(t *testing.T) {
	tab := &Table{X: []float64{1, 2}}
	if err := tab.AddSeries("bad", []float64{1}); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{XLabel: `x,"label"`, X: []float64{1}}
	if err := tab.AddSeries("a,b", []float64{2}); err != nil {
		t.Fatal(err)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,""label"""`) || !strings.Contains(csv, `"a,b"`) {
		t.Errorf("CSV escaping wrong: %s", csv)
	}
}

func TestCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	grid := []float64{0, 1, 2.5, 4, 10}
	got := CDF(xs, grid)
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	got := CDF(nil, []float64{1, 2})
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("CDF of empty data = %v, want zeros", got)
	}
}

// Property: CDF is monotone nondecreasing in the grid and bounded in [0,1].
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(data [16]float64, gridRaw [8]float64) bool {
		xs := data[:]
		grid := append([]float64(nil), gridRaw[:]...)
		for i := range grid {
			if math.IsNaN(grid[i]) {
				grid[i] = 0
			}
		}
		// Sort the grid to make monotonicity meaningful.
		for i := 1; i < len(grid); i++ {
			for j := i; j > 0 && grid[j] < grid[j-1]; j-- {
				grid[j], grid[j-1] = grid[j-1], grid[j]
			}
		}
		out := CDF(xs, grid)
		prev := 0.0
		for _, v := range out {
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLogGrid(t *testing.T) {
	g := LogGrid(1e-4, 1, 5)
	if len(g) != 5 {
		t.Fatalf("len = %d", len(g))
	}
	if math.Abs(g[0]-1e-4) > 1e-15 || math.Abs(g[4]-1) > 1e-12 {
		t.Errorf("endpoints = %v, %v", g[0], g[4])
	}
	// Constant ratio between consecutive points.
	r := g[1] / g[0]
	for i := 2; i < len(g); i++ {
		if math.Abs(g[i]/g[i-1]-r) > 1e-9 {
			t.Errorf("ratios not constant: %v", g)
		}
	}
}

func TestLogGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad LogGrid args did not panic")
		}
	}()
	LogGrid(0, 1, 3)
}

func TestTraceIterationsToLoss(t *testing.T) {
	var tr Trace
	for i, loss := range []float64{5, 3, 2, 1.5, 1.2} {
		tr.Append(IterationStat{Round: i, Loss: loss})
	}
	if got := tr.IterationsToLoss(2.0); got != 3 {
		t.Errorf("IterationsToLoss(2.0) = %d, want 3", got)
	}
	if got := tr.IterationsToLoss(0.5); got != -1 {
		t.Errorf("unreachable loss target = %d, want -1", got)
	}
}

func TestTraceIterationsToAccuracy(t *testing.T) {
	var tr Trace
	accs := []float64{math.NaN(), 0.5, math.NaN(), 0.8, 0.9}
	for i, a := range accs {
		tr.Append(IterationStat{Round: i, Accuracy: a, RoundCost: 10})
	}
	if got := tr.IterationsToAccuracy(0.8); got != 4 {
		t.Errorf("IterationsToAccuracy(0.8) = %d, want 4", got)
	}
	if got := tr.IterationsToAccuracy(0.95); got != -1 {
		t.Errorf("unreachable accuracy = %d, want -1", got)
	}
	if got := tr.CostToAccuracy(0.8); got != 40 {
		t.Errorf("CostToAccuracy(0.8) = %v, want 40", got)
	}
	if got := tr.CostToAccuracy(0.95); got != -1 {
		t.Errorf("unreachable CostToAccuracy = %v, want -1", got)
	}
}
