// Package metrics collects what the paper measures: communication cost
// (bytes weighted by physical hop count), per-iteration traces of cost and
// model quality, and convergence detection. It also renders experiment
// series as aligned text tables and CSV, which is how the benchmark
// harness reports each reproduced figure.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// CostLedger accumulates communication cost. Following the paper §II-B, a
// flow that traverses h physical hops with b payload bytes costs h*b; the
// ledger also tracks raw bytes and message counts. It is safe for
// concurrent use — simulated cluster rounds record from many goroutines.
type CostLedger struct {
	mu       sync.Mutex
	cost     float64 // Σ hops × bytes
	bytes    int64   // Σ bytes (unweighted)
	messages int64
	perRound map[int]float64 // round → hop-weighted cost
}

// NewCostLedger returns an empty ledger.
func NewCostLedger() *CostLedger {
	return &CostLedger{perRound: make(map[int]float64)}
}

// Record charges one message of the given payload size crossing hops
// physical links during round.
func (l *CostLedger) Record(round, hops, payloadBytes int) {
	if hops < 0 || payloadBytes < 0 {
		panic(fmt.Sprintf("metrics: negative cost components hops=%d bytes=%d", hops, payloadBytes))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	c := float64(hops) * float64(payloadBytes)
	l.cost += c
	l.bytes += int64(payloadBytes)
	l.messages++
	l.perRound[round] += c
}

// Total returns the hop-weighted cost Σ hops × bytes.
func (l *CostLedger) Total() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cost
}

// Bytes returns the unweighted byte total.
func (l *CostLedger) Bytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Messages returns the number of recorded messages.
func (l *CostLedger) Messages() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.messages
}

// RoundCost returns the hop-weighted cost recorded for one round.
func (l *CostLedger) RoundCost(round int) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.perRound[round]
}

// PerRound returns the per-round hop-weighted costs as a dense slice from
// round 0 through the largest recorded round.
func (l *CostLedger) PerRound() []float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	maxRound := -1
	for r := range l.perRound {
		if r > maxRound {
			maxRound = r
		}
	}
	out := make([]float64, maxRound+1)
	for r, c := range l.perRound {
		out[r] = c
	}
	return out
}

// Reset clears the ledger.
func (l *CostLedger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cost = 0
	l.bytes = 0
	l.messages = 0
	l.perRound = make(map[int]float64)
}

// IterationStat is one row of a training trace.
type IterationStat struct {
	Round     int
	Loss      float64 // aggregate training loss
	Accuracy  float64 // test accuracy (NaN if not evaluated this round)
	Consensus float64 // max pairwise parameter disagreement across nodes
	RoundCost float64 // hop-weighted bytes this round
}

// Trace is a training run's iteration history.
type Trace struct {
	Stats []IterationStat
}

// Append adds one iteration row.
func (t *Trace) Append(s IterationStat) { t.Stats = append(t.Stats, s) }

// Len returns the number of recorded iterations.
func (t *Trace) Len() int { return len(t.Stats) }

// Last returns the final row; ok is false for an empty trace.
func (t *Trace) Last() (IterationStat, bool) {
	if len(t.Stats) == 0 {
		return IterationStat{}, false
	}
	return t.Stats[len(t.Stats)-1], true
}

// ConvergenceDetector decides when training has converged: the aggregate
// loss has changed by less than RelTol (relative) for Patience consecutive
// iterations, and (for decentralized runs) consensus disagreement is below
// ConsensusTol. The zero value uses the defaults below.
type ConvergenceDetector struct {
	RelTol       float64 // default 1e-4
	Patience     int     // default 3
	ConsensusTol float64 // default +Inf (ignore consensus)

	prevLoss float64
	streak   int
	started  bool
}

// Observe feeds one iteration and reports whether the run is converged as
// of this observation.
func (c *ConvergenceDetector) Observe(loss, consensus float64) bool {
	relTol := c.RelTol
	if relTol <= 0 {
		relTol = 1e-4
	}
	patience := c.Patience
	if patience <= 0 {
		patience = 3
	}
	consensusTol := c.ConsensusTol
	if consensusTol <= 0 {
		consensusTol = math.Inf(1)
	}

	defer func() { c.prevLoss = loss; c.started = true }()
	if !c.started {
		return false
	}
	rel := math.Abs(loss-c.prevLoss) / math.Max(math.Abs(c.prevLoss), 1e-12)
	if rel < relTol && consensus < consensusTol {
		c.streak++
	} else {
		c.streak = 0
	}
	return c.streak >= patience
}

// Series is one named line of an experiment figure: y-values indexed by
// the shared x-axis of a Table.
type Series struct {
	Name   string
	Points []float64
}

// Table is the reproduction of one paper figure: a shared x-axis and one
// series per scheme/curve.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
}

// AddSeries appends a named series; its length must match X.
func (t *Table) AddSeries(name string, points []float64) error {
	if len(points) != len(t.X) {
		return fmt.Errorf("metrics: series %q has %d points, x-axis has %d", name, len(points), len(t.X))
	}
	t.Series = append(t.Series, Series{Name: name, Points: points})
	return nil
}

// Render formats the table with aligned columns, suitable for terminal
// output in the benchmark harness.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	if t.YLabel != "" {
		fmt.Fprintf(&b, "# y: %s\n", t.YLabel)
	}
	header := []string{t.XLabel}
	for _, s := range t.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for i, x := range t.X {
		row := []string{formatNum(x)}
		for _, s := range t.Series {
			row = append(row, formatNum(s.Points[i]))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(header))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(t.XLabel))
	for _, s := range t.Series {
		b.WriteString(",")
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteString("\n")
	for i, x := range t.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range t.Series {
			fmt.Fprintf(&b, ",%g", s.Points[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e5 || (math.Abs(v) < 1e-3 && v != 0):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// CDF returns the empirical CDF of xs evaluated at the given quantile grid
// points: for each q in grid, the fraction of xs ≤ q. xs is not modified.
func CDF(xs []float64, grid []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(grid))
	for i, q := range grid {
		// count of sorted ≤ q
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			if sorted[mid] <= q {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if len(sorted) > 0 {
			out[i] = float64(lo) / float64(len(sorted))
		}
	}
	return out
}

// LogGrid returns n log-spaced points from lo to hi (inclusive); lo and hi
// must be positive with lo < hi and n ≥ 2.
func LogGrid(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(fmt.Sprintf("metrics: bad LogGrid(%g, %g, %d)", lo, hi, n))
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// IterationsToLoss returns the first round (1-based count) at which the
// trace's loss fell to target or below, or -1 if it never did.
func (t *Trace) IterationsToLoss(target float64) int {
	for _, s := range t.Stats {
		if s.Loss <= target {
			return s.Round + 1
		}
	}
	return -1
}

// IterationsToAccuracy returns the first round (1-based count) at which
// the evaluated accuracy reached target, or -1 if it never did.
// Unevaluated rounds (NaN accuracy) are skipped.
func (t *Trace) IterationsToAccuracy(target float64) int {
	for _, s := range t.Stats {
		if !math.IsNaN(s.Accuracy) && s.Accuracy >= target {
			return s.Round + 1
		}
	}
	return -1
}

// CostToAccuracy returns the cumulative communication cost spent up to
// (and including) the first round that reached the target accuracy, or
// -1 if the target was never reached. This is the "bytes per unit of
// learning" view of a run.
func (t *Trace) CostToAccuracy(target float64) float64 {
	var cost float64
	for _, s := range t.Stats {
		cost += s.RoundCost
		if !math.IsNaN(s.Accuracy) && s.Accuracy >= target {
			return cost
		}
	}
	return -1
}
