package metrics

import (
	"fmt"
	"time"
)

// LinkModel estimates wall-clock round times from network characteristics
// — the quantities the paper's §IV-D says the synchronization timer should
// be derived from ("link bandwidth … scale of the model and amount of the
// training data"). The simulator is lockstep, so time is modeled, not
// measured: a round lasts as long as its slowest transfer plus the slowest
// node's compute.
type LinkModel struct {
	// BandwidthBps is the per-link bandwidth in bits per second
	// (default 1 Gbps, the paper's testbed links).
	BandwidthBps float64
	// LatencyPerHop is the one-way per-hop latency (default 2ms,
	// a metro-area wireless backhaul figure).
	LatencyPerHop time.Duration
	// ComputePerSample models local gradient time per training sample
	// (default 500ns, a small CPU model).
	ComputePerSample time.Duration
}

func (m LinkModel) withDefaults() LinkModel {
	if m.BandwidthBps <= 0 {
		m.BandwidthBps = 1e9
	}
	if m.LatencyPerHop <= 0 {
		m.LatencyPerHop = 2 * time.Millisecond
	}
	if m.ComputePerSample <= 0 {
		m.ComputePerSample = 500 * time.Nanosecond
	}
	return m
}

// TransferTime returns the modeled time for one message of payloadBytes
// crossing hops links: store-and-forward serialization per hop plus
// propagation latency.
func (m LinkModel) TransferTime(payloadBytes, hops int) time.Duration {
	if payloadBytes < 0 || hops < 0 {
		panic(fmt.Sprintf("metrics: negative transfer components bytes=%d hops=%d", payloadBytes, hops))
	}
	mm := m.withDefaults()
	serialization := time.Duration(float64(payloadBytes*8) / mm.BandwidthBps * float64(time.Second))
	return time.Duration(hops) * (serialization + mm.LatencyPerHop)
}

// RoundTime returns the modeled duration of one synchronized round:
// the slowest node's compute plus the slowest message transfer (transfers
// within a round proceed in parallel across links).
func (m LinkModel) RoundTime(maxSamplesPerNode int, slowestTransfer time.Duration) time.Duration {
	if maxSamplesPerNode < 0 {
		panic(fmt.Sprintf("metrics: negative sample count %d", maxSamplesPerNode))
	}
	mm := m.withDefaults()
	return time.Duration(maxSamplesPerNode)*mm.ComputePerSample + slowestTransfer
}

// SyncTimer returns the RIP-like round timer the paper's §IV-D describes:
// a safe upper bound on one round — slowest compute plus the worst-case
// full-vector transfer over the network diameter — with slack headroom.
func (m LinkModel) SyncTimer(maxSamplesPerNode, fullFrameBytes, diameter int, slack float64) time.Duration {
	if slack < 1 {
		slack = 1.5
	}
	worst := m.RoundTime(maxSamplesPerNode, m.TransferTime(fullFrameBytes, diameter))
	return time.Duration(float64(worst) * slack)
}

// EstimateRunTime turns a training run's per-round byte trace into a
// wall-clock estimate: each round costs compute plus the round's largest
// single-message transfer, approximated as perRoundBytes[i]/messages (the
// lockstep simulator records totals, not per-message maxima, so this is a
// mean-message approximation; pass messagesPerRound = 0 to treat the whole
// round's traffic as one serialized transfer, an upper bound).
func (m LinkModel) EstimateRunTime(perRoundBytes []float64, messagesPerRound int, maxSamplesPerNode int) time.Duration {
	var total time.Duration
	for _, bytes := range perRoundBytes {
		per := bytes
		if messagesPerRound > 0 {
			per = bytes / float64(messagesPerRound)
		}
		total += m.RoundTime(maxSamplesPerNode, m.TransferTime(int(per), 1))
	}
	return total
}
