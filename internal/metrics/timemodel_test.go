package metrics

import (
	"testing"
	"time"
)

func TestTransferTimeKnownValues(t *testing.T) {
	m := LinkModel{BandwidthBps: 1e9, LatencyPerHop: time.Millisecond}
	// 1 MB over one 1 Gbps hop: 8e6 bits / 1e9 bps = 8ms + 1ms latency.
	got := m.TransferTime(1_000_000, 1)
	want := 9 * time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Three hops: store-and-forward triples both terms.
	if got := m.TransferTime(1_000_000, 3); got != 27*time.Millisecond {
		t.Errorf("3-hop TransferTime = %v, want 27ms", got)
	}
	// Zero bytes: pure latency.
	if got := m.TransferTime(0, 2); got != 2*time.Millisecond {
		t.Errorf("latency-only = %v, want 2ms", got)
	}
}

func TestTransferTimeDefaults(t *testing.T) {
	var m LinkModel // all defaults
	got := m.TransferTime(125_000, 1)
	// 1 Mbit / 1 Gbps = 1ms + 2ms default latency.
	if got != 3*time.Millisecond {
		t.Errorf("default TransferTime = %v, want 3ms", got)
	}
}

func TestTransferTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative bytes did not panic")
		}
	}()
	LinkModel{}.TransferTime(-1, 1)
}

func TestRoundTime(t *testing.T) {
	m := LinkModel{ComputePerSample: time.Microsecond}
	got := m.RoundTime(1000, 5*time.Millisecond)
	if got != time.Millisecond+5*time.Millisecond {
		t.Errorf("RoundTime = %v, want 6ms", got)
	}
}

func TestSyncTimerExceedsWorstRound(t *testing.T) {
	m := LinkModel{}
	worst := m.RoundTime(10_000, m.TransferTime(200_000, 4))
	timer := m.SyncTimer(10_000, 200_000, 4, 0) // slack defaults to 1.5
	if timer <= worst {
		t.Errorf("SyncTimer %v not above worst round %v", timer, worst)
	}
	if timer > 2*worst {
		t.Errorf("SyncTimer %v more than 2x worst round %v", timer, worst)
	}
}

func TestEstimateRunTimeMonotoneInTraffic(t *testing.T) {
	m := LinkModel{}
	light := m.EstimateRunTime([]float64{1000, 1000}, 10, 100)
	heavy := m.EstimateRunTime([]float64{1_000_000, 1_000_000}, 10, 100)
	if heavy <= light {
		t.Errorf("heavier traffic not slower: %v vs %v", heavy, light)
	}
	// Upper-bound mode (whole round serialized) is slower than the
	// mean-message mode.
	upper := m.EstimateRunTime([]float64{1_000_000}, 0, 100)
	mean := m.EstimateRunTime([]float64{1_000_000}, 10, 100)
	if upper <= mean {
		t.Errorf("serialized bound %v not above mean-message %v", upper, mean)
	}
}
