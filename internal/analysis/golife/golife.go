// Package golife implements the snaplint analyzer that enforces
// goroutine-lifecycle hygiene in the long-running planes — transport,
// control plane, serving, observability, and the engine core. Elastic
// epochs (DESIGN.md §9) require that every background goroutine can be
// told to stop: a worker that outlives its round corrupts the next
// one's scratch, and a leaked accept loop holds ports across restarts.
//
// Every `go` statement in a scoped package must be cancellable, which
// the analyzer accepts as any of:
//
//   - the goroutine body registers with a WaitGroup (`defer wg.Done()`)
//     that a Close/Stop path can wait on;
//   - it selects on (or receives from) a context's Done channel or a
//     channel whose name signals shutdown (done, stop, quit, close*,
//     shut*, exit, cancel*);
//   - it ranges over a channel, so closing the channel ends it.
//
// When the goroutine target is a function in the same package, its
// body is checked (one level of same-package wrapper calls is
// followed). A target declared in another package cannot be verified
// and is flagged — either wrap it with a done-select or waive the
// finding with a reason.
//
// Additionally, a `go` statement inside an unbounded loop (`for {}` or
// `for cond {}`) is flagged unless an admission-control operation — a
// semaphore send/receive — precedes the spawn in the loop body:
// one-goroutine-per-message with no backpressure is how transports
// melt down under fan-in.
//
// Packages are scoped by import-path suffix so the rules apply to the
// real planes and to their testdata mirrors alike.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "golife",
	Doc:  "goroutines in the serving planes must be cancellable and not spawned in unbounded loops",
	Run:  run,
}

// scopeSuffixes are the package-path suffixes the analyzer applies to.
var scopeSuffixes = []string{
	"internal/transport",
	"internal/controlplane",
	"internal/serve",
	"internal/obs",
	"internal/core",
}

func inScope(path string) bool {
	// Test variants ("pkg [pkg.test]") carry the same on-disk package.
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}

	// Index this package's function bodies so `go s.readLoop()` can be
	// verified by looking at readLoop itself.
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue // test goroutines die with the test binary
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if g, ok := n.(*ast.GoStmt); ok {
				checkGo(pass, g, stack, decls)
			}
			return true
		})
	}
	return nil, nil
}

func isTestFile(pass *lint.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}

func checkGo(pass *lint.Pass, g *ast.GoStmt, stack []ast.Node, decls map[types.Object]*ast.FuncDecl) {
	checkCancellable(pass, g, decls)
	checkLoop(pass, g, stack)
}

func checkCancellable(pass *lint.Pass, g *ast.GoStmt, decls map[types.Object]*ast.FuncDecl) {
	const depth = 2 // follow same-package wrappers this many levels
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if !cancellable(pass, lit.Body, decls, depth) {
			pass.Reportf(g.Pos(), "goroutine is not cancellable: no done/ctx select, WaitGroup registration, or channel range")
		}
		return
	}
	callee := calleeFunc(pass.TypesInfo, g.Call)
	if callee == nil {
		pass.Reportf(g.Pos(), "goroutine target is a function value; cannot verify it is cancellable")
		return
	}
	fd, local := decls[callee]
	if !local {
		pass.Reportf(g.Pos(), "goroutine target %s is declared outside this package; cannot verify it is cancellable", callee.Name())
		return
	}
	if !cancellable(pass, fd.Body, decls, depth) {
		pass.Reportf(g.Pos(), "goroutine %s is not cancellable: no done/ctx select, WaitGroup registration, or channel range", callee.Name())
	}
}

// cancellable reports whether a goroutine body contains a recognized
// shutdown mechanism, following same-package calls up to depth levels.
func cancellable(pass *lint.Pass, body *ast.BlockStmt, decls map[types.Object]*ast.FuncDecl, depth int) bool {
	if body == nil {
		return false
	}
	info := pass.TypesInfo
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if isWaitGroupDone(info, n.Call) {
				ok = true
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc, isComm := c.(*ast.CommClause)
				if isComm && commOnShutdown(info, cc.Comm) {
					ok = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isShutdownChan(info, n.X) {
				ok = true
			}
		case *ast.RangeStmt:
			if _, isChan := typeOf(info, n.X).(*types.Chan); isChan {
				ok = true // closing the channel ends the loop
			}
		}
		return !ok
	})
	if ok || depth == 0 {
		return ok
	}
	// Wrapper pattern: go func() { s.loop(ctx) }() — follow
	// same-package callees one level.
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		callee := calleeFunc(info, call)
		if callee == nil {
			return true
		}
		if fd, local := decls[callee]; local && cancellable(pass, fd.Body, decls, depth-1) {
			ok = true
		}
		return !ok
	})
	return ok
}

func isWaitGroupDone(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "Done" && f.Pkg() != nil && f.Pkg().Path() == "sync"
}

// commOnShutdown reports whether a select case communicates on a
// shutdown channel (receive from ctx.Done() or a done/stop/quit-named
// channel).
func commOnShutdown(info *types.Info, comm ast.Stmt) bool {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if expr == nil {
		return false
	}
	u, ok := unparen(expr).(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return isShutdownChan(info, u.X)
}

// isShutdownChan recognizes ctx.Done()-shaped calls and channels whose
// names signal shutdown intent.
func isShutdownChan(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		f := calleeFunc(info, call)
		return f != nil && f.Name() == "Done"
	}
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, hint := range []string{"done", "stop", "quit", "clos", "shut", "exit", "cancel"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// checkLoop flags a go statement whose nearest enclosing loop (within
// the same function) is unbounded, unless a semaphore operation
// precedes the spawn in that loop's body.
func checkLoop(pass *lint.Pass, g *ast.GoStmt, stack []ast.Node) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return // spawn frequency now depends on the caller, not a loop here
		case *ast.ForStmt:
			if n.Init != nil || n.Post != nil {
				return // counted loop: bounded by construction
			}
			if hasAdmissionBefore(n.Body, g.Pos()) {
				return
			}
			pass.Reportf(g.Pos(), "goroutine spawned inside an unbounded loop without admission control (bound it with a worker pool or semaphore)")
			return
		}
	}
}

// hasAdmissionBefore reports whether the loop body acquires a
// semaphore before pos: a blocking channel send (backpressure against
// a bounded channel), or a receive from a channel whose name marks it
// as a slot pool. Receives inside select statements don't count — a
// stop-select is shutdown, not admission — and neither does draining a
// work channel, which is exactly the one-goroutine-per-message shape
// the rule exists to catch.
func hasAdmissionBefore(body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= pos {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && isSemaphoreChan(x.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isSemaphoreChan(e ast.Expr) bool {
	var name string
	switch x := unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	name = strings.ToLower(name)
	for _, hint := range []string{"sem", "slot", "token", "limit", "pool"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	t := info.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t.Underlying()
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
