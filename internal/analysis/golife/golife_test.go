package golife_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/golife"
)

func TestGolife(t *testing.T) {
	analysistest.Run(t, "testdata", golife.Analyzer, "a", "internal/transport")
}
