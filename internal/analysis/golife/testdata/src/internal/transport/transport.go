// Package transport mirrors the real transport plane's import-path
// suffix so the golife analyzer is in scope, and exercises its
// cancellability and unbounded-loop rules.
package transport

import (
	"context"
	"net"
	"net/http"
	"sync"
)

type Peer struct {
	wg   sync.WaitGroup
	done chan struct{}
	work chan int
}

func (p *Peer) Start(ctx context.Context) {
	p.wg.Add(2)
	go p.readLoop()     // ok: WaitGroup registration + done select
	go p.heartbeat(ctx) // ok: ctx.Done select
	go p.leak()         // want `goroutine leak is not cancellable`
}

func (p *Peer) readLoop() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case w := <-p.work:
			_ = w
		}
	}
}

func (p *Peer) heartbeat(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		}
	}
}

func (p *Peer) leak() {
	for {
		p.handle(0)
	}
}

func (p *Peer) handle(int) {}

func (p *Peer) drain() {
	for w := range p.work { // ok: closing p.work ends the goroutine
		_ = w
	}
}

func (p *Peer) startDrain() {
	go p.drain() // ok: range over a channel
}

func (p *Peer) startWrapped(ctx context.Context) {
	go func() { // ok: same-package wrapper is followed one level
		p.heartbeat(ctx)
	}()
}

func (p *Peer) inlineBody() {
	go func() { // ok: receives from a shutdown-named channel
		<-p.done
	}()
}

// floodAccept spawns per iteration of an unbounded loop with no
// admission control.
func (p *Peer) floodAccept() {
	for {
		go p.readLoop() // want `goroutine spawned inside an unbounded loop`
	}
}

// pooled bounds concurrency with a semaphore before each spawn.
func (p *Peer) pooled(sem chan struct{}) {
	for {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			<-p.done
		}()
	}
}

// counted loops are bounded by construction.
func (p *Peer) countedSpawn(n int) {
	for i := 0; i < n; i++ {
		go p.readLoop() // ok
	}
}

// drainThenSpawn is the one-goroutine-per-message shape: draining the
// work channel is not admission control.
func (p *Peer) drainThenSpawn() {
	for {
		w := <-p.work
		_ = w
		go p.readLoop() // want `goroutine spawned inside an unbounded loop`
	}
}

func Serve(srv *http.Server, ln net.Listener) {
	go srv.Serve(ln) // want `goroutine target Serve is declared outside this package`
}

func ServeWaived(srv *http.Server, ln net.Listener) {
	//snaplint:ignore golife caller owns srv and shuts it down via Close
	go srv.Serve(ln)
}

func spawnValue(f func()) {
	go f() // want `goroutine target is a function value`
}
