// Package a is outside golife's scoped planes, so even a blatant leak
// produces no findings here.
package a

func leak() {
	go func() { // ok: package not in scope
		for {
		}
	}()
}
