// Package facts carries analyzer facts across compilation units for
// every snaplint driver. A fact (lint.Fact) is attached to a
// package-level object or a package; because the standalone driver
// re-imports dependencies from compiler export data, an object's
// identity differs between the pass that exported a fact and the pass
// that imports it, so facts are keyed by name — package path plus an
// object path ("Func", "Type.Method") — rather than by types.Object
// pointer.
//
// The same store backs three transports:
//
//   - the standalone `load` driver keeps one in-process Store and
//     analyzes packages in dependency order (go list -deps order), so
//     every import's facts are already present;
//   - the vet unitchecker driver decodes the .vetx files of the unit's
//     dependencies into a Store before the pass and encodes the unit's
//     own exported facts to VetxOutput after it (JSON, deterministic
//     ordering, so the build cache sees stable bytes);
//   - analysistest seeds a Store from the dependency packages listed
//     before the package under test.
package facts

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

type key struct {
	pkg string // package path
	obj string // object path; "" for package facts
}

// NormPath strips a go list test-variant suffix ("pkg [pkg.test]" →
// "pkg") so facts key identically whether a package was typechecked as
// itself or as its in-package test variant: objects imported from
// export data always carry the clean path.
func NormPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// A Store holds facts for one analysis session, keyed by name.
type Store struct {
	facts     map[key]map[string]lint.Fact
	factTypes map[string]reflect.Type // registered fact type name → type
}

// NewStore builds a store with the fact types of the given analyzers
// registered (required for decoding). Analyzers must already have
// passed lint.Validate.
func NewStore(analyzers []*lint.Analyzer) *Store {
	s := &Store{
		facts:     make(map[key]map[string]lint.Fact),
		factTypes: make(map[string]reflect.Type),
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			s.factTypes[factName(f)] = reflect.TypeOf(f)
		}
	}
	return s
}

// factName returns the serialization name of a fact's type: the
// pointee's package-qualified type name.
func factName(f lint.Fact) string {
	t := reflect.TypeOf(f).Elem()
	return t.PkgPath() + "." + t.Name()
}

// ObjectKey derives the name key of a package-level object: "Name" for
// package-scope functions, types, vars and consts; "Recv.Name" for
// methods (including interface methods), with pointer receivers
// dereferenced. ok is false for objects facts cannot be attached to
// (locals, struct fields, objects without a package).
func ObjectKey(obj types.Object) (pkgPath, objPath string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkgPath = NormPath(obj.Pkg().Path())
	if fn, isFn := obj.(*types.Func); isFn {
		sig, sigOK := fn.Type().(*types.Signature)
		if sigOK && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", "", false
			}
			return pkgPath, named.Obj().Name() + "." + fn.Name(), true
		}
		return pkgPath, fn.Name(), true
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", "", false // not package-level
	}
	return pkgPath, obj.Name(), true
}

func (s *Store) set(k key, f lint.Fact) {
	m := s.facts[k]
	if m == nil {
		m = make(map[string]lint.Fact)
		s.facts[k] = m
	}
	m[factName(f)] = f
}

// get copies the stored fact matching dst's type into dst.
func (s *Store) get(k key, dst lint.Fact) bool {
	stored, ok := s.facts[k][factName(dst)]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// Install wires the pass's fact callbacks to this store. Exports are
// restricted to objects of the pass's own package, mirroring
// go/analysis.
func (s *Store) Install(pass *lint.Pass) {
	pass.ExportObjectFact = func(obj types.Object, fact lint.Fact) {
		pkg, objPath, ok := ObjectKey(obj)
		if !ok {
			panic(fmt.Sprintf("facts: cannot attach fact to %v (not a package-level object)", obj))
		}
		if obj.Pkg() != pass.Pkg {
			panic(fmt.Sprintf("facts: analyzer %s exported fact for %v of foreign package %s",
				pass.Analyzer.Name, obj, pkg))
		}
		s.set(key{pkg, objPath}, fact)
	}
	pass.ImportObjectFact = func(obj types.Object, fact lint.Fact) bool {
		pkg, objPath, ok := ObjectKey(obj)
		if !ok {
			return false
		}
		return s.get(key{pkg, objPath}, fact)
	}
	pass.ExportPackageFact = func(fact lint.Fact) {
		s.set(key{NormPath(pass.Pkg.Path()), ""}, fact)
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact lint.Fact) bool {
		if pkg == nil {
			return false
		}
		return s.get(key{NormPath(pkg.Path()), ""}, fact)
	}
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Obj  string          `json:"obj,omitempty"` // object path; empty = package fact
	Type string          `json:"type"`          // registered fact type name
	Data json.RawMessage `json:"data"`
}

// Encode serializes every fact attached to pkgPath (the unit's own
// exports) in a deterministic order — the unitchecker writes this to
// VetxOutput, which the build cache hashes.
func (s *Store) Encode(pkgPath string) ([]byte, error) {
	pkgPath = NormPath(pkgPath)
	var out []wireFact
	for k, m := range s.facts {
		if k.pkg != pkgPath {
			continue
		}
		for name, f := range m {
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("facts: encoding %s fact on %s.%s: %v", name, k.pkg, k.obj, err)
			}
			out = append(out, wireFact{Obj: k.obj, Type: name, Data: data})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		return out[i].Type < out[j].Type
	})
	return json.Marshal(out)
}

// Decode merges a dependency's serialized facts (attributed to pkgPath)
// into the store. Unregistered fact types are an error: every driver
// registers the full analyzer set, so an unknown type means the vetx
// file was produced by a different tool build.
func (s *Store) Decode(pkgPath string, data []byte) error {
	pkgPath = NormPath(pkgPath)
	if len(data) == 0 {
		return nil // factless dependency
	}
	var in []wireFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("facts: decoding facts of %s: %v", pkgPath, err)
	}
	for _, wf := range in {
		t, ok := s.factTypes[wf.Type]
		if !ok {
			return fmt.Errorf("facts: %s exports unregistered fact type %s", pkgPath, wf.Type)
		}
		f := reflect.New(t.Elem()).Interface().(lint.Fact)
		if err := json.Unmarshal(wf.Data, f); err != nil {
			return fmt.Errorf("facts: decoding %s fact on %s.%s: %v", wf.Type, pkgPath, wf.Obj, err)
		}
		s.set(key{pkgPath, wf.Obj}, f)
	}
	return nil
}
