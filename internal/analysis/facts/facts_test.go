package facts_test

import (
	"strings"
	"testing"

	"github.com/snapml/snap/internal/analysis/allocfree"
	"github.com/snapml/snap/internal/analysis/facts"
	"github.com/snapml/snap/internal/analysis/lint"
)

func TestNormPath(t *testing.T) {
	tests := []struct{ in, want string }{
		{"example.com/p", "example.com/p"},
		{"example.com/p [example.com/p.test]", "example.com/p"},
		{"example.com/p_test [example.com/p.test]", "example.com/p_test"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := facts.NormPath(tt.in); got != tt.want {
			t.Errorf("NormPath(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

const factType = "github.com/snapml/snap/internal/analysis/allocfree.Fact"

func newStore() *facts.Store {
	return facts.NewStore([]*lint.Analyzer{allocfree.Analyzer})
}

// TestEncodeDecodeRoundTrip pins the wire format the unitchecker writes
// to .vetx files: decode → encode must reproduce the input bytes, and
// the ordering must be deterministic (the build cache hashes them).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	wire := `[{"obj":"AddTo","type":"` + factType + `","data":{}},` +
		`{"obj":"Vector.Fill","type":"` + factType + `","data":{"amortized":true}}]`

	s := newStore()
	if err := s.Decode("example.com/dep", []byte(wire)); err != nil {
		t.Fatal(err)
	}
	out, err := s.Encode("example.com/dep")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != wire {
		t.Errorf("round trip:\n got %s\nwant %s", out, wire)
	}
	if other, err := s.Encode("example.com/other"); err != nil || string(other) != "null" {
		t.Errorf("Encode of factless package = %s, %v", other, err)
	}
}

// TestTestVariantKeying pins the NormPath bridge: facts exported while a
// package was typechecked as its test variant must be visible under the
// clean import path the gc importer hands dependents.
func TestTestVariantKeying(t *testing.T) {
	wire := `[{"obj":"AddTo","type":"` + factType + `","data":{"amortized":true}}]`
	s := newStore()
	if err := s.Decode("example.com/dep [example.com/dep.test]", []byte(wire)); err != nil {
		t.Fatal(err)
	}
	out, err := s.Encode("example.com/dep")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != wire {
		t.Errorf("test-variant facts not visible under the clean path:\n got %s\nwant %s", out, wire)
	}
}

func TestDecodeErrors(t *testing.T) {
	s := newStore()
	if err := s.Decode("example.com/dep", nil); err != nil {
		t.Errorf("empty vetx data should decode to nothing, got %v", err)
	}
	if err := s.Decode("example.com/dep", []byte("{not json")); err == nil {
		t.Error("malformed JSON must error")
	}
	err := s.Decode("example.com/dep", []byte(`[{"obj":"X","type":"example.com/alien.Fact","data":{}}]`))
	if err == nil || !strings.Contains(err.Error(), "unregistered fact type") {
		t.Errorf("unregistered fact type: got %v", err)
	}
}
