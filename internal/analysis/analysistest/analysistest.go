// Package analysistest runs a lint.Analyzer over packages under a
// testdata tree and checks its diagnostics against expectations written
// in the sources as trailing comments:
//
//	x.count++ // want `not guarded`
//
// Each string after "want" is a regular expression that must match a
// diagnostic reported on that line; diagnostics not matched by any
// expectation, and expectations not matched by any diagnostic, fail the
// test. This is the x/tools analysistest contract, reimplemented on the
// stdlib-only load driver.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/snapml/snap/internal/analysis/facts"
	"github.com/snapml/snap/internal/analysis/lint"
	"github.com/snapml/snap/internal/analysis/load"
)

type key struct {
	file string
	line int
}

// Run analyzes testdata/src/<pkg> for each named package and reports
// mismatches via t. The testdata packages live inside the module, so
// `go list` resolves their imports (including intra-repo ones) against
// the build cache.
//
// All named packages share one fact store and are analyzed in the
// given order, so cross-package fact propagation is testable: list the
// dependency before the dependent (Run(t, td, a, "b", "a") where
// package a imports package b), and diagnostics in a derived from
// facts exported while analyzing b match `// want` expectations like
// any other. `//snaplint:ignore` waivers are honored exactly as in the
// real drivers — a waived diagnostic needs no want, and a malformed
// directive is itself a reportable diagnostic.
func Run(t *testing.T, testdata string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	store := facts.NewStore([]*lint.Analyzer{a})
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		units, failures, err := load.Load(load.Config{Dir: dir}, ".")
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, dir, err)
			continue
		}
		for _, f := range failures {
			t.Errorf("%s: loading %s: %s", a.Name, dir, f)
		}
		for _, u := range units {
			runUnit(t, a, u, store)
		}
	}
}

func runUnit(t *testing.T, a *lint.Analyzer, u *load.Unit, store *facts.Store) {
	t.Helper()

	ignores := lint.NewIgnoreIndex(u.Fset, u.Files)
	diags := append([]lint.Diagnostic(nil), ignores.Bad...)
	pass := &lint.Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
		Report: func(d lint.Diagnostic) {
			if !ignores.Ignored(d.Pos, a.Name) {
				diags = append(diags, d)
			}
		},
	}
	store.Install(pass)
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer failed: %v", a.Name, err)
		return
	}

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	want := make(map[key][]*expectation)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := wantPatterns(c.Text)
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", posString(u.Fset, f, c), p, err)
						continue
					}
					want[k] = append(want[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		exps := want[k]
		found := false
		for _, e := range exps {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s: %s", a.Name, pos, d.Message)
		}
	}
	for k, exps := range want {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", a.Name, k.file, k.line, e.re)
			}
		}
	}
}

// wantPatterns extracts the expectation strings from a `// want ...`
// comment: each argument is a Go string literal (quoted or backquoted).
func wantPatterns(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil, false
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) {
				if rest[end] == '\\' {
					end += 2
					continue
				}
				if rest[end] == '"' {
					break
				}
				end++
			}
			if end >= len(rest) {
				return nil, false
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			out = append(out, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	return out, len(out) > 0
}

func posString(fset *token.FileSet, f *ast.File, n ast.Node) string {
	p := fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
