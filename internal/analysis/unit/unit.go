// Package unit implements the `go vet -vettool` driver protocol for
// snaplint: the build system invokes the tool once per compilation
// unit with a JSON .cfg file describing sources, the import map, and
// compiler export data, and expects diagnostics on stderr plus a facts
// file at VetxOutput. This mirrors x/tools' unitchecker (which the
// repo cannot vendor offline).
//
// Facts: before the pass, the .vetx files of the unit's dependencies
// (cfg.PackageVetx) are decoded into a facts.Store; after it, the
// facts the analyzers exported for this unit are serialized to
// cfg.VetxOutput, which cmd/go caches and feeds to dependent units.
// Dependency-only units (VetxOnly) are typechecked and analyzed with
// diagnostics discarded, purely to compute their facts.
//
// The protocol, as spoken by cmd/go:
//
//	snaplint -V=full      print a version line for build caching
//	snaplint -flags       print a JSON array describing extra flags
//	snaplint foo.cfg      analyze one unit, exit 1 on findings
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"github.com/snapml/snap/internal/analysis/facts"
	"github.com/snapml/snap/internal/analysis/lint"
)

// Config is the JSON compilation-unit description written by cmd/go
// next to each package it vets. Field names are fixed by the protocol.
type Config struct {
	ID                        string            `json:"ID"`
	Compiler                  string            `json:"Compiler"`
	Dir                       string            `json:"Dir"`
	ImportPath                string            `json:"ImportPath"`
	GoVersion                 string            `json:"GoVersion"`
	GoFiles                   []string          `json:"GoFiles"`
	NonGoFiles                []string          `json:"NonGoFiles"`
	IgnoredFiles              []string          `json:"IgnoredFiles"`
	ImportMap                 map[string]string `json:"ImportMap"`
	PackageFile               map[string]string `json:"PackageFile"`
	Standard                  map[string]bool   `json:"Standard"`
	PackageVetx               map[string]string `json:"PackageVetx"`
	VetxOnly                  bool              `json:"VetxOnly"`
	VetxOutput                string            `json:"VetxOutput"`
	SucceedOnTypecheckFailure bool              `json:"SucceedOnTypecheckFailure"`
}

// PrintVersion implements -V=full: a line of the shape
// "<path> version devel ... buildID=<hash>" that changes whenever the
// binary does, so `go vet` invalidates its cache on tool rebuilds.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel snaplint buildID=%x\n", exe, h.Sum(nil))
	return err
}

// PrintFlags implements -flags. snaplint takes no analyzer flags, so
// the set is empty.
func PrintFlags(w io.Writer) error {
	_, err := fmt.Fprintln(w, "[]")
	return err
}

// Run analyzes the unit described by configFile and returns the
// diagnostics found (nil in VetxOnly mode). The caller decides the
// exit code. The VetxOutput facts file is always written, even when
// empty: cmd/go caches it and feeds it to dependent units.
func Run(configFile string, analyzers []*lint.Analyzer) ([]string, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	store := facts.NewStore(analyzers)
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			return nil, fmt.Errorf("reading facts of %s: %v", path, err)
		}
		if err := store.Decode(path, data); err != nil {
			return nil, err
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx(cfg, store) // the compiler will report it
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(cfg, store)
		}
		return nil, err
	}

	ignores := lint.NewIgnoreIndex(fset, files)
	var out []string
	if !cfg.VetxOnly {
		for _, d := range ignores.Bad {
			out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
		}
	}
	for _, a := range analyzers {
		pass := &lint.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		store.Install(pass)
		name := a.Name
		pass.Report = func(d lint.Diagnostic) {
			if cfg.VetxOnly || ignores.Ignored(d.Pos, name) {
				return
			}
			out = append(out, fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message))
		}
		if _, err := a.Run(pass); err != nil {
			return out, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	return out, writeVetx(cfg, store)
}

// writeVetx serializes the unit's exported facts to cfg.VetxOutput
// (facts.NormPath keys test variants under their clean import path).
func writeVetx(cfg *Config, store *facts.Store) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := store.Encode(cfg.ImportPath)
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
		return fmt.Errorf("writing facts output: %v", err)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
