package floatdet_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/floatdet"
)

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, "testdata", floatdet.Analyzer, "a")
}
