// Package a exercises the floatdet analyzer: exact float equality
// (with the zero-sentinel exemption) and float accumulation under map
// iteration order.
package a

func cmp(x, y float64) bool {
	if x == 0 { // exact-zero sentinel: allowed
		return true
	}
	if y != 0.0 { // likewise
		return false
	}
	return x == y // want `exact float comparison`
}

func neqOne(x float32) bool {
	return x != 1 // want `exact float comparison`
}

func intCmp(a, b int) bool {
	return a == b // integers compare exactly
}

func sumMap(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `float accumulation across a map-iteration loop`
	}
	return s
}

func sumMapExplicit(m map[int]float64) float64 {
	var s float64
	for _, v := range m {
		s = s + v // want `float accumulation across a map-iteration loop`
	}
	return s
}

func sumSlice(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v // slice order is deterministic
	}
	return s
}

func countMap(m map[int]float64) int {
	n := 0
	for range m {
		n++ // integer counting is order-independent
	}
	return n
}

func perIteration(m map[int][]float64) float64 {
	best := 0.0
	for _, vs := range m {
		t := 0.0
		for _, v := range vs {
			t += v // accumulator lives inside the map loop body
		}
		if t > best {
			best = t
		}
	}
	return best
}
