// Package floatdet protects the run-to-run determinism of the numeric
// core (the W-matrix optimization in internal/weights and the spectral
// routines in internal/linalg). Two patterns break it:
//
//   - float accumulation inside a range-over-map loop: Go randomizes
//     map iteration order, and float addition is not associative, so
//     the same inputs produce different sums on different runs;
//   - direct == / != on floating-point values: results depend on
//     rounding that varies with evaluation order and architecture.
//     Comparing against exactly zero is exempt — `if norm == 0` guards
//     a division and is a deliberate, exact sentinel test.
//
// The analyzer only fires in the numeric packages (import paths
// containing "linalg" or "weights", plus its own testdata); elsewhere
// float comparisons are somebody else's judgment call.
package floatdet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

// Analyzer is the floatdet analysis.
var Analyzer = &lint.Analyzer{
	Name: "floatdet",
	Doc:  "flag nondeterministic float reductions (map-order accumulation) and exact float equality in the numeric packages",
	Run:  run,
}

func run(pass *lint.Pass) (any, error) {
	if !applies(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkEquality(pass, n)
			case *ast.RangeStmt:
				checkMapAccumulation(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func applies(path string) bool {
	return strings.Contains(path, "linalg") ||
		strings.Contains(path, "weights") ||
		strings.Contains(path, "floatdet") // the analyzer's own testdata
}

func checkEquality(pass *lint.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloat(pass, b.X) && !isFloat(pass, b.Y) {
		return
	}
	if isZero(pass, b.X) || isZero(pass, b.Y) {
		return
	}
	pass.Reportf(b.OpPos, "exact float comparison (%s) is not deterministic across evaluation orders; compare against a tolerance", b.Op)
}

func isFloat(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZero reports whether e is a compile-time constant equal to zero —
// the one exact value float code may legitimately test for.
func isZero(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}

// checkMapAccumulation flags float compound assignments inside a
// range-over-map body whose accumulator outlives the loop body.
func checkMapAccumulation(pass *lint.Pass, rng *ast.RangeStmt) {
	if _, ok := pass.TypesInfo.Types[rng.X].Type.Underlying().(*types.Map); !ok {
		return
	}
	body := rng.Body
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		case token.ASSIGN:
			// x = x + v counts too.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || !sameExpr(as.Lhs[0], bin.X) {
				return true
			}
		default:
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(pass, lhs) {
			return true
		}
		if declaredWithin(pass, lhs, body) {
			return true
		}
		pass.Reportf(as.Pos(), "float accumulation across a map-iteration loop depends on randomized map order; iterate over sorted keys")
		return true
	})
}

// declaredWithin reports whether the accumulator is a local declared
// inside the loop body (per-iteration value, no cross-iteration
// order dependence).
func declaredWithin(pass *lint.Pass, e ast.Expr, body *ast.BlockStmt) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false // selector/index accumulators outlive the body
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// sameExpr is a shallow structural comparison good enough for the
// `x = x + v` accumulator shape (identifiers and selector chains).
func sameExpr(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Ident:
		b, ok := b.(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := b.(*ast.IndexExpr)
		return ok && sameExpr(a.X, b.X) && sameExpr(a.Index, b.Index)
	}
	return false
}
