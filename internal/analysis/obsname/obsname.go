// Package obsname keeps the observability namespace closed: every
// metric or event name that reaches the internal/obs registry must be
// a named constant (the ones declared in internal/obs/names.go and
// events.go), never an inline string literal. Dashboards, the round
// event log, and the paper-facing experiment tooling all join on these
// strings; a typo'd inline literal silently forks a series.
//
// Checked call sites (skipped in _test.go files, where fixture names
// are fine):
//
//   - Registry/Observer Counter, Gauge, Histogram — first argument;
//   - Observer/EventLog Emit — the event-type argument;
//   - obs.Label — the name and every label key (values are dynamic).
//
// The same rule covers the tracing namespace (internal/trace/names.go):
// Tracer.Span's span-name argument and RoundDigest.Phase's lookup name
// must be named constants — snaptrace, the Chrome export, and the
// aggregator's critical-path walk all join on these strings.
//
// When analyzing the obs, trace, or serve package itself — each owns a
// slice of the metric/event/span namespace — the analyzer additionally
// verifies that no two exported name constants share a value.
package obsname

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"github.com/snapml/snap/internal/analysis/lint"
)

// Analyzer is the obsname analysis.
var Analyzer = &lint.Analyzer{
	Name: "obsname",
	Doc:  "check that metric/event names passed to internal/obs are named constants, and that declared names are unique",
	Run:  run,
}

// obsPathSuffix, tracePathSuffix, and servePathSuffix identify the
// packages that declare name constants; matching by suffix keeps the
// analyzer working on testdata copies of the API.
const (
	obsPathSuffix   = "internal/obs"
	tracePathSuffix = "internal/trace"
	servePathSuffix = "internal/serve"
)

func run(pass *lint.Pass) (any, error) {
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	if isObsPkg(pass.Pkg.Path()) || isTracePkg(pass.Pkg.Path()) || isServePkg(pass.Pkg.Path()) {
		checkUniqueNames(pass)
	}
	return nil, nil
}

func isObsPkg(path string) bool {
	return strings.HasSuffix(path, obsPathSuffix)
}

func isTracePkg(path string) bool {
	return strings.HasSuffix(path, tracePathSuffix)
}

func isServePkg(path string) bool {
	return strings.HasSuffix(path, servePathSuffix)
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}

	// obs.Label(name, k1, v1, k2, v2, ...)
	if id, ok := sel.X.(*ast.Ident); ok && sel.Sel.Name == "Label" {
		if pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && isObsPkg(pkg.Imported().Path()) {
			if len(call.Args) > 0 {
				checkNameArg(pass, call.Args[0], "metric name", obsHint)
			}
			for i := 1; i < len(call.Args); i += 2 {
				checkNameArg(pass, call.Args[i], "label key", obsHint)
			}
			return
		}
	}

	recv := receiverNamed(pass, sel.X)
	if recv == nil {
		return
	}
	if isTracePkg(recv.Obj().Pkg().Path()) {
		switch {
		case recv.Obj().Name() == "Tracer" && sel.Sel.Name == "Span":
			// Span(round, name, start, end)
			if len(call.Args) > 1 {
				checkNameArg(pass, call.Args[1], "span name", traceHint)
			}
		case recv.Obj().Name() == "RoundDigest" && sel.Sel.Name == "Phase":
			// Phase(name)
			if len(call.Args) > 0 {
				checkNameArg(pass, call.Args[0], "span name", traceHint)
			}
		}
		return
	}
	if !isObsPkg(recv.Obj().Pkg().Path()) {
		return
	}
	switch recv.Obj().Name() {
	case "Registry", "Observer":
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
			if len(call.Args) > 0 {
				checkNameArg(pass, call.Args[0], "metric name", obsHint)
			}
		}
	}
	if sel.Sel.Name == "Emit" {
		switch recv.Obj().Name() {
		case "Observer", "EventLog":
			// Emit(node, typ, round, peer, fields)
			if len(call.Args) > 1 {
				checkNameArg(pass, call.Args[1], "event type", obsHint)
			}
		}
	}
}

// receiverNamed resolves the receiver expression to its named type
// (through pointers), or nil.
func receiverNamed(pass *lint.Pass, x ast.Expr) *types.Named {
	t := pass.TypesInfo.Types[x].Type
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

// The "use a named constant from ..." hint points at the file that owns
// the namespace being violated.
const (
	obsHint   = "internal/obs/names.go"
	traceHint = "internal/trace/names.go"
)

// checkNameArg rejects inline string literals anywhere in the
// argument. Named constants (obs.MRound, trace.SpanGrad) and dynamic
// values (variables, function results) pass; nested calls such as
// obs.Label are checked at their own site.
func checkNameArg(pass *lint.Pass, arg ast.Expr, what, hint string) {
	if _, ok := arg.(*ast.CallExpr); ok {
		return
	}
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			return false
		}
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		pass.Reportf(lit.Pos(), "%s %s is an inline string literal; use a named constant from %s", what, lit.Value, hint)
		return true
	})
}

// checkUniqueNames verifies that the obs package's exported string
// constants (the metric and event name space) have pairwise distinct
// values.
func checkUniqueNames(pass *lint.Pass) {
	type decl struct {
		name string
		pos  token.Pos
	}
	seen := make(map[string]decl)
	scope := pass.Pkg.Scope()
	// Scope iteration order is unspecified; walk declarations in file
	// order instead so the "first" declaration is stable.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					obj, ok := scope.Lookup(id.Name).(*types.Const)
					if !ok || !id.IsExported() {
						continue
					}
					b, ok := obj.Type().Underlying().(*types.Basic)
					if !ok || b.Info()&types.IsString == 0 {
						continue
					}
					val, err := strconv.Unquote(obj.Val().ExactString())
					if err != nil {
						continue
					}
					if prev, dup := seen[val]; dup {
						pass.Reportf(id.Pos(), "constant %s duplicates the name %q already declared by %s", id.Name, val, prev.name)
						continue
					}
					seen[val] = decl{id.Name, id.Pos()}
				}
			}
		}
	}
}
