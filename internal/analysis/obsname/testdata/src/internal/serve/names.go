// Package serve stands in for the real serving package so the
// uniqueness rule (which fires on internal/serve path suffixes) can be
// tested in isolation.
package serve

const (
	MServeRequests = "snap_serve_requests_total"
	MServeRetries  = "snap_serve_requests_total" // want `constant MServeRetries duplicates the name "snap_serve_requests_total" already declared by MServeRequests`

	reasonLocal = "snap_serve_requests_total" // unexported: tooling never joins on it
)
