// Package obs stands in for the real observability package so the
// uniqueness rule (which only fires on internal/obs itself) can be
// tested in isolation.
package obs

const (
	MRounds   = "snap_rounds_total"
	MBytes    = "snap_bytes_total"
	MBytesDup = "snap_bytes_total" // want `constant MBytesDup duplicates the name "snap_bytes_total" already declared by MBytes`

	internalAlias = "snap_rounds_total" // unexported: tooling never joins on it
)

const EvStart = "start"
const EvStop = "start" // want `constant EvStop duplicates the name "start" already declared by EvStart`
