// Package trace stands in for the real tracing package so the
// uniqueness rule (which fires on internal/trace path suffixes) can be
// tested in isolation.
package trace

const (
	SpanBuild = "build"
	SpanCopy  = "build" // want `constant SpanCopy duplicates the name "build" already declared by SpanBuild`

	spanLocal = "build" // unexported: tooling never joins on it
)
