// Package a exercises the obsname analyzer's call-site rules against
// the real internal/obs and internal/trace APIs.
package a

import (
	"time"

	"github.com/snapml/snap/internal/obs"
	"github.com/snapml/snap/internal/trace"
)

func dynamicName() string { return "dyn" }

func good(r *obs.Registry, o *obs.Observer, l *obs.EventLog) {
	r.Counter(obs.MFullSends).Add(1)
	o.Gauge(obs.MEpoch).Set(1)
	o.Histogram(obs.MRoundSeconds, obs.TimeBuckets).Observe(0.1)
	o.Emit(1, obs.EvRoundStart, 0, -1, nil)
	l.Emit(1, obs.EvRoundEnd, 0, -1, nil)
	r.Counter(obs.Label(obs.MLinkBytesSent, obs.LPeer, "3")).Add(1)

	name := dynamicName()
	r.Counter(name).Add(1) // dynamic names are somebody else's problem
}

func bad(r *obs.Registry, o *obs.Observer, l *obs.EventLog) {
	r.Counter("snap_inline_total").Add(1)                       // want `metric name "snap_inline_total" is an inline string literal`
	o.Gauge("snap_gauge").Set(2)                                // want `metric name "snap_gauge" is an inline string literal`
	o.Histogram("snap_hist", obs.TimeBuckets).Observe(0.5)      // want `metric name "snap_hist" is an inline string literal`
	o.Emit(1, "round_start", 0, -1, nil)                        // want `event type "round_start" is an inline string literal`
	l.Emit(1, "round_end", 0, -1, nil)                          // want `event type "round_end" is an inline string literal`
	_ = obs.Label("snap_x", "peer", "1")                        // want `metric name "snap_x" is an inline string literal` `label key "peer" is an inline string literal`
	_ = obs.Label(obs.MLinkBytesSent, obs.LPeer, "1", "k", "v") // want `label key "k" is an inline string literal`
}

func goodTrace(t *trace.Tracer, d *trace.RoundDigest) {
	t.Span(1, trace.SpanGrad, time.Time{}, time.Time{})
	_, _ = d.Phase(trace.SpanGather)

	name := dynamicName()
	t.Span(1, name, time.Time{}, time.Time{}) // dynamic names are somebody else's problem
	_, _ = d.Phase(name)
}

func badTrace(t *trace.Tracer, d *trace.RoundDigest) {
	t.Span(1, "grad", time.Time{}, time.Time{}) // want `span name "grad" is an inline string literal`
	_, _ = d.Phase("gather")                    // want `span name "gather" is an inline string literal`
}
