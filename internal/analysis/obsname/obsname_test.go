package obsname_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/analysistest"
	"github.com/snapml/snap/internal/analysis/obsname"
)

func TestObsname(t *testing.T) {
	analysistest.Run(t, "testdata", obsname.Analyzer, "a", "internal/obs", "internal/trace", "internal/serve")
}
