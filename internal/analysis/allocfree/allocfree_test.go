package allocfree_test

import (
	"testing"

	"github.com/snapml/snap/internal/analysis/allocfree"
	"github.com/snapml/snap/internal/analysis/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "a")
}

// TestCrossPackageFacts lists the dependency (b) before the dependent
// (c), so the //snap: contracts exported while analyzing b are visible
// as facts when c's call sites are checked.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, "testdata", allocfree.Analyzer, "b", "c")
}
