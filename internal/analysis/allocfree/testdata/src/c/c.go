// Package c imports package b and checks that b's //snap: contracts
// arrived as facts: annotated callees pass, unannotated ones are
// findings even though their declarations live in another compilation
// unit.
package c

import "github.com/snapml/snap/internal/analysis/allocfree/testdata/src/b"

//snap:alloc-free
func hot(dst, x, y []float64, buf []byte, k b.Kernel) int {
	b.AddTo(dst, x, y)   // ok: alloc-free fact imported from b
	buf = b.Grow(buf, 8) // ok: amortized fact imported from b
	k.Apply(dst)         // ok: method fact imported from b
	b.Plain()            // want `call to Plain is not alloc-free`
	k.Reset()            // want `call to Reset is not alloc-free`
	return len(buf)
}
