// Package a exercises the allocfree analyzer's single-package rules:
// allocating constructs inside //snap:alloc-free bodies, the callee
// contract, the cold-path exemption, and //snaplint:ignore waivers.
package a

import "fmt"

type point struct{ x, y int }

//snap:alloc-free
func addTo(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

//snap:alloc-free
func callsAnnotated(dst, a, b []float64) {
	addTo(dst, a, b) // ok: callee is annotated
}

//snap:allocs-amortized
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n) // amortized bodies are not checked
	}
	return buf[:n]
}

//snap:alloc-free
func callsAmortized(buf []byte) int {
	buf = grow(buf, 16) // ok: amortized callees are trusted
	return len(buf)
}

func helper() {}

//snap:alloc-free
func badCall() {
	helper() // want `call to helper is not alloc-free`
}

//snap:alloc-free
func badLiterals(n int) {
	m := map[int]int{} // want `map literal allocates`
	_ = m
	s := []int{1, 2} // want `slice literal allocates`
	_ = s
	p := &point{1, 2} // want `address-taken composite literal escapes`
	_ = p
	b := make([]byte, n) // want `make allocates`
	_ = b
	q := new(point) // want `new allocates`
	_ = q
	v := point{3, 4} // ok: value struct literal stays on the stack
	_ = v
}

//snap:alloc-free
func badAppend(xs, ys []int) int {
	zs := append(xs, 1)        // want `append result is not reassigned to its first argument`
	xs = append(xs, 2)         // ok: self-append fill idiom
	xs = append(xs[:0], ys...) // ok: reset-and-fill
	return len(zs) + len(xs)
}

//snap:alloc-free
func badClosure(k int) int {
	f := func() int { return k } // want `closure captures k`
	return f()                   // want `call through a function value cannot be proven alloc-free`
}

//snap:alloc-free
func okClosure(dst []int) {
	func(xs []int) { // ok: captures nothing, invoked in place
		for i := range xs {
			xs[i] = 0
		}
	}(dst)
}

//snap:alloc-free
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//snap:alloc-free
func badConv(bs []byte, s string) int {
	t := string(bs) // want `conversion to string allocates`
	u := []byte(s)  // want `conversion from string to \[\]byte allocates`
	return len(t) + len(u)
}

//snap:alloc-free
func sink(v any) {}

//snap:alloc-free
func boxing(x int, p *point, e error) {
	sink(x)   // want `argument boxed into interface any`
	sink(p)   // ok: pointers ride in the interface word
	sink(nil) // ok
	sink(7)   // ok: constants are interned by the compiler
	sink(e)   // ok: already an interface
}

//snap:alloc-free
func sum(xs ...int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//snap:alloc-free
func variadic(xs []int) int {
	a := sum(1, 2, 3) // want `variadic call to sum allocates its argument slice`
	b := sum(xs...)   // ok: spread reuses the existing slice
	c := sum()        // ok: no elements passes nil
	return a + b + c
}

//snap:alloc-free
func badGo() {
	go func() {}() // want `go statement allocates a goroutine`
}

//snap:alloc-free
func coldPathsExempt(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("empty input of %d values", len(xs)) // ok: block ends in return
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s, nil
}

type Model interface {
	//snap:alloc-free
	GradTo(dst []float64)

	Loss() float64
}

//snap:alloc-free
func useModel(m Model, dst []float64) float64 {
	m.GradTo(dst)   // ok: interface method carries the contract
	return m.Loss() // want `call to Loss is not alloc-free`
}

//snap:alloc-free
func waived(n int) {
	_ = make([]int, n) //snaplint:ignore allocfree exercised once at startup, not in the round loop
}
