// Package b is the dependency side of the cross-package fact test:
// its annotations are exported as facts while b is analyzed, and
// package c (which imports b) relies on them.
package b

//snap:alloc-free
func AddTo(dst, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

//snap:allocs-amortized
func Grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf[:n]
}

// Plain carries no contract.
func Plain() {}

type Kernel struct{}

//snap:alloc-free
func (Kernel) Apply(dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
}

func (Kernel) Reset() {}
