// Package allocfree implements the snaplint analyzer that enforces the
// //snap:alloc-free contract: an annotated function must not allocate
// on any hot path, because the engine's per-round cost model (DESIGN.md
// §9) budgets zero steady-state allocations for Step/BuildUpdate and
// everything they call.
//
// Within an annotated body the analyzer flags every allocating
// construct:
//
//   - map and slice composite literals, and address-taken composite
//     literals (&T{...}), which escape;
//   - make and new;
//   - append whose result is not reassigned to its own first argument
//     (the self-append fill idiom `x = append(x, ...)` is the only
//     form that can stay within caller-provided capacity);
//   - closures that capture variables;
//   - string concatenation and allocating conversions (x → string,
//     string → []byte/[]rune, value → interface);
//   - implicit boxing: a non-pointer-shaped, non-constant value passed
//     where an interface is expected;
//   - variadic calls that materialize an argument slice;
//   - go statements.
//
// Calls are checked through Facts: a callee must itself be annotated
// //snap:alloc-free or //snap:allocs-amortized (in this package or any
// dependency — the fact rides the driver), or belong to a small
// safelist of stdlib operations known not to allocate (math, math/bits,
// sync/atomic, mutex methods, byte-order codecs, time.Now/Since).
// Anything else — including calls through function values, which cannot
// be resolved statically — is a finding, which is what forces the
// annotation to spread over the whole hot call graph.
//
// //snap:allocs-amortized is the escape hatch for warm-up allocators
// (scratch ensure(), codec grow()): the annotation makes the function
// callable from alloc-free code but leaves its body unchecked; the
// runtime AllocsPerRun budgets keep the amortization honest.
//
// Blocks that end by returning or panicking — error paths — are cold by
// construction and are skipped, so `if err != nil { return fmt.Errorf }`
// needs no waiver.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/snapml/snap/internal/analysis/directive"
	"github.com/snapml/snap/internal/analysis/lint"
)

// Fact marks a function or interface method as callable from
// //snap:alloc-free code. Amortized distinguishes the
// //snap:allocs-amortized contract (body unchecked).
type Fact struct {
	Amortized bool `json:"amortized,omitempty"`
}

func (*Fact) AFact() {}

var Analyzer = &lint.Analyzer{
	Name:      "allocfree",
	Doc:       "//snap:alloc-free functions must not allocate and may only call alloc-free callees",
	Run:       run,
	FactTypes: []lint.Fact{new(Fact)},
}

func run(pass *lint.Pass) (any, error) {
	// First pass: export a fact for every annotated function and
	// interface method, so intra-package calls resolve regardless of
	// declaration order.
	annotated := make(map[types.Object]*Fact)
	var checks []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fact := factFor(d.Doc)
				if fact == nil {
					continue
				}
				obj := pass.TypesInfo.Defs[d.Name]
				if obj == nil {
					continue
				}
				annotated[obj] = fact
				export(pass, obj, fact)
				if !fact.Amortized && d.Body != nil {
					checks = append(checks, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok || it.Methods == nil {
						continue
					}
					// An annotation on an interface method is a trusted
					// contract: implementations promise it, callers of the
					// interface rely on it.
					for _, m := range it.Methods.List {
						fact := factFor(m.Doc)
						if fact == nil || len(m.Names) == 0 {
							continue
						}
						obj := pass.TypesInfo.Defs[m.Names[0]]
						if obj == nil {
							continue
						}
						annotated[obj] = fact
						export(pass, obj, fact)
					}
				}
			}
		}
	}

	for _, d := range checks {
		checkBody(pass, d, annotated)
	}
	return nil, nil
}

func export(pass *lint.Pass, obj types.Object, fact *Fact) {
	if pass.ExportObjectFact != nil {
		pass.ExportObjectFact(obj, fact)
	}
}

func factFor(doc *ast.CommentGroup) *Fact {
	if directive.Has(doc, "alloc-free") {
		return &Fact{}
	}
	if directive.Has(doc, "allocs-amortized") {
		return &Fact{Amortized: true}
	}
	return nil
}

func checkBody(pass *lint.Pass, fn *ast.FuncDecl, annotated map[types.Object]*Fact) {
	name := fn.Name.Name
	if fn.Recv != nil && len(fn.Recv.List) == 1 {
		if rn := receiverTypeName(fn.Recv.List[0].Type); rn != "" {
			name = rn + "." + name
		}
	}

	// Self-appends (`x = append(x, ...)`, including `x = append(x[:0],
	// ...)`) are the sanctioned within-capacity fill idiom.
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || builtinName(pass.TypesInfo, call) != "append" || len(call.Args) == 0 {
			return true
		}
		base := unparen(call.Args[0])
		for {
			se, ok := base.(*ast.SliceExpr)
			if !ok {
				break
			}
			base = unparen(se.X)
		}
		if types.ExprString(unparen(as.Lhs[0])) == types.ExprString(base) {
			selfAppend[call] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			// Cold-path exemption: a block that ends by returning or
			// panicking runs at most once per call — error handling, not
			// the hot loop.
			if n != fn.Body && endsCold(n.List) {
				return false
			}
		case *ast.CaseClause:
			if endsCold(n.Body) {
				return false
			}
		case *ast.CommClause:
			if endsCold(n.Body) {
				return false
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in alloc-free function %s", name)
		case *ast.FuncLit:
			if capt := capturedVar(pass.TypesInfo, n); capt != "" {
				pass.Reportf(n.Pos(), "closure captures %s in alloc-free function %s", capt, name)
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.TypesInfo.TypeOf(n)) {
				if tv, ok := pass.TypesInfo.Types[n]; !ok || tv.Value == nil { // constant folds are free
					pass.Reportf(n.Pos(), "string concatenation allocates in alloc-free function %s", name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address-taken composite literal escapes in alloc-free function %s", name)
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in alloc-free function %s", name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in alloc-free function %s", name)
			}
		case *ast.CallExpr:
			checkCall(pass, n, name, annotated, selfAppend)
		}
		return true
	})
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, name string, annotated map[types.Object]*Fact, selfAppend map[*ast.CallExpr]bool) {
	info := pass.TypesInfo

	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, call, tv.Type, name)
		return
	}

	if b := builtinName(info, call); b != "" {
		switch b {
		case "append":
			if !selfAppend[call] {
				pass.Reportf(call.Pos(), "append result is not reassigned to its first argument in alloc-free function %s", name)
			}
		case "make":
			pass.Reportf(call.Pos(), "make allocates in alloc-free function %s", name)
		case "new":
			pass.Reportf(call.Pos(), "new allocates in alloc-free function %s", name)
		case "len", "cap", "copy", "delete", "clear", "close", "min", "max",
			"real", "imag", "complex", "panic", "recover",
			"Sizeof", "Alignof", "Offsetof", "Add", "Slice", "SliceData", "String", "StringData":
			// free
		default:
			pass.Reportf(call.Pos(), "builtin %s is not alloc-free in alloc-free function %s", b, name)
		}
		return
	}

	if _, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return // immediately-invoked literal: its body is walked in place
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		pass.Reportf(call.Pos(), "call through a function value cannot be proven alloc-free in alloc-free function %s", name)
		return
	}
	checkArgs(pass, call, callee, name)

	if annotated[callee] != nil {
		return
	}
	var fact Fact
	if pass.ImportObjectFact != nil && pass.ImportObjectFact(callee, &fact) {
		return
	}
	if safeCallee(callee) {
		return
	}
	pass.Reportf(call.Pos(), "call to %s is not alloc-free (missing //snap:alloc-free) in alloc-free function %s", callee.Name(), name)
}

// checkArgs flags implicit allocations at the call boundary: the
// backing slice of a non-spread variadic call, and boxing a
// non-pointer-shaped value into an interface parameter.
func checkArgs(pass *lint.Pass, call *ast.CallExpr, callee *types.Func, name string) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		pass.Reportf(call.Pos(), "variadic call to %s allocates its argument slice in alloc-free function %s", callee.Name(), name)
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis != token.NoPos {
				pt = last
			} else if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if boxes(pass.TypesInfo, arg, pt) {
			pass.Reportf(arg.Pos(), "argument boxed into interface %s in alloc-free function %s", pt.String(), name)
		}
	}
}

func checkConversion(pass *lint.Pass, call *ast.CallExpr, target types.Type, name string) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	at := pass.TypesInfo.TypeOf(arg)
	if at == nil {
		return
	}
	switch ut := target.Underlying().(type) {
	case *types.Interface:
		if boxes(pass.TypesInfo, arg, target) {
			pass.Reportf(call.Pos(), "conversion boxes a value into interface %s in alloc-free function %s", target.String(), name)
		}
	case *types.Basic:
		if ut.Kind() == types.String && !isString(at) {
			pass.Reportf(call.Pos(), "conversion to string allocates in alloc-free function %s", name)
		}
	case *types.Slice:
		if isString(at) {
			pass.Reportf(call.Pos(), "conversion from string to %s allocates in alloc-free function %s", target.String(), name)
		}
	}
}

// boxes reports whether passing arg where pt is expected converts a
// concrete value into an interface at runtime. Pointer-shaped values
// (pointers, channels, maps, funcs, unsafe.Pointer) ride in the
// interface word without allocating; constants are interned into
// read-only data by the compiler.
func boxes(info *types.Info, arg ast.Expr, pt types.Type) bool {
	if !types.IsInterface(pt.Underlying()) {
		return false
	}
	if _, isTP := pt.(*types.TypeParam); isTP {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil { // constant, including nil-adjacent untyped values
		return false
	}
	at := tv.Type
	if at == types.Typ[types.UntypedNil] || types.IsInterface(at.Underlying()) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if at.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// safeCallee is the stdlib safelist: operations known not to allocate
// that alloc-free code legitimately needs.
func safeCallee(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		// Universe-scope methods (error.Error): the dynamic callee is
		// unknowable; error formatting lives on cold paths.
		return true
	}
	sig, _ := f.Type().(*types.Signature)
	hasRecv := sig != nil && sig.Recv() != nil
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	case "sync":
		return hasRecv // Mutex.Lock, RWMutex.RLock, WaitGroup.Done, ...
	case "encoding/binary":
		// Byte-order methods and the varint family write in place;
		// binary.Read/Write reflect and allocate.
		switch f.Name() {
		case "PutUvarint", "PutVarint", "Uvarint", "Varint", "AppendUvarint", "AppendVarint":
			return true
		}
		return hasRecv
	case "time":
		return f.Name() == "Now" || f.Name() == "Since" || hasRecv
	case "sort":
		// The pure query helpers; sort.Sort and friends box their
		// arguments into sort.Interface.
		switch f.Name() {
		case "IntsAreSorted", "Float64sAreSorted", "StringsAreSorted",
			"SearchInts", "SearchFloat64s", "SearchStrings", "Search":
			return true
		}
		return false
	}
	return false
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func) // qualified pkg.Func
		return f
	}
	return nil
}

func builtinName(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel // unsafe.Sizeof and friends
	default:
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// capturedVar returns the name of one variable the closure captures
// from its enclosing function, or "".
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	declared := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || declared[v] || v.IsField() || v.Pkg() == nil {
			return true
		}
		if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		name = v.Name()
		return false
	})
	return name
}

func endsCold(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return receiverTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return receiverTypeName(e.X)
	case *ast.IndexListExpr:
		return receiverTypeName(e.X)
	}
	return ""
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
