// Package directive parses the `//snap:<name> [args...]` source
// annotations the snaplint analyzers act on:
//
//	//snap:alloc-free          function must not allocate (allocfree)
//	//snap:allocs-amortized    function allocates only while warming
//	                           caches; callable from alloc-free code
//	//snap:returns-borrowed    result is callee-owned scratch (bufown)
//	//snap:consumes <param>    the argument passed for <param> must not
//	                           be used after the call (bufown)
//	//snap:borrows <param>     the slice param must not be retained
//	                           past the call (bufown)
//	//snap:wire                struct is wire-encoded (wiretag)
//
// The grammar is deliberately rigid — `//snap:` with no space before
// the name, space-separated arguments — so a typo'd annotation parses
// as nothing rather than as a slightly different contract. Parsing
// never panics on arbitrary comment text (fuzzed).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

// A Directive is one parsed //snap: annotation.
type Directive struct {
	Name string   // "alloc-free", "returns-borrowed", ...
	Args []string // whitespace-separated arguments after the name
	Pos  token.Pos
}

// Parse extracts the directive from a single comment's text, or returns
// false. The comment must be a line comment starting exactly with
// "//snap:" (no space, matching the Go convention for machine-readable
// directives).
func Parse(text string, pos token.Pos) (Directive, bool) {
	rest, ok := strings.CutPrefix(text, "//snap:")
	if !ok {
		return Directive{}, false
	}
	// The directive name runs to the first whitespace; an empty name
	// ("//snap: x") is not a directive.
	if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
		return Directive{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Directive{}, false
	}
	name := fields[0]
	if strings.ContainsAny(name, "\t ") || name == "" {
		return Directive{}, false
	}
	// Reject names with characters outside [a-z0-9-]: they are typos or
	// other tools' namespaces, not contracts.
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return Directive{}, false
		}
	}
	return Directive{Name: name, Args: fields[1:], Pos: pos}, true
}

// ForDoc returns every directive in a declaration's doc comment group
// (nil-safe).
func ForDoc(doc *ast.CommentGroup) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := Parse(c.Text, c.Pos()); ok {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether the doc group carries the named directive.
func Has(doc *ast.CommentGroup, name string) bool {
	for _, d := range ForDoc(doc) {
		if d.Name == name {
			return true
		}
	}
	return false
}

// Arg returns the first argument of the named directive in doc, if the
// directive is present with at least one argument.
func Arg(doc *ast.CommentGroup, name string) (string, bool) {
	for _, d := range ForDoc(doc) {
		if d.Name == name && len(d.Args) > 0 {
			return d.Args[0], true
		}
	}
	return "", false
}
