package directive_test

import (
	"strings"
	"testing"
	"unicode"

	"github.com/snapml/snap/internal/analysis/directive"
)

func TestParse(t *testing.T) {
	tests := []struct {
		text string
		ok   bool
		name string
		args []string
	}{
		{"//snap:alloc-free", true, "alloc-free", nil},
		{"//snap:consumes b", true, "consumes", []string{"b"}},
		{"//snap:borrows frame raw", true, "borrows", []string{"frame", "raw"}},
		{"//snap:allocs-amortized   ", true, "allocs-amortized", nil},
		{"// snap:alloc-free", false, "", nil}, // space after //
		{"//snap: alloc-free", false, "", nil}, // space after colon
		{"//snap:", false, "", nil},            // no name
		{"//snap:Alloc-Free", false, "", nil},  // uppercase
		{"//snap:alloc_free", false, "", nil},  // underscore
		{"//snapx:alloc-free", false, "", nil}, // wrong prefix
		{"//go:noinline", false, "", nil},      // other tool's namespace
		{"plain comment text", false, "", nil},
		{"", false, "", nil},
	}
	for _, tt := range tests {
		d, ok := directive.Parse(tt.text, 0)
		if ok != tt.ok {
			t.Errorf("Parse(%q) ok = %v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != tt.name {
			t.Errorf("Parse(%q) name = %q, want %q", tt.text, d.Name, tt.name)
		}
		if len(d.Args) != len(tt.args) {
			t.Errorf("Parse(%q) args = %v, want %v", tt.text, d.Args, tt.args)
			continue
		}
		for i := range d.Args {
			if d.Args[i] != tt.args[i] {
				t.Errorf("Parse(%q) args = %v, want %v", tt.text, d.Args, tt.args)
				break
			}
		}
	}
}

// FuzzParse pins the "never panics, never mis-lexes" contract: any
// comment text either parses to a well-formed directive or to nothing.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"//snap:alloc-free",
		"//snap:consumes b",
		"//snap:",
		"//snap: x",
		"//snap:\t\t",
		"//snap:a\x00b",
		"//snap:alloc-free\nextra line",
		"//snap:名前",
		strings.Repeat("//snap:", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := directive.Parse(text, 0)
		if !ok {
			return
		}
		if d.Name == "" {
			t.Fatalf("Parse(%q) accepted an empty directive name", text)
		}
		for _, r := range d.Name {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
				t.Fatalf("Parse(%q) accepted name %q with invalid rune %q", text, d.Name, r)
			}
		}
		for _, a := range d.Args {
			if a == "" || strings.IndexFunc(a, unicode.IsSpace) >= 0 {
				t.Fatalf("Parse(%q) produced malformed arg %q", text, a)
			}
		}
	})
}
