// Package a exercises the bufown analyzer's single-package rules:
// retention of //snap:returns-borrowed results, use-after-consume,
// //snap:borrows escape checks, and the unlabeled-borrowed-return
// definition rule.
package a

type Engine struct {
	x   []float64
	upd []float64
}

// Step advances one iteration and exposes the live parameter vector.
//
//snap:returns-borrowed
func (e *Engine) Step() []float64 {
	return e.x // ok: the contract is declared
}

// Params is the historical bug shape: live engine state escaping
// without a contract.
func (e *Engine) Params() []float64 {
	return e.x // want `Engine.Params returns the receiver's x buffer without //snap:returns-borrowed`
}

// Snapshot copies, which is the blessed alternative.
func (e *Engine) Snapshot() []float64 {
	out := make([]float64, len(e.x))
	copy(out, e.x)
	return out
}

// Tail leaks a subslice of receiver state; slicing does not launder
// ownership.
func (e *Engine) Tail(n int) []float64 {
	return e.upd[:n] // want `Engine.Tail returns the receiver's upd buffer without //snap:returns-borrowed`
}

type holder struct{ buf []float64 }

var global []float64

func retainBorrowed(e *Engine, h *holder) float64 {
	x := e.Step()    // borrowed: transient use below is fine
	h.buf = e.Step() // want `borrowed result of Step stored in field buf`
	global = x       // want `borrowed buffer x stored in global global`
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	return sum
}

func returnBorrowedDirect(e *Engine) []float64 {
	return e.Step() // want `returnBorrowedDirect returns the borrowed result of Step without declaring //snap:returns-borrowed`
}

func returnBorrowedLocal(e *Engine) []float64 {
	x := e.Step()
	return x // want `returnBorrowedLocal returns borrowed buffer x without declaring //snap:returns-borrowed`
}

// wrapper re-declares the contract, so forwarding is legal.
//
//snap:returns-borrowed
func wrapper(e *Engine) []float64 {
	return e.Step() // ok
}

func copyOut(e *Engine, dst []float64) {
	x := e.Step()
	copy(dst, x) // ok: copying out of a borrowed buffer is the point
}

// Recycle returns a frame to the pool.
//
//snap:consumes b
func Recycle(b []byte) {}

func useAfterConsume(b []byte) int {
	Recycle(b)
	return len(b) // want `use of b after it was consumed`
}

func consumeThenReassign(b []byte) int {
	Recycle(b)
	b = make([]byte, 4) // a fresh buffer: the old hand-off no longer applies
	return len(b)       // ok
}

func consumeLast(b []byte) int {
	n := len(b)
	Recycle(b) // ok: nothing touches b afterward
	return n
}

var retained []byte

// DecodeInto may read frame during the call but must not keep it.
//
//snap:borrows frame
func DecodeInto(dst []float64, frame []byte) {
	alias := frame[4:]
	retained = alias // want `borrowed parameter frame retained in global retained`
	_ = alias
}

//snap:borrows raw
func BadReturn(raw []byte) []byte {
	return raw[:2] // want `borrowed parameter raw escapes via return`
}

type sink struct{ keep []byte }

//snap:borrows src
func (s *sink) BadField(src []byte) {
	s.keep = src // want `borrowed parameter src retained in field keep`
}

//snap:borrows src
func GoodCopy(dst, src []byte) int {
	return copy(dst, src) // ok: reading is what borrowing is for
}
