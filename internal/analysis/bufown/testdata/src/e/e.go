// Package e imports package d and checks that d's ownership contracts
// arrived as facts: retaining a borrowed pool buffer and touching a
// recycled one are findings even though the contracts are declared in
// another compilation unit.
package e

import "github.com/snapml/snap/internal/analysis/bufown/testdata/src/d"

type server struct{ frame []byte }

func (s *server) bad(p *d.Pool) {
	s.frame = p.Get() // want `borrowed result of Get stored in field frame`
}

func useAfterPut(p *d.Pool) int {
	b := p.Get()
	d.Put(b)
	return len(b) // want `use of b after it was consumed`
}

func roundTrip(p *d.Pool, dst []byte) int {
	b := p.Get()
	n := copy(dst, b)
	d.Put(b) // ok: consumed last
	return n
}
