// Package d is the dependency side of bufown's cross-package fact
// test: a pool whose contracts travel to importers as facts.
package d

type Pool struct{ buf []byte }

// Get hands out the pool's scratch buffer.
//
//snap:returns-borrowed
func (p *Pool) Get() []byte {
	return p.buf
}

// Put recycles a buffer; the caller must stop using it.
//
//snap:consumes b
func Put(b []byte) {}
